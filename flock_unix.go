//go:build unix

package ldp

import (
	"os"
	"syscall"
)

// flockExclusive takes a blocking exclusive advisory lock on path, creating
// the file if needed, and returns the release. The lock dies with the
// descriptor, so a crashed holder never wedges the waiters — the kernel
// releases it when the process exits.
func flockExclusive(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
