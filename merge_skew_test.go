// Skewed-population merge: two shards serving populations three orders of
// magnitude apart (1:1000) must merge into a statistically sound combined
// estimate, while the coverage report makes the imbalance impossible to
// miss — DriftRatio fires far past ldpfed's default 10× warning threshold.
// This is the shape a shard restored from a stale checkpoint (or a freshly
// added shard) presents to the fan-in, and the contract is: warn loudly,
// never distort the merged answer.
package ldp_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

func TestFleetSnapSkewedShardsDriftAndEnvelope(t *testing.T) {
	const (
		domain     = 16
		smallUsers = 10
		bigUsers   = 10000 // 1:1000 against the small shard
		seed       = 97
	)
	agg, w, shards := fleetFixture(t, domain, 2)
	f, err := ldp.NewFleet(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	// Feed each shard directly (no routing in play here) with a zipf-flavored
	// item stream, tracking the ground truth per cell.
	rz := randomizerFor(t, agg)
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, domain)
	zipf := rand.NewZipf(rng, 1.1, 1, domain-1)
	ingest := func(sh *fleetShard, users int) {
		for i := 0; i < users; i++ {
			item := int(zipf.Uint64())
			rep, err := rz.Randomize(item, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := sh.col.Ingest(rep); err != nil {
				t.Fatal(err)
			}
			truth[item]++
		}
	}
	ingest(shards[0], smallUsers)
	ingest(shards[1], bigUsers)

	merged, cov, err := f.Snap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("both shards are up, coverage should be complete: %s", cov)
	}
	if got := merged.Count(); math.Abs(got-float64(smallUsers+bigUsers)) > 0.5 {
		t.Fatalf("merged count %v, want %d", got, smallUsers+bigUsers)
	}

	// The coverage must expose the imbalance: DriftRatio names the two
	// shards and lands at the true 1000× ratio, far past the 10× default
	// warning threshold ldpfed applies.
	ratio, minS, maxS := cov.DriftRatio()
	if ratio <= 10 {
		t.Fatalf("DriftRatio()=%v for a 1:1000 split, want > 10 (ldpfed default threshold)", ratio)
	}
	if math.Abs(ratio-float64(bigUsers)/float64(smallUsers)) > 1e-9 {
		t.Fatalf("DriftRatio()=%v, want exactly %v", ratio, float64(bigUsers)/float64(smallUsers))
	}
	if minS.Endpoint != shards[0].hs.URL || maxS.Endpoint != shards[1].hs.URL {
		t.Fatalf("drift endpoints min=%s max=%s, want min=%s max=%s",
			minS.Endpoint, maxS.Endpoint, shards[0].hs.URL, shards[1].hs.URL)
	}
	if minS.Count != smallUsers || maxS.Count != bigUsers {
		t.Fatalf("drift counts min=%v max=%v, want %d and %d", minS.Count, maxS.Count, smallUsers, bigUsers)
	}

	// A lone-shard coverage has no peer to drift against.
	if lone, _, _ := (ldp.Coverage{Shards: cov.Shards[:1]}).DriftRatio(); lone != 0 {
		t.Fatalf("single-shard DriftRatio()=%v, want 0", lone)
	}

	// The merged estimate must stay inside the mechanism's theory envelope
	// over the combined population — the skew warns, it must not bias.
	s := benchfix.RRStrategy(domain, 1.0)
	vp, err := s.Variances(w.Gram(), w.Queries())
	if err != nil {
		t.Fatal(err)
	}
	expectedTSE := vp.OnData(truth)
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := est.Answers(merged)
	if err != nil {
		t.Fatal(err)
	}
	cellBound := zSigma * math.Sqrt(expectedTSE)
	var tse float64
	for v := range truth {
		d := answers[v] - truth[v]
		tse += d * d
		if math.Abs(d) > cellBound {
			t.Errorf("cell %d: merged estimate %.1f is %.1f off the truth %.0f (envelope ±%.1f)",
				v, answers[v], d, truth[v], cellBound)
		}
	}
	if tse > tseSlack*expectedTSE {
		t.Errorf("merged TSE %.0f exceeds %.0f (%.0f expected × %.1f slack)", tse, tseSlack*expectedTSE, expectedTSE, tseSlack)
	}

	// And the Fleet merge must agree bit-for-bit with a direct
	// Snapshot.Merge of the two shards' snapshots — fan-in is an
	// element-wise sum, nothing more.
	direct, err := shards[0].col.Snap().Merge(shards[1].col.Snap())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Count() != merged.Count() {
		t.Fatalf("direct merge count %v != fleet merge count %v", direct.Count(), merged.Count())
	}
	ds, ms := direct.State(), merged.State()
	for i := range ds {
		if ds[i] != ms[i] {
			t.Fatalf("state[%d]: direct merge %v != fleet merge %v", i, ds[i], ms[i])
		}
	}
}
