package ldp

import (
	"fmt"
	"sync"
)

// Collector is a goroutine-safe aggregation front-end for Server, for
// deployments where many handler goroutines ingest client responses
// concurrently. Aggregation is a single histogram increment, so a mutex (not
// a channel pipeline) is the right tool; reconstruction methods take the same
// lock and see a consistent snapshot.
type Collector struct {
	mu     sync.Mutex
	server *Server
}

// NewCollector wraps a Server for concurrent use. The Server must not be
// used directly afterwards.
func NewCollector(server *Server) *Collector {
	return &Collector{server: server}
}

// Add records one client response; safe for concurrent use.
func (c *Collector) Add(response int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server.Add(response)
}

// AddBatch records a batch of responses under one lock acquisition.
func (c *Collector) AddBatch(responses []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range responses {
		if err := c.server.Add(r); err != nil {
			return fmt.Errorf("ldp: batch element %d: %w", i, err)
		}
	}
	return nil
}

// Count returns the number of responses collected so far.
func (c *Collector) Count() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server.Count()
}

// Answers returns unbiased workload estimates from the current snapshot.
func (c *Collector) Answers() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server.Answers()
}

// ConsistentAnswers returns WNNLS-post-processed estimates from the current
// snapshot.
func (c *Collector) ConsistentAnswers() ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server.ConsistentAnswers()
}
