package ldp

import (
	"fmt"
	randv2 "math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Collector is the goroutine-safe aggregation front-end for deployments where
// many handler goroutines ingest client reports concurrently. Instead of
// serializing every arrival behind one mutex, the accumulator is sharded:
// each shard owns a private, cache-line-padded copy of the mechanism's
// aggregation state behind its own lock, ingestion spreads across shards, and
// the read path merges shards into one consistent snapshot (the protocol
// accumulator contract makes the merge a plain element-wise sum). Throughput
// therefore scales with cores; see BenchmarkCollectorIngest.
//
// Two ingestion paths are offered: Ingest/IngestBatch pick a shard at random
// through math/rand/v2's per-goroutine generator (no shared state touched, so
// unrelated goroutines never bounce a cache line choosing shards), and Handle
// pins an ingesting goroutine to one shard so even the shard lock stays
// core-local.
//
// Reads are cached: the merge of all shards is remembered together with the
// total report count it reflects, and because every successful ingest
// advances exactly one per-shard counter, "no count changed" proves "no state
// changed". A snapshot therefore costs one merge per ingest quiescence
// period, however often it is polled; see BenchmarkSnapshotCached.
type Collector struct {
	agg    Aggregator
	est    *Estimator
	info   MechanismInfo
	shards []collectorShard
	mask   uint64
	pinned atomic.Uint64 // round-robin cursor for Handle assignment

	// dur is the optional write-ahead-log state (WithDurability); nil for a
	// purely in-memory collector. When set, every ingest appends its batch to
	// the WAL before absorbing, so an acknowledged batch survives a crash.
	dur *durableState

	// cache is the memoized merge. cache.acc is the merged accumulator as of
	// cache.count total reports; it is never handed out (snapshots copy), so
	// its entries stay trustworthy. cache.epoch advances exactly when the
	// merge is refilled, i.e. when a snapshot observes a state different from
	// the previous one — the monotonic sequence Snapshot.Epoch carries.
	cache struct {
		mu    sync.Mutex
		acc   []float64
		count int64
		epoch uint64
	}

	// stats are lifetime tallies the serving wrapper exposes as scrape-time
	// counters (enableMetrics); plain atomics so the ingest path never takes
	// a metrics lock.
	stats struct {
		ingestBatches  atomic.Int64
		ingestReports  atomic.Int64
		snapshotHits   atomic.Int64
		snapshotMerges atomic.Int64
	}
}

// collectorShard is one lock-protected slice of the aggregation state. The
// trailing pad keeps the shards' mutexes and counts on distinct cache lines
// (the accumulator slices are separate heap allocations already), so two
// goroutines on different shards never write-share a line.
//
// count is atomic so Count and the snapshot-cache validity check are
// lock-free; writers still only advance it inside the shard lock, after the
// absorb lands, which makes the increment the linearization point of an
// ingest.
type collectorShard struct {
	mu    sync.Mutex
	count atomic.Int64
	acc   []float64
	_     [88]byte // sizeof(mutex+count+slice) = 40; pad to 128
}

// NewCollector prepares a concurrent collector for the given mechanism
// aggregator and workload. shards is rounded up to a power of two; shards ≤ 0
// picks 2×GOMAXPROCS, enough that ingesting goroutines rarely collide.
// Options extend the collector — WithDurability adds a write-ahead log and
// checkpointed crash recovery (prior state in the directory is restored
// before the collector is returned).
func NewCollector(agg Aggregator, w Workload, shards int, opts ...CollectorOption) (*Collector, error) {
	est, err := NewEstimator(agg, w) // validates agg and the domain match
	if err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = 2 * runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Collector{agg: agg, est: est, info: est.Info(), shards: make([]collectorShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].acc = make([]float64, agg.StateLen())
	}
	var cfg collectorConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durDir != "" {
		if err := c.openDurable(cfg); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// NewStrategyCollector is NewAggregator + NewCollector in one step.
//
// Deprecated: kept for pre-streaming-API callers; new code should build the
// Aggregator explicitly so it can be shared with a Server or the simulator.
func NewStrategyCollector(s *Strategy, w Workload, shards int) (*Collector, error) {
	agg, err := NewAggregator(s)
	if err != nil {
		return nil, err
	}
	return NewCollector(agg, w, shards)
}

// Shards returns the number of shards the accumulator is split across.
func (c *Collector) Shards() int { return len(c.shards) }

// Ingest records one client report; safe for concurrent use from any
// goroutine. Long-lived ingestion goroutines should prefer a Handle, which
// keeps even the shard lock core-local.
func (c *Collector) Ingest(r Report) error {
	return c.ingestInto(&c.shards[randv2.Uint64()&c.mask], r)
}

// IngestBatch records a batch of reports atomically under one shard lock: the
// whole batch is validated before any state changes, so a malformed element
// leaves the collector exactly as it was (and the snapshot never exposes a
// half-applied batch).
func (c *Collector) IngestBatch(reports []Report) error {
	return c.ingestBatchInto(&c.shards[randv2.Uint64()&c.mask], reports, "")
}

// IngestBatchKeyed is IngestBatch with the transport's idempotency key
// recorded alongside the batch in the write-ahead log (when durability is
// configured), so a client retry arriving after a crash-restart is recognized
// and absorbed exactly once. Transport bindings call it; other callers can
// pass "" or use IngestBatch.
func (c *Collector) IngestBatchKeyed(reports []Report, key string) error {
	return c.ingestBatchInto(&c.shards[randv2.Uint64()&c.mask], reports, key)
}

func (c *Collector) ingestInto(sh *collectorShard, r Report) error {
	if c.dur != nil {
		if err := c.agg.Check(r); err != nil {
			return fmt.Errorf("ldp: %w", err)
		}
		if err := c.durableAbsorb(sh, []Report{r}, ""); err != nil {
			return err
		}
		c.stats.ingestReports.Add(1)
		return nil
	}
	sh.mu.Lock()
	err := c.agg.Absorb(sh.acc, r)
	if err == nil {
		sh.count.Add(1)
	}
	sh.mu.Unlock()
	if err != nil {
		return fmt.Errorf("ldp: %w", err)
	}
	c.stats.ingestReports.Add(1)
	return nil
}

func (c *Collector) ingestBatchInto(sh *collectorShard, reports []Report, key string) error {
	for i, r := range reports {
		if err := c.agg.Check(r); err != nil {
			return fmt.Errorf("ldp: batch element %d: %w", i, err)
		}
	}
	if c.dur != nil {
		if err := c.durableAbsorb(sh, reports, key); err != nil {
			return err
		}
	} else {
		sh.mu.Lock()
		c.absorbValidatedLocked(sh, reports)
		sh.mu.Unlock()
	}
	c.stats.ingestBatches.Add(1)
	c.stats.ingestReports.Add(int64(len(reports)))
	return nil
}

// absorbValidatedLocked folds an already-Checked batch into the shard and
// publishes it with one counter add. Caller holds sh.mu.
func (c *Collector) absorbValidatedLocked(sh *collectorShard, reports []Report) {
	for i, r := range reports {
		// Check passed, so Absorb cannot fail (the Aggregator contract). If
		// an aggregator ever violates it, the batch is already partially
		// absorbed and cannot be rolled back — publish the applied prefix
		// (keeping the snapshot cache's "count moved iff state moved"
		// invariant intact) and panic: silently committing a half-applied
		// batch would break the all-or-nothing promise every transport
		// client retries against, turning one buggy aggregator into
		// permanent double counts.
		if err := c.agg.Absorb(sh.acc, r); err != nil {
			sh.count.Add(int64(i))
			panic(fmt.Sprintf("ldp: aggregator %T violated the Check/Absorb contract on batch element %d: %v", c.agg, i, err))
		}
	}
	// One atomic add for the whole batch: the counter is the publication
	// point, so readers see the batch all at once.
	sh.count.Add(int64(len(reports)))
}

// Add records one bare output index.
//
// Deprecated: index-carrying mechanisms only; use Ingest.
func (c *Collector) Add(response int) error {
	return c.Ingest(Report{Index: response})
}

// AddBatch records a batch of bare output indices with the same
// all-or-nothing validation as IngestBatch.
//
// Deprecated: index-carrying mechanisms only; use IngestBatch.
func (c *Collector) AddBatch(responses []int) error {
	reports := make([]Report, len(responses))
	for i, r := range responses {
		reports[i] = Report{Index: r}
	}
	return c.IngestBatch(reports)
}

// Handle is an ingestion endpoint pinned to one shard: its hot path takes an
// uncontended lock and touches no cache line shared with other shards'
// handles. Create one per long-lived ingestion goroutine. A Handle is itself
// safe for concurrent use — concurrent users merely contend on its shard.
type Handle struct {
	c  *Collector
	sh *collectorShard
}

// Handle returns an ingestion endpoint pinned to the next shard round-robin.
// With at least as many shards as ingestion goroutines (the default), every
// goroutine gets a shard of its own.
func (c *Collector) Handle() *Handle {
	return &Handle{c: c, sh: &c.shards[c.pinned.Add(1)&c.mask]}
}

// Ingest records one client report on the handle's shard.
func (h *Handle) Ingest(r Report) error {
	return h.c.ingestInto(h.sh, r)
}

// IngestBatch records a batch atomically on the handle's shard, with the same
// all-or-nothing validation as Collector.IngestBatch.
func (h *Handle) IngestBatch(reports []Report) error {
	return h.c.ingestBatchInto(h.sh, reports, "")
}

// totalCount sums the per-shard counters lock-free. An ingest publishes
// itself by advancing its shard's counter (inside the shard lock, after the
// absorb), so the sum only moves when completed ingests land.
func (c *Collector) totalCount() int64 {
	var count int64
	for i := range c.shards {
		count += c.shards[i].count.Load()
	}
	return count
}

// enableMetrics registers the collector's families on reg, all read at
// scrape time from the collector's own atomics — the ingest path pays
// nothing it wasn't already paying.
func (c *Collector) enableMetrics(reg *obs.Registry) {
	reg.CounterFunc("ldp_collector_ingest_batches_total",
		"Report batches absorbed since startup.",
		func() float64 { return float64(c.stats.ingestBatches.Load()) })
	reg.CounterFunc("ldp_collector_ingest_reports_total",
		"Individual reports absorbed since startup (batched and unary).",
		func() float64 { return float64(c.stats.ingestReports.Load()) })
	reg.CounterFunc("ldp_collector_snapshot_cache_hits_total",
		"Snapshots served from the cached merge without touching a shard lock.",
		func() float64 { return float64(c.stats.snapshotHits.Load()) })
	reg.CounterFunc("ldp_collector_snapshot_merges_total",
		"Snapshots that re-merged the shards (an ingest landed since the last merge).",
		func() float64 { return float64(c.stats.snapshotMerges.Load()) })
	reg.GaugeFunc("ldp_collector_reports",
		"Reports currently aggregated, recovery included.",
		func() float64 { return float64(c.totalCount()) })
	reg.GaugeFunc("ldp_collector_epoch",
		"Current snapshot epoch — advances exactly when the merged state changes.",
		func() float64 { _, epoch := c.countEpoch(); return float64(epoch) })
}

// snapshot returns a caller-owned copy of the merged accumulator, the report
// count it reflects, and the snapshot epoch — a linearizable point-in-time
// view: no concurrent Ingest is half-visible.
//
// The merge is cached: if no shard counter has moved since the cache was
// filled, no ingest completed in between and the cached merge is returned
// (copied) without touching any shard lock. Otherwise every shard is locked
// (ascending order, so concurrent snapshots cannot deadlock), re-merged, the
// cache refilled, and the epoch advanced — so the epoch counts distinct
// observed states.
func (c *Collector) snapshot() (acc []float64, count float64, epoch uint64) {
	c.cache.mu.Lock()
	defer c.cache.mu.Unlock()
	c.refreshCacheLocked()
	acc = make([]float64, len(c.cache.acc))
	copy(acc, c.cache.acc)
	return acc, float64(c.cache.count), c.cache.epoch
}

// countEpoch returns a consistent (count, epoch) pair — what /healthz
// serves — without paying for a merge or a state copy: a count the cache
// has not seen is itself the observation of a new state, so the epoch
// advances and the cached merge is invalidated; the merge itself is
// deferred to the next full snapshot. Every ingest moves a counter, so
// "count unchanged" still proves "state unchanged". Cost per poll: the
// lock-free counter sum plus the cache mutex — no shard lock is taken.
func (c *Collector) countEpoch() (count float64, epoch uint64) {
	c.cache.mu.Lock()
	defer c.cache.mu.Unlock()
	if total := c.totalCount(); c.cache.epoch == 0 || total != c.cache.count {
		c.cache.count = total
		c.cache.acc = nil // state moved: force the next snapshot to re-merge
		c.cache.epoch++
	}
	return float64(c.cache.count), c.cache.epoch
}

// refreshCacheLocked re-merges the shards into the cache when any ingest
// completed since the last fill. The epoch advances only when the merged
// state is one no reader has observed yet — a refill of a countEpoch-
// invalidated cache at an unchanged count keeps its epoch, so /healthz and
// /snapshot number the same states identically. Caller holds cache.mu.
func (c *Collector) refreshCacheLocked() {
	if c.cache.acc != nil && c.totalCount() == c.cache.count {
		c.stats.snapshotHits.Add(1)
		return
	}
	c.stats.snapshotMerges.Add(1)
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	merged := make([]float64, c.agg.StateLen())
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		for j, v := range sh.acc {
			merged[j] += v
		}
		total += sh.count.Load()
	}
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
	if c.cache.epoch == 0 || total != c.cache.count {
		c.cache.epoch++
	}
	c.cache.acc = merged
	c.cache.count = total
}

// Snap returns an immutable point-in-time Snapshot of the collector: merged
// accumulator, report count, mechanism identity, and the monotonic snapshot
// epoch. It is the one read handle every estimator consumes — and the value
// a transport binding serves to remote readers and ldpfed merges across
// shards.
func (c *Collector) Snap() Snapshot {
	acc, count, epoch := c.snapshot()
	return Snapshot{state: acc, count: count, epoch: epoch, info: c.info}
}

// Snapshot returns the merged aggregation accumulator and the number of
// reports it contains as one consistent view. The slice is caller-owned.
//
// Deprecated: use Snap, which carries the mechanism identity and epoch the
// bare pair lacks.
func (c *Collector) Snapshot() (state []float64, count float64) {
	state, count, _ = c.snapshot()
	return state, count
}

// Count returns the number of reports collected so far. It only sums the
// per-shard atomic counters — no lock is taken and no accumulator merge is
// paid, so Count can be polled at any rate.
func (c *Collector) Count() float64 {
	return float64(c.totalCount())
}

// State returns the merged aggregation accumulator (for strategy mechanisms,
// the response histogram y) from a consistent snapshot.
//
// Deprecated: use Snap().State().
func (c *Collector) State() []float64 {
	acc, _, _ := c.snapshot()
	return acc
}

// DataEstimate returns the unbiased estimate of the data vector from a
// consistent snapshot.
//
// Deprecated: use an Estimator — NewEstimator(agg, w) then
// est.DataEstimate(c.Snap()) — which answers local, remote, and merged
// snapshots alike.
func (c *Collector) DataEstimate() []float64 {
	xh, err := c.est.DataEstimate(c.Snap())
	if err != nil {
		panic(err) // unreachable: the snapshot comes from this very mechanism
	}
	return xh
}

// Answers returns unbiased workload estimates from a consistent snapshot.
//
// Deprecated: use an Estimator — est.Answers(c.Snap()).
func (c *Collector) Answers() []float64 {
	answers, err := c.est.Answers(c.Snap())
	if err != nil {
		panic(err) // unreachable: the snapshot comes from this very mechanism
	}
	return answers
}

// ConsistentAnswers returns WNNLS-post-processed estimates from a consistent
// snapshot.
//
// Deprecated: use an Estimator — est.ConsistentAnswers(c.Snap()).
func (c *Collector) ConsistentAnswers() ([]float64, error) {
	return c.est.ConsistentAnswers(c.Snap())
}
