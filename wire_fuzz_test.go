package ldp_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	ldp "repro"
)

// goldenSeed loads a golden wire file as a fuzz seed; the corpus then mutates
// real, currently-valid encodings rather than guessing the gob grammar from
// scratch.
func goldenSeed(f *testing.F, name string) {
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		f.Fatalf("read golden seed (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	f.Add(b)
}

// FuzzLoadStrategy feeds arbitrary bytes to the strategy loader. Whatever
// the bytes, LoadStrategy must return a strategy or an error — never panic,
// never hand back a strategy with nonsensical dimensions or a non-finite ε.
// This fuzzer is what surfaced the Rows×Cols overflow and the NaN-ε holes the
// loader's bounds checks now close.
func FuzzLoadStrategy(f *testing.F) {
	goldenSeed(f, "strategy_v1.golden")
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ldp.LoadStrategy(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.Domain() <= 0 || s.Outputs() <= 0 {
			t.Fatalf("accepted strategy with dimensions %dx%d", s.Outputs(), s.Domain())
		}
		if !(s.Eps > 0) {
			t.Fatalf("accepted strategy with ε=%v", s.Eps)
		}
		// An accepted strategy must survive a save/load round trip.
		var buf bytes.Buffer
		if err := ldp.SaveStrategy(&buf, s); err != nil {
			t.Fatalf("accepted strategy failed to re-save: %v", err)
		}
		if _, err := ldp.LoadStrategy(&buf); err != nil {
			t.Fatalf("re-saved strategy failed to load: %v", err)
		}
	})
}

// FuzzLoadOracle is the same contract for the oracle loader: error or a
// well-formed oracle, nothing in between. It surfaced the NaN/±Inf ε hole in
// the oracle constructors (int(math.Round(exp(NaN))) is undefined) that
// freqoracle's ε validation now closes.
func FuzzLoadOracle(f *testing.F) {
	goldenSeed(f, "oracle_v1.golden")
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := ldp.LoadOracle(bytes.NewReader(data))
		if err != nil {
			return
		}
		if o.Domain() <= 0 {
			t.Fatalf("accepted oracle with domain %d", o.Domain())
		}
		if !(o.Epsilon() > 0) {
			t.Fatalf("accepted oracle with ε=%v", o.Epsilon())
		}
		if v := o.VariancePerUser(); !(v > 0) {
			t.Fatalf("accepted oracle with variance constant %v", v)
		}
		var buf bytes.Buffer
		if err := ldp.SaveOracle(&buf, o); err != nil {
			t.Fatalf("accepted oracle failed to re-save: %v", err)
		}
		if _, err := ldp.LoadOracle(&buf); err != nil {
			t.Fatalf("re-saved oracle failed to load: %v", err)
		}
	})
}
