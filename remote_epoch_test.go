package ldp_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// epochBackend is a scriptable transport backend whose snapshot epoch the
// test moves at will — the stand-in for a server that restarted and lost its
// durable state.
type epochBackend struct {
	mu    sync.Mutex
	state []float64
	count float64
	epoch uint64
}

func (b *epochBackend) IngestBatch(reports []protocol.Report) error { return nil }

func (b *epochBackend) SnapshotEpoch() ([]float64, float64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := append([]float64(nil), b.state...)
	return st, b.count, b.epoch
}

func (b *epochBackend) CountEpoch() (float64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count, b.epoch
}

func (b *epochBackend) set(count float64, epoch uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count, b.epoch = count, epoch
}

// A snapshot epoch moving backwards between Snap calls is exactly the symptom
// of an undetected lossy restart; RemoteCollector must surface it as the
// typed EpochRegressionError instead of handing back a consistent-looking
// undercount.
func TestRemoteSnapDetectsEpochRegression(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	backend := &epochBackend{state: make([]float64, n), count: 40, epoch: 5}
	srv, err := transport.NewServer(backend, transport.Info{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	rc, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := rc.Snap(ctx); err != nil {
		t.Fatalf("first snap: %v", err)
	}
	// Same epoch again is fine (identical snapshot), and advancing is fine.
	if _, err := rc.Snap(ctx); err != nil {
		t.Fatalf("same-epoch snap: %v", err)
	}
	backend.set(55, 9)
	if _, err := rc.Snap(ctx); err != nil {
		t.Fatalf("advanced snap: %v", err)
	}

	// The lossy restart: epoch (and count) fall back.
	backend.set(3, 2)
	_, err = rc.Snap(ctx)
	var reg *ldp.EpochRegressionError
	if !errors.As(err, &reg) {
		t.Fatalf("regressed snap returned %v, want an EpochRegressionError", err)
	}
	if reg.Prev != 9 || reg.Observed != 2 || reg.PrevCount != 55 || reg.ObservedCount != 3 {
		t.Fatalf("regression details %+v", reg)
	}

	// The client keeps refusing until the server's epoch catches back up —
	// the high-water mark is not reset by the failed call.
	backend.set(4, 3)
	if _, err := rc.Snap(ctx); !errors.As(err, &reg) {
		t.Fatalf("still-regressed snap returned %v", err)
	}
	backend.set(60, 9)
	if _, err := rc.Snap(ctx); err != nil {
		t.Fatalf("recovered snap: %v", err)
	}
}
