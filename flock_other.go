//go:build !unix

package ldp

// flockExclusive is a no-op where flock is unavailable: the cross-process
// singleflight degrades to duplicated optimizer work, never to a wrong
// result — both processes compute the same strategy and the atomic
// temp-plus-rename persist keeps the cache entry intact either way.
func flockExclusive(path string) (func(), error) {
	return func() {}, nil
}
