package ldp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// routerFixture stands up n shards, a fleet over them, and the router tier.
func routerFixture(t *testing.T, domain, n int, opts ...ldp.FleetOption) (*ldp.Fleet, *ldp.FleetServer, *httptest.Server, []*fleetShard, ldp.Aggregator, ldp.Workload) {
	t.Helper()
	agg, w, shards := fleetFixture(t, domain, n)
	base := []ldp.FleetOption{
		ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)),
		ldp.WithFleetRemoteOptions(ldp.WithRemoteBatch(8)),
	}
	f, err := ldp.NewFleet(agg, w, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, context.Background(), f, shards)
	fs, err := ldp.NewFleetServer(f)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(fs.Handler())
	t.Cleanup(hs.Close)
	return f, fs, hs, shards, agg, w
}

// The router speaks the shard protocol: an unmodified RemoteCollector
// pointed at it verifies the mechanism identity, ships keyed batches that
// land exactly once across the shards, and reads the merged snapshot back.
func TestRouterTransparentToRemoteCollector(t *testing.T) {
	const domain, total = 16, 120
	_, _, hs, shards, agg, w := routerFixture(t, domain, 3)

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(10),
		ldp.WithRemoteHTTPClient(hs.Client()),
		ldp.WithRemoteRetryPolicy(fastRetryPolicy(2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	info := ldp.MechanismInfoOf(agg)
	if err := rcol.Verify(ctx, info.Mechanism, info.Epsilon, info.Digest); err != nil {
		t.Fatalf("identity handshake through the router: %v", err)
	}
	for i := 0; i < total; i++ {
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % domain}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if err := rcol.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	snap, err := rcol.Snap(ctx)
	if err != nil {
		t.Fatalf("snap through the router: %v", err)
	}
	if snap.Count() != total {
		t.Fatalf("merged count %v, want %v", snap.Count(), total)
	}
	var mass, sharded float64
	for _, v := range snap.State() {
		mass += v
	}
	if mass != total {
		t.Fatalf("merged mass %v, want %v (loss or duplication)", mass, total)
	}
	routed := 0
	for _, sh := range shards {
		sharded += sh.col.Count()
		if sh.col.Count() > 0 {
			routed++
		}
	}
	if sharded != total {
		t.Fatalf("shards hold %v total, want %v", sharded, total)
	}
	if routed < 2 {
		t.Fatalf("only %d shard(s) received traffic; routing never rotated", routed)
	}
}

// postFrame POSTs reports as one framed body with the given idempotency key
// and returns the HTTP status plus decoded accepted count.
func postFrame(t *testing.T, hs *httptest.Server, key string, reports []ldp.Report) (int, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := ldp.EncodeReportsFrame(&buf, reports); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/reports", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set(ldp.IdempotencyKeyHeader, key)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Accepted int `json:"accepted"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body.Accepted
}

// A client retry of a keyed batch must land on the SAME shard the first
// attempt was routed to, where the idempotency cache replays it — the
// binding is what keeps exactly-once across the router.
func TestRouterKeyStickyReplay(t *testing.T) {
	const domain = 8
	_, _, hs, shards, _, _ := routerFixture(t, domain, 3)

	reports := []ldp.Report{{Index: 1}, {Index: 2}, {Index: 3}}
	if status, accepted := postFrame(t, hs, "key-A", reports); status != http.StatusOK || accepted != 3 {
		t.Fatalf("first keyed POST = (%d, %d), want (200, 3)", status, accepted)
	}
	// The same key again — a client retry after a lost response — replays.
	for i := 0; i < 3; i++ {
		if status, accepted := postFrame(t, hs, "key-A", reports); status != http.StatusOK || accepted != 3 {
			t.Fatalf("retry %d = (%d, %d), want replayed (200, 3)", i, status, accepted)
		}
	}
	var total float64
	for _, sh := range shards {
		total += sh.col.Count()
	}
	if total != 3 {
		t.Fatalf("shards absorbed %v reports across 4 sends of one key, want exactly 3", total)
	}
}

// With a shard down, GET /snapshot still answers and the coverage headers
// say how degraded the estimate is; a strict-quorum router refuses with 503
// once coverage falls below the quorum.
func TestRouterSnapshotCoverageHeaders(t *testing.T) {
	const domain = 8
	f, _, hs, shards, _, _ := routerFixture(t, domain, 3)
	ctx := context.Background()

	// Seed and take a baseline so every shard has last-good state.
	for i := 0; i < 12; i++ {
		if err := f.IngestBatch(ctx, []ldp.Report{{Index: i % domain}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	get := func() *http.Response {
		resp, err := hs.Client().Get(hs.URL + "/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	resp := get()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(ldp.CoverageHeader) != "3/3 shards" {
		t.Fatalf("healthy snapshot = %d %q", resp.StatusCode, resp.Header.Get(ldp.CoverageHeader))
	}

	shards[2].down.Store(true)
	resp = get()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded snapshot status %d, want 200 with stale fallback", resp.StatusCode)
	}
	if got := resp.Header.Get(ldp.CoverageHeader); got != "3/3 shards (1 stale)" {
		t.Fatalf("degraded coverage header %q", got)
	}
	if resp.Header.Get(ldp.CoverageStaleHeader) != "1" || resp.Header.Get(ldp.CoverageTotalHeader) != "3" {
		t.Fatalf("numeric coverage headers = stale %q total %q", resp.Header.Get(ldp.CoverageStaleHeader), resp.Header.Get(ldp.CoverageTotalHeader))
	}

	// A strict-quorum, no-stale router refuses below quorum.
	_, _, strictHS, strictShards, _, _ := routerFixture(t, domain, 3,
		ldp.WithFleetStaleFallback(false), ldp.WithFleetQuorum(3))
	strictShards[0].down.Store(true)
	resp2, err := strictHS.Client().Get(strictHS.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("below-quorum snapshot status %d, want 503", resp2.StatusCode)
	}
	if got := resp2.Header.Get(ldp.CoverageHeader); got != "2/3 shards (1 missing)" {
		t.Fatalf("below-quorum coverage header %q", got)
	}
}

// Membership over HTTP: register, list, deregister, and the readiness probe
// reflecting whether enough shards are routable.
func TestRouterMembershipEndpoints(t *testing.T) {
	const domain = 8
	agg, w, shards := fleetFixture(t, domain, 2)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ldp.NewFleetServer(f)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(fs.Handler())
	t.Cleanup(hs.Close)

	// Empty fleet: not ready, ingest 503.
	resp, err := hs.Client().Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet readyz %d, want 503", resp.StatusCode)
	}
	if status, _ := postFrame(t, hs, "k", []ldp.Report{{Index: 0}}); status != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet ingest %d, want 503", status)
	}

	// Register both shards over HTTP.
	for _, sh := range shards {
		body, _ := json.Marshal(map[string]string{"endpoint": sh.hs.URL})
		resp, err := hs.Client().Post(hs.URL+"/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s = %d", sh.hs.URL, resp.StatusCode)
		}
	}
	resp, err = hs.Client().Get(hs.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Members []ldp.MemberState `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Members) != 2 || !listing.Members[0].Ready {
		t.Fatalf("listing = %+v, want 2 ready members", listing.Members)
	}
	if resp, err = hs.Client().Get(hs.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with members %d, want 200", resp.StatusCode)
	}
	// Healthz carries the fleet's identity plus the membership.
	if resp, err = hs.Client().Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	var h struct {
		Mechanism string            `json:"mechanism"`
		Domain    int               `json:"domain"`
		Members   []ldp.MemberState `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Domain != domain || len(h.Members) != 2 {
		t.Fatalf("healthz = %+v", h)
	}

	// Deregister one; a second delete of the same endpoint is a 404.
	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, hs.URL+"/shards?endpoint="+shards[0].hs.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del(); got != http.StatusOK {
		t.Fatalf("deregister = %d", got)
	}
	if got := del(); got != http.StatusNotFound {
		t.Fatalf("double deregister = %d, want 404", got)
	}

	// Registering a mismatched shard over HTTP is refused with 409.
	otherAgg, err := ldp.NewAggregator(benchfix.RRStrategy(domain, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	wrong := newFleetShard(t, otherAgg, w)
	body, _ := json.Marshal(map[string]string{"endpoint": wrong.hs.URL})
	if resp, err = hs.Client().Post(hs.URL+"/shards", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched register = %d, want 409", resp.StatusCode)
	}
}

// Drain: ingest and membership changes refuse 503, the merged snapshot
// stays readable for a final pull.
func TestRouterDrain(t *testing.T) {
	const domain = 8
	f, fs, hs, _, _, _ := routerFixture(t, domain, 2)
	ctx := context.Background()
	if err := f.IngestBatch(ctx, []ldp.Report{{Index: 1}, {Index: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := f.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	fs.Drain()
	if status, _ := postFrame(t, hs, "k", []ldp.Report{{Index: 0}}); status != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest = %d, want 503", status)
	}
	resp, err := hs.Client().Get(hs.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining snapshot = %d, want 200 (reads survive)", resp.StatusCode)
	}
	resp, err = hs.Client().Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
}

// An oversized POST body is refused 413 before any forwarding.
func TestRouterBoundsRequestBody(t *testing.T) {
	_, fs, hs, shards, _, _ := routerFixture(t, 8, 1)
	fs.SetMaxRequestBytes(64)
	big := make([]ldp.Report, 4096)
	for i := range big {
		big[i] = ldp.Report{Index: i % 8}
	}
	status, _ := postFrame(t, hs, "big", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d, want 413", status)
	}
	if shards[0].col.Count() != 0 {
		t.Fatalf("shard absorbed %v from a refused request", shards[0].col.Count())
	}
}
