package ldp

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/transport"
)

// StatusError re-exports the transport's definitive-response error so fleet
// and remote-collector callers can classify failures (Temporary or not)
// without importing an internal package.
type StatusError = transport.StatusError

// BreakerPolicy shapes the per-shard circuit breaker a Fleet keeps: how many
// consecutive failures trip it open and how long it refuses before probing
// again. The zero value uses sane defaults (5 failures, 5s cooldown); the
// Now field is injectable so tests pin the clock.
type BreakerPolicy = retry.BreakerPolicy

// ErrNoReadyShards reports that an ingest had no live backend to route to:
// every member is gated out (not ready, breaker open, or never registered).
var ErrNoReadyShards = errors.New("ldp: no ready shards to route to")

// QuorumError reports a merge refused in strict mode: fewer shards
// contributed than the configured quorum, so a partial estimate was withheld
// rather than served. The Coverage says exactly who was missing and why.
type QuorumError struct {
	Merged   int
	Quorum   int
	Coverage Coverage
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("ldp: merged %d of %d shards, below the quorum of %d (%s)",
		e.Merged, e.Coverage.Total, e.Quorum, e.Coverage)
}

// CoverageStatus is one shard's contribution to a merged snapshot.
type CoverageStatus int

const (
	// CoverageFresh: the shard answered this merge with a live snapshot.
	CoverageFresh CoverageStatus = iota
	// CoverageStale: the shard was unreachable (or its breaker open); its
	// last successfully fetched snapshot was merged instead, so the estimate
	// undercounts only what the shard absorbed since then.
	CoverageStale
	// CoverageMissing: the shard contributed nothing — unreachable with no
	// stale snapshot to fall back on (or stale fallback disabled).
	CoverageMissing
)

func (s CoverageStatus) String() string {
	switch s {
	case CoverageFresh:
		return "fresh"
	case CoverageStale:
		return "stale"
	case CoverageMissing:
		return "missing"
	}
	return "unknown"
}

// ShardCoverage annotates one shard's part in a merged snapshot: what it
// contributed (fresh, stale, nothing), the epoch and count of that
// contribution — for a missing shard, the last-good epoch and count the
// fleet ever saw, so an operator knows how much the partial merge is missing
// — and the error that degraded it.
type ShardCoverage struct {
	Endpoint string
	Status   CoverageStatus
	// Epoch and Count describe the merged contribution (fresh/stale), or the
	// last-good snapshot the fleet holds for a missing shard (zero if none).
	Epoch uint64
	Count float64
	// Err is why the shard did not contribute fresh state ("" when fresh).
	Err string
}

// Coverage is the honesty annotation on a degraded merge: how many of the
// fleet's shards contributed, how (fresh vs stale), and per-shard detail for
// the ones that did not. A merge under failure returns a partial Snapshot
// plus a Coverage saying exactly what it covers, instead of failing — or
// worse, silently undercounting.
type Coverage struct {
	Total int // registered shards at merge time
	Fresh int // shards that answered this merge
	Stale int // shards merged from their last-good snapshot
	// Shards has one entry per member in registration order.
	Shards []ShardCoverage
}

// Merged returns the number of shards that contributed state (fresh+stale).
func (c Coverage) Merged() int { return c.Fresh + c.Stale }

// Complete reports whether every registered shard contributed fresh state.
func (c Coverage) Complete() bool { return c.Fresh == c.Total }

// DriftRatio measures how unevenly the merged population is spread over the
// contributing shards: the largest contributed count over the smallest, with
// the extreme shards returned for naming in warnings. Missing shards are
// excluded (their gap is reported by Merged/Total). With fewer than two
// contributing shards the ratio is 0 (no drift to speak of); a zero minimum
// against a nonzero maximum is +Inf. Uneven counts are legitimate — shards
// can serve uneven populations — but an order-of-magnitude split is what a
// shard restored from a stale checkpoint looks like next to its peers.
func (c Coverage) DriftRatio() (ratio float64, minShard, maxShard ShardCoverage) {
	n := 0
	for _, sc := range c.Shards {
		if sc.Status == CoverageMissing {
			continue
		}
		if n == 0 || sc.Count < minShard.Count {
			minShard = sc
		}
		if n == 0 || sc.Count > maxShard.Count {
			maxShard = sc
		}
		n++
	}
	if n < 2 || maxShard.Count == 0 {
		return 0, minShard, maxShard
	}
	if minShard.Count == 0 {
		return math.Inf(1), minShard, maxShard
	}
	return maxShard.Count / minShard.Count, minShard, maxShard
}

// String renders the operator-facing summary, e.g. "3/4 shards (1 missing)".
func (c Coverage) String() string {
	s := fmt.Sprintf("%d/%d shards", c.Merged(), c.Total)
	var notes []string
	if c.Stale > 0 {
		notes = append(notes, fmt.Sprintf("%d stale", c.Stale))
	}
	if missing := c.Total - c.Merged(); missing > 0 {
		notes = append(notes, fmt.Sprintf("%d missing", missing))
	}
	if len(notes) > 0 {
		s += " (" + strings.Join(notes, ", ") + ")"
	}
	return s
}

// MemberState is a shard's position in the fleet's health gate.
type MemberState struct {
	Endpoint string `json:"endpoint"`
	// Ready is the gate: only ready members receive routed ingest. A member
	// turns not-ready when its readiness probe says so (draining,
	// recovering) or after UnhealthyAfter consecutive failed probes.
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	// Breaker is the circuit breaker position ("closed", "open", "half-open").
	Breaker string `json:"breaker"`
	// LastEpoch/LastCount are from the last successful snapshot fetch — the
	// "last good" state a degraded merge falls back on.
	LastEpoch uint64  `json:"last_epoch"`
	LastCount float64 `json:"last_count"`
	// Verified reports whether the mechanism-identity handshake succeeded;
	// a member registered while unreachable is verified on first contact.
	Verified bool `json:"verified"`
}

// fleetMember is one registered shard: its client, breaker, health gate, and
// last-good snapshot.
type fleetMember struct {
	endpoint string
	rc       *RemoteCollector
	breaker  *retry.Breaker

	mu          sync.Mutex
	ready       bool
	reason      string
	gated       bool   // operator/scenario override: held out of routing
	gateReason  string // why, surfaced in MemberState.Reason
	probeFails  int
	verified    bool
	hasLastGood bool
	lastGood    Snapshot
}

// setReady updates the gate under the member lock.
func (m *fleetMember) setReady(ready bool, reason string) {
	m.mu.Lock()
	m.ready, m.reason = ready, reason
	m.mu.Unlock()
}

// Fleet is the failure-aware fan-in layer over N collector shards: dynamic
// membership (Register/Deregister), health-gated routing (a shard that is
// draining, recovering, unreachable, or circuit-broken stops receiving
// ingest), and merges with graceful degradation — Snap returns a partial
// merged Snapshot annotated with Coverage instead of failing when k of N
// shards are down, and refuses below the quorum in strict mode.
//
// Every member shares one retry discipline (jittered exponential backoff,
// per-attempt timeouts, definitive-vs-retryable classification) and gets its
// own circuit breaker, so a flapping shard degrades to "stale snapshot +
// annotation" rather than head-of-line-blocking every merge.
//
// A Fleet is safe for concurrent use.
type Fleet struct {
	agg            Aggregator
	w              Workload
	info           MechanismInfo
	policy         RetryPolicy
	breakerPolicy  BreakerPolicy
	quorum         int
	staleFallback  bool
	unhealthyAfter int
	hc             *http.Client
	remoteOpts     []RemoteOption

	mu       sync.Mutex
	members  map[string]*fleetMember
	order    []string // registration order: deterministic iteration + routing
	next     int      // round-robin routing cursor
	bindings *keyBindings

	// bindingLog, when configured, makes the key→shard LRU durable: every
	// fresh bind is appended (and fsynced) before the forward ships, and a
	// restarted router replays the log so a keyed retry still lands on the
	// shard whose idempotency cache first saw the key.
	bindingLogPath string
	bindingLog     *durable.BindingLog

	// fm is the armed metrics handle set (nil until a FleetServer arms it via
	// enableMetrics); every observation site pays one atomic load when unarmed.
	fm atomic.Pointer[fleetMetrics]
}

// fleetMetrics is the fleet's observability handle set: probe outcomes,
// breaker transitions, forward retries, merge outcomes, and per-shard
// routability/coverage.
type fleetMetrics struct {
	probes      *obs.CounterVec // ldp_fleet_probes_total{outcome}
	transitions *obs.CounterVec // ldp_fleet_breaker_transitions_total{to}
	retries     *obs.Counter    // ldp_fleet_forward_retries_total
	merges      *obs.CounterVec // ldp_fleet_merges_total{outcome}
	shardReady  *obs.GaugeVec   // ldp_fleet_shard_ready{endpoint}
	covFresh    *obs.Gauge
	covStale    *obs.Gauge
	covMissing  *obs.Gauge
}

// enableMetrics registers the fleet's families on reg and starts feeding
// them. NewFleetServer calls it; a library-embedded Fleet stays unarmed and
// pays a single nil check per event.
func (f *Fleet) enableMetrics(reg *obs.Registry) {
	m := &fleetMetrics{
		probes: reg.CounterVec("ldp_fleet_probes_total",
			"Health-probe outcomes per member, by result (ready, not_ready, unreachable).", "outcome"),
		transitions: reg.CounterVec("ldp_fleet_breaker_transitions_total",
			"Per-shard circuit-breaker state transitions, by the state entered.", "to"),
		retries: reg.Counter("ldp_fleet_forward_retries_total",
			"Retried shard requests — one count per backoff pause the retry loop took."),
		merges: reg.CounterVec("ldp_fleet_merges_total",
			"Fan-in merge outcomes: complete, degraded, quorum_refused, empty, or error.", "outcome"),
		shardReady: reg.GaugeVec("ldp_fleet_shard_ready",
			"Per-shard routability: 1 when the member receives routed ingest, 0 when gated out.", "endpoint"),
		covFresh: reg.Gauge("ldp_fleet_coverage_fresh",
			"Shards that contributed fresh state to the most recent merge."),
		covStale: reg.Gauge("ldp_fleet_coverage_stale",
			"Shards that contributed stale last-good state to the most recent merge."),
		covMissing: reg.Gauge("ldp_fleet_coverage_missing",
			"Shards that contributed nothing to the most recent merge."),
	}
	reg.GaugeFunc("ldp_fleet_members",
		"Registered fleet members.",
		func() float64 {
			f.mu.Lock()
			n := len(f.members)
			f.mu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("ldp_fleet_ready_members",
		"Members currently routable (ready and breaker not open).",
		func() float64 { return float64(f.ReadyCount()) })
	f.fm.Store(m)
}

func (f *Fleet) observeProbe(outcome string) {
	if m := f.fm.Load(); m != nil {
		m.probes.With(outcome).Inc()
	}
}

func (f *Fleet) observeShardReady(endpoint string, ready bool) {
	if m := f.fm.Load(); m != nil {
		v := 0.0
		if ready {
			v = 1
		}
		m.shardReady.With(endpoint).Set(v)
	}
}

func (f *Fleet) observeBreaker(to retry.BreakerState) {
	if m := f.fm.Load(); m != nil {
		m.transitions.With(to.String()).Inc()
	}
}

func (f *Fleet) observeRetry() {
	if m := f.fm.Load(); m != nil {
		m.retries.Inc()
	}
}

func (f *Fleet) observeMerge(outcome string, cov Coverage) {
	m := f.fm.Load()
	if m == nil {
		return
	}
	m.merges.With(outcome).Inc()
	m.covFresh.Set(float64(cov.Fresh))
	m.covStale.Set(float64(cov.Stale))
	m.covMissing.Set(float64(cov.Total - cov.Fresh - cov.Stale))
}

// bindingCap bounds the idempotency-key→shard binding LRU, matching the
// shard-side idempotency cache horizon: a key evicted here would also be
// forgotten by the shard that absorbed it.
const bindingCap = 4096

// keyBindings is a bounded LRU mapping an idempotency key to the shard it
// was first routed to. A keyed request that failed ambiguously (the shard
// may have absorbed it and the response was lost) MUST replay on the same
// shard — any other shard's idempotency cache has never seen the key and
// would absorb a second copy. Only a never-sent key may pick a fresh shard.
type keyBindings struct {
	cap   int
	byKey map[string]*list.Element
	order *list.List // front = most recent; values are *keyBinding
}

type keyBinding struct {
	key      string
	endpoint string
}

func newKeyBindings(capacity int) *keyBindings {
	return &keyBindings{cap: capacity, byKey: make(map[string]*list.Element, capacity), order: list.New()}
}

// get looks a key up and marks it most-recent. Not locked: callers hold f.mu.
func (b *keyBindings) get(key string) (string, bool) {
	el, ok := b.byKey[key]
	if !ok {
		return "", false
	}
	b.order.MoveToFront(el)
	return el.Value.(*keyBinding).endpoint, true
}

func (b *keyBindings) put(key, endpoint string) {
	if el, ok := b.byKey[key]; ok {
		el.Value.(*keyBinding).endpoint = endpoint
		b.order.MoveToFront(el)
		return
	}
	b.byKey[key] = b.order.PushFront(&keyBinding{key: key, endpoint: endpoint})
	for b.order.Len() > b.cap {
		el := b.order.Back()
		b.order.Remove(el)
		delete(b.byKey, el.Value.(*keyBinding).key)
	}
}

func (b *keyBindings) remove(key string) {
	if el, ok := b.byKey[key]; ok {
		b.order.Remove(el)
		delete(b.byKey, key)
	}
}

// FleetOption configures a Fleet.
type FleetOption func(*Fleet)

// WithFleetRetryPolicy sets the retry discipline every member's client uses
// (default DefaultRemoteRetryPolicy). Tests pin it deterministic.
func WithFleetRetryPolicy(p RetryPolicy) FleetOption {
	return func(f *Fleet) { f.policy = p }
}

// WithFleetBreakerPolicy shapes each member's circuit breaker (default: 5
// consecutive failures trip it, 5s cooldown).
func WithFleetBreakerPolicy(p BreakerPolicy) FleetOption {
	return func(f *Fleet) { f.breakerPolicy = p }
}

// WithFleetQuorum sets strict mode: a merge that would cover fewer than q
// shards (fresh + stale) returns a *QuorumError instead of a partial
// snapshot. 0 (the default) serves any non-empty coverage.
func WithFleetQuorum(q int) FleetOption {
	return func(f *Fleet) { f.quorum = q }
}

// WithFleetStaleFallback controls whether an unreachable or circuit-broken
// shard contributes its last-good snapshot to a merge (marked stale in the
// Coverage) or is left out entirely (marked missing). Default true: a
// flapping shard degrades the estimate's freshness, not its coverage.
func WithFleetStaleFallback(on bool) FleetOption {
	return func(f *Fleet) { f.staleFallback = on }
}

// WithFleetUnhealthyAfter sets how many consecutive failed health probes
// gate a member out of ingest routing (default 2). A shard that reports
// itself not-ready is gated immediately regardless.
func WithFleetUnhealthyAfter(n int) FleetOption {
	return func(f *Fleet) {
		if n > 0 {
			f.unhealthyAfter = n
		}
	}
}

// WithFleetHTTPClient substitutes the http.Client every member's transport
// uses (timeouts, test doubles).
func WithFleetHTTPClient(hc *http.Client) FleetOption {
	return func(f *Fleet) { f.hc = hc }
}

// WithFleetRemoteOptions appends extra options (batch size, etc.) to every
// member's RemoteCollector. The fleet's retry policy and HTTP client are
// applied first, so these can override them per deployment if needed.
func WithFleetRemoteOptions(opts ...RemoteOption) FleetOption {
	return func(f *Fleet) { f.remoteOpts = append(f.remoteOpts, opts...) }
}

// WithFleetBindingLog persists the idempotency-key→shard binding LRU through
// an append-only log at path: NewFleet replays it (latest bind per key wins,
// torn tail dropped), and every fresh bind is fsynced before its batch is
// forwarded. Without it the bindings are in-memory only, and a keyed retry
// that crosses a router restart may route to a different shard — whose
// idempotency cache never saw the key — and double-absorb.
func WithFleetBindingLog(path string) FleetOption {
	return func(f *Fleet) { f.bindingLogPath = path }
}

// NewFleet prepares an empty fleet aggregating under agg's mechanism and
// answering w. Register shards with Register; route with IngestBatch; read
// with Snap.
func NewFleet(agg Aggregator, w Workload, opts ...FleetOption) (*Fleet, error) {
	if agg == nil {
		return nil, errors.New("ldp: nil aggregator")
	}
	f := &Fleet{
		agg:            agg,
		w:              w,
		info:           MechanismInfoOf(agg),
		policy:         DefaultRemoteRetryPolicy(),
		staleFallback:  true,
		unhealthyAfter: 2,
		members:        make(map[string]*fleetMember),
		bindings:       newKeyBindings(bindingCap),
	}
	for _, o := range opts {
		o(f)
	}
	if f.bindingLogPath != "" {
		log, bindings, err := durable.OpenBindingLog(f.bindingLogPath, true)
		if err != nil {
			return nil, fmt.Errorf("ldp: open binding log: %w", err)
		}
		f.bindingLog = log
		// Replay oldest-first so LRU recency matches the pre-restart order.
		for _, b := range bindings {
			f.bindings.put(b.Key, b.Endpoint)
		}
	}
	return f, nil
}

// Close releases the fleet's durable resources (the binding log, when
// configured). In-flight forwards finish on their own; Close is for process
// shutdown after the HTTP tier has drained.
func (f *Fleet) Close() error {
	f.mu.Lock()
	log := f.bindingLog
	f.bindingLog = nil
	f.mu.Unlock()
	if log != nil {
		return log.Close()
	}
	return nil
}

// Info returns the mechanism identity the fleet aggregates under.
func (f *Fleet) Info() MechanismInfo { return f.info }

// Register adds a shard endpoint to the fleet after a mechanism-identity
// handshake. A mismatched mechanism is a definitive configuration error and
// the shard is refused; an unreachable shard is admitted not-ready (it may
// be booting or recovering) and verified on first successful contact — the
// snapshot path re-checks identity on every fetch regardless, so an
// unverified shard can never poison a merge. Registering an endpoint twice
// is a no-op.
func (f *Fleet) Register(ctx context.Context, endpoint string) error {
	f.mu.Lock()
	if _, ok := f.members[endpoint]; ok {
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()

	rc, err := NewRemoteCollector(endpoint, f.agg, f.w, f.remoteOptions()...)
	if err != nil {
		return err
	}
	bp := f.breakerPolicy
	prevChange := bp.OnStateChange
	bp.OnStateChange = func(from, to retry.BreakerState) {
		f.observeBreaker(to)
		if prevChange != nil {
			prevChange(from, to)
		}
	}
	m := &fleetMember{
		endpoint: endpoint,
		rc:       rc,
		breaker:  retry.NewBreaker(bp),
	}
	if err := rc.Verify(ctx, f.info.Mechanism, f.info.Epsilon, f.info.Digest); err != nil {
		var se *StatusError
		if errors.As(err, &se) && !se.Temporary() || isMismatch(err) {
			// The shard answered and it is the wrong mechanism: refuse.
			return fmt.Errorf("ldp: register %s: %w", endpoint, err)
		}
		// Unreachable: admit gated-out; the probe loop brings it in when it
		// comes up and verifies then.
		m.setReady(false, "unreachable at registration")
	} else {
		m.mu.Lock()
		m.ready, m.verified = true, true
		m.mu.Unlock()
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[endpoint]; ok {
		return nil // lost a registration race; keep the winner
	}
	f.members[endpoint] = m
	f.order = append(f.order, endpoint)
	return nil
}

// retryPolicy returns the fleet's forward-retry policy with the metrics
// observer chained in: each backoff pause counts one forward retry.
func (f *Fleet) retryPolicy() retry.Policy {
	pol := f.policy
	prev := pol.OnRetry
	pol.OnRetry = func(attempt int, err error) {
		f.observeRetry()
		if prev != nil {
			prev(attempt, err)
		}
	}
	return pol
}

// remoteOptions assembles the per-member client options.
func (f *Fleet) remoteOptions() []RemoteOption {
	opts := []RemoteOption{WithRemoteRetryPolicy(f.retryPolicy())}
	if f.hc != nil {
		opts = append(opts, WithRemoteHTTPClient(f.hc))
	}
	return append(opts, f.remoteOpts...)
}

// isMismatch reports whether err is the Verify handshake's identity
// rejection (as opposed to the shard being unreachable): the shard answered
// and declared a different mechanism or domain.
func isMismatch(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "different mechanism configuration") ||
		strings.Contains(msg, "local mechanism domain")
}

// Deregister removes a shard from membership. Reports still queued in its
// client are dropped with it — deregistration is the operator's statement
// that the shard is gone, not a health event (health gating handles those).
// It reports whether the endpoint was a member.
func (f *Fleet) Deregister(endpoint string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[endpoint]; !ok {
		return false
	}
	delete(f.members, endpoint)
	f.observeShardReady(endpoint, false)
	for i, ep := range f.order {
		if ep == endpoint {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if f.next >= len(f.order) {
		f.next = 0
	}
	return true
}

// Gate forces the member at endpoint out of ingest routing until Ungate,
// regardless of what its readiness probes say — the drain hook an operator
// (or a load scenario) drives to take a healthy shard out of rotation while
// leaving it registered, mergeable, and serving reads. Reason is surfaced in
// MemberState.Reason. Returns false for an unregistered endpoint.
func (f *Fleet) Gate(endpoint, reason string) bool {
	f.mu.Lock()
	m, ok := f.members[endpoint]
	f.mu.Unlock()
	if !ok {
		return false
	}
	if reason == "" {
		reason = "gated by operator"
	}
	m.mu.Lock()
	m.gated, m.gateReason = true, reason
	m.ready, m.reason = false, reason
	m.mu.Unlock()
	return true
}

// Ungate lifts a Gate. The member re-enters routing immediately when its
// mechanism handshake already succeeded; otherwise the next probe re-admits
// it the usual way. Returns false for an unregistered endpoint.
func (f *Fleet) Ungate(endpoint string) bool {
	f.mu.Lock()
	m, ok := f.members[endpoint]
	f.mu.Unlock()
	if !ok {
		return false
	}
	m.mu.Lock()
	m.gated, m.gateReason = false, ""
	if m.verified {
		m.ready, m.reason = true, ""
	}
	m.mu.Unlock()
	return true
}

// list snapshots the membership in registration order.
func (f *Fleet) list() []*fleetMember {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*fleetMember, 0, len(f.order))
	for _, ep := range f.order {
		out = append(out, f.members[ep])
	}
	return out
}

// Probe runs one health round: every member's readiness endpoint is asked
// (concurrently), the gate updates — a shard reporting not-ready (draining,
// recovering) is gated out immediately, an unreachable one after
// UnhealthyAfter consecutive failures, a recovered one is re-admitted and
// verified if registration never managed to. Call it on an interval; the
// fleet does not poll on its own.
func (f *Fleet) Probe(ctx context.Context) []MemberState {
	members := f.list()
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *fleetMember) {
			defer wg.Done()
			f.probeMember(ctx, m)
		}(m)
	}
	wg.Wait()
	return f.Members()
}

func (f *Fleet) probeMember(ctx context.Context, m *fleetMember) {
	ready, reason, err := m.rc.Readyz(ctx)
	outcome := "ready"
	switch {
	case err != nil:
		outcome = "unreachable"
	case !ready:
		outcome = "not_ready"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Registered after the unlock defer, so this runs before it (LIFO) and
	// reads the member's settled routing state under its lock.
	defer func() {
		f.observeProbe(outcome)
		f.observeShardReady(m.endpoint, m.ready)
	}()
	switch {
	case err != nil:
		m.probeFails++
		if m.probeFails >= f.unhealthyAfter {
			m.ready, m.reason = false, fmt.Sprintf("unreachable (%d consecutive probe failures): %v", m.probeFails, err)
		}
	case !ready:
		// The shard said so itself: gate immediately, no threshold.
		m.probeFails = 0
		m.ready, m.reason = false, reason
	default:
		m.probeFails = 0
		if m.gated {
			// A manual gate outlasts probe rounds: the shard is healthy but an
			// operator (or a load scenario) is holding it out of routing.
			m.ready, m.reason = false, m.gateReason
			return
		}
		m.ready, m.reason = true, ""
		if !m.verified {
			// First successful contact with a shard admitted unreachable:
			// complete the handshake before routing to it.
			m.mu.Unlock()
			verr := m.rc.Verify(ctx, f.info.Mechanism, f.info.Epsilon, f.info.Digest)
			m.mu.Lock()
			if verr != nil {
				m.ready, m.reason = false, fmt.Sprintf("mechanism handshake failed: %v", verr)
			} else {
				m.verified = true
			}
		}
	}
}

// Epochs polls every member's cheap /healthz (count, epoch) view
// concurrently and returns endpoint→epoch for the members that answered —
// the inexpensive "did anything change" round a watcher runs between full
// snapshot merges. Unreachable members are simply absent from the map; a
// flapping shard makes the round partial, not failed.
func (f *Fleet) Epochs(ctx context.Context) map[string]uint64 {
	members := f.list()
	type probe struct {
		epoch uint64
		ok    bool
	}
	out := make([]probe, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *fleetMember) {
			defer wg.Done()
			if h, err := m.rc.Healthz(ctx); err == nil {
				out[i] = probe{h.Epoch, true}
			}
		}(i, m)
	}
	wg.Wait()
	res := make(map[string]uint64, len(members))
	for i, p := range out {
		if p.ok {
			res[members[i].endpoint] = p.epoch
		}
	}
	return res
}

// Members reports every member's health-gate state in registration order.
func (f *Fleet) Members() []MemberState {
	members := f.list()
	out := make([]MemberState, 0, len(members))
	for _, m := range members {
		m.mu.Lock()
		st := MemberState{
			Endpoint: m.endpoint,
			Ready:    m.ready,
			Reason:   m.reason,
			Breaker:  m.breaker.State().String(),
			Verified: m.verified,
		}
		if m.hasLastGood {
			st.LastEpoch, st.LastCount = m.lastGood.Epoch(), m.lastGood.Count()
		}
		m.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// ReadyCount returns how many members are currently routable.
func (f *Fleet) ReadyCount() int {
	n := 0
	for _, m := range f.list() {
		if f.routable(m) {
			n++
		}
	}
	return n
}

// routable reports whether ingest may be routed to m right now.
func (f *Fleet) routable(m *fleetMember) bool {
	m.mu.Lock()
	ready := m.ready
	m.mu.Unlock()
	return ready && m.breaker.State() != retry.BreakerOpen
}

// pick chooses the next routable member round-robin, or nil.
func (f *Fleet) pick() *fleetMember {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pickLocked()
}

func (f *Fleet) pickLocked() *fleetMember {
	n := len(f.order)
	for i := 0; i < n; i++ {
		m := f.members[f.order[(f.next+i)%n]]
		m.mu.Lock()
		ready := m.ready
		m.mu.Unlock()
		if ready && m.breaker.State() != retry.BreakerOpen {
			f.next = (f.next + i + 1) % n
			return m
		}
	}
	return nil
}

// IngestBatch routes one batch of reports to a live shard. The batch becomes
// the chosen member's responsibility: its client carves it into keyed
// batches, retries transient failures with backoff under the same keys, and
// keeps anything unacknowledged queued against that shard — so a retry after
// an ambiguous failure (response lost mid-crash) replays on the SAME shard
// and stays exactly-once, instead of double-absorbing on a neighbor. A later
// FlushAll (or the next IngestBatch that picks this member) resumes the
// queue; a batch is never silently dropped.
func (f *Fleet) IngestBatch(ctx context.Context, reports []Report) error {
	m := f.pick()
	if m == nil {
		return ErrNoReadyShards
	}
	err := m.rc.IngestBatch(ctx, reports)
	if err != nil {
		m.breaker.Failure()
		return fmt.Errorf("ldp: shard %s: %w", m.endpoint, err)
	}
	m.breaker.Success()
	return nil
}

// bindMember resolves the shard a keyed request must go to: the one the key
// is bound to if it was ever forwarded (even if that shard is currently
// gated out or circuit-broken — replay safety beats availability), otherwise
// the next routable member, binding the key to it atomically. An unkeyed
// request just rotates. Returns nil when a fresh key has no routable shard.
func (f *Fleet) bindMember(key string) (*fleetMember, error) {
	if key == "" {
		return f.pick(), nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep, ok := f.bindings.get(key); ok {
		if m, ok := f.members[ep]; ok {
			return m, nil
		}
		// The bound shard was deregistered — the operator declared it gone,
		// taking its idempotency history with it. Rebind.
		f.bindings.remove(key)
	}
	m := f.pickLocked()
	if m != nil {
		if f.bindingLog != nil {
			// Persist before the forward can ship: an unlogged bind that
			// crossed a restart would let a retry land on a different shard
			// and double-absorb. The fsync happens under f.mu, but only once
			// per fresh key — replays and unkeyed traffic never pay it.
			if err := f.bindingLog.Append(durable.Binding{Key: key, Endpoint: m.endpoint}); err != nil {
				return nil, fmt.Errorf("ldp: persist key binding: %w", err)
			}
		}
		f.bindings.put(key, m.endpoint)
	}
	return m, nil
}

// IngestKeyed forwards one already-keyed batch — a request arriving at a
// router from a remote client — to a shard, preserving the client's
// idempotency key end to end. The first forward of a key binds it to the
// chosen shard; every retry (the client's or this call's internal backoff)
// replays on that same shard, where the key is remembered, so an ambiguous
// failure can never double-absorb on a neighbor. It returns the shard's
// accepted count; the error, if any, carries the shard's *StatusError for
// status relay (or ErrNoReadyShards when a fresh key had nowhere to go).
func (f *Fleet) IngestKeyed(ctx context.Context, reports []Report, key string) (int, error) {
	m, err := f.bindMember(key)
	if err != nil {
		// The binding could not be made durable; refuse the forward as
		// retryable rather than absorb under a bind a restart would forget.
		return 0, err
	}
	if m == nil {
		return 0, ErrNoReadyShards
	}
	var accepted int
	err = retry.Do(ctx, f.retryPolicy(), func(actx context.Context) error {
		a, perr := m.rc.client.PostReportsKeyed(actx, reports, key)
		accepted = a
		return classifyTransportErr(perr)
	})
	if err != nil {
		m.breaker.Failure()
		return accepted, fmt.Errorf("ldp: shard %s: %w", m.endpoint, err)
	}
	m.breaker.Success()
	return accepted, nil
}

// FlushAll ships every member's queued reports (concurrently), joining the
// failures. Reports queued against a shard that is still down stay queued —
// call FlushAll again once it recovers; keys make the replay exact.
func (f *Fleet) FlushAll(ctx context.Context) error {
	members := f.list()
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *fleetMember) {
			defer wg.Done()
			if err := m.rc.Flush(ctx); err != nil {
				m.breaker.Failure()
				errs[i] = fmt.Errorf("ldp: shard %s: %w", m.endpoint, err)
			} else {
				m.breaker.Success()
			}
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Snap merges the fleet into one Snapshot with graceful degradation. Every
// member is asked concurrently (members with open breakers are not even
// asked — that is the point of the breaker); a member that answers
// contributes fresh state and refreshes its last-good snapshot, a member
// that fails contributes its last-good snapshot (marked stale) when the
// fallback is enabled, and otherwise is reported missing with the last-good
// epoch and count the estimate now lacks. The returned Coverage says exactly
// what the Snapshot covers; it is never silently partial.
//
// In strict mode (WithFleetQuorum) a merge covering fewer shards than the
// quorum returns *QuorumError. A fleet with no members, or one where nothing
// at all contributed, returns an error rather than a zero snapshot.
func (f *Fleet) Snap(ctx context.Context) (Snapshot, Coverage, error) {
	members := f.list()
	cov := Coverage{Total: len(members), Shards: make([]ShardCoverage, len(members))}
	if len(members) == 0 {
		return Snapshot{}, cov, errors.New("ldp: fleet has no members")
	}

	type result struct {
		snap Snapshot
		ok   bool
	}
	results := make([]result, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *fleetMember) {
			defer wg.Done()
			sc := ShardCoverage{Endpoint: m.endpoint}
			var snap Snapshot
			var err error
			if berr := m.breaker.Allow(); berr != nil {
				err = berr
			} else if snap, err = m.rc.Snap(ctx); err == nil {
				m.breaker.Success()
				m.mu.Lock()
				m.lastGood, m.hasLastGood = snap, true
				m.mu.Unlock()
				sc.Status, sc.Epoch, sc.Count = CoverageFresh, snap.Epoch(), snap.Count()
				results[i] = result{snap, true}
				cov.Shards[i] = sc
				return
			} else {
				m.breaker.Failure()
			}
			// Degraded path: stale fallback or an honest gap.
			sc.Err = err.Error()
			m.mu.Lock()
			hasLast, last := m.hasLastGood, m.lastGood
			m.mu.Unlock()
			if f.staleFallback && hasLast {
				sc.Status, sc.Epoch, sc.Count = CoverageStale, last.Epoch(), last.Count()
				results[i] = result{last, true}
			} else {
				sc.Status = CoverageMissing
				if hasLast {
					sc.Epoch, sc.Count = last.Epoch(), last.Count()
				}
			}
			cov.Shards[i] = sc
		}(i, m)
	}
	wg.Wait()

	var snaps []Snapshot
	for i := range results {
		if results[i].ok {
			snaps = append(snaps, results[i].snap)
			if cov.Shards[i].Status == CoverageFresh {
				cov.Fresh++
			} else {
				cov.Stale++
			}
		}
	}
	if len(snaps) == 0 {
		f.observeMerge("empty", cov)
		return Snapshot{}, cov, fmt.Errorf("ldp: no shard contributed a snapshot (%s)", cov)
	}
	if f.quorum > 0 && len(snaps) < f.quorum {
		f.observeMerge("quorum_refused", cov)
		return Snapshot{}, cov, &QuorumError{Merged: len(snaps), Quorum: f.quorum, Coverage: cov}
	}
	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		f.observeMerge("error", cov)
		return Snapshot{}, cov, err
	}
	if cov.Complete() {
		f.observeMerge("complete", cov)
	} else {
		f.observeMerge("degraded", cov)
	}
	return merged, cov, nil
}

// SnapAt merges the fleet's retained history as of epoch: every member is
// asked (concurrently) for the newest epoch it retains at or below the
// requested one — members checkpoint on their own schedules, so floor
// semantics are the only ones that exist fleet-wide — and the answers merge
// into one historical Snapshot. The per-shard Coverage carries the epoch each
// member actually served, so the caller can see how ragged the cut is.
//
// Unlike Snap there is no stale fallback: a last-good LIVE snapshot is from
// the wrong point in time, and merging it would silently shift the window.
// A member that cannot answer (unreachable, breaker open, no history, epoch
// not retained) is reported missing with the error. Quorum applies as in
// Snap; a fleet where nothing answered returns an error.
func (f *Fleet) SnapAt(ctx context.Context, epoch uint64) (Snapshot, Coverage, error) {
	members := f.list()
	cov := Coverage{Total: len(members), Shards: make([]ShardCoverage, len(members))}
	if len(members) == 0 {
		return Snapshot{}, cov, errors.New("ldp: fleet has no members")
	}

	type result struct {
		snap Snapshot
		ok   bool
	}
	results := make([]result, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *fleetMember) {
			defer wg.Done()
			sc := ShardCoverage{Endpoint: m.endpoint}
			var snap Snapshot
			var err error
			if berr := m.breaker.Allow(); berr != nil {
				err = berr
			} else if snap, err = m.rc.SnapAtNearest(ctx, epoch); err == nil {
				m.breaker.Success()
				sc.Status, sc.Epoch, sc.Count = CoverageFresh, snap.Epoch(), snap.Count()
				results[i] = result{snap, true}
				cov.Shards[i] = sc
				return
			} else {
				// A definitive answer ("epoch not retained", "no history")
				// means the shard is alive and talking — only transport-level
				// failure counts against its breaker.
				var se *StatusError
				if errors.As(err, &se) && !se.Temporary() {
					m.breaker.Success()
				} else {
					m.breaker.Failure()
				}
			}
			sc.Status, sc.Err = CoverageMissing, err.Error()
			cov.Shards[i] = sc
		}(i, m)
	}
	wg.Wait()

	var snaps []Snapshot
	for i := range results {
		if results[i].ok {
			snaps = append(snaps, results[i].snap)
			cov.Fresh++
		}
	}
	if len(snaps) == 0 {
		f.observeMerge("empty", cov)
		return Snapshot{}, cov, fmt.Errorf("ldp: no shard contributed a historical snapshot at epoch %d (%s)", epoch, cov)
	}
	if f.quorum > 0 && len(snaps) < f.quorum {
		f.observeMerge("quorum_refused", cov)
		return Snapshot{}, cov, &QuorumError{Merged: len(snaps), Quorum: f.quorum, Coverage: cov}
	}
	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		f.observeMerge("error", cov)
		return Snapshot{}, cov, err
	}
	if cov.Complete() {
		f.observeMerge("complete", cov)
	} else {
		f.observeMerge("degraded", cov)
	}
	return merged, cov, nil
}
