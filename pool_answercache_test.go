// Regression tests for the pool's snapshot-pinned answer cache: a repeated
// AnswerBatch over the same snapshot is served from cache byte-identically,
// and the moment the snapshot advances (new epoch from the same collector)
// the cached answers are invalidated, never served stale.
package ldp_test

import (
	"math/rand"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

func answerCacheFixture(t *testing.T) (ldp.Aggregator, *ldp.Collector, reportSource, *rand.Rand) {
	t.Helper()
	const n = 16
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(n, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, ldp.Histogram(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	return agg, col, randomizerFor(t, agg), rand.New(rand.NewSource(11))
}

func ingestAnswerReports(t *testing.T, col *ldp.Collector, rz reportSource, rng *rand.Rand, users, n int) {
	t.Helper()
	for i := 0; i < users; i++ {
		rep, err := rz.Randomize(rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnswerCacheHitAndEpochInvalidation(t *testing.T) {
	const n = 16
	agg, col, rz, rng := answerCacheFixture(t)
	pool := ldp.NewEstimatorPool()
	workloads := []ldp.Workload{ldp.Histogram(n), ldp.Prefix(n)}

	ingestAnswerReports(t, col, rz, rng, 4000, n)
	snap1 := col.Snap()

	first, err := pool.AnswerBatch(agg, snap1, workloads, ldp.WithBatchVariance())
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.AnswerHits != 0 {
		t.Fatalf("cold batch reported %d answer hits", st.AnswerHits)
	}

	// Same snapshot again: every workload served from cache, byte-identical.
	second, err := pool.AnswerBatch(agg, snap1, workloads, ldp.WithBatchVariance())
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.AnswerHits != uint64(len(workloads)) {
		t.Fatalf("warm batch: AnswerHits=%d, want %d", st.AnswerHits, len(workloads))
	}
	for i := range first {
		if len(first[i].Answers) != len(second[i].Answers) {
			t.Fatalf("workload %d: answer lengths differ", i)
		}
		for j := range first[i].Answers {
			if first[i].Answers[j] != second[i].Answers[j] {
				t.Fatalf("workload %d answer %d: cached %v != computed %v", i, j, second[i].Answers[j], first[i].Answers[j])
			}
		}
		for j := range first[i].Variance {
			if first[i].Variance[j] != second[i].Variance[j] {
				t.Fatalf("workload %d variance %d: cached %v != computed %v", i, j, second[i].Variance[j], first[i].Variance[j])
			}
		}
	}
	// Cached slices are copies: mutating a result must not poison the cache.
	second[0].Answers[0] += 1e6
	third, err := pool.AnswerBatch(agg, snap1, workloads[:1], ldp.WithBatchVariance())
	if err != nil {
		t.Fatal(err)
	}
	if third[0].Answers[0] == second[0].Answers[0] {
		t.Fatal("caller mutation leaked into the answer cache")
	}

	// A variance-less batch is a distinct cache key, not a hit on the
	// variance entry.
	noVar, err := pool.AnswerBatch(agg, snap1, workloads[:1])
	if err != nil {
		t.Fatal(err)
	}
	if noVar[0].Variance != nil {
		t.Fatal("variance-less batch returned cached variances")
	}

	// Epoch advance: new reports, new snapshot — the cache must invalidate
	// and recompute, not serve the stale answers.
	ingestAnswerReports(t, col, rz, rng, 4000, n)
	snap2 := col.Snap()
	if snap2.Epoch() == snap1.Epoch() {
		t.Fatalf("collector did not advance the epoch: %d", snap2.Epoch())
	}
	hitsBefore := pool.Stats().AnswerHits
	fresh, err := pool.AnswerBatch(agg, snap2, workloads, ldp.WithBatchVariance())
	if err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.AnswerHits != hitsBefore {
		t.Fatalf("batch over the advanced snapshot hit the stale cache (%d → %d hits)", hitsBefore, st.AnswerHits)
	}
	if st.AnswerInvalidations == 0 {
		t.Fatal("epoch advance did not invalidate the cached answers")
	}
	same := true
	for j := range fresh[0].Answers {
		if fresh[0].Answers[j] != first[0].Answers[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("answers over 8k reports identical to answers over 4k: stale cache served")
	}

	// And the new snapshot now caches in its own right.
	if _, err := pool.AnswerBatch(agg, snap2, workloads, ldp.WithBatchVariance()); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().AnswerHits; got != hitsBefore+uint64(len(workloads)) {
		t.Fatalf("re-batch over the new snapshot: AnswerHits=%d, want %d", got, hitsBefore+uint64(len(workloads)))
	}
}
