// Acceptance tests for the epoch-history subsystem: time-travel reads must be
// bit-identical to what the live read path served at the same epoch, windowed
// estimates over Diff(SnapAt(e2), SnapAt(e1)) must land inside the mechanism's
// statistical envelope for exactly the reports of the window, and the same
// guarantees must survive the HTTP transport, the fleet merge, and a restart.
package ldp_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/transport"
)

// historyCollector builds a durable collector with an aggressive retention
// ladder (full resolution 2, so coarsening kicks in after a handful of
// checkpoints).
func historyCollector(t *testing.T, dir string, agg ldp.Aggregator, w ldp.Workload) *ldp.Collector {
	t.Helper()
	col, err := ldp.NewCollector(agg, w, 0,
		ldp.WithDurability(dir, ldp.CheckpointEvery(0), ldp.HistoryKeep(2)))
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// The tentpole's core acceptance: for every mechanism family, SnapAt(e) over a
// live, still-ingesting durable collector is bit-identical in (state, count,
// identity) — and exact in epoch — to the snapshot Snap served when epoch e
// was current, for every retained epoch; and the identical history is served
// again after a restart. An epoch the ladder coarsened away is a definitive
// typed miss, and the nearest (floor) read serves the newest retained epoch
// at or below it.
func TestSnapAtBitIdenticalPerRetainedEpoch(t *testing.T) {
	const n, rounds, perRound = 16, 8, 150
	w := ldp.Histogram(n)
	for name, m := range e2eMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			col := historyCollector(t, dir, m.agg, w)
			closed := false
			defer func() {
				if !closed {
					col.Close()
				}
			}()

			rng := rand.New(rand.NewSource(11))
			ingest := func(count int) {
				t.Helper()
				for i := 0; i < count; i++ {
					rep, err := m.rz.Randomize(rng.Intn(n), rng)
					if err != nil {
						t.Fatal(err)
					}
					if err := col.Ingest(rep); err != nil {
						t.Fatal(err)
					}
				}
			}

			liveAt := make(map[uint64]ldp.Snapshot)
			var epochs []uint64 // checkpointed epochs, oldest first
			for r := 0; r < rounds; r++ {
				ingest(perRound)
				snap := col.Snap()
				liveAt[snap.Epoch()] = snap
				epochs = append(epochs, snap.Epoch())
				if err := col.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}

			// The collector stays LIVE while history is read: a background
			// ingester keeps reports flowing the whole time.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				brng := rand.New(rand.NewSource(99))
				for {
					select {
					case <-stop:
						return
					default:
					}
					rep, err := m.rz.Randomize(brng.Intn(n), brng)
					if err != nil {
						return
					}
					_ = col.Ingest(rep)
				}
			}()

			retained := col.RetainedEpochs()
			if len(retained) < 2 || len(retained) >= rounds {
				t.Fatalf("retention ladder did not coarsen %d checkpoints: retained %v", rounds, retained)
			}
			retainedSet := make(map[uint64]bool, len(retained))
			for _, e := range retained {
				retainedSet[e] = true
			}
			for _, e := range retained {
				want, ok := liveAt[e]
				if !ok {
					t.Fatalf("retained epoch %d was never served live", e)
				}
				got, err := col.SnapAt(e)
				if err != nil {
					t.Fatalf("SnapAt(%d): %v", e, err)
				}
				if got.Epoch() != e {
					t.Fatalf("SnapAt(%d) served epoch %d", e, got.Epoch())
				}
				requireSnapEqual(t, fmt.Sprintf("SnapAt(%d)", e), got, want)
			}

			// A coarsened-away epoch: definitive typed miss, floor read works.
			var coarsened uint64
			for _, e := range epochs {
				if !retainedSet[e] && e > retained[0] {
					coarsened = e
					break
				}
			}
			if coarsened == 0 {
				t.Fatalf("no coarsened epoch above the oldest retained one in %v / %v", epochs, retained)
			}
			_, err := col.SnapAt(coarsened)
			var enr *transport.EpochNotRetainedError
			if !errors.As(err, &enr) {
				t.Fatalf("SnapAt(%d) = %v, want EpochNotRetainedError", coarsened, err)
			}
			if enr.Requested != coarsened || enr.Oldest != retained[0] || enr.Newest != retained[len(retained)-1] {
				t.Fatalf("miss detail %+v for retained %v", enr, retained)
			}
			near, err := col.SnapAtNearest(coarsened)
			if err != nil {
				t.Fatalf("SnapAtNearest(%d): %v", coarsened, err)
			}
			if near.Epoch() != enr.Nearest || near.Epoch() > coarsened || !retainedSet[near.Epoch()] {
				t.Fatalf("SnapAtNearest(%d) served epoch %d (nearest %d, retained %v)",
					coarsened, near.Epoch(), enr.Nearest, retained)
			}
			requireSnapEqual(t, "SnapAtNearest", near, liveAt[near.Epoch()])

			close(stop)
			wg.Wait()
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
			closed = true

			// A restarted collector serves the same history bit-identically.
			col2 := historyCollector(t, dir, m.agg, w)
			defer col2.Close()
			for _, e := range retained {
				got, err := col2.SnapAt(e)
				if err != nil {
					t.Fatalf("reopened SnapAt(%d): %v", e, err)
				}
				if got.Epoch() != e {
					t.Fatalf("reopened SnapAt(%d) served epoch %d", e, got.Epoch())
				}
				requireSnapEqual(t, fmt.Sprintf("reopened SnapAt(%d)", e), got, liveAt[e])
			}
		})
	}
}

// The windowed-estimation acceptance: the estimate over the window
// (e1, e2] — Diff of two retained snapshots — must reconstruct exactly the
// reports that arrived in that window, landing inside the mechanism's 6σ
// per-cell envelope around the window's true histogram, with reports before
// e1 and after e2 contributing nothing. Envelopes follow accept_test.go:
// Theorem 3.4 variances for the strategy mechanism, N·VariancePerUser
// (inflated by varSlack) for the oracles, both scaled to the WINDOW's report
// count rather than the collector's lifetime total.
func TestWindowEstimateWithinEnvelope(t *testing.T) {
	const (
		n           = 32
		windowUsers = 20000
		preUsers    = 8000
		postUsers   = 5000
	)
	w := ldp.Histogram(n)

	// The window's true histogram: the acceptance fixture shape (half the
	// mass on type 0, geometrically decaying) scaled to windowUsers.
	xB := make([]float64, n)
	remaining := float64(windowUsers)
	share := 0.5
	for v := 0; v < n-1; v++ {
		c := math.Floor(float64(windowUsers) * share)
		if c > remaining {
			c = remaining
		}
		xB[v] = c
		remaining -= c
		share /= 2
		if share < 1.0/float64(windowUsers) {
			break
		}
	}
	xB[n-1] += remaining

	type windowCase struct {
		name      string
		rz        ldp.Randomizer
		agg       ldp.Aggregator
		cellSigma float64
	}
	var cases []windowCase
	s := benchfix.RRStrategy(n, 1.0)
	rz, err := ldp.NewRandomizer(s)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := s.Variances(w.Gram(), w.Queries())
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, windowCase{"strategy-rr", rz, agg, math.Sqrt(vp.OnData(xB))})
	for _, name := range []string{"OUE", "OLH", "RAPPOR"} {
		o, err := ldp.OracleByName(name, n, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, windowCase{name, o, o, math.Sqrt(float64(windowUsers) * o.VariancePerUser() * varSlack)})
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			col, err := ldp.NewCollector(c.agg, w, 0,
				ldp.WithDurability(dir, ldp.CheckpointEvery(0), ldp.HistoryKeep(4)))
			if err != nil {
				t.Fatal(err)
			}
			defer col.Close()
			est, err := ldp.NewEstimator(c.agg, w)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(acceptSeed))
			ingestUniform := func(count int) {
				t.Helper()
				for i := 0; i < count; i++ {
					rep, err := c.rz.Randomize(rng.Intn(n), rng)
					if err != nil {
						t.Fatal(err)
					}
					if err := col.Ingest(rep); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Preamble OUTSIDE the window, then the e1 checkpoint.
			ingestUniform(preUsers)
			e1 := col.Snap().Epoch()
			if err := col.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// The window's reports: exactly xB.
			for v := range xB {
				for j := 0; j < int(xB[v]); j++ {
					rep, err := c.rz.Randomize(v, rng)
					if err != nil {
						t.Fatal(err)
					}
					if err := col.Ingest(rep); err != nil {
						t.Fatal(err)
					}
				}
			}
			e2 := col.Snap().Epoch()
			if err := col.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Postamble after the window: must not leak in either.
			ingestUniform(postUsers)

			s1, err := col.SnapAt(e1)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := col.SnapAt(e2)
			if err != nil {
				t.Fatal(err)
			}
			if got := s2.Count() - s1.Count(); got != windowUsers {
				t.Fatalf("window holds %v reports, want %d", got, windowUsers)
			}
			xhat, err := est.WindowEstimate(s2, s1)
			if err != nil {
				t.Fatal(err)
			}

			cellBound := zSigma * c.cellSigma
			var sum float64
			for v := range xB {
				sum += xhat[v]
				if d := xhat[v] - xB[v]; math.Abs(d) > cellBound {
					t.Errorf("window count[%d] estimate %.1f is %.1f off the truth %.0f — outside the %.1f envelope",
						v, xhat[v], d, xB[v], cellBound)
				}
			}
			// Total mass tracks the window's N: leakage from the pre/post
			// populations would shift the sum by thousands.
			if math.Abs(sum-windowUsers) > zSigma*math.Sqrt(float64(n))*c.cellSigma {
				t.Errorf("window total %.1f drifts from the true %d reports", sum, windowUsers)
			}
			t.Logf("%s: window of %d inside ±%.1f per cell (total %.1f)", c.name, windowUsers, cellBound, sum)
		})
	}
}

// The HTTP path end to end: GET /snapshot?epoch= through a real loopback
// server serves each retained epoch bit-identically to what the live Snap
// returned over the same wire, a coarsened epoch is a definitive 404 naming
// the retained range, nearest=1 floors, and none of it disturbs the live
// read path's epoch high-water mark.
func TestRemoteSnapAtEndToEnd(t *testing.T) {
	const n, rounds, perRound = 16, 8, 80
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["strategy"]
	dir := t.TempDir()
	col := historyCollector(t, dir, m.agg, w)
	defer col.Close()
	handler, err := ldp.NewCollectorServer(col, ldp.ServerInfo{
		Mechanism: "strategy", Domain: m.agg.Domain(), Epsilon: m.rz.Epsilon(), Digest: m.digest,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(handler)
	defer hs.Close()
	rc, err := ldp.NewRemoteCollector(hs.URL, m.agg, w, ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rng := rand.New(rand.NewSource(5))
	liveAt := make(map[uint64]ldp.Snapshot)
	var epochs []uint64
	for r := 0; r < rounds; r++ {
		var reports []ldp.Report
		for i := 0; i < perRound; i++ {
			rep, err := m.rz.Randomize(rng.Intn(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, rep)
		}
		if err := rc.IngestBatch(ctx, reports); err != nil {
			t.Fatal(err)
		}
		if err := rc.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		snap, err := rc.Snap(ctx)
		if err != nil {
			t.Fatal(err)
		}
		liveAt[snap.Epoch()] = snap
		epochs = append(epochs, snap.Epoch())
		if err := col.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	retained := col.RetainedEpochs()
	if len(retained) < 2 || len(retained) >= rounds {
		t.Fatalf("retention did not coarsen: %v", retained)
	}
	retainedSet := make(map[uint64]bool, len(retained))
	for _, e := range retained {
		retainedSet[e] = true
	}
	for _, e := range retained {
		want, ok := liveAt[e]
		if !ok {
			t.Fatalf("retained epoch %d was never observed live over HTTP", e)
		}
		got, err := rc.SnapAt(ctx, e)
		if err != nil {
			t.Fatalf("remote SnapAt(%d): %v", e, err)
		}
		if got.Epoch() != e {
			t.Fatalf("remote SnapAt(%d) served epoch %d", e, got.Epoch())
		}
		requireSnapEqual(t, fmt.Sprintf("remote SnapAt(%d)", e), got, want)
	}

	var coarsened uint64
	for _, e := range epochs {
		if !retainedSet[e] && e > retained[0] {
			coarsened = e
			break
		}
	}
	if coarsened == 0 {
		t.Fatalf("no coarsened epoch in %v / %v", epochs, retained)
	}
	// The exact read of a coarsened epoch is a definitive 404 whose message
	// carries the retained range — the client does not retry it.
	if _, err := rc.SnapAt(ctx, coarsened); err == nil || !strings.Contains(err.Error(), "not retained") {
		t.Fatalf("remote SnapAt(%d) = %v, want a definitive not-retained error", coarsened, err)
	}
	near, err := rc.SnapAtNearest(ctx, coarsened)
	if err != nil {
		t.Fatalf("remote SnapAtNearest(%d): %v", coarsened, err)
	}
	if near.Epoch() > coarsened || !retainedSet[near.Epoch()] {
		t.Fatalf("remote SnapAtNearest(%d) served epoch %d (retained %v)", coarsened, near.Epoch(), retained)
	}
	requireSnapEqual(t, "remote SnapAtNearest", near, liveAt[near.Epoch()])

	// Historical reads — including the failed one — left the live high-water
	// mark untouched: the next live Snap still works.
	if _, err := rc.Snap(ctx); err != nil {
		t.Fatalf("live snap after historical reads: %v", err)
	}
}

// scriptedHistoryBackend extends the scriptable epochBackend with a
// SnapshotAt whose answer the test controls — the stand-in for a server whose
// retained history disagrees with what it advertises.
type scriptedHistoryBackend struct {
	epochBackend
	mu   sync.Mutex
	hist transport.Snapshot
}

func (b *scriptedHistoryBackend) SnapshotAt(epoch uint64, nearest bool) (transport.Snapshot, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := b.hist
	snap.State = append([]float64(nil), snap.State...)
	return snap, nil
}

func (b *scriptedHistoryBackend) setHist(count float64, epoch uint64, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hist = transport.Snapshot{State: make([]float64, n), Count: count, Epoch: epoch}
}

// The satellite's client-side semantics: an exact historical request answered
// with a LOWER epoch is the lossy-restart signature and raises the same typed
// EpochRegressionError the live path uses; a nearest request answered ABOVE
// the bound is refused; and historical reads never advance the live path's
// regression high-water mark in either direction.
func TestRemoteSnapAtRegressionAndHighWaterMark(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(n, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	backend := &scriptedHistoryBackend{epochBackend: epochBackend{state: make([]float64, n), count: 40, epoch: 5}}
	srv, err := transport.NewServer(backend, transport.Info{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	rc, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Live snap pins the high-water mark at epoch 5.
	if _, err := rc.Snap(ctx); err != nil {
		t.Fatal(err)
	}

	// An exact historical read below the mark is FINE — the past is allowed
	// to be older than the present.
	backend.setHist(10, 3, n)
	got, err := rc.SnapAt(ctx, 3)
	if err != nil {
		t.Fatalf("historical read below the live mark: %v", err)
	}
	if got.Epoch() != 3 {
		t.Fatalf("served epoch %d, want 3", got.Epoch())
	}

	// A server answering the exact request for epoch 4 with epoch 3 has lost
	// the history it advertised: typed regression error, Prev = requested.
	var reg *ldp.EpochRegressionError
	if _, err := rc.SnapAt(ctx, 4); !errors.As(err, &reg) {
		t.Fatalf("served-lower SnapAt returned %v, want EpochRegressionError", err)
	}
	if reg.Prev != 4 || reg.Observed != 3 {
		t.Fatalf("regression details %+v", reg)
	}

	// Floor semantics: an answer ABOVE the requested bound is refused too.
	backend.setHist(90, 9, n)
	if _, err := rc.SnapAtNearest(ctx, 7); err == nil {
		t.Fatal("nearest read accepted an epoch above the requested bound")
	}

	// A successful historical read AHEAD of the live mark (epoch 9 > 5) must
	// not advance it: the next live snap at epoch 5 is not a regression.
	if _, err := rc.SnapAt(ctx, 9); err != nil {
		t.Fatalf("historical read at epoch 9: %v", err)
	}
	if _, err := rc.Snap(ctx); err != nil {
		t.Fatalf("live snap regressed after a historical read advanced nothing: %v", err)
	}

	// The mark itself still works: a genuine live regression is caught.
	backend.set(3, 2)
	if _, err := rc.Snap(ctx); !errors.As(err, &reg) {
		t.Fatalf("live regression after historical reads returned %v", err)
	}
}

// Fleet.SnapAt merges the members' retained history with floor semantics and
// reports the raggedness: each durable member serves the newest epoch it
// retains at or below the bound, a history-less member is definitively
// missing (not retried, not stale-substituted), and the merge is the exact
// element-wise sum of what the members served.
func TestFleetSnapAtHistoricalMerge(t *testing.T) {
	const n, perRound = 16, 120
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["strategy"]
	ctx := context.Background()

	type durShard struct {
		col *ldp.Collector
		hs  *httptest.Server
		e1  uint64 // first checkpointed epoch
		e2  uint64 // second checkpointed epoch
	}
	rng := rand.New(rand.NewSource(17))
	ingest := func(col *ldp.Collector, count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			rep, err := m.rz.Randomize(rng.Intn(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := col.Ingest(rep); err != nil {
				t.Fatal(err)
			}
		}
	}

	shards := make([]*durShard, 2)
	for i := range shards {
		col := historyCollector(t, t.TempDir(), m.agg, w)
		t.Cleanup(func() { col.Close() })
		handler, err := ldp.NewCollectorServer(col, ldp.MechanismInfoOf(m.agg))
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(handler)
		t.Cleanup(hs.Close)
		sh := &durShard{col: col, hs: hs}
		ingest(col, perRound)
		sh.e1 = col.Snap().Epoch()
		if err := col.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ingest(col, perRound)
		sh.e2 = col.Snap().Epoch()
		if err := col.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ingest(col, perRound/2) // live tail beyond the last checkpoint
		shards[i] = sh
	}
	// A member with no durability: alive, but retains no history at all.
	memless, err := ldp.NewCollector(m.agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	memHandler, err := ldp.NewCollectorServer(memless, ldp.MechanismInfoOf(m.agg))
	if err != nil {
		t.Fatal(err)
	}
	memHS := httptest.NewServer(memHandler)
	defer memHS.Close()
	ingest(memless, perRound/2)

	fleet, err := ldp.NewFleet(m.agg, w,
		ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)),
		ldp.WithFleetHTTPClient(&http.Client{}))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	for _, sh := range shards {
		if err := fleet.Register(ctx, sh.hs.URL); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Register(ctx, memHS.URL); err != nil {
		t.Fatal(err)
	}

	// A bound that floors each durable shard onto its FIRST checkpoint: at or
	// above both e1 epochs, below both e2 epochs. Epochs advance only when a
	// snapshot is cut, so the two shards' ladders are near-aligned; assert the
	// precondition so a future epoch-numbering change fails loudly.
	bound := shards[0].e1
	if shards[1].e1 > bound {
		bound = shards[1].e1
	}
	if bound >= shards[0].e2 || bound >= shards[1].e2 {
		t.Fatalf("shards checkpointed at epochs (%d,%d) and (%d,%d): no bound floors both onto their first checkpoint",
			shards[0].e1, shards[0].e2, shards[1].e1, shards[1].e2)
	}

	merged, cov, err := fleet.SnapAt(ctx, bound)
	if err != nil {
		t.Fatalf("fleet SnapAt(%d): %v", bound, err)
	}
	if cov.Total != 3 || cov.Fresh != 2 {
		t.Fatalf("coverage %s, want 2 of 3 contributing", cov)
	}

	// The merge must be exactly the element-wise sum of what each durable
	// member retains at its floor epoch; the in-memory member contributes
	// nothing and is reported missing with a definitive reason.
	wantState := make([]float64, len(merged.State()))
	var wantCount float64
	servedEpochs := make(map[string]uint64)
	for _, sh := range shards {
		snap, err := sh.col.SnapAtNearest(bound)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range snap.State() {
			wantState[i] += v
		}
		wantCount += snap.Count()
		servedEpochs[sh.hs.URL] = snap.Epoch()
	}
	if merged.Count() != wantCount {
		t.Fatalf("merged historical count %v, want %v", merged.Count(), wantCount)
	}
	for i, v := range merged.State() {
		if math.Float64bits(v) != math.Float64bits(wantState[i]) {
			t.Fatalf("merged state[%d] = %x, want %x", i, math.Float64bits(v), math.Float64bits(wantState[i]))
		}
	}
	for _, sc := range cov.Shards {
		if want, ok := servedEpochs[sc.Endpoint]; ok {
			if sc.Status != ldp.CoverageFresh || sc.Epoch != want {
				t.Fatalf("durable shard coverage %+v, want fresh at epoch %d", sc, want)
			}
		} else {
			if sc.Status != ldp.CoverageMissing || !strings.Contains(sc.Err, "not retained") {
				t.Fatalf("history-less shard coverage %+v, want a definitive not-retained miss", sc)
			}
		}
	}
}

// The trend detector over a drifting population: consecutive same-distribution
// windows score near zero, and the window where the distribution shifts
// stands out in TV, L∞, and the per-cell rate sign.
func TestTrendDetectsDistributionShift(t *testing.T) {
	const n, perWindow = 8, 20000
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["strategy"]
	col, err := ldp.NewCollector(m.agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ldp.NewEstimator(m.agg, w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	ingest := func(pick func() int) {
		t.Helper()
		for i := 0; i < perWindow; i++ {
			rep, err := m.rz.Randomize(pick(), rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := col.Ingest(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	uniform := func() int { return rng.Intn(n) }
	// 80% of the mass jumps to cell 0, the rest stays uniform.
	shifted := func() int {
		if rng.Float64() < 0.8 {
			return 0
		}
		return rng.Intn(n)
	}

	ladder := []ldp.Snapshot{col.Snap()}
	ingest(uniform)
	ladder = append(ladder, col.Snap())
	ingest(uniform)
	ladder = append(ladder, col.Snap())
	ingest(shifted)
	ladder = append(ladder, col.Snap())

	tr, err := est.Trend(ladder)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Windows) != 3 || len(tr.Points) != 2 {
		t.Fatalf("trend shape: %d windows, %d points", len(tr.Windows), len(tr.Points))
	}
	for _, win := range tr.Windows {
		if win.Count != perWindow {
			t.Fatalf("window (%d,%d] holds %v reports, want %d", win.FromEpoch, win.ToEpoch, win.Count, perWindow)
		}
	}
	steady, drift := tr.Points[0], tr.Points[1]
	if steady.TV > 0.2 {
		t.Fatalf("uniform-vs-uniform TV %.3f — noise alone should stay small", steady.TV)
	}
	if drift.TV < 0.35 || drift.LInf < 0.35 {
		t.Fatalf("shift window scored TV %.3f, L∞ %.3f — the 80%% jump must dominate", drift.TV, drift.LInf)
	}
	if tr.MaxTV != drift.TV {
		t.Fatalf("MaxTV %.3f is not the drift point's %.3f", tr.MaxTV, drift.TV)
	}
	// The moving cell is cell 0, and it moved UP.
	if drift.Rate[0] <= 0 {
		t.Fatalf("cell 0 rate %.4f, want positive — that is where the mass went", drift.Rate[0])
	}
	for v := 1; v < n; v++ {
		if drift.Rate[v] >= drift.Rate[0] {
			t.Fatalf("cell %d rate %.4f outranks the shifted cell's %.4f", v, drift.Rate[v], drift.Rate[0])
		}
	}
	t.Logf("steady TV %.3f, drift TV %.3f L∞ %.3f", steady.TV, drift.TV, drift.LInf)
}
