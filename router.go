package ldp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/transport"
)

// IdempotencyKeyHeader re-exports the transport's retry-safety header for
// clients building raw requests against a shard or router.
const IdempotencyKeyHeader = transport.IdempotencyKeyHeader

// EncodeReportsFrame writes one length-prefixed report frame — the POST
// /reports body unit — re-exported for raw-protocol clients and tests.
func EncodeReportsFrame(w io.Writer, reports []Report) error {
	return transport.EncodeReports(w, reports)
}

// Coverage headers a FleetServer stamps on GET /snapshot responses, so a
// client of the framed protocol (which has no field for partiality) still
// learns when an estimate is degraded and by how much.
const (
	// CoverageHeader is the operator summary, e.g. "3/4 shards (1 stale)".
	CoverageHeader = "Ldp-Fleet-Coverage"
	// CoverageMergedHeader / CoverageTotalHeader / CoverageStaleHeader are
	// the machine-readable counts behind the summary.
	CoverageMergedHeader = "Ldp-Fleet-Shards-Merged"
	CoverageTotalHeader  = "Ldp-Fleet-Shards-Total"
	CoverageStaleHeader  = "Ldp-Fleet-Shards-Stale"
)

// FleetServer serves a Fleet over the same framed HTTP protocol a single
// collector shard speaks, so any existing client — a RemoteCollector, an
// ldpfed poller — can point at the router unchanged and transparently talk
// to N health-gated shards behind it:
//
//	POST /reports    route a (keyed) batch to a live shard, key-sticky
//	GET  /snapshot   degraded-tolerant merged snapshot + coverage headers
//	GET  /healthz    liveness + mechanism identity + per-shard membership
//	GET  /readyz     readiness: enough live shards to meet the quorum
//	GET  /shards     membership listing (JSON)
//	POST /shards     register a shard  {"endpoint": "http://..."}
//	DELETE /shards   deregister        ?endpoint=http://...
//
// The router itself is stateless apart from the in-memory key→shard binding
// (see Fleet.IngestKeyed): shard-side idempotency caches and write-ahead
// logs remain the single source of exactly-once truth, which is why a
// forwarding failure surfaces as a retryable 503 — the client retries the
// same key, the binding replays it on the same shard, and the shard
// deduplicates.
type FleetServer struct {
	fleet           *Fleet
	mux             *http.ServeMux
	metrics         *obs.Registry
	maxRequestBytes int64

	mu        sync.Mutex
	draining  bool
	queryAgg  Aggregator
	queryPool *EstimatorPool
}

// NewFleetServer wraps a Fleet in its HTTP tier. Every route is traced and
// measured (ldp_http_* with component="router"), the fleet's health/merge/
// breaker families are armed on the same registry, and GET /metrics serves
// the Prometheus exposition.
func NewFleetServer(f *Fleet, opts ...ServiceOption) (*FleetServer, error) {
	if f == nil {
		return nil, errors.New("ldp: nil fleet")
	}
	var cfg serviceConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	reg := obs.NewRegistry()
	s := &FleetServer{fleet: f, mux: http.NewServeMux(), metrics: reg, maxRequestBytes: transport.DefaultMaxRequestBytes}
	hm := obs.NewHTTPMetrics(reg, "router", cfg.logger, cfg.slow)
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		s.mux.Handle(pattern, hm.Wrap(endpoint, h))
	}
	route("POST /reports", "reports", s.handleReports)
	route("POST /query", "query", s.handleQuery)
	route("GET /snapshot", "snapshot", s.handleSnapshot)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	route("GET /shards", "shards", s.handleShardsList)
	route("POST /shards", "shards", s.handleShardsRegister)
	route("DELETE /shards", "shards", s.handleShardsDeregister)
	route("POST /shards/drain", "shards_drain", s.handleShardsDrain)
	route("POST /shards/undrain", "shards_undrain", s.handleShardsUndrain)
	s.mux.Handle("GET /metrics", reg.Handler())
	f.enableMetrics(reg)
	registerBuildInfo(reg)
	return s, nil
}

// Handler returns the router's HTTP handler.
func (s *FleetServer) Handler() http.Handler { return s.mux }

// Metrics returns the router's metrics registry (also served at GET
// /metrics), so an embedding harness can read series without a scrape.
func (s *FleetServer) Metrics() *obs.Registry { return s.metrics }

// SetMaxRequestBytes overrides the POST /reports body bound (n <= 0 keeps
// the default). Call before serving traffic.
func (s *FleetServer) SetMaxRequestBytes(n int64) {
	if n > 0 {
		s.maxRequestBytes = n
	}
}

// Drain marks the router draining: ingest and membership changes answer 503,
// snapshot reads stay up for a final pull. One-way.
func (s *FleetServer) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

func (s *FleetServer) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ingestJSON mirrors the shard transport's POST /reports response body, so
// transport.Client parses router responses identically.
type ingestJSON struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *FleetServer) handleReports(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		writeRouterJSON(w, http.StatusServiceUnavailable, ingestJSON{Error: "router draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxRequestBytes)
	key := r.Header.Get(transport.IdempotencyKeyHeader)

	// Decode the whole body first: the forward must be all-or-nothing so the
	// key binds to exactly one downstream request and replays are exact.
	var reports []Report
	for {
		batch, err := transport.DecodeReports(r.Body)
		if err == transport.ErrFrameEOF {
			break
		}
		if err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
			writeRouterJSON(w, status, ingestJSON{Error: err.Error()})
			return
		}
		reports = append(reports, batch...)
	}

	accepted, err := s.fleet.IngestKeyed(r.Context(), reports, key)
	if err == nil {
		writeRouterJSON(w, http.StatusOK, ingestJSON{Accepted: accepted})
		return
	}
	// Relay the shard's definitive answer verbatim; everything else — no
	// live shard, network failure, shard 5xx — is weather the client should
	// retry through (same key, same binding, no double-absorb).
	var se *StatusError
	if errors.As(err, &se) && !se.Temporary() {
		writeRouterJSON(w, se.StatusCode, ingestJSON{Accepted: accepted, Error: err.Error()})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeRouterJSON(w, http.StatusServiceUnavailable, ingestJSON{Accepted: accepted, Error: err.Error()})
}

func (s *FleetServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, cov, err := s.fleet.Snap(r.Context())
	if err != nil {
		var qe *QuorumError
		status := http.StatusServiceUnavailable
		if errors.As(err, &qe) {
			// Below quorum is still 503 — the client should retry once
			// shards return — but the body says exactly what was missing.
			s.coverageHeaders(w, qe.Coverage)
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), status)
		return
	}
	s.coverageHeaders(w, cov)
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = transport.EncodeSnapshotFrame(w, transport.Snapshot{
		State: snap.State(),
		Count: snap.Count(),
		Epoch: snap.Epoch(),
		Info:  s.fleet.Info(),
	})
}

// EnableQueries arms POST /query on the router: queries fan in through the
// fleet's degraded-tolerant merged snapshot (coverage headers intact) and are
// answered by agg's reconstruction, with pool-cached estimators amortizing
// the variance model across queries. agg must be the same mechanism the
// fleet's shards aggregate under; a mismatch is refused here rather than
// producing silently wrong reconstructions. Call before serving traffic.
func (s *FleetServer) EnableQueries(agg Aggregator, opts ...PoolOption) error {
	if agg == nil {
		return errors.New("ldp: nil aggregator")
	}
	if got, want := MechanismInfoOf(agg), s.fleet.Info(); got != want {
		return fmt.Errorf("ldp: query aggregator is %+v, fleet aggregates under %+v — mechanism mismatch", got, want)
	}
	s.mu.Lock()
	s.queryAgg = agg
	s.queryPool = NewEstimatorPool(opts...)
	s.mu.Unlock()
	return nil
}

func (s *FleetServer) queryEngine() (Aggregator, *EstimatorPool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queryAgg, s.queryPool
}

// routerTrackingWriter mirrors the shard transport's written-bytes tracking:
// an error before the first byte maps to a status, after it the connection is
// aborted so the client sees a truncated stream.
type routerTrackingWriter struct {
	w     io.Writer
	wrote bool
}

func (t *routerTrackingWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		t.wrote = true
	}
	return t.w.Write(p)
}

// handleQuery answers a workload query over the fleet's merged snapshot.
// Reads stay up while draining, exactly like GET /snapshot.
func (s *FleetServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	agg, pool := s.queryEngine()
	if agg == nil {
		http.Error(w, "ldp: this router does not serve queries (EnableQueries not configured)", http.StatusNotFound)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, int64(transport.MaxQueryPayload)+64)
	q, err := transport.DecodeQueryFrame(r.Body)
	if err != nil {
		writeRouterJSON(w, http.StatusBadRequest, ingestJSON{Error: err.Error()})
		return
	}
	snap, cov, err := s.fleet.Snap(r.Context())
	if err != nil {
		var qe *QuorumError
		if errors.As(err, &qe) {
			s.coverageHeaders(w, qe.Coverage)
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.coverageHeaders(w, cov)
	w.Header().Set("Content-Type", "application/octet-stream")
	tw := &routerTrackingWriter{w: w}
	if err := answerQuery(pool, agg, snap, q, tw); err != nil {
		if tw.wrote {
			panic(http.ErrAbortHandler)
		}
		status := http.StatusUnprocessableEntity
		var se *StatusError
		if errors.As(err, &se) {
			status = se.StatusCode
		}
		writeRouterJSON(w, status, ingestJSON{Error: err.Error()})
	}
}

func (s *FleetServer) coverageHeaders(w http.ResponseWriter, cov Coverage) {
	h := w.Header()
	h.Set(CoverageHeader, cov.String())
	h.Set(CoverageMergedHeader, strconv.Itoa(cov.Merged()))
	h.Set(CoverageTotalHeader, strconv.Itoa(cov.Total))
	h.Set(CoverageStaleHeader, strconv.Itoa(cov.Stale))
}

// fleetHealth extends the shard health body with the router's membership
// view; clients decoding transport.Health ignore the extra fields, so
// RemoteCollector.Verify works against a router unchanged.
type fleetHealth struct {
	transport.Health
	Members []MemberState `json:"members"`
	Quorum  int           `json:"quorum,omitempty"`
}

func (s *FleetServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness must stay cheap and answer even with every shard down: count
	// and epoch are the fleet's last-good view, no network round-trips.
	members := s.fleet.Members()
	var count float64
	var epoch uint64
	for _, m := range members {
		count += m.LastCount
		if m.LastEpoch > epoch {
			epoch = m.LastEpoch
		}
	}
	ready, reason := s.readiness(members)
	status := "ok"
	if !ready {
		status = reason
	}
	writeRouterJSON(w, http.StatusOK, fleetHealth{
		Health: transport.Health{
			Status:  status,
			Count:   count,
			Epoch:   epoch,
			Ready:   ready,
			Reason:  reason,
			Info:    s.fleet.Info(),
			Version: BuildInfo().Version,
		},
		Members: members,
		Quorum:  s.fleet.quorum,
	})
}

// readiness: the router should receive traffic when it is not draining and
// enough shards are routable to meet the quorum (at least one without one).
func (s *FleetServer) readiness(members []MemberState) (bool, string) {
	if s.isDraining() {
		return false, "draining"
	}
	need := s.fleet.quorum
	if need < 1 {
		need = 1
	}
	ready := 0
	for _, m := range members {
		if m.Ready && m.Breaker != "open" {
			ready++
		}
	}
	if ready < need {
		return false, fmt.Sprintf("%d of %d required shards routable", ready, need)
	}
	return true, ""
}

func (s *FleetServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.readiness(s.fleet.Members())
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeRouterJSON(w, status, struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}{ready, reason})
}

// shardsJSON is the membership listing body.
type shardsJSON struct {
	Members []MemberState `json:"members"`
}

func (s *FleetServer) handleShardsList(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, shardsJSON{Members: s.fleet.Members()})
}

func (s *FleetServer) handleShardsRegister(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "router draining", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		Endpoint string `json:"endpoint"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Endpoint == "" {
		http.Error(w, "body must be {\"endpoint\": \"http://...\"}", http.StatusBadRequest)
		return
	}
	if err := s.fleet.Register(r.Context(), req.Endpoint); err != nil {
		// A mechanism mismatch is the caller's configuration error.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeRouterJSON(w, http.StatusOK, shardsJSON{Members: s.fleet.Members()})
}

func (s *FleetServer) handleShardsDeregister(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "router draining", http.StatusServiceUnavailable)
		return
	}
	endpoint := r.URL.Query().Get("endpoint")
	if endpoint == "" {
		http.Error(w, "missing ?endpoint=", http.StatusBadRequest)
		return
	}
	if !s.fleet.Deregister(endpoint) {
		http.Error(w, "not a member", http.StatusNotFound)
		return
	}
	writeRouterJSON(w, http.StatusOK, shardsJSON{Members: s.fleet.Members()})
}

// handleShardsDrain gates one member out of ingest routing (Fleet.Gate): the
// shard stays registered, mergeable, and serving reads, but receives no new
// reports until undrained — the hook a rolling restart (or a load scenario)
// drives before taking a shard down.
func (s *FleetServer) handleShardsDrain(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "router draining", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		Endpoint string `json:"endpoint"`
		Reason   string `json:"reason"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Endpoint == "" {
		http.Error(w, "body must be {\"endpoint\": \"http://...\", \"reason\": \"...\"}", http.StatusBadRequest)
		return
	}
	if req.Reason == "" {
		req.Reason = "draining"
	}
	if !s.fleet.Gate(req.Endpoint, req.Reason) {
		http.Error(w, "not a member", http.StatusNotFound)
		return
	}
	writeRouterJSON(w, http.StatusOK, shardsJSON{Members: s.fleet.Members()})
}

// handleShardsUndrain lifts a drain gate (Fleet.Ungate).
func (s *FleetServer) handleShardsUndrain(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "router draining", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		Endpoint string `json:"endpoint"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Endpoint == "" {
		http.Error(w, "body must be {\"endpoint\": \"http://...\"}", http.StatusBadRequest)
		return
	}
	if !s.fleet.Ungate(req.Endpoint) {
		http.Error(w, "not a member", http.StatusNotFound)
		return
	}
	writeRouterJSON(w, http.StatusOK, shardsJSON{Members: s.fleet.Members()})
}

// Fleet returns the underlying fleet, so a harness embedding the server
// in-process can drive registration, probes, and drain gates directly.
func (s *FleetServer) Fleet() *Fleet { return s.fleet }

// Probe re-exports the fleet's health round for the serving binary's ticker.
func (s *FleetServer) Probe(ctx context.Context) []MemberState { return s.fleet.Probe(ctx) }
