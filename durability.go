package ldp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/transport"
)

// DefaultCheckpointEvery is the report interval between automatic checkpoints
// for a durable collector. Each checkpoint rotates the write-ahead log, so
// the interval bounds both recovery time (at most this many reports replay)
// and disk growth (pruned segments are deleted).
const DefaultCheckpointEvery = 1 << 16

// CollectorOption configures a Collector at construction.
type CollectorOption func(*collectorConfig)

type collectorConfig struct {
	durDir       string
	fsync        bool
	commitWindow time.Duration
	ckptEvery    int64
	historyKeep  int
	gzip         bool
}

// WithDurability gives the collector a write-ahead log and checkpointed crash
// recovery rooted at dir (created if needed): every ingested batch is
// appended — group-commit buffered — to a CRC-checked WAL before the ingest
// is acknowledged, the merged accumulator is checkpointed periodically, and
// NewCollector restores dir's prior state (accumulator, report count,
// snapshot epoch, and the idempotency keys of logged batches) before
// returning. An acknowledged batch therefore survives a process crash: on
// restart the collector's snapshot is bit-identical to one that absorbed
// exactly the acknowledged batches, with any torn trailing record — the
// unacknowledged remains of the crash — detected and dropped.
//
// One collector owns a directory at a time; call Close to release it.
func WithDurability(dir string, opts ...DurabilityOption) CollectorOption {
	return func(cfg *collectorConfig) {
		cfg.durDir = dir
		cfg.ckptEvery = DefaultCheckpointEvery
		for _, o := range opts {
			o(cfg)
		}
	}
}

// DurabilityOption tunes WithDurability.
type DurabilityOption func(*collectorConfig)

// CheckpointEvery sets how many ingested reports accumulate between automatic
// checkpoints (default DefaultCheckpointEvery). n ≤ 0 disables automatic
// checkpoints; the WAL then grows until Checkpoint is called explicitly.
func CheckpointEvery(n int) DurabilityOption {
	return func(cfg *collectorConfig) { cfg.ckptEvery = int64(n) }
}

// FsyncEachCommit makes every WAL group commit fsync before the ingest is
// acknowledged, extending the crash-consistency guarantee from process
// crashes to power failures at the cost of ingest latency. Off (the default)
// records are written to the OS before acknowledgment but not synced.
func FsyncEachCommit(on bool) DurabilityOption {
	return func(cfg *collectorConfig) { cfg.fsync = on }
}

// CommitWindow holds each WAL group commit open for d before writing, so
// concurrent ingests stage behind the flusher and share one write (and one
// fsync, with FsyncEachCommit). Zero (the default) flushes immediately. The
// window adds up to d of ingest latency per commit in exchange for fewer,
// larger commits — worth measuring (ldpload -evolve sweeps it), never a
// durability trade: acknowledgment still waits for the covering write.
func CommitWindow(d time.Duration) DurabilityOption {
	return func(cfg *collectorConfig) {
		if d > 0 {
			cfg.commitWindow = d
		}
	}
}

// HistoryKeep sets the retention ladder's full-resolution window: the n
// newest checkpoints are kept intact and older ones are coarsened
// geometrically (every 2nd, then every 4th, …), so SnapAt can serve any
// retained epoch without replay while disk stays logarithmic in history
// length. Values below 2 mean the default window.
func HistoryKeep(n int) DurabilityOption {
	return func(cfg *collectorConfig) { cfg.historyKeep = n }
}

// GzipHistory compresses checkpoint payloads and closed retained WAL
// segments — worthwhile for the unary mechanisms, whose accumulators are long
// runs of small integers. The active segment is never compressed, and a
// directory written with either setting opens under the other.
func GzipHistory(on bool) DurabilityOption {
	return func(cfg *collectorConfig) { cfg.gzip = on }
}

// DurabilityStatus is a durable collector's recovery and WAL-lag status — the
// same structure /healthz serves for a durable ldpserve shard.
type DurabilityStatus = transport.DurabilityHealth

// durableState is the per-collector durability runtime: the store, the
// checkpoint trigger, and the barrier that makes checkpoints exact.
type durableState struct {
	store     *durable.Store
	ckptEvery int64
	fsync     bool

	// gate orders ingest against checkpoint cuts: an ingest holds the read
	// side across WAL-append + absorb, so under the write side the WAL and
	// the in-memory accumulator agree exactly — the checkpoint invariant.
	gate sync.RWMutex
	// ckptMu makes checkpoints single-flight; an ingest that finds it taken
	// skips (the running checkpoint covers its trigger).
	ckptMu sync.Mutex
	// sinceCkpt counts reports absorbed since the last checkpoint cut.
	sinceCkpt atomic.Int64

	// Recovery facts, fixed at open. recovery is the store's raw recovery
	// record, kept whole so metrics arming can pin it as gauges.
	recovered        bool
	recoveredReports int64
	replayedRecords  int64
	droppedTail      int64
	keys             []transport.SeededKey
	recovery         durable.Recovery

	// statusMu guards lastErr (background checkpoint failures).
	statusMu sync.Mutex
	lastErr  string
}

// openDurable attaches a durable store to a freshly built collector: it
// restores the directory's checkpoint and WAL tail into shard 0 (merging is
// element-wise, so which shard holds recovered state is immaterial), seeds
// the snapshot epoch past anything the previous process can have served, and
// records the idempotency keys the log proves absorbed.
func (c *Collector) openDurable(cfg collectorConfig) error {
	sh := &c.shards[0]
	d := &durableState{ckptEvery: cfg.ckptEvery, fsync: cfg.fsync}
	var ckptEpoch uint64
	restore := func(snap transport.Snapshot) error {
		if len(snap.State) != c.agg.StateLen() {
			return fmt.Errorf("checkpoint has %d state entries, mechanism expects %d", len(snap.State), c.agg.StateLen())
		}
		if err := infoMismatch(c.info, snap.Info); err != nil {
			return fmt.Errorf("checkpoint was written under a different mechanism configuration: %w", err)
		}
		for i, v := range snap.State {
			sh.acc[i] += v
		}
		sh.count.Add(int64(snap.Count))
		ckptEpoch = snap.Epoch
		d.recoveredReports += int64(snap.Count)
		return nil
	}
	replay := func(rec durable.Record) error {
		for i, r := range rec.Reports {
			if err := c.agg.Check(r); err != nil {
				return fmt.Errorf("report %d: %w", i, err)
			}
		}
		for _, r := range rec.Reports {
			if err := c.agg.Absorb(sh.acc, r); err != nil {
				return fmt.Errorf("validated report failed to absorb: %w", err)
			}
		}
		sh.count.Add(int64(len(rec.Reports)))
		d.recoveredReports += int64(len(rec.Reports))
		return nil
	}
	store, rec, err := durable.Open(cfg.durDir, durable.Options{
		Digest:       walDigest(c.info),
		Fsync:        cfg.fsync,
		CommitWindow: cfg.commitWindow,
		Restore:      restore,
		Replay:       replay,
		HistoryKeep:  cfg.historyKeep,
		Gzip:         cfg.gzip,
	})
	if err != nil {
		return fmt.Errorf("ldp: open durable store: %w", err)
	}
	// The store's key table spans checkpoints: a keyed request whose records
	// straddle a checkpoint cut still seeds its FULL absorbed count, so the
	// retrying client trims exactly what landed.
	for _, k := range rec.Keys {
		d.keys = append(d.keys, transport.SeededKey{Key: k.Key, Accepted: int(k.Reports)})
	}
	d.store = store
	d.recovery = rec
	d.replayedRecords = rec.ReplayedRecords
	d.droppedTail = rec.DroppedTailBytes
	d.recovered = rec.HasCheckpoint || rec.ReplayedRecords > 0
	d.sinceCkpt.Store(rec.ReplayedReports)
	if d.recovered {
		// Seed the snapshot epoch strictly past anything the previous process
		// can have served: each served epoch needs an observed count change,
		// and counts changed at most once per checkpoint plus once per
		// replayed record. Remote readers therefore never see the epoch move
		// backwards across a clean recovery (see EpochRegressionError for the
		// lossy-restart symptom this preserves).
		c.cache.count = c.totalCount()
		c.cache.epoch = ckptEpoch + uint64(rec.ReplayedRecords) + 1
	}
	c.dur = d
	return nil
}

// walDigest is the mechanism fingerprint stamped into (and checked against)
// every WAL record. Strategy mechanisms use the StrategyDigest; oracles —
// which carry no digest because (name, domain, ε) fully determines them —
// get exactly that triple, so a WAL written under OUE can never replay into
// RAPPOR, nor an ε=1 log into an ε=2 collector, even before the first
// checkpoint exists to carry the full identity. Always non-empty, so the
// record-level check is never silently skipped.
func walDigest(info MechanismInfo) string {
	if info.Digest != "" {
		return info.Digest
	}
	return fmt.Sprintf("%s|n=%d|eps=%g", info.Mechanism, info.Domain, info.Epsilon)
}

// durableAbsorb is the durable ingest path: the already-validated batch is
// appended to the WAL — group-committed with concurrent ingests — and only
// then absorbed and acknowledged. The WAL append happening first is the
// durability guarantee; the absorb completing before the gate is released is
// the checkpoint-exactness guarantee.
func (c *Collector) durableAbsorb(sh *collectorShard, reports []Report, key string) error {
	if len(reports) == 0 {
		return nil
	}
	d := c.dur
	d.gate.RLock()
	if err := d.store.Append(reports, key); err != nil {
		d.gate.RUnlock()
		return fmt.Errorf("ldp: write-ahead log: %w", err)
	}
	sh.mu.Lock()
	c.absorbValidatedLocked(sh, reports)
	sh.mu.Unlock()
	d.gate.RUnlock()
	if n := d.sinceCkpt.Add(int64(len(reports))); d.ckptEvery > 0 && n >= d.ckptEvery {
		c.checkpointIfDue()
	}
	return nil
}

// checkpointIfDue runs one checkpoint unless another is already in flight or
// the trigger has been covered in the meantime. Failures don't fail ingest —
// the WAL alone still recovers — but are retained for /healthz.
func (c *Collector) checkpointIfDue() {
	d := c.dur
	if !d.ckptMu.TryLock() {
		return
	}
	defer d.ckptMu.Unlock()
	if d.sinceCkpt.Load() < d.ckptEvery {
		return
	}
	err := c.checkpointLocked()
	d.statusMu.Lock()
	if err != nil {
		d.lastErr = err.Error()
	} else {
		d.lastErr = ""
	}
	d.statusMu.Unlock()
}

// Checkpoint forces a checkpoint now: the WAL rotates to a fresh segment and
// the current merged accumulator is pinned, so a subsequent restart replays
// nothing older. Useful before a planned shutdown.
func (c *Collector) Checkpoint() error {
	if c.dur == nil {
		return errors.New("ldp: collector has no durability configured")
	}
	c.dur.ckptMu.Lock()
	defer c.dur.ckptMu.Unlock()
	return c.checkpointLocked()
}

// checkpointLocked cuts and writes one checkpoint. Caller holds d.ckptMu.
// The gate's write side is held only across the cheap part — snapshotting the
// accumulator and rotating the WAL — so ingest stalls for microseconds; the
// checkpoint file itself is written with ingest flowing into the new segment.
func (c *Collector) checkpointLocked() error {
	d := c.dur
	d.gate.Lock()
	snap := c.Snap()
	err := d.store.Rotate()
	d.sinceCkpt.Store(0)
	d.gate.Unlock()
	if err != nil {
		return fmt.Errorf("ldp: %w", err)
	}
	tsnap := transport.Snapshot{State: snap.State(), Count: snap.Count(), Epoch: snap.Epoch(), Info: snap.Info()}
	if err := d.store.WriteCheckpoint(tsnap); err != nil {
		return fmt.Errorf("ldp: %w", err)
	}
	return nil
}

// SnapAt serves the snapshot the epoch history retains for exactly the given
// epoch — bit-identical in state, count, and identity to the one Snap served
// when that epoch was checkpointed — without any WAL replay. The epoch must
// match a retained checkpoint exactly; an epoch the retention ladder has
// coarsened away (or that never had a checkpoint) returns
// *transport.EpochNotRetainedError carrying the retained range. Requires
// WithDurability.
func (c *Collector) SnapAt(epoch uint64) (Snapshot, error) { return c.snapAt(epoch, false) }

// SnapAtNearest is SnapAt with floor semantics: the newest retained epoch at
// or below the requested one is served. Use it to window against a timeline
// whose exact epochs are not retained (fleet members checkpoint on their own
// schedules); the returned snapshot's own epoch says what was actually
// served.
func (c *Collector) SnapAtNearest(epoch uint64) (Snapshot, error) { return c.snapAt(epoch, true) }

func (c *Collector) snapAt(epoch uint64, nearest bool) (Snapshot, error) {
	if c.dur == nil {
		return Snapshot{}, errors.New("ldp: collector has no durability configured, so no epoch history is retained")
	}
	ts, err := c.dur.store.SnapshotAt(epoch, nearest)
	if err != nil {
		return Snapshot{}, fmt.Errorf("ldp: %w", err)
	}
	if len(ts.State) != c.agg.StateLen() {
		return Snapshot{}, fmt.Errorf("ldp: retained checkpoint has %d state entries, mechanism expects %d", len(ts.State), c.agg.StateLen())
	}
	if err := infoMismatch(c.info, ts.Info); err != nil {
		return Snapshot{}, fmt.Errorf("ldp: retained checkpoint was written under a different mechanism configuration: %w", err)
	}
	return Snapshot{state: ts.State, count: ts.Count, epoch: ts.Epoch, info: mergeInfo(ts.Info, c.info)}, nil
}

// historySnapshotAt is the transport-facing SnapAt: same semantics, transport
// types, and an in-memory collector reads as "nothing retained" so the HTTP
// layer answers a definitive 404 rather than a server error.
func (c *Collector) historySnapshotAt(epoch uint64, nearest bool) (transport.Snapshot, error) {
	if c.dur == nil {
		return transport.Snapshot{}, &transport.EpochNotRetainedError{Requested: epoch}
	}
	return c.dur.store.SnapshotAt(epoch, nearest)
}

// RetainedEpochs lists the epochs SnapAt can serve, ascending — the newest
// few at full checkpoint resolution, older ones geometrically coarsened. Nil
// without durability.
func (c *Collector) RetainedEpochs() []uint64 {
	if c.dur == nil {
		return nil
	}
	return c.dur.store.RetainedEpochs()
}

// Durability reports the collector's durable-ingest status; ok is false for
// an in-memory collector.
func (c *Collector) Durability() (status DurabilityStatus, ok bool) {
	d := c.dur
	if d == nil {
		return DurabilityStatus{}, false
	}
	d.statusMu.Lock()
	lastErr := d.lastErr
	d.statusMu.Unlock()
	return DurabilityStatus{
		Recovered:        d.recovered,
		RecoveredReports: d.recoveredReports,
		ReplayedRecords:  d.replayedRecords,
		DroppedTailBytes: d.droppedTail,
		CheckpointSeq:    d.store.CheckpointSeq(),
		WALRecordLag:     d.store.RecordLag(),
		WALByteLag:       d.store.ByteLag(),
		Fsync:            d.fsync,
		LastError:        lastErr,
	}, true
}

// armDurabilityMetrics registers the WAL and checkpoint families on reg and
// starts feeding them: append/flush latency, group-commit sizes, checkpoint
// durations, live lag gauges, and the last recovery's facts. No-op for an
// in-memory collector.
func (c *Collector) armDurabilityMetrics(reg *obs.Registry) {
	if c.dur == nil {
		return
	}
	c.dur.store.SetMetrics(reg, c.dur.recovery)
}

// recoveredIdempotencyKeys returns the idempotency keys the WAL proved
// absorbed before the last restart, oldest first, with the report counts
// absorbed under them — what NewCollectorServer seeds the transport's
// idempotency cache with.
func (c *Collector) recoveredIdempotencyKeys() []transport.SeededKey {
	if c.dur == nil {
		return nil
	}
	return c.dur.keys
}

// Sync forces any group-commit-buffered WAL records to disk regardless of
// the fsync mode. No-op without durability.
func (c *Collector) Sync() error {
	if c.dur == nil {
		return nil
	}
	if err := c.dur.store.Sync(); err != nil {
		return fmt.Errorf("ldp: %w", err)
	}
	return nil
}

// Close flushes and closes the durable store, releasing the data directory.
// The collector must not ingest afterwards. No-op without durability.
func (c *Collector) Close() error {
	if c.dur == nil {
		return nil
	}
	if err := c.dur.store.Close(); err != nil {
		return fmt.Errorf("ldp: %w", err)
	}
	return nil
}
