package ldp

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/freqoracle"
	"repro/internal/linalg"
	"repro/internal/protocol"
	"repro/internal/strategy"
)

// Wire format: every artifact this library persists is a gob stream of
// (header, payload). The header carries a magic string, a format version, and
// the payload kind, so readers reject foreign files, future formats, and
// kind confusion (an oracle file fed to LoadStrategy) with a precise error
// instead of gob soup. Bump wireVersion when the payload schema changes;
// readers accept exactly the versions they know how to decode.
const (
	wireMagic   = "LDPWIRE"
	wireVersion = 1

	wireKindStrategy = "strategy"
	wireKindOracle   = "oracle"

	// Hard bounds a decoded artifact must satisfy before any of its values
	// are used. They exist for loaders fed untrusted bytes (FuzzLoadStrategy
	// surfaced a Rows×Cols overflow that slipped a crafted file past the
	// length check below): dimensions are capped so their product is
	// computed without overflow, and ε must be a positive finite number —
	// NaN propagates through every downstream exp/ratio check, and beyond
	// maxWireEps the mechanism arithmetic degenerates (exp overflow) while
	// the "privacy" bought is none.
	maxWireDim   = 1 << 20
	maxWireElems = 1 << 26
	maxWireEps   = 64
)

// checkWireEps validates a deserialized strategy privacy budget through the
// shared predicate (protocol.CheckEpsilon) with the wire layer's cap.
func checkWireEps(eps float64) error {
	if err := protocol.CheckEpsilon(eps, maxWireEps); err != nil {
		return fmt.Errorf("ldp: wire: %w", err)
	}
	return nil
}

// wireHeader prefixes every serialized artifact.
type wireHeader struct {
	Magic   string
	Version int
	Kind    string
}

// strategyWire is the version-1 payload for strategy matrices.
type strategyWire struct {
	Rows, Cols int
	Eps        float64
	Data       []float64
}

// oracleWire is the version-1 payload for frequency-oracle configurations.
// Oracles are fully determined by (name, domain, ε), so no matrix is stored.
type oracleWire struct {
	Name   string
	Domain int
	Eps    float64
}

func writeHeader(enc *gob.Encoder, kind string) error {
	return enc.Encode(wireHeader{Magic: wireMagic, Version: wireVersion, Kind: kind})
}

func readHeader(dec *gob.Decoder, wantKind string) error {
	var h wireHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("ldp: not an ldp wire file (bad header; a pre-versioning file must be re-saved): %w", err)
	}
	if h.Magic != wireMagic {
		return fmt.Errorf("ldp: not an ldp wire file (bad magic %q; a pre-versioning file must be re-saved)", h.Magic)
	}
	if h.Version != wireVersion {
		return fmt.Errorf("ldp: unsupported wire version %d (this library reads version %d)", h.Version, wireVersion)
	}
	if h.Kind != wantKind {
		return fmt.Errorf("ldp: wire file holds a %q, want a %q", h.Kind, wantKind)
	}
	return nil
}

// StrategyDigest fingerprints a strategy's exact channel — dimensions, ε,
// and every matrix entry bit-for-bit (FNV-1a 64, hex). Two strategies of the
// same shape and declared ε are still different mechanisms; a collector
// aggregating under one must reject reports randomized under the other, and
// name/domain/ε cannot tell them apart. The transport handshake
// (RemoteCollector.Verify against /healthz) compares digests for exactly
// that reason. Oracles need no digest: (name, domain, ε) fully determines
// them.
func StrategyDigest(s *Strategy) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = h.Write(b[:])
	}
	put(uint64(s.Q.Rows()))
	put(uint64(s.Q.Cols()))
	put(math.Float64bits(s.Eps))
	for _, v := range s.Q.Data() {
		put(math.Float64bits(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WorkloadDigest fingerprints a workload canonically (FNV-1a 64, hex): name,
// domain, query count, and — when the materialization fits the wire bound —
// every entry of W bit-for-bit. Past that bound the digest hashes the Gram
// matrix WᵀW instead (the optimizer depends on W only through its Gram, so
// two workloads with equal Grams get the same strategy), and past even that,
// the Frobenius norm. Each representation is tagged into the hash so a
// matrix-hashed and a Gram-hashed workload can never collide by construction.
// The digest is the cache key the EstimatorPool and the query wire protocol
// use to name "the same workload" across processes and restarts.
func WorkloadDigest(w Workload) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = h.Write(b[:])
	}
	name := w.Name()
	put(uint64(len(name)))
	_, _ = h.Write([]byte(name))
	put(uint64(w.Domain()))
	put(uint64(w.Queries()))
	n, p := int64(w.Domain()), int64(w.Queries())
	switch {
	case p*n <= maxWireElems:
		put(0) // representation tag: full W
		for _, v := range w.Matrix().Data() {
			put(math.Float64bits(v))
		}
	case n*n <= maxWireElems:
		put(1) // representation tag: Gram
		for _, v := range w.Gram().Data() {
			put(math.Float64bits(v))
		}
	default:
		put(2) // representation tag: Frobenius norm only
		put(math.Float64bits(w.FrobNorm2()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveStrategy serializes an optimized strategy under the versioned wire
// header, so the expensive offline optimization can be done once and shipped
// to clients.
func SaveStrategy(w io.Writer, s *Strategy) error {
	enc := gob.NewEncoder(w)
	if err := writeHeader(enc, wireKindStrategy); err != nil {
		return err
	}
	return enc.Encode(strategyWire{
		Rows: s.Q.Rows(),
		Cols: s.Q.Cols(),
		Eps:  s.Eps,
		Data: s.Q.Data(),
	})
}

// LoadStrategy deserializes a strategy written by SaveStrategy, rejecting
// unknown wire versions, and validates its LDP guarantee (to
// EpsValidationTol) before returning it.
func LoadStrategy(r io.Reader) (*Strategy, error) {
	dec := gob.NewDecoder(r)
	if err := readHeader(dec, wireKindStrategy); err != nil {
		return nil, err
	}
	var wire strategyWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("ldp: decode strategy: %w", err)
	}
	// Bounds before arithmetic: with both dimensions capped at maxWireDim,
	// the product below cannot overflow int64, so a crafted pair like
	// 2³²×2³² can no longer wrap around to match a short Data slice.
	if wire.Rows <= 0 || wire.Cols <= 0 || wire.Rows > maxWireDim || wire.Cols > maxWireDim {
		return nil, fmt.Errorf("ldp: corrupt strategy: dimensions %dx%d out of range", wire.Rows, wire.Cols)
	}
	if elems := int64(wire.Rows) * int64(wire.Cols); elems > maxWireElems || int64(len(wire.Data)) != elems {
		return nil, fmt.Errorf("ldp: corrupt strategy: %dx%d with %d values", wire.Rows, wire.Cols, len(wire.Data))
	}
	if err := checkWireEps(wire.Eps); err != nil {
		return nil, err
	}
	for _, v := range wire.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("ldp: corrupt strategy: non-finite matrix entry")
		}
	}
	s := strategy.New(linalg.NewFrom(wire.Rows, wire.Cols, wire.Data), wire.Eps)
	if err := s.Validate(EpsValidationTol); err != nil {
		return nil, fmt.Errorf("ldp: loaded strategy invalid: %w", err)
	}
	return s, nil
}

// SaveOracle serializes a frequency-oracle configuration under the same
// versioned wire header as strategies, so deployments persist both mechanism
// families through one format.
func SaveOracle(w io.Writer, o FrequencyOracle) error {
	enc := gob.NewEncoder(w)
	if err := writeHeader(enc, wireKindOracle); err != nil {
		return err
	}
	return enc.Encode(oracleWire{Name: o.Name(), Domain: o.Domain(), Eps: o.Epsilon()})
}

// LoadOracle deserializes an oracle configuration written by SaveOracle,
// rejecting unknown wire versions and unknown oracle names.
func LoadOracle(r io.Reader) (FrequencyOracle, error) {
	dec := gob.NewDecoder(r)
	if err := readHeader(dec, wireKindOracle); err != nil {
		return nil, err
	}
	var wire oracleWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("ldp: decode oracle: %w", err)
	}
	if wire.Domain <= 0 || wire.Domain > maxWireDim {
		return nil, fmt.Errorf("ldp: corrupt oracle: domain %d out of range", wire.Domain)
	}
	// ε validity (finite, positive, within each family's cap) is the oracle
	// constructors' single source of truth — ByName rejects bad budgets with
	// family-specific bounds, so no separate wire-side ε policy can drift.
	o, err := freqoracle.ByName(wire.Name, wire.Domain, wire.Eps)
	if err != nil {
		return nil, fmt.Errorf("ldp: loaded oracle invalid: %w", err)
	}
	return o, nil
}
