package ldp

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/freqoracle"
	"repro/internal/linalg"
	"repro/internal/strategy"
)

// Wire format: every artifact this library persists is a gob stream of
// (header, payload). The header carries a magic string, a format version, and
// the payload kind, so readers reject foreign files, future formats, and
// kind confusion (an oracle file fed to LoadStrategy) with a precise error
// instead of gob soup. Bump wireVersion when the payload schema changes;
// readers accept exactly the versions they know how to decode.
const (
	wireMagic   = "LDPWIRE"
	wireVersion = 1

	wireKindStrategy = "strategy"
	wireKindOracle   = "oracle"
)

// wireHeader prefixes every serialized artifact.
type wireHeader struct {
	Magic   string
	Version int
	Kind    string
}

// strategyWire is the version-1 payload for strategy matrices.
type strategyWire struct {
	Rows, Cols int
	Eps        float64
	Data       []float64
}

// oracleWire is the version-1 payload for frequency-oracle configurations.
// Oracles are fully determined by (name, domain, ε), so no matrix is stored.
type oracleWire struct {
	Name   string
	Domain int
	Eps    float64
}

func writeHeader(enc *gob.Encoder, kind string) error {
	return enc.Encode(wireHeader{Magic: wireMagic, Version: wireVersion, Kind: kind})
}

func readHeader(dec *gob.Decoder, wantKind string) error {
	var h wireHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("ldp: not an ldp wire file (bad header; a pre-versioning file must be re-saved): %w", err)
	}
	if h.Magic != wireMagic {
		return fmt.Errorf("ldp: not an ldp wire file (bad magic %q; a pre-versioning file must be re-saved)", h.Magic)
	}
	if h.Version != wireVersion {
		return fmt.Errorf("ldp: unsupported wire version %d (this library reads version %d)", h.Version, wireVersion)
	}
	if h.Kind != wantKind {
		return fmt.Errorf("ldp: wire file holds a %q, want a %q", h.Kind, wantKind)
	}
	return nil
}

// SaveStrategy serializes an optimized strategy under the versioned wire
// header, so the expensive offline optimization can be done once and shipped
// to clients.
func SaveStrategy(w io.Writer, s *Strategy) error {
	enc := gob.NewEncoder(w)
	if err := writeHeader(enc, wireKindStrategy); err != nil {
		return err
	}
	return enc.Encode(strategyWire{
		Rows: s.Q.Rows(),
		Cols: s.Q.Cols(),
		Eps:  s.Eps,
		Data: s.Q.Data(),
	})
}

// LoadStrategy deserializes a strategy written by SaveStrategy, rejecting
// unknown wire versions, and validates its LDP guarantee (to
// EpsValidationTol) before returning it.
func LoadStrategy(r io.Reader) (*Strategy, error) {
	dec := gob.NewDecoder(r)
	if err := readHeader(dec, wireKindStrategy); err != nil {
		return nil, err
	}
	var wire strategyWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("ldp: decode strategy: %w", err)
	}
	if wire.Rows <= 0 || wire.Cols <= 0 || len(wire.Data) != wire.Rows*wire.Cols {
		return nil, fmt.Errorf("ldp: corrupt strategy: %dx%d with %d values", wire.Rows, wire.Cols, len(wire.Data))
	}
	s := strategy.New(linalg.NewFrom(wire.Rows, wire.Cols, wire.Data), wire.Eps)
	if err := s.Validate(EpsValidationTol); err != nil {
		return nil, fmt.Errorf("ldp: loaded strategy invalid: %w", err)
	}
	return s, nil
}

// SaveOracle serializes a frequency-oracle configuration under the same
// versioned wire header as strategies, so deployments persist both mechanism
// families through one format.
func SaveOracle(w io.Writer, o FrequencyOracle) error {
	enc := gob.NewEncoder(w)
	if err := writeHeader(enc, wireKindOracle); err != nil {
		return err
	}
	return enc.Encode(oracleWire{Name: o.Name(), Domain: o.Domain(), Eps: o.Epsilon()})
}

// LoadOracle deserializes an oracle configuration written by SaveOracle,
// rejecting unknown wire versions and unknown oracle names.
func LoadOracle(r io.Reader) (FrequencyOracle, error) {
	dec := gob.NewDecoder(r)
	if err := readHeader(dec, wireKindOracle); err != nil {
		return nil, err
	}
	var wire oracleWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("ldp: decode oracle: %w", err)
	}
	o, err := freqoracle.ByName(wire.Name, wire.Domain, wire.Eps)
	if err != nil {
		return nil, fmt.Errorf("ldp: loaded oracle invalid: %w", err)
	}
	return o, nil
}
