package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ldp "repro"
	"repro/internal/chaos"
	"repro/internal/transport"
)

// ShardConfig is one shard's serving configuration — the durable-ingest
// config space the evolve loop sweeps.
type ShardConfig struct {
	Mechanism string
	Domain    int
	Epsilon   float64
	Workload  string
	DataDir   string
	// CheckpointEvery reports between automatic checkpoints (0 = the
	// collector default, < 0 disables).
	CheckpointEvery int
	Fsync           bool
	CommitWindow    time.Duration
	// CollectorShards is the in-process accumulator shard count (0 = auto).
	CollectorShards int
}

// ShardProc is a handle to one running shard behind its stable front: the
// deployment kills and restarts it through this, whatever "process" means
// for the implementation (a real OS process for SpawnFunc shards, a server
// instance for in-process ones).
type ShardProc interface {
	// URL is the shard's current direct base URL (changes across Restart).
	URL() string
	// Kill hard-stops the shard without flushing or checkpointing.
	Kill() error
	// Restart brings the shard back on its surviving data directory and
	// returns its new URL. Recovery (WAL replay) happens here.
	Restart(ctx context.Context) (string, error)
	// Stop shuts the shard down at deployment teardown.
	Stop() error
}

// SpawnFunc starts shard i with cfg and returns its handle. nil means
// in-process shards (fast, but Kill is a quiesced teardown rather than a
// true SIGKILL — use NewSubprocessSpawner for crash realism).
type SpawnFunc func(ctx context.Context, shard int, cfg ShardConfig) (ShardProc, error)

// DeployConfig describes a full local deployment: N durable shards, each
// behind a seeded chaos proxy with a stable endpoint, fronted by one router.
type DeployConfig struct {
	Shards int
	Shard  ShardConfig // template; DataDir is derived per shard under BaseDir
	// BaseDir holds the per-shard data directories (shard-0, shard-1, ...).
	BaseDir string
	// Seed seeds each shard's chaos proxy (derived per shard).
	Seed uint64
	// Spawn starts shard processes; nil runs shards in-process.
	Spawn SpawnFunc
	// ProbeEvery is the router's readiness-probe interval (0 = 150ms — fast,
	// because scenarios need gating to react within a run).
	ProbeEvery time.Duration
	// Quorum is the router's merge quorum (0 = serve any coverage).
	Quorum int
}

// Deployment is a live router→shards system under test.
type Deployment struct {
	RouterURL string

	cfg    DeployConfig
	mech   *Mechanism
	fleet  *ldp.Fleet
	fs     *ldp.FleetServer
	router *http.Server
	shards []ShardProc
	fronts []*shardFront
	stop   chan struct{}
	wg     sync.WaitGroup
}

// Deploy builds and starts the system: shards (recovered from BaseDir if it
// holds prior state), chaos fronts, fleet, router, and the probe loop. It
// returns once every shard is registered and ready.
func Deploy(ctx context.Context, cfg DeployConfig) (*Deployment, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("loadgen: deploy needs Shards > 0")
	}
	if cfg.BaseDir == "" {
		return nil, fmt.Errorf("loadgen: deploy needs BaseDir")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 150 * time.Millisecond
	}
	mech, err := BuildMechanism(cfg.Shard.Mechanism, cfg.Shard.Domain, cfg.Shard.Epsilon)
	if err != nil {
		return nil, err
	}
	wname := cfg.Shard.Workload
	if wname == "" {
		wname = "Histogram"
	}
	w, err := ldp.WorkloadByName(wname, cfg.Shard.Domain)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	d := &Deployment{cfg: cfg, mech: mech, stop: make(chan struct{})}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()

	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Shard
		scfg.Workload = wname
		scfg.DataDir = filepath.Join(cfg.BaseDir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(scfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		var sp ShardProc
		if cfg.Spawn != nil {
			sp, err = cfg.Spawn(ctx, i, scfg)
		} else {
			sp, err = startInProcShard(scfg)
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: start shard %d: %w", i, err)
		}
		d.shards = append(d.shards, sp)
		f, err := newShardFront(sp.URL(), chaos.Plan{}, splitmix64(cfg.Seed^uint64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("loadgen: front shard %d: %w", i, err)
		}
		d.fronts = append(d.fronts, f)
	}

	fleet, err := ldp.NewFleet(mech.Agg, w,
		ldp.WithFleetQuorum(cfg.Quorum),
		ldp.WithFleetUnhealthyAfter(2))
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	d.fleet = fleet
	for i, f := range d.fronts {
		if err := fleet.Register(ctx, f.url); err != nil {
			return nil, fmt.Errorf("loadgen: register shard %d: %w", i, err)
		}
	}
	fs, err := ldp.NewFleetServer(fleet)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	d.fs = fs
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	d.router = &http.Server{Handler: fs.Handler(), ReadHeaderTimeout: 10 * time.Second}
	d.RouterURL = "http://" + ln.Addr().String()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = d.router.Serve(ln)
	}()

	// The probe loop turns shard failures into membership changes — without
	// it a killed shard keeps receiving routed traffic forever.
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ticker := time.NewTicker(cfg.ProbeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				pctx, cancel := context.WithTimeout(context.Background(), cfg.ProbeEvery*4)
				d.fleet.Probe(pctx)
				cancel()
			}
		}
	}()

	if err := d.waitReady(ctx, cfg.Shards, 30*time.Second); err != nil {
		return nil, err
	}
	ok = true
	return d, nil
}

// waitReady polls the fleet until want members are ready.
func (d *Deployment) waitReady(ctx context.Context, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pctx, cancel := context.WithTimeout(ctx, time.Second)
		d.fleet.Probe(pctx)
		cancel()
		if d.fleet.ReadyCount() >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %d/%d shards ready after %v", d.fleet.ReadyCount(), want, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Apply executes one fault-schedule event against the deployment.
func (d *Deployment) Apply(ctx context.Context, ev chaos.Event) error {
	targets := []int{ev.Shard}
	if ev.Shard < 0 {
		targets = targets[:0]
		for i := range d.fronts {
			targets = append(targets, i)
		}
	}
	for _, i := range targets {
		if i < 0 || i >= len(d.fronts) {
			return fmt.Errorf("loadgen: event targets shard %d of %d", i, len(d.fronts))
		}
		f, sp := d.fronts[i], d.shards[i]
		switch ev.Kind {
		case chaos.EventSetPlan:
			f.proxy.SetPlan(ev.Plan)
		case chaos.EventHeal:
			f.proxy.SetPlan(chaos.Plan{})
		case chaos.EventKill:
			f.setTarget("") // stop forwarding first: 502s are retryable
			if err := sp.Kill(); err != nil {
				return fmt.Errorf("loadgen: kill shard %d: %w", i, err)
			}
		case chaos.EventRestart:
			u, err := sp.Restart(ctx)
			if err != nil {
				return fmt.Errorf("loadgen: restart shard %d: %w", i, err)
			}
			f.setTarget(u)
		case chaos.EventDrain:
			d.fleet.Gate(f.url, "scenario drain")
		case chaos.EventUndrain:
			d.fleet.Ungate(f.url)
		default:
			return fmt.Errorf("loadgen: unknown event kind %v", ev.Kind)
		}
	}
	return nil
}

// Snap returns the fleet's merged snapshot and coverage.
func (d *Deployment) Snap(ctx context.Context) (ldp.Snapshot, ldp.Coverage, error) {
	return d.fleet.Snap(ctx)
}

// ChaosStats snapshots every front's injection counters.
func (d *Deployment) ChaosStats() []chaos.Stats {
	out := make([]chaos.Stats, len(d.fronts))
	for i, f := range d.fronts {
		out[i] = f.proxy.Stats()
	}
	return out
}

// ShardHealth polls every shard's /healthz through its front (call after the
// schedule has healed the proxies) for the WAL durability facts.
func (d *Deployment) ShardHealth(ctx context.Context) []transport.Health {
	out := make([]transport.Health, 0, len(d.fronts))
	for _, f := range d.fronts {
		tc, err := transport.NewClient(f.url, nil)
		if err != nil {
			continue
		}
		if h, err := tc.Healthz(ctx); err == nil {
			out = append(out, h)
		}
	}
	return out
}

// Mechanism returns the deployment's mechanism bundle.
func (d *Deployment) Mechanism() *Mechanism { return d.mech }

// ReadyCount returns how many shards are currently routable.
func (d *Deployment) ReadyCount() int { return d.fleet.ReadyCount() }

// Close tears the deployment down: probe loop, router, fronts, shards.
func (d *Deployment) Close() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	if d.router != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = d.router.Shutdown(sctx)
		cancel()
	}
	for _, f := range d.fronts {
		f.close()
	}
	for _, sp := range d.shards {
		_ = sp.Stop()
	}
	if d.fleet != nil {
		_ = d.fleet.Close()
	}
	d.wg.Wait()
}

// shardFront is a shard's stable public endpoint: a listener whose handler
// is a seeded chaos proxy wrapping a retargetable reverse proxy. The fleet
// registers the front, so the shard can die and come back on a different
// port without a membership change — exactly how a shard behind a stable
// service address behaves.
type shardFront struct {
	url    string
	proxy  *chaos.Proxy
	target atomic.Pointer[url.URL] // nil while the shard is down
	ln     net.Listener
	srv    *http.Server
}

func newShardFront(backendURL string, plan chaos.Plan, seed uint64) (*shardFront, error) {
	f := &shardFront{}
	if err := f.parseTarget(backendURL); err != nil {
		return nil, err
	}
	rp := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			if t := f.target.Load(); t != nil {
				pr.SetURL(t)
			}
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "loadgen: shard unreachable", http.StatusBadGateway)
		},
		ErrorLog: nil,
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.target.Load() == nil {
			// Shard down: a retryable 502, same as a dead backend.
			w.Header().Set("Retry-After", "1")
			http.Error(w, "loadgen: shard down", http.StatusBadGateway)
			return
		}
		rp.ServeHTTP(w, r)
	})
	f.proxy = chaos.New(inner, plan, seed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	f.ln = ln
	f.url = "http://" + ln.Addr().String()
	f.srv = &http.Server{Handler: f.proxy, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = f.srv.Serve(ln) }()
	return f, nil
}

// setTarget retargets the front ("" marks the shard down).
func (f *shardFront) setTarget(backendURL string) {
	if backendURL == "" {
		f.target.Store(nil)
		return
	}
	_ = f.parseTarget(backendURL)
}

func (f *shardFront) parseTarget(backendURL string) error {
	u, err := url.Parse(backendURL)
	if err != nil {
		return fmt.Errorf("loadgen: bad shard URL %q: %w", backendURL, err)
	}
	f.target.Store(u)
	return nil
}

func (f *shardFront) close() {
	sctx, cancel := context.WithTimeout(context.Background(), time.Second)
	_ = f.srv.Shutdown(sctx)
	cancel()
}

// inProcShard runs a durable collector shard inside this process. Kill is a
// quiesce-then-abandon: the server stops (in-flight ingests finish), the
// collector is dropped WITHOUT Close — no final checkpoint, no WAL flush
// beyond what acknowledgment already guaranteed — so Restart exercises real
// WAL recovery. For a true mid-syscall SIGKILL use a subprocess spawner.
type inProcShard struct {
	cfg ShardConfig

	mu  sync.Mutex
	srv *http.Server
	col *ldp.Collector
	url string
}

func startInProcShard(cfg ShardConfig) (*inProcShard, error) {
	s := &inProcShard{cfg: cfg}
	if err := s.start(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *inProcShard) start() error {
	mech, err := BuildMechanism(s.cfg.Mechanism, s.cfg.Domain, s.cfg.Epsilon)
	if err != nil {
		return err
	}
	w, err := ldp.WorkloadByName(s.cfg.Workload, s.cfg.Domain)
	if err != nil {
		return err
	}
	dopts := []ldp.DurabilityOption{ldp.FsyncEachCommit(s.cfg.Fsync)}
	if s.cfg.CheckpointEvery != 0 {
		dopts = append(dopts, ldp.CheckpointEvery(s.cfg.CheckpointEvery))
	}
	if s.cfg.CommitWindow > 0 {
		dopts = append(dopts, ldp.CommitWindow(s.cfg.CommitWindow))
	}
	col, err := ldp.NewCollector(mech.Agg, w, s.cfg.CollectorShards,
		ldp.WithDurability(s.cfg.DataDir, dopts...))
	if err != nil {
		return err
	}
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(mech.Agg))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	s.mu.Lock()
	s.srv, s.col, s.url = srv, col, "http://"+ln.Addr().String()
	s.mu.Unlock()
	return nil
}

func (s *inProcShard) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.url
}

func (s *inProcShard) Kill() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.col = nil, nil // abandon without Close: recovery must replay
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	// Let in-flight ingests finish their WAL append before the listener
	// dies, so the abandoned store's file handle goes quiet before a
	// Restart reopens the segment.
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	return nil
}

func (s *inProcShard) Restart(ctx context.Context) (string, error) {
	if err := s.start(); err != nil {
		return "", err
	}
	return s.URL(), nil
}

func (s *inProcShard) Stop() error {
	s.mu.Lock()
	srv, col := s.srv, s.col
	s.srv, s.col = nil, nil
	s.mu.Unlock()
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(sctx)
		cancel()
	}
	if col != nil {
		return col.Close()
	}
	return nil
}

// Environment contract between a deployment and its subprocess shards.
const (
	shardEnvFlag      = "LDPLOAD_SHARD"
	shardEnvMech      = "LDPLOAD_MECH"
	shardEnvDomain    = "LDPLOAD_N"
	shardEnvEps       = "LDPLOAD_EPS"
	shardEnvWorkload  = "LDPLOAD_WORKLOAD"
	shardEnvDataDir   = "LDPLOAD_DATA_DIR"
	shardEnvAddrFile  = "LDPLOAD_ADDR_FILE"
	shardEnvCkpt      = "LDPLOAD_CKPT_EVERY"
	shardEnvFsync     = "LDPLOAD_FSYNC"
	shardEnvWindowUS  = "LDPLOAD_COMMIT_WINDOW_US"
	shardEnvColShards = "LDPLOAD_COLLECTOR_SHARDS"
)

// subprocShard runs a shard as a real OS process (a re-exec of argv0 with
// the shard environment set), so Kill is a genuine SIGKILL: no deferred
// flush, no graceful anything — the crash the WAL exists for.
type subprocShard struct {
	argv0 string
	args  []string
	cfg   ShardConfig

	mu  sync.Mutex
	cmd *exec.Cmd
	url string
	gen int
}

// NewSubprocessSpawner returns a SpawnFunc that re-executes the current
// binary with args (empty for a binary whose main calls RunShardFromEnv
// first; a test binary passes its guard-test selector, e.g.
// "-test.run=^TestLoadgenShardProcess$"). The child must call
// RunShardFromEnv before anything else.
func NewSubprocessSpawner(args ...string) SpawnFunc {
	return func(ctx context.Context, shard int, cfg ShardConfig) (ShardProc, error) {
		s := &subprocShard{argv0: os.Args[0], args: args, cfg: cfg}
		if err := s.start(ctx); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (s *subprocShard) start(ctx context.Context) error {
	s.mu.Lock()
	s.gen++
	gen := s.gen
	s.mu.Unlock()
	addrFile := filepath.Join(s.cfg.DataDir, fmt.Sprintf("addr-%d", gen))
	_ = os.Remove(addrFile)
	cmd := exec.Command(s.argv0, s.args...)
	cmd.Env = append(os.Environ(),
		shardEnvFlag+"=1",
		shardEnvMech+"="+s.cfg.Mechanism,
		shardEnvDomain+"="+strconv.Itoa(s.cfg.Domain),
		shardEnvEps+"="+strconv.FormatFloat(s.cfg.Epsilon, 'g', -1, 64),
		shardEnvWorkload+"="+s.cfg.Workload,
		shardEnvDataDir+"="+s.cfg.DataDir,
		shardEnvAddrFile+"="+addrFile,
		shardEnvCkpt+"="+strconv.Itoa(s.cfg.CheckpointEvery),
		shardEnvFsync+"="+strconv.FormatBool(s.cfg.Fsync),
		shardEnvWindowUS+"="+strconv.FormatInt(s.cfg.CommitWindow.Microseconds(), 10),
		shardEnvColShards+"="+strconv.Itoa(s.cfg.CollectorShards),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("loadgen: spawn shard: %w", err)
	}
	// Wait for the child to publish its listen address (atomic write+rename).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			s.mu.Lock()
			s.cmd, s.url = cmd, "http://"+strings.TrimSpace(string(b))
			s.mu.Unlock()
			return nil
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return fmt.Errorf("loadgen: shard process never published its address")
		}
		select {
		case <-ctx.Done():
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (s *subprocShard) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.url
}

func (s *subprocShard) Kill() error {
	s.mu.Lock()
	cmd := s.cmd
	s.cmd = nil
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	_, _ = cmd.Process.Wait()
	return nil
}

func (s *subprocShard) Restart(ctx context.Context) (string, error) {
	if err := s.start(ctx); err != nil {
		return "", err
	}
	return s.URL(), nil
}

func (s *subprocShard) Stop() error { return s.Kill() }

// RunShardFromEnv checks the subprocess-shard environment contract and, when
// set, serves a durable collector shard until killed — it never returns in
// that case. Binaries and test guards that may be re-executed as shards call
// it first; it returns false immediately in a normal invocation.
func RunShardFromEnv() bool {
	if os.Getenv(shardEnvFlag) != "1" {
		return false
	}
	cfg := ShardConfig{
		Mechanism: os.Getenv(shardEnvMech),
		Workload:  os.Getenv(shardEnvWorkload),
		DataDir:   os.Getenv(shardEnvDataDir),
	}
	cfg.Domain, _ = strconv.Atoi(os.Getenv(shardEnvDomain))
	cfg.Epsilon, _ = strconv.ParseFloat(os.Getenv(shardEnvEps), 64)
	cfg.CheckpointEvery, _ = strconv.Atoi(os.Getenv(shardEnvCkpt))
	cfg.Fsync = os.Getenv(shardEnvFsync) == "true"
	if us, err := strconv.ParseInt(os.Getenv(shardEnvWindowUS), 10, 64); err == nil {
		cfg.CommitWindow = time.Duration(us) * time.Microsecond
	}
	cfg.CollectorShards, _ = strconv.Atoi(os.Getenv(shardEnvColShards))
	addrFile := os.Getenv(shardEnvAddrFile)
	if err := serveShardProcess(cfg, addrFile); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen shard: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
	return true
}

// serveShardProcess is the subprocess shard's whole life: build the durable
// collector, listen, publish the address, serve until killed.
func serveShardProcess(cfg ShardConfig, addrFile string) error {
	mech, err := BuildMechanism(cfg.Mechanism, cfg.Domain, cfg.Epsilon)
	if err != nil {
		return err
	}
	if cfg.Workload == "" {
		cfg.Workload = "Histogram"
	}
	w, err := ldp.WorkloadByName(cfg.Workload, cfg.Domain)
	if err != nil {
		return err
	}
	dopts := []ldp.DurabilityOption{ldp.FsyncEachCommit(cfg.Fsync)}
	if cfg.CheckpointEvery != 0 {
		dopts = append(dopts, ldp.CheckpointEvery(cfg.CheckpointEvery))
	}
	if cfg.CommitWindow > 0 {
		dopts = append(dopts, ldp.CommitWindow(cfg.CommitWindow))
	}
	col, err := ldp.NewCollector(mech.Agg, w, cfg.CollectorShards,
		ldp.WithDurability(cfg.DataDir, dopts...))
	if err != nil {
		return err
	}
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(mech.Agg))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Atomic publish: a partial read must be impossible, the parent polls.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(ln)
}
