package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// latencyBuckets is the log₂-microsecond histogram width: bucket i holds
// samples in [2^(i-1), 2^i) µs, so 48 buckets cover nanoseconds to days.
const latencyBuckets = 48

// latencyHist is a lock-free log₂ latency histogram. Percentiles come from
// bucket interpolation — coarse (≤2× error), which is exactly as much
// precision as a load test's tail numbers deserve.
type latencyHist struct {
	counts [latencyBuckets]atomic.Int64
	total  atomic.Int64
	maxNs  atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	b := bits.Len64(uint64(us)) // 0µs → bucket 0, 1µs → 1, 2-3µs → 2, ...
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	h.counts[b].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// quantile returns the q-quantile in milliseconds (bucket upper bound).
func (h *latencyHist) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	var seen int64
	for b := 0; b < latencyBuckets; b++ {
		seen += h.counts[b].Load()
		if seen >= target {
			return float64(uint64(1)<<uint(b)) / 1000.0 // bucket bound in ms
		}
	}
	return float64(h.maxNs.Load()) / 1e6
}

// Counts is the deterministic accounting of a run: at a fixed seed these
// values are bit-identical across repeats, worker counts, and machines —
// the section reproducibility checks compare.
type Counts struct {
	Clients      int64 `json:"clients"`
	Abandoned    int64 `json:"abandoned"`
	Participants int64 `json:"participants"`
	// OfferedReports == Participants: every participant's report enters the
	// pipeline. AckedReports is how many the deployment acknowledged (after
	// settle this equals offered — the retry discipline never gives up), and
	// AbsorbedReports is the merged snapshot's count: what the shards hold.
	OfferedReports  int64 `json:"offered_reports"`
	AckedReports    int64 `json:"acked_reports"`
	AbsorbedReports int64 `json:"absorbed_reports"`
	// ExactlyOnce is the headline invariant: acknowledged == absorbed — no
	// report lost, none double-counted, through every injected fault.
	ExactlyOnce bool `json:"exactly_once"`
	// ScheduleEvents/ScheduleFired prove the fault schedule actually ran.
	ScheduleEvents int     `json:"schedule_events"`
	ScheduleFired  int     `json:"schedule_fired"`
	TruthTotal     float64 `json:"truth_total"`
}

// Estimates scores the final merged estimate against ground truth under the
// repo's statistical-acceptance envelope (6σ per cell with 1.5 variance
// slack, 4× expected total squared error). Deterministic at a fixed seed.
type Estimates struct {
	MaxAbsCellError float64 `json:"max_abs_cell_error"`
	CellEnvelope    float64 `json:"cell_envelope"`
	TSE             float64 `json:"tse"`
	TSEBound        float64 `json:"tse_bound"`
	EstimatedTotal  float64 `json:"estimated_total"`
	InEnvelope      bool    `json:"in_envelope"`
}

// Ops is the operational (timing-dependent) half of the scorecard: latency,
// throughput, WAL lag, coverage, chaos counters. Varies run to run; excluded
// from reproducibility comparisons.
type Ops struct {
	DurationSec float64 `json:"duration_sec"`
	// Throughput is acknowledged reports per second over the whole run
	// (including settle).
	Throughput float64 `json:"throughput_rps"`
	// Report-POST latency percentiles, milliseconds (log₂-bucket bounds).
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Requests counts every HTTP request workers issued; ReportPosts the
	// POST /reports subset; Retried the non-2xx or transport-failed ones
	// (each is one retry the discipline absorbed).
	Requests    int64 `json:"requests"`
	ReportPosts int64 `json:"report_posts"`
	Retried     int64 `json:"retried"`
	// Coverage of the final merged snapshot, plus the worst (lowest ready
	// count) moment observed during the run — the degradation the scenario
	// drove.
	ShardsMerged   int `json:"shards_merged"`
	ShardsTotal    int `json:"shards_total"`
	ShardsStale    int `json:"shards_stale"`
	MinShardsReady int `json:"min_shards_ready"`
	// WAL durability facts from each shard's /healthz after settle.
	WALRecordLag  int64  `json:"wal_record_lag"`
	WALByteLag    int64  `json:"wal_byte_lag"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Metrics reconciles the /metrics expositions against the healthz facts
	// above; its Agree verdict is part of the Passed gate.
	Metrics MetricsCheck `json:"metrics_check"`
	// Chaos is each shard proxy's injection counters.
	Chaos []chaos.Stats `json:"chaos,omitempty"`
}

// Scorecard is the emitted BENCH_loadgen.json shape: scenario identity, the
// deterministic counts and estimate scoring, and the timing-dependent ops
// section.
type Scorecard struct {
	Scenario  string  `json:"scenario"`
	Seed      uint64  `json:"seed"`
	Mechanism string  `json:"mechanism"`
	Domain    int     `json:"domain"`
	Epsilon   float64 `json:"epsilon"`
	Shards    int     `json:"shards"`

	Counts    Counts    `json:"counts"`
	Estimates Estimates `json:"estimates"`
	Ops       Ops       `json:"ops"`
}

// Passed reports the gate CI smoke enforces: exactly-once accounting,
// estimates inside the acceptance envelope, and telemetry that agrees with
// the system it describes.
func (s *Scorecard) Passed() bool {
	return s.Counts.ExactlyOnce && s.Estimates.InEnvelope && s.Ops.Metrics.Agree
}

// DeterministicEqual compares the seed-reproducible sections of two
// scorecards (identity, counts, estimates), ignoring Ops.
func (s *Scorecard) DeterministicEqual(o *Scorecard) bool {
	return s.Scenario == o.Scenario && s.Seed == o.Seed &&
		s.Mechanism == o.Mechanism && s.Domain == o.Domain &&
		s.Epsilon == o.Epsilon && s.Shards == o.Shards &&
		s.Counts == o.Counts && s.Estimates == o.Estimates
}

// scoreEstimates fills the Estimates section from a final estimate vector,
// ground truth, and the mechanism's envelope.
func scoreEstimates(m *Mechanism, est, truth []float64, users float64) (Estimates, error) {
	cellBound, tseBound, err := m.Envelope(truth, users)
	if err != nil {
		return Estimates{}, err
	}
	var e Estimates
	e.CellEnvelope = cellBound
	e.TSEBound = tseBound
	for v := range truth {
		d := est[v] - truth[v]
		e.TSE += d * d
		e.EstimatedTotal += est[v]
		if a := math.Abs(d); a > e.MaxAbsCellError {
			e.MaxAbsCellError = a
		}
	}
	e.InEnvelope = e.MaxAbsCellError <= cellBound && e.TSE <= tseBound
	return e, nil
}
