package loadgen

import (
	"math"
	"sort"
)

// zipfTable is a precomputed zipfian CDF over n popularity ranks: rank r has
// weight 1/(r+1)^s. Sampling is one uniform draw plus a binary search, so the
// hot path allocates nothing and stays deterministic for a seeded stream
// (math/rand/v2 offers no Zipf sampler; hand-rolling the CDF also keeps the
// draw → rank mapping stable across Go releases, which the reproducibility
// guarantee depends on).
type zipfTable struct {
	cdf []float64 // cdf[r] = P(rank <= r), cdf[n-1] == 1
}

// newZipfTable builds the table. s <= 0 degenerates to uniform.
func newZipfTable(n int, s float64) *zipfTable {
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		w := 1.0
		if s > 0 {
			w = 1.0 / math.Pow(float64(r+1), s)
		}
		total += w
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	cdf[n-1] = 1 // exact, despite rounding
	return &zipfTable{cdf: cdf}
}

// sample maps one uniform draw u in [0, 1) to a popularity rank.
func (z *zipfTable) sample(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}
