// Package loadgen is the million-client traffic simulator: a deterministic,
// PCG-seeded load generator that drives a live router→shards deployment with
// the traffic shape production LDP collection actually sees — zipfian and
// time-shifting item popularity, bursty arrivals, retry storms, client
// abandonment, and shards that slow down, 503, or die mid-run — while a
// scorer tracks throughput, tail latency, WAL lag, coverage, and estimate
// error against the generator's known ground truth.
//
// # Determinism
//
// Every simulated client's behavior — its item, its phase, whether it
// abandons before reporting — is a pure function of (scenario seed, client
// index), drawn from a per-client PCG stream. Reports are randomized from a
// per-client seeded PRNG. Because the collector accumulator is an
// order-independent sum and the retry discipline delivers every offered
// report exactly once (the run settles: faults heal, killed shards recover,
// and Flush loops until every batch is acknowledged), the scorecard's counts
// and estimates are bit-reproducible at a fixed seed — across worker counts,
// machine speeds, and fault timing. Only the timing section (latency
// percentiles, throughput, WAL lag) varies run to run; reproducibility
// checks compare the deterministic sections and ignore timing.
//
// # Progress-indexed faults
//
// Fault schedules (chaos.Schedule) fire at fractions of offered load, not
// wall-clock times, so a fixed seed exercises the same kill/heal sequence at
// the same point in the report stream on any machine.
package loadgen

import (
	"fmt"
	"math"
	"strings"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/chaos"
)

// Scenario describes one traffic shape against one deployment. The zero
// value is not runnable; start from a preset (SmokeScenario, SoakScenario)
// or fill every field and Validate.
type Scenario struct {
	// Name labels the scorecard.
	Name string
	// Seed drives every random decision in the run: client items, phases,
	// abandonment, report randomization, chaos draws.
	Seed uint64
	// Clients is the number of simulated LDP clients.
	Clients int
	// Mechanism is "oue", "olh", "rappor", or "strategy" (ε-parameterized
	// randomized-response strategy matrix — exercises the matrix-mechanism
	// aggregation path).
	Mechanism string
	// Domain and Epsilon configure the mechanism.
	Domain  int
	Epsilon float64
	// Workload names the query workload (WorkloadByName) for deployment
	// handshakes. Estimate scoring is on the histogram.
	Workload string
	// ZipfS is the zipfian popularity exponent over the domain (s <= 0 means
	// uniform). s=1.1 is the classic heavy-tail web workload.
	ZipfS float64
	// Phases splits the client population into consecutive arrival phases;
	// each phase rotates the popularity ranking by ShiftPerPhase items, so
	// the hot set moves over time the way trending items do.
	Phases        int
	ShiftPerPhase int
	// Arrivals are relative per-phase arrival weights (bursty/diurnal load:
	// e.g. {1, 4, 1} is a 4× midday burst). nil means flat. Length must
	// equal Phases when set.
	Arrivals []float64
	// AbandonRate is the fraction of clients that give up before reporting
	// (app killed, offline). Abandonment is decided up-front per client from
	// its seeded stream — never from timing — so the participant set is
	// deterministic.
	AbandonRate float64
	// RetryStorm tightens the retry policy into an aggressive storm (many
	// attempts, short backoff) — paired with a lossy fault plan it produces
	// the duplicate-send pressure idempotency keys exist for.
	RetryStorm bool
	// Schedule is the progress-indexed fault schedule (see chaos.Schedule).
	Schedule []chaos.Event
	// Workers is the number of concurrent sender goroutines (0 = 8). The
	// client population is statically partitioned across workers, so counts
	// do not depend on this.
	Workers int
	// Batch is the reports-per-frame shipped by each worker's
	// RemoteCollector (0 = ldp.DefaultRemoteBatch).
	Batch int
}

// Validate checks the scenario is runnable.
func (s *Scenario) Validate() error {
	if s.Clients <= 0 {
		return fmt.Errorf("loadgen: scenario needs Clients > 0, got %d", s.Clients)
	}
	if s.Domain <= 1 {
		return fmt.Errorf("loadgen: scenario needs Domain > 1, got %d", s.Domain)
	}
	if s.Epsilon <= 0 || math.IsNaN(s.Epsilon) || math.IsInf(s.Epsilon, 0) {
		return fmt.Errorf("loadgen: bad epsilon %v", s.Epsilon)
	}
	if s.Phases <= 0 {
		s.Phases = 1
	}
	if s.Arrivals != nil && len(s.Arrivals) != s.Phases {
		return fmt.Errorf("loadgen: %d arrival weights for %d phases", len(s.Arrivals), s.Phases)
	}
	for _, a := range s.Arrivals {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("loadgen: bad arrival weight %v", a)
		}
	}
	if s.AbandonRate < 0 || s.AbandonRate >= 1 {
		return fmt.Errorf("loadgen: abandon rate %v outside [0, 1)", s.AbandonRate)
	}
	if s.Workload == "" {
		s.Workload = "Histogram"
	}
	if s.Workers <= 0 {
		s.Workers = 8
	}
	if _, err := BuildMechanism(s.Mechanism, s.Domain, s.Epsilon); err != nil {
		return err
	}
	return nil
}

// SmokeScenario is the CI smoke preset: a 50k-client zipfian storm over a
// 3-phase shifting distribution with bursty arrivals, abandonment, a lossy
// retry-storm fault mix on every shard, and one shard killed and restarted
// mid-run.
func SmokeScenario(seed uint64) Scenario {
	return Scenario{
		Name: "smoke", Seed: seed,
		Clients: 50_000, Mechanism: "oue", Domain: 64, Epsilon: 1.0,
		Workload: "Histogram", ZipfS: 1.1,
		Phases: 3, ShiftPerPhase: 7, Arrivals: []float64{1, 4, 1},
		AbandonRate: 0.02, RetryStorm: true,
		Workers: 8, Batch: 2048,
		Schedule: []chaos.Event{
			// A lossy mix everywhere from the start: dropped requests, lost
			// responses, a little injected latency.
			{At: 0, Shard: -1, Kind: chaos.EventSetPlan, Plan: StormPlan()},
			// Kill shard 0 a third of the way in; bring it back at 60%.
			{At: 0.33, Shard: 0, Kind: chaos.EventKill},
			{At: 0.60, Shard: 0, Kind: chaos.EventRestart},
			// Drain shard 1 briefly around the burst — routing must shed it.
			{At: 0.45, Shard: 1, Kind: chaos.EventDrain},
			{At: 0.70, Shard: 1, Kind: chaos.EventUndrain},
			// Heal everything before the settle phase.
			{At: 0.95, Shard: -1, Kind: chaos.EventHeal},
		},
	}
}

// SoakScenario is the soak-tier preset: a 100k-client storm, same adversarial
// shape as the smoke run.
func SoakScenario(seed uint64) Scenario {
	s := SmokeScenario(seed)
	s.Name = "soak"
	s.Clients = 100_000
	return s
}

// StormPlan is the sustained lossy fault mix scenarios apply shard-wide:
// ~2% of requests dropped before the backend, ~3% absorbed with the response
// lost (the idempotency ambiguity), ~2% opening a short 503 burst.
func StormPlan() chaos.Plan {
	return chaos.Plan{DropBefore: 0.02, DropAfter: 0.03, Unavailable: 0.02, BurstLen: 3}
}

// Mechanism bundles what the generator needs from one mechanism: the
// randomizer clients report through, the aggregator the deployment absorbs
// under, and the closed-form acceptance envelope (the same 6σ·1.5 bounds the
// statistical acceptance tests enforce).
type Mechanism struct {
	Name string
	Rz   ldp.Randomizer
	Agg  ldp.Aggregator
	// strategy is set for the strategy-matrix mechanism, whose envelope is
	// Theorem 3.4's data-dependent expected error rather than a per-user
	// variance constant.
	strategy *ldp.Strategy
	oracle   ldp.FrequencyOracle
}

// Envelope returns the statistical-acceptance bounds for an estimate over
// users reports of ground truth x: the per-cell absolute bound (6σ with the
// 1.5 variance slack) and the total-squared-error bound (4× the closed-form
// expectation) — the same constants the repo's acceptance tests pin.
func (m *Mechanism) Envelope(x []float64, users float64) (cellBound, tseBound float64, err error) {
	const zSigma, varSlack, tseSlack = 6.0, 1.5, 4.0
	if m.oracle != nil {
		perCell := users * m.oracle.VariancePerUser() * varSlack
		return zSigma * math.Sqrt(perCell), tseSlack * float64(m.Agg.Domain()) * perCell, nil
	}
	w := ldp.Histogram(m.Agg.Domain())
	vp, err := m.strategy.Variances(w.Gram(), w.Queries())
	if err != nil {
		return 0, 0, fmt.Errorf("loadgen: strategy envelope: %w", err)
	}
	tse := vp.OnData(x)
	return zSigma * math.Sqrt(tse), tseSlack * tse, nil
}

// BuildMechanism constructs the named mechanism at (n, eps). "strategy" is
// the ε-parameterized randomized-response strategy matrix — deterministic to
// build (no optimizer run), but exercising the full strategy aggregation and
// Theorem 3.4 envelope path.
func BuildMechanism(name string, n int, eps float64) (*Mechanism, error) {
	switch name {
	case "strategy":
		s := benchfix.RRStrategy(n, eps)
		rz, err := ldp.NewRandomizer(s)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		return &Mechanism{Name: name, Rz: rz, Agg: agg, strategy: s}, nil
	case "oue", "olh", "rappor":
		o, err := ldp.OracleByName(strings.ToUpper(name), n, eps)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		return &Mechanism{Name: name, Rz: o, Agg: o, oracle: o}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown mechanism %q (want oue, olh, rappor, or strategy)", name)
}
