package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// MetricsCheck cross-validates the deployment's /metrics expositions against
// the /healthz facts the scorer already trusts: the same quantities read
// through two independent paths must agree once the run has settled. It is
// part of Ops (the scrape totals are timing-dependent) but its Agree verdict
// gates the card — telemetry that disagrees with the system it describes is
// worse than no telemetry.
type MetricsCheck struct {
	// ShardsScraped is how many shard fronts answered GET /metrics with a
	// parseable exposition; RouterScraped says the router's did.
	ShardsScraped int  `json:"shards_scraped"`
	RouterScraped bool `json:"router_scraped"`
	// ReportsMetric is Σ ldp_collector_reports across shards; ReportsHealthz
	// is Σ /healthz count. Same atomic underneath, so they must match exactly
	// on a quiescent deployment.
	ReportsMetric  float64 `json:"reports_metric"`
	ReportsHealthz float64 `json:"reports_healthz"`
	// WALLagMetric / WALLagHealthz compare Σ ldp_wal_record_lag with the
	// healthz durability section. The healthz poll runs first, so a
	// background checkpoint landing between the two reads can only shrink
	// the metric-side lag — growth means ingest was still moving.
	WALLagMetric  int64 `json:"wal_lag_metric"`
	WALLagHealthz int64 `json:"wal_lag_healthz"`
	// RouterReportPosts is the router's own ldp_http_requests_total for the
	// reports endpoint — proof the instrumented path carried the run.
	RouterReportPosts float64 `json:"router_report_posts"`
	Agree             bool    `json:"agree"`
	Detail            string  `json:"detail,omitempty"`
}

// scrapeSamples fetches and parses one /metrics endpoint.
func scrapeSamples(ctx context.Context, baseURL string) ([]obs.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET %s/metrics: %s", baseURL, resp.Status)
	}
	return obs.ParseText(io.LimitReader(resp.Body, 4<<20))
}

// MetricsCheck scrapes the router and every shard front and reconciles the
// expositions against the given healthz views (poll those first: the
// healthz-then-metrics order is what makes the WAL-lag comparison one-sided).
func (d *Deployment) MetricsCheck(ctx context.Context, healths []transport.Health) MetricsCheck {
	var mc MetricsCheck
	for _, h := range healths {
		mc.ReportsHealthz += h.Count
		if h.Durability != nil {
			mc.WALLagHealthz += h.Durability.WALRecordLag
		}
	}
	for _, f := range d.fronts {
		samples, err := scrapeSamples(ctx, f.url)
		if err != nil {
			continue
		}
		mc.ShardsScraped++
		if v, ok := obs.SampleValue(samples, "ldp_collector_reports", ""); ok {
			mc.ReportsMetric += v
		}
		if v, ok := obs.SampleValue(samples, "ldp_wal_record_lag", ""); ok {
			mc.WALLagMetric += int64(v)
		}
	}
	if samples, err := scrapeSamples(ctx, d.RouterURL); err == nil {
		mc.RouterScraped = true
		mc.RouterReportPosts, _ = obs.SampleValue(samples, "ldp_http_requests_total", `endpoint="reports"`)
	}

	switch {
	case !mc.RouterScraped:
		mc.Detail = "router /metrics unreachable or unparseable"
	case mc.ShardsScraped != len(healths):
		mc.Detail = fmt.Sprintf("scraped %d shard /metrics but %d shards answered /healthz", mc.ShardsScraped, len(healths))
	case mc.ReportsMetric != mc.ReportsHealthz:
		mc.Detail = fmt.Sprintf("ldp_collector_reports Σ=%.0f disagrees with healthz count Σ=%.0f", mc.ReportsMetric, mc.ReportsHealthz)
	case mc.WALLagMetric > mc.WALLagHealthz:
		// Shrinking between the two reads is a checkpoint landing; growing
		// means reports were still absorbing after settle claimed quiescence.
		mc.Detail = fmt.Sprintf("wal record lag grew between healthz (%d) and metrics (%d) reads", mc.WALLagHealthz, mc.WALLagMetric)
	case mc.RouterReportPosts <= 0:
		mc.Detail = "router served no instrumented POST /reports"
	default:
		mc.Agree = true
	}
	return mc
}
