// Package evolve runs the strategy-evolution search loop over the deployment
// config space: baseline → parameterized one-factor candidates → measure →
// combine winners → ablate → principles table. The objective is acknowledged
// throughput, hard-gated on the scorecard's correctness gate (exactly-once
// accounting and estimates inside the statistical-acceptance envelope) — a
// config that goes faster by dropping or double-counting reports scores zero,
// so the search cannot game the metric. Every run uses the same scenario seed:
// candidates face an identical client population, fault schedule, and ground
// truth, so throughput deltas measure the config, not the workload.
package evolve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/loadgen"
)

// Params is one point in the config space the search explores — the knobs the
// ROADMAP names as folklore to turn into measured principles.
type Params struct {
	Shards          int           `json:"shards"`
	Batch           int           `json:"batch"`
	CheckpointEvery int           `json:"checkpoint_every"`
	Fsync           bool          `json:"fsync"`
	CommitWindow    time.Duration `json:"commit_window_ns"`
}

// String renders the point compactly for tables and logs.
func (p Params) String() string {
	return fmt.Sprintf("shards=%d batch=%d ckpt=%d fsync=%v window=%s",
		p.Shards, p.Batch, p.CheckpointEvery, p.Fsync, p.CommitWindow)
}

// Measurement is one measured config point.
type Measurement struct {
	Label  string             `json:"label"`
	Params Params             `json:"params"`
	Card   *loadgen.Scorecard `json:"card,omitempty"`
	Err    string             `json:"err,omitempty"`
}

// Objective is the gated score: throughput when the run passed the
// correctness gate, 0 otherwise (a failed or errored run can never win).
func (m *Measurement) Objective() float64 {
	if m.Err != "" || m.Card == nil || !m.Card.Passed() {
		return 0
	}
	return m.Card.Ops.Throughput
}

// Principle is one extracted finding: what moving a single knob did to the
// gated objective, measured twice — as a candidate against the baseline, and
// as an ablation out of the best combined config.
type Principle struct {
	Knob         string  `json:"knob"`
	Move         string  `json:"move"`
	CandidatePct float64 `json:"candidate_pct"` // candidate vs baseline
	AblationPct  float64 `json:"ablation_pct"`  // best vs best-with-knob-reverted
	Verdict      string  `json:"verdict"`       // "keep", "revert", "neutral"
}

// Report is the full evolution record: every measurement plus the distilled
// principles.
type Report struct {
	Scenario   string        `json:"scenario"`
	Seed       uint64        `json:"seed"`
	Baseline   Measurement   `json:"baseline"`
	Candidates []Measurement `json:"candidates"`
	Best       Measurement   `json:"best"`
	Ablations  []Measurement `json:"ablations,omitempty"`
	Principles []Principle   `json:"principles"`
}

// Config drives one evolution run.
type Config struct {
	Scenario loadgen.Scenario
	Baseline Params
	// BaseDirs must yield a fresh scratch directory per measurement (e.g.
	// testing.T.TempDir or a counter under os.MkdirTemp).
	BaseDirs func() string
	// Spawn selects the shard process model (nil = in-process).
	Spawn loadgen.SpawnFunc
	// AdoptMarginPct is the noise margin a candidate must clear to be adopted
	// into the combined config (default 2%).
	AdoptMarginPct float64
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// knobMove is one single-factor candidate: a label and the parameter edit.
type knobMove struct {
	knob  string
	label string
	apply func(Params) Params
	// revert is the inverse edit, used for ablation out of the combined best.
	revert func(Params) Params
}

// moves generates the default one-factor candidate set around a baseline.
func moves(base Params) []knobMove {
	var out []knobMove
	if base.Shards > 1 {
		out = append(out, knobMove{
			knob: "shards", label: fmt.Sprintf("shards %d→%d", base.Shards, base.Shards/2),
			apply:  func(p Params) Params { p.Shards = base.Shards / 2; return p },
			revert: func(p Params) Params { p.Shards = base.Shards; return p },
		})
	}
	out = append(out, knobMove{
		knob: "shards", label: fmt.Sprintf("shards %d→%d", base.Shards, base.Shards*2),
		apply:  func(p Params) Params { p.Shards = base.Shards * 2; return p },
		revert: func(p Params) Params { p.Shards = base.Shards; return p },
	})
	if base.Batch >= 64 {
		out = append(out, knobMove{
			knob: "batch", label: fmt.Sprintf("batch %d→%d", base.Batch, base.Batch/4),
			apply:  func(p Params) Params { p.Batch = base.Batch / 4; return p },
			revert: func(p Params) Params { p.Batch = base.Batch; return p },
		})
	}
	out = append(out, knobMove{
		knob: "batch", label: fmt.Sprintf("batch %d→%d", base.Batch, base.Batch*4),
		apply:  func(p Params) Params { p.Batch = base.Batch * 4; return p },
		revert: func(p Params) Params { p.Batch = base.Batch; return p },
	})
	if base.CheckpointEvery > 0 {
		out = append(out, knobMove{
			knob: "checkpoint", label: fmt.Sprintf("ckpt %d→%d", base.CheckpointEvery, base.CheckpointEvery*4),
			apply:  func(p Params) Params { p.CheckpointEvery = base.CheckpointEvery * 4; return p },
			revert: func(p Params) Params { p.CheckpointEvery = base.CheckpointEvery; return p },
		})
	}
	out = append(out, knobMove{
		knob: "fsync", label: fmt.Sprintf("fsync %v→%v", base.Fsync, !base.Fsync),
		apply:  func(p Params) Params { p.Fsync = !base.Fsync; return p },
		revert: func(p Params) Params { p.Fsync = base.Fsync; return p },
	})
	if base.CommitWindow == 0 {
		out = append(out, knobMove{
			knob: "commit-window", label: "window 0→2ms",
			apply:  func(p Params) Params { p.CommitWindow = 2 * time.Millisecond; return p },
			revert: func(p Params) Params { p.CommitWindow = 0; return p },
		})
	} else {
		out = append(out, knobMove{
			knob: "commit-window", label: fmt.Sprintf("window %s→0", base.CommitWindow),
			apply:  func(p Params) Params { p.CommitWindow = 0; return p },
			revert: func(p Params) Params { p.CommitWindow = base.CommitWindow; return p },
		})
	}
	return out
}

// Run executes the search loop and distills principles.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.BaseDirs == nil {
		return nil, fmt.Errorf("evolve: Config.BaseDirs is required")
	}
	if cfg.AdoptMarginPct <= 0 {
		cfg.AdoptMarginPct = 2
	}
	measure := func(label string, p Params) Measurement {
		m := Measurement{Label: label, Params: p}
		card, err := loadgen.Run(ctx, loadgen.RunConfig{
			Scenario: cfg.Scenario,
			Deploy: loadgen.DeployConfig{
				Shards:  p.Shards,
				BaseDir: cfg.BaseDirs(),
				Spawn:   cfg.Spawn,
				Shard: loadgen.ShardConfig{
					CheckpointEvery: p.CheckpointEvery,
					Fsync:           p.Fsync,
					CommitWindow:    p.CommitWindow,
				},
			},
		})
		if err != nil {
			m.Err = err.Error()
			logf("evolve: %-22s FAILED: %v", label, err)
			return m
		}
		// The scenario's batch knob lives on the Scenario, not the deployment.
		m.Card = card
		logf("evolve: %-22s %8.0f rps  passed=%v  p99=%.0fms", label, card.Ops.Throughput, card.Passed(), card.Ops.P99Ms)
		return m
	}
	// Scenario batch rides on the scenario; thread the knob through.
	measureWithBatch := func(label string, p Params) Measurement {
		saved := cfg.Scenario.Batch
		cfg.Scenario.Batch = p.Batch
		m := measure(label, p)
		cfg.Scenario.Batch = saved
		return m
	}

	rep := &Report{Scenario: cfg.Scenario.Name, Seed: cfg.Scenario.Seed}
	logf("evolve: baseline %s", cfg.Baseline)
	rep.Baseline = measureWithBatch("baseline", cfg.Baseline)
	if rep.Baseline.Objective() == 0 {
		return rep, fmt.Errorf("evolve: baseline failed its gate — nothing to improve on")
	}

	// Phase: one-factor candidates, same seed, gated objective.
	ms := moves(cfg.Baseline)
	adopted := make([]knobMove, 0, len(ms))
	for _, mv := range ms {
		cand := measureWithBatch(mv.label, mv.apply(cfg.Baseline))
		rep.Candidates = append(rep.Candidates, cand)
		gain := pctDelta(cand.Objective(), rep.Baseline.Objective())
		if cand.Objective() > 0 && gain > cfg.AdoptMarginPct {
			adopted = append(adopted, mv)
		}
	}

	// Phase: combine every adopted move; keep whichever config measured best.
	rep.Best = rep.Baseline
	for i := range rep.Candidates {
		if rep.Candidates[i].Objective() > rep.Best.Objective() {
			rep.Best = rep.Candidates[i]
		}
	}
	if len(adopted) > 1 {
		combined := cfg.Baseline
		labels := make([]string, 0, len(adopted))
		for _, mv := range adopted {
			combined = mv.apply(combined)
			labels = append(labels, mv.label)
		}
		cm := measureWithBatch("combined("+strings.Join(labels, ", ")+")", combined)
		rep.Candidates = append(rep.Candidates, cm)
		if cm.Objective() > rep.Best.Objective() {
			rep.Best = cm
		}
	}

	// Phase: ablation — revert each adopted knob out of the best config to
	// measure its marginal contribution in context.
	contrib := map[string]float64{}
	if len(adopted) > 0 && rep.Best.Label != "baseline" {
		for _, mv := range adopted {
			reverted := mv.revert(rep.Best.Params)
			if reverted == rep.Best.Params {
				continue // knob not present in the winning config
			}
			ab := measureWithBatch("ablate "+mv.label, reverted)
			rep.Ablations = append(rep.Ablations, ab)
			contrib[mv.label] = pctDelta(rep.Best.Objective(), ab.Objective())
		}
	}

	// Distill: one principle per candidate move.
	for i, mv := range ms {
		cand := rep.Candidates[i]
		p := Principle{
			Knob:         mv.knob,
			Move:         mv.label,
			CandidatePct: pctDelta(cand.Objective(), rep.Baseline.Objective()),
		}
		if c, ok := contrib[mv.label]; ok {
			p.AblationPct = c
		}
		switch {
		case cand.Objective() == 0:
			p.Verdict = "reject (failed gate)"
		case p.CandidatePct > cfg.AdoptMarginPct:
			p.Verdict = "keep"
		case p.CandidatePct < -cfg.AdoptMarginPct:
			p.Verdict = "revert"
		default:
			p.Verdict = "neutral"
		}
		rep.Principles = append(rep.Principles, p)
	}
	sort.SliceStable(rep.Principles, func(i, j int) bool {
		return rep.Principles[i].CandidatePct > rep.Principles[j].CandidatePct
	})
	logf("evolve: best %s at %.0f rps (%+.1f%% vs baseline)", rep.Best.Label,
		rep.Best.Objective(), pctDelta(rep.Best.Objective(), rep.Baseline.Objective()))
	return rep, nil
}

// pctDelta is (a-b)/b in percent; 0 when the base is degenerate.
func pctDelta(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return (a - b) / b * 100
}

// PrinciplesTable renders the findings as a markdown table with the run
// identity in a header line — the artifact `ldpload -evolve` prints and the
// README commits.
func (r *Report) PrinciplesTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Evolved on scenario %q (seed %d); baseline %s at %.0f rps; best %q at %.0f rps.\n\n",
		r.Scenario, r.Seed, r.Baseline.Params, r.Baseline.Objective(), r.Best.Label, r.Best.Objective())
	b.WriteString("| knob | move | Δ vs baseline | ablation Δ | verdict |\n")
	b.WriteString("|------|------|--------------:|-----------:|---------|\n")
	for _, p := range r.Principles {
		ab := "—"
		if p.AblationPct != 0 {
			ab = fmt.Sprintf("%+.1f%%", p.AblationPct)
		}
		fmt.Fprintf(&b, "| %s | %s | %+.1f%% | %s | %s |\n", p.Knob, p.Move, p.CandidatePct, ab, p.Verdict)
	}
	return b.String()
}
