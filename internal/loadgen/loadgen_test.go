package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestZipfTableDeterministicAndNormalized(t *testing.T) {
	z := newZipfTable(64, 1.1)
	if got := z.cdf[63]; got != 1 {
		t.Fatalf("cdf tail = %v, want exactly 1", got)
	}
	// Head-heavy: rank 0 must hold more mass than ranks 32..63 combined.
	head := z.cdf[0]
	tail := z.cdf[63] - z.cdf[31]
	if head <= tail {
		t.Fatalf("zipf s=1.1 not head-heavy: head %v <= tail %v", head, tail)
	}
	// Same parameters → identical table.
	z2 := newZipfTable(64, 1.1)
	for r := range z.cdf {
		if z.cdf[r] != z2.cdf[r] {
			t.Fatalf("cdf[%d] differs across builds: %v vs %v", r, z.cdf[r], z2.cdf[r])
		}
	}
	// Uniform degenerate case.
	u := newZipfTable(4, 0)
	if u.sample(0.0) != 0 || u.sample(0.26) != 1 || u.sample(0.99) != 3 {
		t.Fatalf("uniform table samples wrong: %d %d %d", u.sample(0.0), u.sample(0.26), u.sample(0.99))
	}
}

func TestPopulationReproducible(t *testing.T) {
	scn := SmokeScenario(42)
	scn.Clients = 20000
	a := buildPopulation(&scn)
	b := buildPopulation(&scn)
	if a.Participants != b.Participants || a.Abandoned != b.Abandoned {
		t.Fatalf("counts differ: (%d,%d) vs (%d,%d)", a.Participants, a.Abandoned, b.Participants, b.Abandoned)
	}
	for v := range a.Truth {
		if a.Truth[v] != b.Truth[v] {
			t.Fatalf("truth[%d] differs: %v vs %v", v, a.Truth[v], b.Truth[v])
		}
	}
	if a.Abandoned == 0 {
		t.Fatal("abandon rate 0.02 over 20k clients produced zero abandonments")
	}
	// A different seed moves the population.
	scn2 := scn
	scn2.Seed = 43
	c := buildPopulation(&scn2)
	same := c.Participants == a.Participants && c.Abandoned == a.Abandoned
	if same {
		for v := range a.Truth {
			if a.Truth[v] != c.Truth[v] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical population")
	}
}

func TestPopulationPhaseShiftMovesHotHead(t *testing.T) {
	scn := SmokeScenario(7)
	scn.Clients = 30000
	scn.AbandonRate = 0
	p := buildPopulation(&scn)
	// Per-phase histograms: the argmax must move by ShiftPerPhase between
	// phases (modulo the domain) because item = (rank + phase·shift) % n.
	hot := make([]int, scn.Phases)
	for ph := 0; ph < scn.Phases; ph++ {
		hist := make([]float64, scn.Domain)
		for c := p.phaseStart[ph]; c < p.phaseStart[ph+1]; c++ {
			item, ab := p.client(c)
			if !ab {
				hist[item]++
			}
		}
		best := 0
		for v := range hist {
			if hist[v] > hist[best] {
				best = v
			}
		}
		hot[ph] = best
	}
	for ph := 1; ph < scn.Phases; ph++ {
		want := (hot[0] + ph*scn.ShiftPerPhase) % scn.Domain
		if hot[ph] != want {
			t.Fatalf("phase %d hot item = %d, want %d (phase 0 hot %d shifted)", ph, hot[ph], want, hot[0])
		}
	}
}

func TestWorkerRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ clients, workers int }{{10, 3}, {100, 8}, {7, 7}, {5, 8}, {50001, 8}} {
		seen := 0
		prevHi := 0
		for w := 0; w < tc.workers; w++ {
			lo, hi := workerRange(tc.clients, tc.workers, w)
			if lo != prevHi {
				t.Fatalf("clients=%d workers=%d: worker %d starts at %d, want %d", tc.clients, tc.workers, w, lo, prevHi)
			}
			seen += hi - lo
			prevHi = hi
		}
		if seen != tc.clients || prevHi != tc.clients {
			t.Fatalf("clients=%d workers=%d: partition covers %d ending at %d", tc.clients, tc.workers, seen, prevHi)
		}
	}
}

// TestRunReproducibleInProc drives a small scenario twice (in-process shards,
// full fault schedule) and asserts the deterministic scorecard sections are
// bit-identical and the run passes the exactly-once + envelope gate.
func TestRunReproducibleInProc(t *testing.T) {
	if testing.Short() {
		t.Skip("in-proc run takes a few seconds")
	}
	scn := SmokeScenario(1234)
	scn.Name = "inproc-repro"
	scn.Clients = 6000
	scn.Workers = 4
	scn.Batch = 256
	run := func() *Scorecard {
		t.Helper()
		card, err := Run(context.Background(), RunConfig{
			Scenario: scn,
			Deploy: DeployConfig{
				Shards:  2,
				BaseDir: t.TempDir(),
				Shard:   ShardConfig{CheckpointEvery: 2000, CollectorShards: 4},
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return card
	}
	a := run()
	if !a.Passed() {
		t.Fatalf("run failed gate: exactly-once=%v (acked %d absorbed %d) in-envelope=%v (max cell err %.2f env %.2f)",
			a.Counts.ExactlyOnce, a.Counts.AckedReports, a.Counts.AbsorbedReports,
			a.Estimates.InEnvelope, a.Estimates.MaxAbsCellError, a.Estimates.CellEnvelope)
	}
	if a.Counts.ScheduleFired != a.Counts.ScheduleEvents {
		t.Fatalf("schedule fired %d of %d events", a.Counts.ScheduleFired, a.Counts.ScheduleEvents)
	}
	if a.Ops.MinShardsReady >= 2 {
		t.Fatalf("kill+drain schedule never degraded readiness: min ready %d", a.Ops.MinShardsReady)
	}
	b := run()
	if !a.DeterministicEqual(b) {
		t.Fatalf("scorecards diverge at same seed:\n a: %+v %+v\n b: %+v %+v",
			a.Counts, a.Estimates, b.Counts, b.Estimates)
	}
}

// TestRunScheduleAppliesFaults sanity-checks Apply plumbing without a full
// run: deploy, kill a shard, watch readiness drop, restart, watch it recover.
func TestRunScheduleAppliesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a live deployment")
	}
	ctx := context.Background()
	d, err := Deploy(ctx, DeployConfig{
		Shards:  2,
		BaseDir: t.TempDir(),
		Shard: ShardConfig{
			Mechanism: "oue", Domain: 16, Epsilon: 1, Workload: "Histogram",
			CheckpointEvery: 1000, CollectorShards: 2,
		},
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer d.Close()
	if err := d.Apply(ctx, chaos.Event{Kind: chaos.EventKill, Shard: 0}); err != nil {
		t.Fatalf("kill: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool { return d.ReadyCount() == 1 }, "fleet never saw the kill")
	if err := d.Apply(ctx, chaos.Event{Kind: chaos.EventRestart, Shard: 0}); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := d.waitReady(ctx, 2, 15*time.Second); err != nil {
		t.Fatalf("restarted shard never re-admitted: %v", err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
