package loadgen

import (
	randv2 "math/rand/v2"
)

// splitmix64 is the canonical seed mixer — one round turns correlated inputs
// (seed ^ small client index) into independent-looking streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// clientSeed derives client c's private stream seed from the scenario seed.
func clientSeed(seed uint64, c int) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(c)+1))
}

// population is the precomputed, deterministic half of a scenario: which
// clients participate, what item each reports, and the exact ground-truth
// histogram the final estimates are scored against. Everything here is a
// pure function of (scenario, seed) — no wall clock, no goroutine order.
type population struct {
	scn        *Scenario
	zipf       *zipfTable
	phaseStart []int // phaseStart[p] = first client index of phase p

	Truth        []float64 // per-item participant counts
	Participants int64
	Abandoned    int64
}

// buildPopulation derives the client set. Phase boundaries allocate clients
// proportionally to the arrival weights (bursty phases hold more clients),
// flooring per phase with the remainder in the last — integer, deterministic.
func buildPopulation(scn *Scenario) *population {
	p := &population{scn: scn, zipf: newZipfTable(scn.Domain, scn.ZipfS), Truth: make([]float64, scn.Domain)}
	weights := scn.Arrivals
	if weights == nil {
		weights = make([]float64, scn.Phases)
		for i := range weights {
			weights[i] = 1
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	p.phaseStart = make([]int, scn.Phases+1)
	acc := 0.0
	for i, w := range weights {
		acc += w
		p.phaseStart[i+1] = int(float64(scn.Clients) * acc / total)
	}
	p.phaseStart[scn.Phases] = scn.Clients
	for c := 0; c < scn.Clients; c++ {
		item, abandoned := p.client(c)
		if abandoned {
			p.Abandoned++
			continue
		}
		p.Participants++
		p.Truth[item]++
	}
	return p
}

// phaseOf maps a client index to its arrival phase.
func (p *population) phaseOf(c int) int {
	// Phases are few; a linear scan beats binary search setup.
	for ph := p.scn.Phases - 1; ph > 0; ph-- {
		if c >= p.phaseStart[ph] {
			return ph
		}
	}
	return 0
}

// client derives client c's deterministic behavior: the item it would report
// and whether it abandons before reporting. The draws come from the client's
// private PCG stream in a fixed order, so the answer is identical no matter
// which worker asks or when.
func (p *population) client(c int) (item int, abandoned bool) {
	cs := clientSeed(p.scn.Seed, c)
	rng := randv2.New(randv2.NewPCG(cs, splitmix64(cs)))
	if p.scn.AbandonRate > 0 && rng.Float64() < p.scn.AbandonRate {
		return 0, true
	}
	rank := p.zipf.sample(rng.Float64())
	// Time-shifting popularity: each phase rotates rank → item, so the hot
	// head of the distribution moves across the domain over the run.
	shift := p.phaseOf(c) * p.scn.ShiftPerPhase
	return (rank + shift) % p.scn.Domain, false
}

// workerRange statically partitions [0, clients) across workers: worker w
// gets a contiguous slice, so batch composition depends only on the
// partition, never on scheduling.
func workerRange(clients, workers, w int) (lo, hi int) {
	per := clients / workers
	rem := clients % workers
	lo = w*per + min(w, rem)
	hi = lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}
