package loadgen

import (
	"context"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	ldp "repro"
	"repro/internal/chaos"
)

// RunConfig is one simulator run: a scenario (traffic shape + faults) driven
// against a deployment this run builds and tears down.
type RunConfig struct {
	Scenario Scenario
	Deploy   DeployConfig
	// TargetRPS paces the offered load (0 = as fast as the pipeline takes
	// it). Phase arrival weights scale the instantaneous rate, so a {1,4,1}
	// arrival shape is a real 4× burst in time, not just population. Pacing
	// affects timing only — never counts.
	TargetRPS float64
	// SettleTimeout bounds the settle phase (default 2 minutes): heal, let
	// killed shards recover, and flush until every offered report is
	// acknowledged.
	SettleTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Run executes the scenario and returns the scorecard. The deterministic
// sections (Counts, Estimates) are bit-identical across runs at the same
// seed; Ops varies.
func Run(ctx context.Context, cfg RunConfig) (*Scorecard, error) {
	scn := cfg.Scenario
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 2 * time.Minute
	}

	pop := buildPopulation(&scn)
	logf("population: %d clients, %d participants, %d abandoned, truth mass %.0f",
		scn.Clients, pop.Participants, pop.Abandoned, float64(pop.Participants))

	// The deployment inherits the scenario's mechanism identity.
	dcfg := cfg.Deploy
	dcfg.Shard.Mechanism = scn.Mechanism
	dcfg.Shard.Domain = scn.Domain
	dcfg.Shard.Epsilon = scn.Epsilon
	dcfg.Shard.Workload = scn.Workload
	if dcfg.Seed == 0 {
		dcfg.Seed = scn.Seed
	}
	d, err := Deploy(ctx, dcfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	logf("deployed: router %s fronting %d shard(s)", d.RouterURL, dcfg.Shards)

	card := &Scorecard{
		Scenario: scn.Name, Seed: scn.Seed, Mechanism: scn.Mechanism,
		Domain: scn.Domain, Epsilon: scn.Epsilon, Shards: dcfg.Shards,
	}
	card.Counts.Clients = int64(scn.Clients)
	card.Counts.Abandoned = pop.Abandoned
	card.Counts.Participants = pop.Participants
	card.Counts.OfferedReports = pop.Participants
	card.Counts.TruthTotal = float64(pop.Participants)
	card.Counts.ScheduleEvents = len(scn.Schedule)

	// Shared (lock-free) scoring state the transport observers feed.
	var hist latencyHist
	var requests, reportPosts, retried atomic.Int64
	observer := func(op string, dur time.Duration, status int, err error) {
		requests.Add(1)
		if op == "reports" {
			reportPosts.Add(1)
			hist.observe(dur)
		}
		if err != nil || status >= 300 || status == 0 {
			retried.Add(1)
		}
	}

	policy := ldp.DefaultRemoteRetryPolicy()
	if scn.RetryStorm {
		// Storm discipline: many fast attempts. Combined with lossy fault
		// plans this hammers the idempotency layer with duplicate sends.
		policy.MaxAttempts = 8
		policy.InitialBackoff = 10 * time.Millisecond
		policy.MaxBackoff = 250 * time.Millisecond
	}

	w, err := ldp.WorkloadByName(scn.Workload, scn.Domain)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	// One RemoteCollector per worker: private buffers (deterministic batch
	// composition from the static client partition), shared scoring.
	collectors := make([]*ldp.RemoteCollector, scn.Workers)
	for i := range collectors {
		opts := []ldp.RemoteOption{
			ldp.WithRemoteObserver(observer),
			ldp.WithRemoteRetryPolicy(policy),
		}
		if scn.Batch > 0 {
			opts = append(opts, ldp.WithRemoteBatch(scn.Batch))
		}
		rc, err := ldp.NewRemoteCollector(d.RouterURL, d.mech.Agg, w, opts...)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		collectors[i] = rc
	}

	// The fault scheduler: fires schedule events as offered-load progress
	// crosses their thresholds, and tracks the worst readiness dip.
	sched := chaos.NewSchedule(scn.Schedule...)
	var offered atomic.Int64
	fired := 0
	minReady := dcfg.Shards
	schedDone := make(chan struct{})
	schedStop := make(chan struct{})
	go func() {
		defer close(schedDone)
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-schedStop:
				return
			case <-ticker.C:
				if r := d.ReadyCount(); r < minReady {
					minReady = r
				}
				progress := float64(offered.Load()) / float64(max(pop.Participants, 1))
				for _, ev := range sched.Due(progress) {
					logf("schedule: %s shard %d at progress %.2f", ev.Kind, ev.Shard, progress)
					if err := d.Apply(ctx, ev); err != nil {
						logf("schedule: %s shard %d failed: %v", ev.Kind, ev.Shard, err)
						continue
					}
					fired++
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	workerErrs := make([]error, scn.Workers)
	for wi := 0; wi < scn.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			workerErrs[wi] = runWorker(ctx, &scn, pop, collectors[wi], wi, &offered, cfg.TargetRPS, start)
		}(wi)
	}
	wg.Wait()
	for _, werr := range workerErrs {
		if werr != nil {
			close(schedStop)
			<-schedDone
			return nil, werr
		}
	}
	logf("offered all %d reports in %v; settling", pop.Participants, time.Since(start).Round(time.Millisecond))

	// Fire whatever the schedule still holds (heals, restarts) before
	// settling — progress is complete by definition now.
	for _, ev := range sched.Due(1.0) {
		logf("schedule (settle): %s shard %d", ev.Kind, ev.Shard)
		if err := d.Apply(ctx, ev); err != nil {
			return nil, fmt.Errorf("loadgen: settle-phase %s on shard %d: %w", ev.Kind, ev.Shard, err)
		}
		fired++
	}
	close(schedStop)
	<-schedDone
	card.Counts.ScheduleFired = fired

	// Settle: every shard back in rotation, then flush until every buffered
	// batch is acknowledged. This loop is what turns "retry until success"
	// into the deterministic acked == offered invariant.
	settleCtx, cancel := context.WithTimeout(ctx, cfg.SettleTimeout)
	defer cancel()
	if err := d.waitReady(settleCtx, dcfg.Shards, cfg.SettleTimeout); err != nil {
		return nil, fmt.Errorf("loadgen: settle: %w", err)
	}
	for {
		allFlushed := true
		for _, rc := range collectors {
			if err := rc.Flush(settleCtx); err != nil {
				allFlushed = false
			}
		}
		if allFlushed {
			break
		}
		select {
		case <-settleCtx.Done():
			return nil, fmt.Errorf("loadgen: settle: unflushed batches after %v", cfg.SettleTimeout)
		case <-time.After(100 * time.Millisecond):
		}
	}
	card.Counts.AckedReports = pop.Participants
	elapsed := time.Since(start)

	// Final read: merged snapshot + coverage, estimates vs ground truth.
	snap, cov, err := d.Snap(settleCtx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final snapshot: %w", err)
	}
	card.Counts.AbsorbedReports = int64(snap.Count() + 0.5)
	card.Counts.ExactlyOnce = card.Counts.AbsorbedReports == card.Counts.AckedReports
	est := d.mech.Agg.EstimateCounts(snap.State(), snap.Count())
	card.Estimates, err = scoreEstimates(d.mech, est, pop.Truth, snap.Count())
	if err != nil {
		return nil, err
	}

	// Ops: timing, coverage, WAL facts, chaos counters.
	card.Ops.DurationSec = elapsed.Seconds()
	if s := elapsed.Seconds(); s > 0 {
		card.Ops.Throughput = float64(card.Counts.AckedReports) / s
	}
	card.Ops.P50Ms = hist.quantile(0.50)
	card.Ops.P99Ms = hist.quantile(0.99)
	card.Ops.P999Ms = hist.quantile(0.999)
	card.Ops.MaxMs = float64(hist.maxNs.Load()) / 1e6
	card.Ops.Requests = requests.Load()
	card.Ops.ReportPosts = reportPosts.Load()
	card.Ops.Retried = retried.Load()
	card.Ops.ShardsMerged = cov.Merged()
	card.Ops.ShardsTotal = cov.Total
	card.Ops.ShardsStale = cov.Stale
	card.Ops.MinShardsReady = minReady
	healths := d.ShardHealth(settleCtx)
	for _, h := range healths {
		if h.Durability == nil {
			continue
		}
		card.Ops.WALRecordLag += h.Durability.WALRecordLag
		card.Ops.WALByteLag += h.Durability.WALByteLag
		if h.Durability.CheckpointSeq > card.Ops.CheckpointSeq {
			card.Ops.CheckpointSeq = h.Durability.CheckpointSeq
		}
	}
	// Telemetry reconciliation: the /metrics view must agree with the
	// /healthz facts just polled; a disagreement fails the card.
	card.Ops.Metrics = d.MetricsCheck(settleCtx, healths)
	card.Ops.Chaos = d.ChaosStats()

	logf("scorecard: acked=%d absorbed=%d exactly-once=%v max-cell-err=%.1f (envelope %.1f) in-envelope=%v p99=%.1fms throughput=%.0f rps",
		card.Counts.AckedReports, card.Counts.AbsorbedReports, card.Counts.ExactlyOnce,
		card.Estimates.MaxAbsCellError, card.Estimates.CellEnvelope, card.Estimates.InEnvelope,
		card.Ops.P99Ms, card.Ops.Throughput)
	return card, nil
}

// runWorker offers this worker's static slice of the client population:
// derive each client's deterministic behavior, randomize its report from its
// private stream, and hand full batches to the worker's RemoteCollector.
// Offered progress advances as reports are generated (buffered locally), so
// the fault scheduler keeps moving even while shipping is stalled — and a
// stuck batch costs one retry cycle per batch, not per client. Transient
// ship errors are the retry discipline's business (the settle phase
// guarantees delivery); only report construction errors abort the run.
func runWorker(ctx context.Context, scn *Scenario, pop *population, rc *ldp.RemoteCollector,
	wi int, offered *atomic.Int64, targetRPS float64, start time.Time) error {
	lo, hi := workerRange(scn.Clients, scn.Workers, wi)
	client, err := ldp.NewClient(pop.scn.rzOf())
	if err != nil {
		return fmt.Errorf("loadgen: worker %d: %w", wi, err)
	}
	src := mrand.NewSource(1)
	rng := mrand.New(src)
	perWorkerRPS := targetRPS / float64(scn.Workers)
	batchSize := scn.Batch
	if batchSize <= 0 {
		batchSize = 1024
	}
	pending := make([]ldp.Report, 0, batchSize)
	sent := 0
	for c := lo; c < hi; c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		item, abandoned := pop.client(c)
		if abandoned {
			continue
		}
		// The report stream is the client's own: seeded from (seed, client),
		// independent of worker assignment.
		src.Seed(int64(clientSeed(scn.Seed, c) >> 1)) // >>1: Seed takes int64, keep it non-negative
		rep, err := client.Randomize(item, rng)
		if err != nil {
			return fmt.Errorf("loadgen: randomize client %d: %w", c, err)
		}
		pending = append(pending, rep)
		offered.Add(1)
		sent++
		if len(pending) >= batchSize {
			_ = rc.IngestBatch(ctx, pending) // transient errors settle later
			pending = pending[:0]
		}
		if perWorkerRPS > 0 {
			pace(ctx, scn, pop, c, sent, perWorkerRPS, start)
		}
	}
	if len(pending) > 0 {
		_ = rc.IngestBatch(ctx, pending)
	}
	return nil
}

// pace sleeps just enough to hold the worker near its per-phase target rate:
// the base rate scaled by the current phase's arrival weight (relative to
// the mean weight), so burst phases run proportionally hotter.
func pace(ctx context.Context, scn *Scenario, pop *population, c, sent int, baseRPS float64, start time.Time) {
	weight := 1.0
	if scn.Arrivals != nil {
		total := 0.0
		for _, a := range scn.Arrivals {
			total += a
		}
		mean := total / float64(len(scn.Arrivals))
		if mean > 0 {
			weight = scn.Arrivals[pop.phaseOf(c)] / mean
		}
	}
	rate := baseRPS * weight
	if rate <= 0 {
		return
	}
	ahead := time.Duration(float64(sent)/rate*float64(time.Second)) - time.Since(start)
	if ahead > time.Millisecond {
		select {
		case <-ctx.Done():
		case <-time.After(ahead):
		}
	}
}

// rzOf returns the scenario's randomizer (building the mechanism is cheap
// and deterministic for every supported mechanism).
func (s *Scenario) rzOf() ldp.Randomizer {
	m, err := BuildMechanism(s.Mechanism, s.Domain, s.Epsilon)
	if err != nil {
		panic(err) // Validate() already proved this builds
	}
	return m.Rz
}
