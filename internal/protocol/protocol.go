// Package protocol defines the transport-agnostic client/collector contract
// every LDP mechanism in this repository speaks: a Randomizer encodes one
// user's type into a Report on the client, an Aggregator absorbs reports and
// estimates per-type counts on the (untrusted) server. Strategy-matrix
// mechanisms (the paper's factorization mechanisms) and the frequency oracles
// of Wang et al. (OUE, OLH, RAPPOR) both implement it, so one
// Client/Server/Collector pipeline, one simulator, and one wire format serve
// the whole library.
//
// The aggregation state is deliberately a plain []float64 accumulator owned
// by the caller, not by the Aggregator: states are mergeable by element-wise
// addition, which is what makes contention-free sharded ingest (one
// accumulator per shard, merge on snapshot) and distributed collection (one
// accumulator per collector node) work without any mechanism-specific code.
package protocol

import (
	"fmt"
	"math"
	"math/rand"
)

// CheckEpsilon is the one ε-validity predicate every layer that accepts a
// privacy budget from outside (wire loaders, oracle constructors) shares: ε
// must be a positive finite number no larger than the caller's cap. NaN and
// ±Inf poison every downstream exp/ratio computation, and each layer picks
// its own max for where the mechanism arithmetic degenerates — but the
// predicate itself lives here once, so the policies cannot drift apart.
func CheckEpsilon(eps, max float64) error {
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps <= 0 {
		return fmt.Errorf("privacy budget ε must be a positive finite number, got %v", eps)
	}
	if eps > max {
		return fmt.Errorf("ε = %v exceeds the supported maximum %v", eps, max)
	}
	return nil
}

// Report is the single wire format a client sends to the collector. Exactly
// which fields carry information depends on the mechanism family:
//
//   - strategy-matrix mechanisms: Index is the sampled output o ∈ [0, m);
//   - OLH: Seed is the per-report hash seed, Index the perturbed hash value;
//   - unary encoding (OUE / RAPPOR): Bits is the perturbed one-hot vector.
//
// The zero-valued fields of the unused family cost nothing on the wire
// (encoding/gob omits zero values) and the struct is flat, so any transport —
// gob, JSON, protobuf-alike — can carry it.
type Report struct {
	// Index is an output index (strategy mechanisms) or the perturbed hash
	// value (OLH).
	Index int
	// Seed is the per-report hash seed (OLH only).
	Seed uint64
	// Bits is the perturbed unary encoding (OUE / RAPPOR only).
	Bits []bool
}

// Randomizer is the client side of the protocol: it encodes one user's true
// type into a randomized Report. Randomize is the only operation in the whole
// system that ever sees a true type, and its output satisfies ε-LDP — that is
// the privacy boundary.
type Randomizer interface {
	// Domain returns the number of user types accepted.
	Domain() int
	// Epsilon returns the privacy budget each report satisfies.
	Epsilon() float64
	// Randomize encodes user type u (0 ≤ u < Domain) into one report using
	// the supplied randomness source.
	Randomize(u int, rng *rand.Rand) (Report, error)
}

// Aggregator is the server side of the protocol: it folds reports into a
// mergeable accumulator vector and converts a (merged) accumulator into
// unbiased per-type count estimates.
//
// Accumulator contract: a valid state is any []float64 of length StateLen
// that is either all zeros (empty) or the element-wise sum of states produced
// by Absorb. Summing two states yields the state of the concatenated report
// streams — the property sharded and distributed collectors rely on.
type Aggregator interface {
	// Domain returns the number of user types estimated.
	Domain() int
	// StateLen returns the accumulator width.
	StateLen() int
	// Check fully validates a report without touching any state. A report
	// that passes Check must be absorbable by Absorb without error.
	Check(r Report) error
	// Absorb validates r and folds it into acc (length StateLen). On error,
	// acc is left exactly as it was — Absorb never applies a report
	// partially.
	Absorb(acc []float64, r Report) error
	// EstimateCounts converts an accumulator holding count absorbed reports
	// into unbiased estimates of the per-type counts. acc is not modified.
	EstimateCounts(acc []float64, count float64) []float64
}
