package core

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/opt"
)

// Workspace holds every scratch buffer one optimization run needs at a fixed
// shape (m outputs × n user types), so steady-state iterations of Algorithm 2
// allocate nothing: objective/gradient evaluation, the candidate step, the
// momentum state, and the double-buffered projection all reuse the buffers
// here.
//
// Contract: the Workspace owns its scratch. The grad destination passed to
// ObjectiveGrad must not alias that call's inputs (q, gram, prior) or the
// objective/gradient scratch fields (d, dinv, qs, gamma, msym, y, yt, s, the
// Cholesky factor) — ObjectiveGrad writes those while grad is being filled.
// The loop-state fields (grad/gradNext, cand, velQ, bestQ, the z buffers,
// the projections) are not touched by ObjectiveGrad, which is how run
// double-buffers gradients through ws.grad/ws.gradNext. A Workspace is not
// safe for concurrent use — give each goroutine its own (the methods
// themselves fan out internally via linalg's parallel kernels, which is why
// per-run parallelism composes with the experiment harness's per-cell
// parallelism).
type Workspace struct {
	m, n int

	// Objective/gradient scratch: D_p diagonal and its inverse, Qs = D⁻¹Q,
	// M = QᵀD⁻¹Q, Y = M⁻¹G, its transpose, S = M⁻¹GᵀM⁻¹, Γ = Qs·S, and the
	// reusable Cholesky factor of M.
	d, dinv   []float64
	qs, gamma *linalg.Matrix
	msym      *linalg.Matrix
	y, yt, s  *linalg.Matrix
	chol      linalg.Cholesky

	// Projected-gradient loop state (used by run): current/candidate
	// gradient, candidate Q, momentum velocity, best iterate, the bound
	// vector z and its step buffers, and the double-buffered projection.
	grad, gradNext    *linalg.Matrix
	cand, velQ        *linalg.Matrix
	bestQ             *linalg.Matrix
	z, gz, newZ, velZ []float64
	proj, projNext    opt.MatrixProjection
	scratch           opt.Scratch
}

// NewWorkspace allocates a workspace for strategies with m outputs over a
// domain of n user types.
func NewWorkspace(m, n int) *Workspace {
	return &Workspace{
		m: m, n: n,
		d:     make([]float64, m),
		dinv:  make([]float64, m),
		qs:    linalg.New(m, n),
		gamma: linalg.New(m, n),
		msym:  linalg.New(n, n),
		y:     linalg.New(n, n),
		yt:    linalg.New(n, n),
		s:     linalg.New(n, n),

		grad:     linalg.New(m, n),
		gradNext: linalg.New(m, n),
		cand:     linalg.New(m, n),
		velQ:     linalg.New(m, n),
		bestQ:    linalg.New(m, n),
		z:        make([]float64, m),
		gz:       make([]float64, m),
		newZ:     make([]float64, m),
		velZ:     make([]float64, m),
	}
}

// ObjectiveGrad evaluates L(Q) = tr[(QᵀD_p⁻¹Q)⁻¹ G] and writes its gradient
// into grad (shape m×n, caller-owned); a nil prior means p = 1 (the paper's
// uniform objective). It returns an error when QᵀD_p⁻¹Q is numerically
// singular (the strategy cannot express a full-rank workload). Steady-state
// calls allocate nothing.
func (ws *Workspace) ObjectiveGrad(q, gram *linalg.Matrix, prior []float64, grad *linalg.Matrix) (float64, error) {
	m, n := ws.m, ws.n
	if q.Rows() != m || q.Cols() != n {
		return 0, fmt.Errorf("core: workspace is %dx%d, Q is %dx%d", m, n, q.Rows(), q.Cols())
	}
	if prior == nil {
		q.RowSumsTo(ws.d)
	} else {
		q.MulVecTo(ws.d, prior)
	}
	for i, v := range ws.d {
		if v <= 0 {
			return 0, fmt.Errorf("core: output %d has zero mass", i)
		}
		ws.dinv[i] = 1 / v
	}
	q.ScaleRowsTo(ws.qs, ws.dinv)      // D⁻¹Q
	linalg.MulAtBTo(ws.msym, q, ws.qs) // M = QᵀD⁻¹Q
	ws.msym.Symmetrize()

	if err := ws.chol.Factor(ws.msym); err != nil {
		return 0, fmt.Errorf("core: M = QᵀD⁻¹Q singular: %w", err)
	}
	ws.chol.SolveTo(ws.y, gram) // M⁻¹G
	obj := ws.y.Trace()
	ws.y.TransposeTo(ws.yt)
	ws.chol.SolveTo(ws.s, ws.yt) // M⁻¹GᵀM⁻¹ = S (G symmetric)
	ws.s.Symmetrize()

	linalg.MulTo(ws.gamma, ws.qs, ws.s) // Γ = D⁻¹QS (m×n)
	for o := 0; o < m; o++ {
		h := linalg.Dot(ws.gamma.Row(o), ws.qs.Row(o)) // diag(Qs S Qsᵀ)_o
		gRow := grad.Row(o)
		gaRow := ws.gamma.Row(o)
		if prior == nil {
			for u := 0; u < n; u++ {
				gRow[u] = -2*gaRow[u] + h
			}
		} else {
			// dD_p = Diag(dQ·p): the h term picks up the prior weight.
			for u := 0; u < n; u++ {
				gRow[u] = -2*gaRow[u] + h*prior[u]
			}
		}
	}
	return obj, nil
}
