package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mechanism"
	"repro/internal/workload"
)

// The prior-weighted gradient must match finite differences, exactly like the
// uniform one.
func TestPriorGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, m := 4, 9
	gram := workload.NewPrefix(n).Gram()
	prior := []float64{2.1, 0.4, 1.0, 0.5} // already positive and scaled
	q := randPositive(rng, m, n)
	obj, grad, err := ObjectiveGradPrior(q, gram, prior)
	if err != nil {
		t.Fatal(err)
	}
	if obj <= 0 {
		t.Fatalf("objective = %v", obj)
	}
	const h = 1e-6
	for trial := 0; trial < 25; trial++ {
		o := rng.Intn(m)
		u := rng.Intn(n)
		qp := q.Clone()
		qp.Set(o, u, qp.At(o, u)+h)
		objP, _, err := ObjectiveGradPrior(qp, gram, prior)
		if err != nil {
			t.Fatal(err)
		}
		qm := q.Clone()
		qm.Set(o, u, qm.At(o, u)-h)
		objM, _, err := ObjectiveGradPrior(qm, gram, prior)
		if err != nil {
			t.Fatal(err)
		}
		fd := (objP - objM) / (2 * h)
		if math.Abs(fd-grad.At(o, u)) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("prior grad (%d,%d): analytic %v vs fd %v", o, u, grad.At(o, u), fd)
		}
	}
}

// The uniform prior must reproduce the unweighted objective exactly.
func TestUniformPriorMatchesUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, m := 5, 12
	gram := workload.NewAllRange(n).Gram()
	q := randPositive(rng, m, n)
	obj1, g1, err := ObjectiveGrad(q, gram)
	if err != nil {
		t.Fatal(err)
	}
	obj2, g2, err := ObjectiveGradPrior(q, gram, linalg.Ones(n))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj1-obj2) > 1e-9*(1+obj1) {
		t.Fatalf("objectives differ: %v vs %v", obj1, obj2)
	}
	if !linalg.ApproxEqual(g1, g2, 1e-9*(1+g1.MaxAbs())) {
		t.Fatal("gradients differ under the uniform prior")
	}
}

// Optimizing for a concentrated prior must reduce the prior-weighted variance
// relative to the uniform-optimized strategy.
func TestPriorOptimizationHelpsOnMatchedData(t *testing.T) {
	n := 16
	eps := 1.0
	w := workload.NewHistogram(n)
	// Prior: nearly all users are of the first four types.
	prior := make([]float64, n)
	for u := 0; u < 4; u++ {
		prior[u] = 0.25
	}
	uniform, err := Optimize(w, eps, Options{Iters: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Optimize(w, eps, Options{Iters: 400, Seed: 13, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if err := weighted.Strategy.Validate(1e-7); err != nil {
		t.Fatalf("prior-optimized strategy violates LDP: %v", err)
	}

	// Evaluate both with their own deployment reconstructions on data drawn
	// from the prior.
	x := make([]float64, n)
	for u := 0; u < 4; u++ {
		x[u] = 250
	}
	mu, err := mechanism.NewFactorizationWithPrior("uniform", uniform.Strategy, nil)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := mechanism.NewFactorizationWithPrior("weighted", weighted.Strategy, weighted.PriorWeights)
	if err != nil {
		t.Fatal(err)
	}
	vu, err := mu.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := mw.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if vw.OnData(x) >= vu.OnData(x) {
		t.Fatalf("prior-optimized variance %v not below uniform-optimized %v on matched data",
			vw.OnData(x), vu.OnData(x))
	}
}

func TestPriorValidation(t *testing.T) {
	w := workload.NewHistogram(4)
	cases := [][]float64{
		{1, 2, 3},     // wrong length
		{0, 0, 0, 0},  // no mass
		{1, -1, 1, 1}, // negative
		{1, math.NaN(), 1, 1},
	}
	for i, p := range cases {
		if _, err := Optimize(w, 1, Options{Iters: 5, StepSize: 1e-3, Prior: p}); err == nil {
			t.Fatalf("case %d: expected error for invalid prior %v", i, p)
		}
	}
	// A sparse-but-valid prior is smoothed, not rejected.
	if _, err := Optimize(w, 1, Options{Iters: 10, StepSize: 1e-3, Prior: []float64{1, 0, 0, 0}}); err != nil {
		t.Fatalf("sparse prior should be smoothed and accepted: %v", err)
	}
}

func TestNormalizePrior(t *testing.T) {
	out, err := normalizePrior([]float64{3, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sums to n with smoothing.
	if math.Abs(out[0]+out[1]-2) > 1e-12 {
		t.Fatalf("normalized prior sums to %v, want 2", out[0]+out[1])
	}
	if out[0] <= out[1] {
		t.Fatal("ordering lost in normalization")
	}
	// Zero entries become small but positive.
	out2, err := normalizePrior([]float64{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out2[1] <= 0 {
		t.Fatalf("smoothing failed: %v", out2)
	}
	if nilOut, err := normalizePrior(nil, 5); err != nil || nilOut != nil {
		t.Fatal("nil prior must pass through")
	}
}
