// Package core implements the paper's primary contribution: strategy
// optimization for the workload factorization mechanism (Section 4,
// Algorithm 2).
//
// Given a workload W (through its Gram matrix G = WᵀW) and a privacy budget
// ε, it solves Problem 3.12,
//
//	minimize_{Q,z}  L(Q) = tr[(QᵀD⁻¹Q)⁺ G],  D = Diag(Q·1)
//	subject to      Qᵀ1 = 1,  0 ≤ z ≤ qᵤ ≤ e^ε·z,
//
// by projected gradient descent: each iteration takes a gradient step on the
// auxiliary bound vector z and on Q, then projects Q's columns back onto the
// bounded probability simplex (Algorithm 1, internal/opt).
//
// The paper computes gradients with autograd; here they are derived
// analytically (and cross-checked in tests against finite differences and the
// reverse-mode tape in internal/autodiff):
//
//	With M = QᵀD⁻¹Q, S = M⁻¹ G M⁻¹, Qs = D⁻¹Q, Γ = Qs·S (m×n), and
//	h = diag(Qs·S·Qsᵀ):
//	    ∂L/∂Q_{ou} = −2·Γ_{ou} + h_o,
//
// where the h term is the contribution of D's dependence on Q. The gradient
// with respect to z back-propagates ∂L/∂Q through the projection using its
// clip pattern: a coordinate clipped at c·z_o (c ∈ {1, e^ε}) passes gradient
// c·(g_{ou} − mean over the column's free coordinates of g), the mean term
// coming from λᵤ's dependence on z.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Options configures Optimize. The zero value requests the paper's defaults:
// m = 4n outputs, random initialization, automatic step-size search, and 500
// iterations.
type Options struct {
	// OutputFactor sets m = OutputFactor·n (default 4; Section 4 reports
	// m = 4n as the empirical sweet spot). Ignored when Outputs > 0.
	OutputFactor int
	// Outputs sets m explicitly.
	Outputs int
	// Iters bounds the number of projected-gradient iterations (default 500).
	Iters int
	// StepSize is the Q step size β. Zero requests an automatic search over a
	// logarithmic grid (short pilot runs), matching the paper's
	// hyper-parameter search.
	StepSize float64
	// Seed drives the random initialization (and the pilot runs).
	Seed int64
	// Init optionally seeds Q from an existing strategy (e.g. a baseline
	// mechanism, for the warm-start ablation). It must have Eps ≤ the target
	// ε and column count n. When nil, the random initialization of Section 4
	// is used.
	Init *strategy.Strategy
	// Tol stops early when the relative objective improvement over 25
	// iterations falls below it (default 1e-8).
	Tol float64
	// OnIteration, when non-nil, observes (iteration, objective) pairs.
	OnIteration func(iter int, objective float64)
	// Prior, when non-nil, optimizes the prior-weighted expected loss
	// Σᵤ pᵤ·var(u) instead of the uniform average (the paper's footnote 2).
	// It is normalized internally and smoothed with a small uniform component
	// so that no user type has exactly zero weight. Length must be n.
	Prior []float64
	// Ctx, when non-nil, cancels the optimization: the projected-gradient
	// loop (and the step-size pilot runs) check it every iteration and return
	// ctx.Err() promptly after cancellation or deadline expiry.
	Ctx context.Context
}

func (o *Options) withDefaults(n int) Options {
	out := *o
	if out.Outputs <= 0 {
		f := out.OutputFactor
		if f <= 0 {
			f = 4
		}
		out.Outputs = f * n
	}
	if out.Iters <= 0 {
		out.Iters = 500
	}
	if out.Tol <= 0 {
		out.Tol = 1e-8
	}
	return out
}

// Result is the outcome of strategy optimization.
type Result struct {
	// Strategy is the optimized ε-LDP strategy matrix.
	Strategy *strategy.Strategy
	// Objective is the final L(Q) value (Theorem 3.11).
	Objective float64
	// History records the objective at every accepted iteration.
	History []float64
	// Iters is the number of iterations performed.
	Iters int
	// StepSize is the β actually used (after automatic search).
	StepSize float64
	// PriorWeights is the normalized, smoothed prior the objective used
	// (nil for the uniform objective); pass it to
	// mechanism.NewFactorizationWithPrior so deployment uses the same
	// weighted reconstruction the optimization assumed.
	PriorWeights []float64
}

// Optimize runs Algorithm 2 for the given workload and privacy budget and
// returns an optimized strategy. The workload enters only through its Gram
// matrix, so arbitrarily large implicit workloads are supported.
func Optimize(w workload.Workload, eps float64, options Options) (*Result, error) {
	return OptimizeGram(w.Gram(), eps, options)
}

// OptimizeGram is Optimize for a precomputed Gram matrix G = WᵀW.
func OptimizeGram(gram *linalg.Matrix, eps float64, options Options) (*Result, error) {
	n := gram.Rows()
	if gram.Cols() != n {
		return nil, fmt.Errorf("core: Gram matrix is %dx%d, want square", gram.Rows(), gram.Cols())
	}
	if n == 0 {
		return nil, errors.New("core: empty domain")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("core: privacy budget must be positive, got %g", eps)
	}
	o := options.withDefaults(n)

	// One workspace serves the step-size pilots and the main run: the pilots
	// are full (short) optimizations over the same (m, n) shape, so sharing
	// drops three Workspace allocations — the dominant transient memory of an
	// auto-stepped optimize — per call. run re-zeroes the state it assumes
	// zero-initialized (the momentum buffers) on entry.
	m := o.Outputs
	if o.Init != nil {
		m = o.Init.Outputs()
	}
	ws := NewWorkspace(m, n)

	beta := o.StepSize
	if beta <= 0 {
		var err error
		beta, err = searchStepSize(gram, eps, o, ws)
		if err != nil {
			return nil, err
		}
	}
	return run(gram, eps, o, beta, o.Iters, ws)
}

// searchStepSize runs short pilot optimizations over a multiplicative grid
// around a scale-aware base step and returns the best performer, mirroring the
// paper's hyper-parameter search ("only running the algorithm for a few
// iterations in this phase, then running it longer once a step size is
// chosen"). A step size of zero asks run to self-scale from the first
// gradient, so the pilot grid multiplies that adaptive base.
func searchStepSize(gram *linalg.Matrix, eps float64, o Options, ws *Workspace) (float64, error) {
	grid := []float64{0.1, 1, 10}
	best, bestObj := 0.0, math.Inf(1)
	pilot := o
	pilot.Tol = 1e-12
	// Pilot iterations are an implementation detail: observers see only the
	// main run's monotone iteration stream. Cancellation still applies — run
	// checks Ctx every iteration.
	pilot.OnIteration = nil
	for _, g := range grid {
		if err := ctxErr(o.Ctx); err != nil {
			return 0, err
		}
		res, err := run(gram, eps, pilot, -g, 40, ws)
		if err != nil {
			continue
		}
		if res.Objective < bestObj {
			bestObj = res.Objective
			best = res.StepSize
		}
	}
	if err := ctxErr(o.Ctx); err != nil {
		return 0, err
	}
	if math.IsInf(bestObj, 1) {
		return 0, errors.New("core: step-size search failed for every candidate")
	}
	return best, nil
}

// run executes the projected gradient descent loop. All per-iteration state
// lives in a Workspace sized once up front, so steady-state iterations
// allocate nothing (see Workspace for the scratch contract). A caller-shared
// workspace (the step-size pilots and the main run reuse one) is used when
// its shape matches; run owns re-zeroing the momentum buffers, the only
// state it assumes starts at zero. Note the returned Result's Strategy
// aliases the workspace's best-iterate buffer, so a workspace must not be
// reused after the run whose Result escapes to a caller.
func run(gram *linalg.Matrix, eps float64, o Options, beta float64, iters int, ws *Workspace) (*Result, error) {
	n := gram.Rows()
	m := o.Outputs
	e := math.Exp(eps)
	rng := rand.New(rand.NewSource(o.Seed))

	// Initialization (Section 4): z = (1+e^−ε)/(2m)·1 — equal to the paper's
	// (1+e^−ε)/(8n) at the default m = 4n, and keeping Σz strictly inside
	// (e^−ε, 1) for any m — and Q = Π_{z,ε}(R) with R ~ U[0,1]^{m×n}; or a
	// caller-provided warm start.
	var r *linalg.Matrix
	if o.Init != nil {
		if o.Init.Domain() != n {
			return nil, fmt.Errorf("core: init strategy domain %d, want %d", o.Init.Domain(), n)
		}
		m = o.Init.Outputs()
		r = o.Init.Q.Clone()
	} else {
		r = linalg.New(m, n)
		for i := range r.Data() {
			r.Data()[i] = rng.Float64()
		}
	}
	if ws == nil || ws.m != m || ws.n != n {
		ws = NewWorkspace(m, n)
	} else {
		// The momentum recurrences read their previous value before writing;
		// a reused workspace must start them at zero like a fresh one.
		ws.velQ.Scale(0)
		clear(ws.velZ)
	}
	z := ws.z
	for i := range z {
		z[i] = (1 + math.Exp(-eps)) / (2 * float64(m))
	}
	if o.Init != nil {
		// Warm start z at the row minima of the init strategy so the init is
		// (close to) a fixed point of the projection.
		for i := 0; i < m; i++ {
			z[i] = linalg.MinVec(r.Row(i))
		}
	}
	prior, err := normalizePrior(o.Prior, n)
	if err != nil {
		return nil, err
	}

	zFloor := 1e-12
	opt.FeasibleZ(z, eps, zFloor)
	proj, projNext := &ws.proj, &ws.projNext
	if err := opt.ProjectMatrixInto(proj, &ws.scratch, r, z, eps); err != nil {
		return nil, fmt.Errorf("core: initial projection: %w", err)
	}
	q := proj.Q

	grad, gradNext := ws.grad, ws.gradNext
	obj, err := ws.ObjectiveGrad(q, gram, prior, grad)
	if err != nil {
		return nil, fmt.Errorf("core: initial objective: %w", err)
	}

	// A non-positive beta requests a scale-aware default: step |beta|·(typical
	// Q entry)/(typical gradient entry), so the first trial step perturbs Q by
	// roughly |beta|·10% of its magnitude regardless of workload scale.
	if beta <= 0 {
		mult := 1.0
		if beta < 0 {
			mult = -beta
		}
		g := grad.MaxAbs()
		if g == 0 {
			g = 1
		}
		beta = mult * 0.1 * q.MaxAbs() / g
	}

	res := &Result{History: make([]float64, 0, iters+1)}
	res.History = append(res.History, obj)

	bestQ := ws.bestQ
	bestQ.CopyFrom(q)
	bestObj := obj

	gz := ws.gz
	newZ := ws.newZ
	// Heavy-ball momentum accelerates traversal of the long, flat valleys the
	// projected objective exhibits; the best-iterate tracking keeps the
	// returned strategy monotone in quality even when momentum overshoots.
	const momentum = 0.9
	velQ := ws.velQ
	velZ := ws.velZ
	const checkEvery = 50
	lastCheck := bestObj
	failures := 0
	decays := 0

	for t := 0; t < iters; t++ {
		if err := ctxErr(o.Ctx); err != nil {
			return nil, err
		}
		// ∇z via back-propagation through the projection that produced q.
		gradZ(gz, grad, proj.State, proj.NumFree, e)

		// One projected-gradient step with constant step sizes, exactly as in
		// Algorithm 2: the objective is allowed to fluctuate (no line search),
		// which lets the iterates traverse shallow barriers; the best iterate
		// seen is tracked and returned. β is only reduced as a safeguard when
		// the step lands on a singular/blow-up point.
		alpha := beta / (float64(n) * e) // the paper's smaller z step
		for i := range velZ {
			velZ[i] = momentum*velZ[i] + gz[i]
		}
		copy(newZ, z)
		linalg.AxpyVec(-alpha, velZ, newZ)
		linalg.ClipScalar(newZ, 0, 1)
		opt.FeasibleZ(newZ, eps, zFloor)

		velQ.Scale(momentum).AddScaled(1, grad)
		cand := ws.cand
		cand.CopyFrom(q)
		cand.AddScaled(-beta, velQ)
		err := opt.ProjectMatrixInto(projNext, &ws.scratch, cand, newZ, eps)
		var newObj float64
		if err == nil {
			newObj, err = ws.ObjectiveGrad(projNext.Q, gram, prior, gradNext)
		}
		if err != nil || math.IsNaN(newObj) || newObj > 50*bestObj {
			// Blow-up safeguard: shrink the step, drop momentum, and retry
			// from the current iterate. Give up after repeated failures.
			beta /= 2
			velQ.Scale(0)
			clear(velZ)
			failures++
			if failures > 60 {
				break
			}
			res.Iters = t + 1
			res.History = append(res.History, obj)
			continue
		}
		failures = 0
		proj, projNext = projNext, proj
		grad, gradNext = gradNext, grad
		q = proj.Q
		copy(z, newZ)
		obj = newObj
		if obj < bestObj {
			bestObj = obj
			bestQ.CopyFrom(q)
		}

		res.Iters = t + 1
		res.History = append(res.History, obj)
		if o.OnIteration != nil {
			o.OnIteration(t, obj)
		}
		if (t+1)%checkEvery == 0 {
			if lastCheck-bestObj <= o.Tol*math.Abs(lastCheck) {
				// Stalled: decay the step ("smaller step sizes typically work
				// better in later iterations", Section 4) and keep going; stop
				// only after repeated fruitless decays.
				beta /= 2
				decays++
				if decays > 8 {
					break
				}
			} else {
				decays = 0
			}
			lastCheck = bestObj
		}
	}

	res.Strategy = strategy.New(bestQ, eps)
	res.Objective = bestObj
	res.StepSize = beta
	res.PriorWeights = prior
	return res, nil
}

// OptimizeBest runs Optimize from the paper's random initialization and then
// considers warm starts: any candidate strategy (typically the competitor
// mechanisms' strategy matrices) whose objective beats the random-init result
// triggers a warm-started re-run (Section 4: initializing from an existing
// mechanism means "the optimized strategy will never be worse than the other
// mechanisms"). The best result overall is returned, so the optimized
// mechanism provably dominates every supplied factorization baseline in
// average-case variance.
func OptimizeBest(w workload.Workload, eps float64, o Options, candidates ...*strategy.Strategy) (*Result, error) {
	gram := w.Gram()
	best, err := OptimizeGram(gram, eps, o)
	if err != nil {
		return nil, err
	}
	var warmFrom *strategy.Strategy
	warmObj := best.Objective
	for _, cand := range candidates {
		if cand == nil || cand.Domain() != gram.Rows() || cand.Eps > eps+1e-12 {
			continue
		}
		obj, err := Objective(cand.Q, gram)
		if err != nil {
			continue
		}
		if obj < warmObj {
			warmObj = obj
			warmFrom = cand
		}
	}
	if warmFrom != nil {
		if err := ctxErr(o.Ctx); err != nil {
			return nil, err
		}
		wo := o
		wo.Init = warmFrom
		warm, err := OptimizeGram(gram, eps, wo)
		if err == nil && warm.Objective < best.Objective {
			best = warm
		} else if err == nil && warmObj < best.Objective {
			best = warm // warm run couldn't improve on its init but the init itself beat random
		}
	}
	return best, nil
}

// ctxErr reports a cancelled or expired context (nil context = never).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// objectiveGrad evaluates L(Q) = tr[(QᵀD_p⁻¹Q)⁻¹ G] and its gradient with a
// freshly allocated workspace and gradient; it backs the one-shot public
// entry points. The hot loop in run uses Workspace.ObjectiveGrad directly so
// steady-state iterations allocate nothing.
func objectiveGrad(q, gram *linalg.Matrix, prior []float64) (float64, *linalg.Matrix, error) {
	ws := NewWorkspace(q.Rows(), q.Cols())
	grad := linalg.New(q.Rows(), q.Cols())
	obj, err := ws.ObjectiveGrad(q, gram, prior, grad)
	if err != nil {
		return 0, nil, err
	}
	return obj, grad, nil
}

// normalizePrior validates, smooths, and scales a prior to sum to n (so the
// uniform prior coincides with the unweighted objective). A nil prior stays
// nil (fast path).
func normalizePrior(prior []float64, n int) ([]float64, error) {
	if prior == nil {
		return nil, nil
	}
	if len(prior) != n {
		return nil, fmt.Errorf("core: prior has %d entries, domain is %d", len(prior), n)
	}
	total := 0.0
	for u, v := range prior {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: prior[%d] = %g is invalid", u, v)
		}
		total += v
	}
	if total <= 0 {
		return nil, errors.New("core: prior has no mass")
	}
	const smooth = 1e-3 // keep every type reachable so D_p stays invertible
	out := make([]float64, n)
	for u, v := range prior {
		out[u] = float64(n) * ((1-smooth)*v/total + smooth/float64(n))
	}
	return out, nil
}

// Objective evaluates L(Q) for external callers (ablation benches, tests).
func Objective(q *linalg.Matrix, gram *linalg.Matrix) (float64, error) {
	obj, _, err := objectiveGrad(q, gram, nil)
	return obj, err
}

// ObjectiveGrad exposes the analytic gradient for verification against
// finite differences and internal/autodiff.
func ObjectiveGrad(q *linalg.Matrix, gram *linalg.Matrix) (float64, *linalg.Matrix, error) {
	return objectiveGrad(q, gram, nil)
}

// ObjectiveGradPrior is ObjectiveGrad for the prior-weighted objective
// L_p(Q) = tr[(QᵀD_p⁻¹Q)⁻¹ G] with D_p = Diag(Q·p).
func ObjectiveGradPrior(q *linalg.Matrix, gram *linalg.Matrix, prior []float64) (float64, *linalg.Matrix, error) {
	return objectiveGrad(q, gram, prior)
}

// gradZ back-propagates the Q gradient through the projection's clip pattern
// into gz (length m). See the package comment for the derivation.
func gradZ(gz []float64, grad *linalg.Matrix, state []opt.ClipState, numFree []int, e float64) {
	m, n := grad.Rows(), grad.Cols()
	for o := range gz {
		gz[o] = 0
	}
	for u := 0; u < n; u++ {
		// Mean gradient over the free coordinates of column u (λᵤ coupling).
		meanFree := 0.0
		if numFree[u] > 0 {
			sum := 0.0
			for o := 0; o < m; o++ {
				if state[o*n+u] == opt.Free {
					sum += grad.At(o, u)
				}
			}
			meanFree = sum / float64(numFree[u])
		}
		for o := 0; o < m; o++ {
			switch state[o*n+u] {
			case opt.ClipLow:
				gz[o] += grad.At(o, u) - meanFree
			case opt.ClipHigh:
				gz[o] += e * (grad.At(o, u) - meanFree)
			}
		}
	}
}

// GradZForTest exposes gradZ for the gradient-check tests.
func GradZForTest(grad *linalg.Matrix, state []opt.ClipState, numFree []int, eps float64) []float64 {
	gz := make([]float64, grad.Rows())
	gradZ(gz, grad, state, numFree, math.Exp(eps))
	return gz
}
