package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// TestOptimizeCancellation: a cancelled context aborts the projected-gradient
// loop (and the pilot step-size search) with ctx.Err, and a pre-cancelled
// context aborts before any iteration runs.
func TestOptimizeCancellation(t *testing.T) {
	w := workload.NewPrefix(8)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(w, 1.0, Options{Iters: 100, Ctx: pre}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	iters := 0
	_, err := Optimize(w, 1.0, Options{
		Iters: 100000,
		Seed:  3,
		Ctx:   ctx,
		OnIteration: func(iter int, obj float64) {
			iters++
			if iter == 2 {
				cancelMid()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run: err = %v, want context.Canceled", err)
	}
	if iters > 10 {
		t.Fatalf("cancellation took %d iterations to bite", iters)
	}

	// A deadline surfaces as DeadlineExceeded.
	dl, cancelDl := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancelDl()
	if _, err := Optimize(w, 1.0, Options{Iters: 100, Ctx: dl}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// rrStrategy builds the randomized response strategy matrix (Example 2.7).
func rrStrategy(n int, eps float64) *strategy.Strategy {
	e := math.Exp(eps)
	q := linalg.New(n, n)
	denom := e + float64(n) - 1
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u {
				q.Set(o, u, e/denom)
			} else {
				q.Set(o, u, 1/denom)
			}
		}
	}
	return strategy.New(q, eps)
}

// randPositive returns a random strictly positive m×n matrix with column sums
// near one (not necessarily feasible — the objective is defined for any
// positive matrix).
func randPositive(rng *rand.Rand, m, n int) *linalg.Matrix {
	q := linalg.New(m, n)
	for i := range q.Data() {
		q.Data()[i] = 0.05 + rng.Float64()
	}
	for u := 0; u < n; u++ {
		col := q.Col(u)
		s := linalg.Sum(col)
		for o := 0; o < m; o++ {
			q.Set(o, u, col[o]/s)
		}
	}
	return q
}

// TestGradientMatchesFiniteDifference is the central correctness test for the
// hand-derived analytic gradient.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, wk := range []workload.Workload{
		workload.NewHistogram(4),
		workload.NewPrefix(4),
		workload.NewAllRange(4),
	} {
		gram := wk.Gram()
		m, n := 9, 4
		q := randPositive(rng, m, n)
		obj, grad, err := ObjectiveGrad(q, gram)
		if err != nil {
			t.Fatal(err)
		}
		if obj <= 0 {
			t.Fatalf("objective %v must be positive", obj)
		}
		const h = 1e-6
		for trial := 0; trial < 30; trial++ {
			o := rng.Intn(m)
			u := rng.Intn(n)
			qp := q.Clone()
			qp.Set(o, u, qp.At(o, u)+h)
			objP, _, err := ObjectiveGrad(qp, gram)
			if err != nil {
				t.Fatal(err)
			}
			qm := q.Clone()
			qm.Set(o, u, qm.At(o, u)-h)
			objM, _, err := ObjectiveGrad(qm, gram)
			if err != nil {
				t.Fatal(err)
			}
			fd := (objP - objM) / (2 * h)
			an := grad.At(o, u)
			if math.Abs(fd-an) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%s: grad(%d,%d) analytic %v vs finite-diff %v", wk.Name(), o, u, an, fd)
			}
		}
	}
}

// TestGradZMatchesFiniteDifference validates the back-propagation through the
// projection: d/dz L(Π_{z,ε}(R)) at points where the clip pattern is stable.
func TestGradZMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, m := 4, 10
	eps := 1.0
	gram := workload.NewPrefix(n).Gram()
	r := linalg.New(m, n)
	for i := range r.Data() {
		r.Data()[i] = rng.Float64()
	}
	z := linalg.Constant(m, (1+math.Exp(-eps))/(8*float64(n)))

	proj, err := opt.ProjectMatrix(r, z, eps)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := ObjectiveGrad(proj.Q, gram)
	if err != nil {
		t.Fatal(err)
	}
	gz := GradZForTest(grad, proj.State, proj.NumFree, eps)

	evalAt := func(zv []float64) float64 {
		p, err := opt.ProjectMatrix(r, zv, eps)
		if err != nil {
			t.Fatal(err)
		}
		obj, _, err := ObjectiveGrad(p.Q, gram)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	const h = 1e-7
	for o := 0; o < m; o++ {
		zp := linalg.CloneVec(z)
		zp[o] += h
		zm := linalg.CloneVec(z)
		zm[o] -= h
		fd := (evalAt(zp) - evalAt(zm)) / (2 * h)
		if math.Abs(fd-gz[o]) > 1e-3*(1+math.Abs(fd)) {
			t.Fatalf("∇z[%d]: analytic %v vs finite-diff %v", o, gz[o], fd)
		}
	}
}

func TestObjectiveMatchesStrategyPackage(t *testing.T) {
	// core's fused objective must agree with strategy.Objective.
	rng := rand.New(rand.NewSource(3))
	q := randPositive(rng, 12, 5)
	w := workload.NewAllRange(5)
	obj1, err := Objective(q, w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := strategy.New(q, 1).Objective(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj1-obj2) > 1e-8*(1+math.Abs(obj2)) {
		t.Fatalf("objectives disagree: %v vs %v", obj1, obj2)
	}
}

func TestOptimizeProducesValidLDPStrategy(t *testing.T) {
	for _, eps := range []float64{0.5, 1.0, 2.0} {
		w := workload.NewPrefix(8)
		res, err := Optimize(w, eps, Options{Iters: 60, Seed: 1})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if err := res.Strategy.Validate(1e-7); err != nil {
			t.Fatalf("eps=%v: optimized strategy violates LDP: %v", eps, err)
		}
		if res.Strategy.Outputs() != 32 {
			t.Fatalf("m = %d, want 4n = 32", res.Strategy.Outputs())
		}
	}
}

func TestOptimizeDecreasesObjective(t *testing.T) {
	w := workload.NewPrefix(8)
	res, err := Optimize(w, 1.0, Options{Iters: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h) < 2 {
		t.Fatal("no iterations recorded")
	}
	// The iterates may fluctuate (constant-step PGD), but the returned
	// objective must be the best seen and a strict improvement on the init.
	if res.Objective >= h[0] {
		t.Fatalf("objective did not decrease: %v -> %v", h[0], res.Objective)
	}
	best := h[0]
	for _, v := range h {
		if v < best {
			best = v
		}
	}
	if math.Abs(res.Objective-best) > 1e-9*(1+best) {
		t.Fatalf("returned objective %v is not the best seen %v", res.Objective, best)
	}
	// And the returned strategy must actually achieve it.
	re, err := res.Strategy.Objective(workload.NewPrefix(8).Gram())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re-res.Objective) > 1e-7*(1+re) {
		t.Fatalf("strategy objective %v != reported %v", re, res.Objective)
	}
}

// The headline claim at small scale: the optimized mechanism beats randomized
// response on every paper workload (for ε in the medium-privacy regime).
func TestOptimizedBeatsRandomizedResponse(t *testing.T) {
	n := 8
	eps := 1.0
	rr := rrStrategy(n, eps)
	for _, name := range workload.PaperWorkloads {
		w, err := workload.ByName(name, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(w, eps, Options{Iters: 300, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		optVar, err := res.Strategy.Variances(w.Gram(), w.Queries())
		if err != nil {
			t.Fatal(err)
		}
		rrVar, err := rr.Variances(w.Gram(), w.Queries())
		if err != nil {
			t.Fatal(err)
		}
		optSC := optVar.SampleComplexity(0.01)
		rrSC := rrVar.SampleComplexity(0.01)
		if optSC > rrSC*1.02 { // small slack for the stochastic optimizer
			t.Fatalf("%s: optimized sample complexity %v worse than RR %v", name, optSC, rrSC)
		}
	}
}

func TestOptimizeRespectsLowerBound(t *testing.T) {
	// Theorem 5.6: L(Q) ≥ (Σλᵢ)²/e^ε for every feasible Q.
	n := 8
	eps := 1.0
	for _, name := range []string{"Histogram", "Prefix", "Parity"} {
		w, err := workload.ByName(name, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(w, eps, Options{Iters: 150, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		nn, err := linalg.NuclearNormFromGram(w.Gram())
		if err != nil {
			t.Fatal(err)
		}
		bound := nn * nn / math.Exp(eps)
		if res.Objective < bound-1e-6*bound {
			t.Fatalf("%s: objective %v below SVD lower bound %v — impossible", name, res.Objective, bound)
		}
	}
}

func TestOptimizeWarmStart(t *testing.T) {
	// Warm-starting from randomized response must end at least as good as RR.
	n := 6
	eps := 1.0
	w := workload.NewHistogram(n)
	rr := rrStrategy(n, eps)
	rrObj, err := rr.Objective(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(w, eps, Options{Iters: 100, Seed: 5, Init: rr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > rrObj+1e-9 {
		t.Fatalf("warm-started objective %v worse than init %v", res.Objective, rrObj)
	}
	if err := res.Strategy.Validate(1e-7); err != nil {
		t.Fatalf("warm-started strategy invalid: %v", err)
	}
}

func TestOptimizeFixedStepSize(t *testing.T) {
	w := workload.NewHistogram(5)
	res, err := Optimize(w, 1.0, Options{Iters: 40, Seed: 6, StepSize: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSize <= 0 {
		t.Fatal("step size not reported")
	}
	if err := res.Strategy.Validate(1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeCallback(t *testing.T) {
	w := workload.NewHistogram(4)
	calls := 0
	_, err := Optimize(w, 1.0, Options{Iters: 10, Seed: 7, StepSize: 1e-3,
		OnIteration: func(iter int, obj float64) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnIteration never invoked")
	}
}

func TestOptimizeErrors(t *testing.T) {
	w := workload.NewHistogram(4)
	if _, err := Optimize(w, 0, Options{}); err == nil {
		t.Fatal("expected error for ε = 0")
	}
	if _, err := Optimize(w, -1, Options{}); err == nil {
		t.Fatal("expected error for negative ε")
	}
	if _, err := OptimizeGram(linalg.New(3, 4), 1, Options{}); err == nil {
		t.Fatal("expected error for non-square Gram")
	}
	bad := rrStrategy(5, 1) // wrong domain for n=4 workload
	if _, err := Optimize(w, 1, Options{Init: bad}); err == nil {
		t.Fatal("expected error for mismatched init domain")
	}
}

func TestOptimizeOutputsOption(t *testing.T) {
	w := workload.NewHistogram(4)
	res, err := Optimize(w, 1.0, Options{Iters: 30, Seed: 8, Outputs: 10, StepSize: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Outputs() != 10 {
		t.Fatalf("m = %d, want 10", res.Strategy.Outputs())
	}
	res2, err := Optimize(w, 1.0, Options{Iters: 30, Seed: 8, OutputFactor: 2, StepSize: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Strategy.Outputs() != 8 {
		t.Fatalf("m = %d, want 2n = 8", res2.Strategy.Outputs())
	}
}

// At large ε, randomized response is essentially optimal for Histogram
// (Section 6.2: "our mechanism matches randomized response" at low privacy).
// The optimizer must get within a modest factor of RR there.
func TestHighEpsilonNearRandomizedResponse(t *testing.T) {
	n := 6
	eps := 4.0
	w := workload.NewHistogram(n)
	rr := rrStrategy(n, eps)
	rrVar, err := rr.Variances(w.Gram(), w.Queries())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(w, eps, Options{Iters: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	optVar, err := res.Strategy.Variances(w.Gram(), w.Queries())
	if err != nil {
		t.Fatal(err)
	}
	ratio := optVar.SampleComplexity(0.01) / rrVar.SampleComplexity(0.01)
	if ratio > 1.05 {
		t.Fatalf("optimized/RR sample-complexity ratio %v at ε=4 (want ≤ ~1)", ratio)
	}
}
