package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/workload"
)

func workspaceFixture(t *testing.T, n int) (q, gram *linalg.Matrix) {
	t.Helper()
	m := 4 * n
	rng := rand.New(rand.NewSource(21))
	gram = workload.NewPrefix(n).Gram()
	z := linalg.Constant(m, 0.7/float64(m))
	r := linalg.New(m, n)
	for i := range r.Data() {
		r.Data()[i] = rng.Float64()
	}
	proj, err := opt.ProjectMatrix(r, z, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return proj.Q, gram
}

// TestWorkspaceObjectiveGradMatchesOneShot checks that repeated evaluations
// through a reused Workspace are bit-identical to the one-shot public entry
// point, with and without a prior, including after the workspace was used for
// a different Q.
func TestWorkspaceObjectiveGradMatchesOneShot(t *testing.T) {
	for _, n := range []int{4, 16, 32} {
		q, gram := workspaceFixture(t, n)
		ws := NewWorkspace(q.Rows(), q.Cols())
		grad := linalg.New(q.Rows(), q.Cols())

		prior := make([]float64, n)
		for u := range prior {
			prior[u] = 1 + float64(u%3)
		}
		for _, p := range [][]float64{nil, prior} {
			wantObj, wantGrad, err := objectiveGrad(q, gram, p)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				obj, err := ws.ObjectiveGrad(q, gram, p, grad)
				if err != nil {
					t.Fatal(err)
				}
				if obj != wantObj {
					t.Fatalf("n=%d rep=%d: workspace obj %v, one-shot %v", n, rep, obj, wantObj)
				}
				if !linalg.ApproxEqual(grad, wantGrad, 0) {
					t.Fatalf("n=%d rep=%d: workspace gradient differs bit-for-bit", n, rep)
				}
			}
		}
	}
}

func TestWorkspaceShapeMismatch(t *testing.T) {
	q, gram := workspaceFixture(t, 8)
	ws := NewWorkspace(q.Rows()+1, q.Cols())
	grad := linalg.New(q.Rows(), q.Cols())
	if _, err := ws.ObjectiveGrad(q, gram, nil, grad); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

// TestWorkspaceSteadyStateAllocFree pins the tentpole property: after warmup,
// objective+gradient evaluation allocates nothing (measured at GOMAXPROCS=1
// where no fan-out goroutines are spawned).
func TestWorkspaceSteadyStateAllocFree(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	q, gram := workspaceFixture(t, 32)
	ws := NewWorkspace(q.Rows(), q.Cols())
	grad := linalg.New(q.Rows(), q.Cols())
	if _, err := ws.ObjectiveGrad(q, gram, nil, grad); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ws.ObjectiveGrad(q, gram, nil, grad); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state ObjectiveGrad allocates %v times per call", allocs)
	}
}

// TestOptimizeUnderParallelKernels runs a full optimization at an elevated
// GOMAXPROCS so the goroutine-parallel kernels actually fan out, and checks
// the result matches the serial run bit-for-bit (the kernels promise
// split-independent accumulation order).
func TestOptimizeUnderParallelKernels(t *testing.T) {
	w := workload.NewPrefix(16)
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Optimize(w, 1.0, Options{Iters: 60, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	if serial.Objective != parallel.Objective {
		t.Fatalf("objective differs across GOMAXPROCS: %v vs %v", serial.Objective, parallel.Objective)
	}
	if !linalg.ApproxEqual(serial.Strategy.Q, parallel.Strategy.Q, 0) {
		t.Fatal("optimized strategy differs across GOMAXPROCS")
	}
	if len(serial.History) != len(parallel.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(serial.History), len(parallel.History))
	}
	for i := range serial.History {
		if serial.History[i] != parallel.History[i] {
			t.Fatalf("history[%d] differs: %v vs %v", i, serial.History[i], parallel.History[i])
		}
	}
}
