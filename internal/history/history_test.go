package history

import (
	"reflect"
	"testing"
)

// The full-resolution window is always retained, and the bands behind it keep
// exactly the geometrically-spaced sequences the doc comment promises.
func TestLadderFullResWindow(t *testing.T) {
	l := Ladder{FullRes: 4}
	const newest = 100
	for s := uint64(newest - 3); s <= newest; s++ {
		if !l.Retains(newest, s) {
			t.Fatalf("sequence %d inside the full-res window must be retained", s)
		}
	}
	// Band 1 covers ages [4, 8) — sequences 93..96 — and keeps multiples of 2.
	for s := uint64(93); s <= 96; s++ {
		if got, want := l.Retains(newest, s), s%2 == 0; got != want {
			t.Fatalf("band-1 sequence %d: retained=%v, want %v", s, got, want)
		}
	}
	// Band 2 covers ages [8, 16) — sequences 85..92 — and keeps multiples of 4.
	for s := uint64(85); s <= 92; s++ {
		if got, want := l.Retains(newest, s), s%4 == 0; got != want {
			t.Fatalf("band-2 sequence %d: retained=%v, want %v", s, got, want)
		}
	}
	if l.Retains(newest, newest+1) {
		t.Fatal("a sequence newer than newest cannot be retained")
	}
}

// Pruned stays pruned: as newest advances, a sequence's retention never flips
// from false back to true. This is the property that makes incremental
// pruning (filter after every new checkpoint) equal batch pruning, so a
// restart that re-derives the retained set from the directory agrees with the
// process that built it.
func TestLadderMonotone(t *testing.T) {
	for _, fullRes := range []int{0, 2, 3, 4, 8} {
		l := Ladder{FullRes: fullRes}
		const horizon = 300
		for s := uint64(0); s <= horizon; s++ {
			dropped := false
			for newest := s; newest <= horizon; newest++ {
				r := l.Retains(newest, s)
				if dropped && r {
					t.Fatalf("FullRes=%d: sequence %d pruned then retained again at newest=%d", fullRes, s, newest)
				}
				if !r {
					dropped = true
				}
			}
		}
	}
}

// The newest two sequences survive Retain regardless of the arithmetic — the
// durable layer's corrupt-checkpoint fallback needs the predecessor.
func TestRetainKeepsNewestTwo(t *testing.T) {
	l := Ladder{FullRes: 2}
	got := l.Retain([]uint64{1, 3, 5, 7, 9, 11})
	if n := len(got); n < 2 || got[n-1] != 11 || got[n-2] != 9 {
		t.Fatalf("newest two must survive, got %v", got)
	}
	// Odd sequences far behind an odd newest are never multiples of 2^b; only
	// the forced newest-two rule keeps any of the tail.
	for _, s := range got[:len(got)-2] {
		if !l.Retains(11, s) {
			t.Fatalf("sequence %d in the output but not retained by the ladder", s)
		}
	}
}

// Incremental pruning — filtering the retained set after every new
// checkpoint, exactly as the store does — lands on the same set as one batch
// Retain over the full sequence range.
func TestRetainIncrementalEqualsBatch(t *testing.T) {
	for _, fullRes := range []int{2, 4, 5} {
		l := Ladder{FullRes: fullRes}
		const horizon = 120
		var incremental []uint64
		var all []uint64
		for s := uint64(1); s <= horizon; s++ {
			incremental = l.Retain(append(incremental, s))
			all = append(all, s)
		}
		batch := l.Retain(all)
		if !reflect.DeepEqual(incremental, batch) {
			t.Fatalf("FullRes=%d: incremental %v != batch %v", fullRes, incremental, batch)
		}
	}
}
