package history

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleManifest() []Entry {
	return []Entry{
		{Seq: 4, Epoch: 4, Count: 512},
		{Seq: 6, Epoch: 6, Count: 768, Compressed: true},
		{Seq: 7, Epoch: 7, Count: 896},
		{Seq: 8, Epoch: 8, Count: 1024, Compressed: true},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	want := sampleManifest()
	data, err := EncodeManifest(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the manifest: %+v != %+v", got, want)
	}
	empty, err := EncodeManifest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeManifest(empty); err != nil || len(got) != 0 {
		t.Fatalf("empty manifest round trip: %v, %v", got, err)
	}
}

func TestManifestEncodeRejects(t *testing.T) {
	cases := map[string][]Entry{
		"duplicate seq":    {{Seq: 3, Epoch: 3}, {Seq: 3, Epoch: 4}},
		"descending seq":   {{Seq: 5, Epoch: 5}, {Seq: 4, Epoch: 6}},
		"descending epoch": {{Seq: 3, Epoch: 5}, {Seq: 4, Epoch: 4}},
		"NaN count":        {{Seq: 3, Epoch: 3, Count: math.NaN()}},
		"negative count":   {{Seq: 3, Epoch: 3, Count: -1}},
		"infinite count":   {{Seq: 3, Epoch: 3, Count: math.Inf(1)}},
	}
	for name, entries := range cases {
		if _, err := EncodeManifest(entries); err == nil {
			t.Errorf("%s: encode accepted %+v", name, entries)
		}
	}
}

func TestManifestDecodeRejectsCorruption(t *testing.T) {
	data, err := EncodeManifest(sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	// Any single flipped bit must fail the CRC (or a structural check) — a
	// manifest is trusted as an index only when it is bit-exact.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := DecodeManifest(mut); err == nil {
			t.Fatalf("decode accepted a manifest with byte %d flipped", i)
		}
	}
	if _, err := DecodeManifest(append(data, 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

// The crash-consistency sweep: a manifest truncated at EVERY byte offset must
// decode to an error — never to a silently shortened entry list — so the
// store's fallback (rebuilding the index from the checkpoint files) always
// takes over and no retained epoch quietly disappears from history.
func TestManifestTruncationNeverSilentlyShortens(t *testing.T) {
	data, err := EncodeManifest(sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if got, err := DecodeManifest(data[:cut]); err == nil {
			t.Fatalf("truncation at byte %d decoded cleanly to %d entries — a crash could silently lose retained epochs", cut, len(got))
		}
	}
}

// The same sweep through the file layer: LoadManifest over every truncated
// file errors (so the store rebuilds) or — at cut 0 on an empty-but-present
// file — still errors, because an empty file is not a valid manifest.
func TestLoadManifestTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadManifest(dir); !errors.Is(err, errInvalidManifest) {
			t.Fatalf("truncation at byte %d: want errInvalidManifest, got %v", cut, err)
		}
	}
	// Restore and confirm the undamaged file still loads.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadManifest(dir); err != nil || !reflect.DeepEqual(got, sampleManifest()) {
		t.Fatalf("restored manifest failed to load: %v, %v", got, err)
	}
	// A missing manifest is not an error — just an unindexed directory.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadManifest(dir); err != nil || got != nil {
		t.Fatalf("missing manifest: want (nil, nil), got (%v, %v)", got, err)
	}
}

func TestWriteManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, sampleManifest()[:2]); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleManifest()) {
		t.Fatalf("replace left %+v", got)
	}
	// No temp litter.
	tmps, err := filepath.Glob(filepath.Join(dir, ".manifest-*.tmp"))
	if err != nil || len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v (%v)", tmps, err)
	}
}

// The golden pins decode compatibility: a manifest written by a past version
// of this library must keep loading to the same entries after any upgrade.
func TestManifestGoldenCompatibility(t *testing.T) {
	want := sampleManifest()
	enc, err := EncodeManifest(want)
	if err != nil {
		t.Fatal(err)
	}
	data := golden(t, "manifest_v1.golden", enc)
	if !bytes.Equal(enc, data) {
		t.Fatalf("encoder no longer produces the golden bytes:\n got %x\nwant %x", enc, data)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatalf("golden manifest no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden manifest decoded to %+v, want %+v", got, want)
	}
}

// golden regenerates testdata/<name> from got when UPDATE_GOLDEN=1 and
// returns the checked-in bytes.
func golden(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	return want
}
