package history

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/transport"
)

func sampleSnapshot() transport.Snapshot {
	return transport.Snapshot{
		State: []float64{0, 1.5, -2.25, 1e-300, 4096},
		Count: 4096,
		Epoch: 19,
		Info:  transport.Info{Mechanism: "strategy", Domain: 5, Epsilon: 1.25, Digest: "00f1e2d3c4b5a697"},
	}
}

func sampleKeys() []KeyCount {
	return []KeyCount{
		{Key: "00f1e2d3c4b5a6978877665544332211", Reports: 4090},
		{Key: "fefefefefefefefe0101010101010101", Reports: 6},
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		wantSnap, wantKeys := sampleSnapshot(), sampleKeys()
		path, err := WriteCheckpointFile(dir, 7, wantSnap, wantKeys, compress)
		if err != nil {
			t.Fatal(err)
		}
		snap, keys, gz, err := ReadCheckpointFile(path, 7)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if gz != compress {
			t.Fatalf("compress=%v reported %v", compress, gz)
		}
		if snap.Count != wantSnap.Count || snap.Epoch != wantSnap.Epoch || snap.Info != wantSnap.Info || !reflect.DeepEqual(snap.State, wantSnap.State) {
			t.Fatalf("compress=%v: snapshot changed across the file: %+v", compress, snap)
		}
		if !reflect.DeepEqual(keys, wantKeys) {
			t.Fatalf("compress=%v: key table changed across the file: %+v", compress, keys)
		}
		// No temp litter survives the atomic rename.
		tmps, err := filepath.Glob(filepath.Join(dir, ".checkpoint-*.tmp"))
		if err != nil || len(tmps) != 0 {
			t.Fatalf("temp files left behind: %v (%v)", tmps, err)
		}
	}
}

// A compressed checkpoint of a flat integer accumulator — the unary
// mechanisms' shape — must actually be smaller than the raw one.
func TestCheckpointCompressionShrinks(t *testing.T) {
	snap := transport.Snapshot{
		State: make([]float64, 4096),
		Count: 100000,
		Epoch: 3,
		Info:  transport.Info{Mechanism: "OUE", Domain: 4096, Epsilon: 1},
	}
	for i := range snap.State {
		snap.State[i] = float64(i % 7)
	}
	dir := t.TempDir()
	rawPath, err := WriteCheckpointFile(dir, 1, snap, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	gzPath, err := WriteCheckpointFile(dir, 2, snap, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	rawFi, err := os.Stat(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	gzFi, err := os.Stat(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if gzFi.Size() >= rawFi.Size()/2 {
		t.Fatalf("compression saved too little: raw %d bytes, gzip %d", rawFi.Size(), gzFi.Size())
	}
}

// Every single-byte corruption of a checkpoint file — either version — must
// be refused: header, CRC, payload, or gzip stream, there is no byte whose
// flip the reader tolerates.
func TestCheckpointFileRejectsCorruption(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		path, err := WriteCheckpointFile(dir, 7, sampleSnapshot(), sampleKeys(), compress)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := ReadCheckpointFile(path, 7); err == nil {
				t.Fatalf("compress=%v: reader accepted byte %d flipped", compress, i)
			}
		}
		// Trailing bytes after the declared payload are corruption too.
		if err := os.WriteFile(path, append(data, 0), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ReadCheckpointFile(path, 7); err == nil {
			t.Fatalf("compress=%v: reader accepted trailing bytes", compress)
		}
		// And a sequence that disagrees with the filename is refused.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ReadCheckpointFile(path, 8); err == nil {
			t.Fatalf("compress=%v: reader accepted a mismatched sequence", compress)
		}
	}
}

// The goldens pin decode compatibility for both versions: files written by a
// past build keep reading to the same values. The raw version additionally
// pins its exact bytes — it must stay byte-identical to the buffered encoder
// it replaced; the gzip version pins only the decode (compressor output may
// legitimately change across Go releases).
func TestCheckpointGoldenCompatibility(t *testing.T) {
	wantSnap, wantKeys := sampleSnapshot(), sampleKeys()
	for _, tc := range []struct {
		name     string
		compress bool
		pinBytes bool
	}{
		{"checkpoint_stream_v1.golden", false, true},
		{"checkpoint_stream_v2.golden", true, false},
	} {
		dir := t.TempDir()
		path, err := WriteCheckpointFile(dir, 7, wantSnap, wantKeys, tc.compress)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data := golden(t, tc.name, enc)
		if tc.pinBytes && !reflect.DeepEqual(enc, data) {
			t.Fatalf("%s: writer no longer produces the golden bytes", tc.name)
		}
		gpath := filepath.Join(dir, "golden.ckpt")
		if err := os.WriteFile(gpath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		snap, keys, gz, err := ReadCheckpointFile(gpath, 7)
		if err != nil {
			t.Fatalf("%s no longer decodes: %v", tc.name, err)
		}
		if gz != tc.compress {
			t.Fatalf("%s: compressed=%v, want %v", tc.name, gz, tc.compress)
		}
		if snap.Count != wantSnap.Count || snap.Epoch != wantSnap.Epoch || snap.Info != wantSnap.Info || !reflect.DeepEqual(snap.State, wantSnap.State) {
			t.Fatalf("%s decoded to %+v", tc.name, snap)
		}
		if !reflect.DeepEqual(keys, wantKeys) {
			t.Fatalf("%s key table decoded to %+v", tc.name, keys)
		}
	}
}
