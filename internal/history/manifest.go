package history

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// The manifest indexes the retained checkpoints of one data directory:
// epoch → checkpoint sequence, plus the count and compression of each, so a
// historical read resolves to a file without opening every checkpoint. It is
// an index, not ground truth — the checkpoint files are — so a damaged or
// missing manifest is rebuilt from the directory, never trusted over it.
//
//	magic   [4]byte  "LDPH"
//	version uint8    (1)
//	crc     uint32   big-endian IEEE CRC-32 of the payload
//	length  uint32   big-endian payload byte count
//	payload:
//	  count uint32 big-endian, then count entries, sequence-ascending:
//	    seq       uint64 big-endian  checkpoint sequence (filename)
//	    epoch     uint64 big-endian  snapshot epoch the checkpoint pins
//	    countBits uint64 big-endian  IEEE-754 bits of the report count
//	    flags     uint8              bit0 = checkpoint payload is gzipped
const (
	// ManifestName is the manifest's filename within a data directory.
	ManifestName = "history.manifest"

	manifestMagic     = "LDPH"
	manifestVersion   = 1
	manifestHeaderLen = 4 + 1 + 4 + 4
	manifestEntryLen  = 8 + 8 + 8 + 1

	// MaxManifestEntries bounds a manifest read; the ladder keeps the real
	// count logarithmic, so the cap is pure hostile-input defense.
	MaxManifestEntries = 1 << 16

	entryFlagGzip = 1 << 0
)

var errInvalidManifest = errors.New("history: invalid manifest")

// Entry is one retained checkpoint in the manifest.
type Entry struct {
	// Seq is the checkpoint's sequence number (its filename).
	Seq uint64
	// Epoch is the snapshot epoch the checkpoint pins — what SnapshotAt
	// resolves against.
	Epoch uint64
	// Count is the report count of the pinned snapshot.
	Count float64
	// Compressed records whether the checkpoint payload is gzipped.
	Compressed bool
}

// EncodeManifest serializes entries, which must be sequence-ascending with
// nondecreasing epochs — the invariant DecodeManifest enforces.
func EncodeManifest(entries []Entry) ([]byte, error) {
	if len(entries) > MaxManifestEntries {
		return nil, fmt.Errorf("history: %d entries exceed the %d-entry manifest limit", len(entries), MaxManifestEntries)
	}
	payload := make([]byte, 0, 4+manifestEntryLen*len(entries))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(entries)))
	for i, e := range entries {
		if i > 0 && (e.Seq <= entries[i-1].Seq || e.Epoch < entries[i-1].Epoch) {
			return nil, fmt.Errorf("history: manifest entries out of order at %d", i)
		}
		if math.IsNaN(e.Count) || math.IsInf(e.Count, 0) || e.Count < 0 {
			return nil, fmt.Errorf("history: manifest entry %d count %v is not a non-negative finite number", i, e.Count)
		}
		payload = binary.BigEndian.AppendUint64(payload, e.Seq)
		payload = binary.BigEndian.AppendUint64(payload, e.Epoch)
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(e.Count))
		var flags byte
		if e.Compressed {
			flags |= entryFlagGzip
		}
		payload = append(payload, flags)
	}
	out := make([]byte, 0, manifestHeaderLen+len(payload))
	out = append(out, manifestMagic...)
	out = append(out, manifestVersion)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// DecodeManifest parses one manifest. Any defect — short data, bad magic,
// CRC mismatch, trailing bytes, out-of-order entries, unknown flags —
// returns an error; the caller then rebuilds the index from the checkpoint
// files themselves.
func DecodeManifest(data []byte) ([]Entry, error) {
	fail := func(format string, args ...any) ([]Entry, error) {
		return nil, fmt.Errorf("%w: %s", errInvalidManifest, fmt.Sprintf(format, args...))
	}
	if len(data) < manifestHeaderLen {
		return fail("%d bytes is shorter than the header", len(data))
	}
	if string(data[:4]) != manifestMagic {
		return fail("bad magic %q", data[:4])
	}
	if data[4] != manifestVersion {
		return fail("unsupported version %d", data[4])
	}
	wantCRC := binary.BigEndian.Uint32(data[5:])
	plen := binary.BigEndian.Uint32(data[9:])
	payload := data[manifestHeaderLen:]
	if uint64(plen) != uint64(len(payload)) {
		return fail("declares %d payload bytes, carries %d", plen, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return fail("CRC mismatch")
	}
	if len(payload) < 4 {
		return fail("truncated at its entry count")
	}
	count := binary.BigEndian.Uint32(payload)
	if count > MaxManifestEntries {
		return fail("declares %d entries, limit %d", count, MaxManifestEntries)
	}
	if len(payload) != 4+manifestEntryLen*int(count) {
		return fail("declares %d entries but carries %d payload bytes", count, len(payload))
	}
	entries := make([]Entry, 0, count)
	buf := payload[4:]
	for i := uint32(0); i < count; i++ {
		var e Entry
		e.Seq = binary.BigEndian.Uint64(buf)
		e.Epoch = binary.BigEndian.Uint64(buf[8:])
		e.Count = math.Float64frombits(binary.BigEndian.Uint64(buf[16:]))
		flags := buf[24]
		if flags&^byte(entryFlagGzip) != 0 {
			return fail("entry %d has unknown flag bits %#x", i, flags)
		}
		e.Compressed = flags&entryFlagGzip != 0
		if math.IsNaN(e.Count) || math.IsInf(e.Count, 0) || e.Count < 0 {
			return fail("entry %d count %v is not a non-negative finite number", i, e.Count)
		}
		if n := len(entries); n > 0 && (e.Seq <= entries[n-1].Seq || e.Epoch < entries[n-1].Epoch) {
			return fail("entries out of order at %d", i)
		}
		entries = append(entries, e)
		buf = buf[manifestEntryLen:]
	}
	return entries, nil
}

// WriteManifest atomically replaces dir's manifest: temp file, fsync, rename,
// directory fsync. A crash leaves either the old manifest or the complete new
// one — and either way the checkpoint files remain the ground truth a
// recovery can rebuild from.
func WriteManifest(dir string, entries []Entry) error {
	data, err := EncodeManifest(entries)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest. A missing file returns (nil, nil) — a
// directory predating the manifest is not an error, just unindexed; a
// damaged file returns the decode error so the caller rebuilds.
func LoadManifest(dir string) ([]Entry, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) > manifestHeaderLen+4+manifestEntryLen*MaxManifestEntries {
		return nil, fmt.Errorf("%w: exceeds the manifest size limit", errInvalidManifest)
	}
	return DecodeManifest(data)
}

// syncDir fsyncs a directory so renames and creations within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
