package history

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/transport"
)

// Streaming checkpoint I/O. The file format is the durable layer's "LDPC"
// envelope; this writer produces version-1 files byte-identical to the
// buffered encoder while never materializing the payload (the state streams
// through a fixed chunk, the CRC accumulates incrementally, and the header is
// patched in place before the atomic rename), and adds version 2, whose
// payload is the gzip stream of the version-1 payload — worthwhile for the
// unary mechanisms, whose accumulators are long runs of small integers:
//
//	magic   [4]byte  "LDPC"
//	version uint8    (1 = raw payload, 2 = gzip-compressed payload)
//	crc     uint32   big-endian IEEE CRC-32 of the on-disk payload bytes
//	length  uint32   big-endian on-disk payload byte count
//	payload (after decompression for version 2):
//	  seq      uint64 big-endian  segment sequence this checkpoint precedes
//	  snapshot one v2 snapshot frame (transport.EncodeSnapshotFrame)
//	  keyCount uint32 big-endian, then keyCount entries, oldest first:
//	    keyLen uint8, then keyLen bytes    idempotency key
//	    reports uint64 big-endian          reports absorbed under the key
const (
	checkpointMagic     = "LDPC"
	checkpointV1        = 1
	checkpointV2        = 2
	checkpointHeaderLen = 4 + 1 + 4 + 4

	// MaxTrackedKeys bounds the idempotency-key table a checkpoint carries —
	// the same horizon as the transport's idempotency LRU.
	MaxTrackedKeys = 4096

	// maxCheckpointKey bounds one key's byte length (one length byte on the
	// wire).
	maxCheckpointKey = 255

	// MaxCheckpointSize bounds a checkpoint payload after decompression:
	// envelope + the transport's snapshot frame cap + a full key table.
	MaxCheckpointSize = transport.MaxSnapshotPayload + MaxTrackedKeys*(2+maxCheckpointKey+8) + 1024
)

// KeyCount is one idempotency key's checkpointed total: how many reports the
// log proves were absorbed under it.
type KeyCount struct {
	Key     string
	Reports int64
}

var errInvalidCheckpoint = errors.New("history: invalid checkpoint file")

// crcWriter counts and CRCs everything written through it.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	c.n += int64(n)
	return n, err
}

// writePayload streams the logical checkpoint payload — sequence, snapshot
// frame, key table — to w.
func writePayload(w io.Writer, seq uint64, snap transport.Snapshot, keys []KeyCount) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	if err := transport.EncodeSnapshotFrameStream(w, snap); err != nil {
		return err
	}
	var kc [4]byte
	binary.BigEndian.PutUint32(kc[:], uint32(len(keys)))
	if _, err := w.Write(kc[:]); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := w.Write([]byte{byte(len(k.Key))}); err != nil {
			return err
		}
		if _, err := io.WriteString(w, k.Key); err != nil {
			return err
		}
		binary.BigEndian.PutUint64(b[:], uint64(k.Reports))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCheckpointFile writes checkpoint seq atomically into dir under the
// durable layer's filename convention: temp file, streamed payload, patched
// header, fsync, rename, directory fsync. A crash leaves either the old
// directory contents or the complete new file. compress selects the gzipped
// version-2 payload; off, the output is byte-identical to the buffered
// version-1 encoder. Returns the final path.
func WriteCheckpointFile(dir string, seq uint64, snap transport.Snapshot, keys []KeyCount, compress bool) (string, error) {
	if len(keys) > MaxTrackedKeys {
		keys = keys[len(keys)-MaxTrackedKeys:] // newest win, as in the LRU
	}
	for _, k := range keys {
		if len(k.Key) > maxCheckpointKey {
			return "", fmt.Errorf("history: checkpoint key exceeds %d bytes", maxCheckpointKey)
		}
	}
	if _, err := transport.SnapshotFrameLen(snap); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	abort := func(err error) (string, error) {
		tmp.Close()
		return "", err
	}
	// Header placeholder; the CRC and length are known only after the stream.
	var hdr [checkpointHeaderLen]byte
	if _, err := tmp.Write(hdr[:]); err != nil {
		return abort(err)
	}
	cw := &crcWriter{w: tmp, crc: crc32.NewIEEE()}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if compress {
		gz := gzip.NewWriter(bw)
		if err := writePayload(gz, seq, snap, keys); err != nil {
			return abort(err)
		}
		if err := gz.Close(); err != nil {
			return abort(err)
		}
	} else if err := writePayload(bw, seq, snap, keys); err != nil {
		return abort(err)
	}
	if err := bw.Flush(); err != nil {
		return abort(err)
	}
	if cw.n > int64(MaxCheckpointSize) {
		return abort(fmt.Errorf("history: checkpoint payload exceeds the %d-byte limit", MaxCheckpointSize))
	}
	copy(hdr[:4], checkpointMagic)
	if compress {
		hdr[4] = checkpointV2
	} else {
		hdr[4] = checkpointV1
	}
	binary.BigEndian.PutUint32(hdr[5:], cw.crc.Sum32())
	binary.BigEndian.PutUint32(hdr[9:], uint32(cw.n))
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		return abort(err)
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	final := filepath.Join(dir, fmt.Sprintf("checkpoint-%08d.ckpt", seq))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return final, syncDir(dir)
}

// crcReader counts and CRCs everything read through it.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc.Write(p[:n])
	c.n += int64(n)
	return n, err
}

// ReadCheckpointFile reads and validates one checkpoint file of either
// version, streaming — the state is decoded chunk by chunk, never via a
// second whole-payload buffer. The envelope's sequence is pinned to wantSeq
// (the filename's), the CRC must cover exactly the declared payload, and any
// trailing byte — inside the payload or after it — is an error. Returns the
// pinned snapshot, the key table, and whether the payload was compressed.
func ReadCheckpointFile(path string, wantSeq uint64) (transport.Snapshot, []KeyCount, bool, error) {
	fail := func(format string, args ...any) (transport.Snapshot, []KeyCount, bool, error) {
		return transport.Snapshot{}, nil, false, fmt.Errorf("%w: %s", errInvalidCheckpoint, fmt.Sprintf(format, args...))
	}
	f, err := os.Open(path)
	if err != nil {
		return transport.Snapshot{}, nil, false, err
	}
	defer f.Close()
	var hdr [checkpointHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fail("shorter than the header")
	}
	if string(hdr[:4]) != checkpointMagic {
		return fail("bad magic %q", hdr[:4])
	}
	version := hdr[4]
	if version != checkpointV1 && version != checkpointV2 {
		return fail("unsupported version %d", version)
	}
	wantCRC := binary.BigEndian.Uint32(hdr[5:])
	plen := binary.BigEndian.Uint32(hdr[9:])
	if uint64(plen) > uint64(MaxCheckpointSize) {
		return fail("declares %d payload bytes, over the %d-byte limit", plen, MaxCheckpointSize)
	}
	cr := &crcReader{r: io.LimitReader(f, int64(plen)), crc: crc32.NewIEEE()}
	var body io.Reader = bufio.NewReaderSize(cr, 1<<16)
	compressed := version == checkpointV2
	var gz *gzip.Reader
	if compressed {
		if gz, err = gzip.NewReader(body); err != nil {
			return fail("gzip payload: %v", err)
		}
		// The decompressed payload obeys the same cap as a raw one; one spare
		// byte detects overflow.
		body = io.LimitReader(gz, int64(MaxCheckpointSize)+1)
	}
	var seqBuf [8]byte
	if _, err := io.ReadFull(body, seqBuf[:]); err != nil {
		return fail("truncated at its sequence")
	}
	seq := binary.BigEndian.Uint64(seqBuf[:])
	snap, err := transport.DecodeSnapshotFrameStream(body)
	if err != nil {
		return fail("%v", err)
	}
	var kc [4]byte
	if _, err := io.ReadFull(body, kc[:]); err != nil {
		return fail("truncated at its key-table count")
	}
	nkeys := binary.BigEndian.Uint32(kc[:])
	if nkeys > MaxTrackedKeys {
		return fail("declares %d keys, limit %d", nkeys, MaxTrackedKeys)
	}
	keys := make([]KeyCount, 0, nkeys)
	for i := uint32(0); i < nkeys; i++ {
		var l [1]byte
		if _, err := io.ReadFull(body, l[:]); err != nil {
			return fail("truncated at key %d", i)
		}
		kb := make([]byte, int(l[0])+8)
		if _, err := io.ReadFull(body, kb); err != nil {
			return fail("truncated at key %d", i)
		}
		keys = append(keys, KeyCount{
			Key:     string(kb[:l[0]]),
			Reports: int64(binary.BigEndian.Uint64(kb[l[0]:])),
		})
	}
	// The logical payload must end exactly here. The read also drives a
	// gzipped stream through its trailer, so the gzip checksum is verified;
	// anything but a clean EOF — data, a malformed tail, a second gzip
	// stream — is trailing garbage.
	var one [1]byte
	if n, rerr := io.ReadFull(body, one[:]); n != 0 || rerr != io.EOF {
		return fail("trailing or malformed bytes after the key table")
	}
	if compressed {
		if err := gz.Close(); err != nil {
			return fail("gzip payload: %v", err)
		}
	}
	// The on-disk payload must end exactly at its declared length too: the
	// CRC is meaningless unless it covered every declared byte.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return transport.Snapshot{}, nil, false, err
	}
	if cr.n != int64(plen) {
		return fail("declares %d payload bytes, carries %d", plen, cr.n)
	}
	if cr.crc.Sum32() != wantCRC {
		return fail("CRC mismatch")
	}
	if n, _ := f.Read(one[:]); n != 0 {
		return fail("trailing bytes after the payload")
	}
	if seq != wantSeq {
		return fail("envelope sequence %d does not match filename sequence %d", seq, wantSeq)
	}
	return snap, keys, compressed, nil
}
