// Package history is the bounded epoch-history subsystem layered on the
// durable layer's checkpoint machinery: it decides which checkpoints a data
// directory retains (retention.go), indexes the retained epochs so any of
// them can be served without replay (manifest.go), and reads/writes the
// checkpoint files themselves streaming — chunk by chunk, optionally
// gzip-compressed — so a very large accumulator never needs a second
// whole-payload copy in memory (checkpoint.go).
//
// The durable store owns the files; this package owns the policy and the
// formats. Nothing here touches a WAL record: checkpoints are self-contained
// snapshots, which is exactly what makes an old one servable after the
// segments around it are long pruned.
package history

import (
	"math/bits"
	"sort"
)

// DefaultFullRes is the default number of newest checkpoints retained at
// full resolution before geometric coarsening begins.
const DefaultFullRes = 4

// Ladder is the retention policy: the FullRes newest checkpoints are kept at
// full resolution, and older ones are coarsened geometrically — the next
// FullRes-wide band keeps every 2nd sequence, the band after (twice as wide)
// every 4th, and so on. Retention is a pure function of the sequence numbers,
// so it is deterministic across restarts, and the retained set only ever
// shrinks as the newest sequence advances: a sequence not divisible by 2^b is
// not divisible by 2^(b+1) either, so nothing pruned is ever needed again.
//
// The newest two sequences present are always retained regardless of the
// arithmetic — the durable layer's corrupt-checkpoint fallback depends on the
// predecessor existing.
type Ladder struct {
	// FullRes is the width of the full-resolution window; values below 2 are
	// treated as DefaultFullRes.
	FullRes int
}

// fullRes returns the effective full-resolution window.
func (l Ladder) fullRes() uint64 {
	if l.FullRes < 2 {
		return DefaultFullRes
	}
	return uint64(l.FullRes)
}

// Retains reports whether sequence s is retained when newest is the largest
// checkpoint sequence present.
func (l Ladder) Retains(newest, s uint64) bool {
	if s > newest {
		return false
	}
	f := l.fullRes()
	age := newest - s
	if age < f {
		return true
	}
	// Band b covers ages [f·2^(b-1), f·2^b) and keeps multiples of 2^b.
	b := uint(bits.Len64(age / f)) // age ≥ f ⇒ age/f ≥ 1 ⇒ b ≥ 1
	if b >= 64 {
		return s == 0
	}
	return s%(1<<b) == 0
}

// Retain filters an ascending sequence list down to the retained subset,
// ascending. The newest two entries are always kept.
func (l Ladder) Retain(seqs []uint64) []uint64 {
	if len(seqs) == 0 {
		return nil
	}
	if !sort.SliceIsSorted(seqs, func(i, j int) bool { return seqs[i] < seqs[j] }) {
		sorted := append([]uint64(nil), seqs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		seqs = sorted
	}
	newest := seqs[len(seqs)-1]
	out := make([]uint64, 0, len(seqs))
	for i, s := range seqs {
		if i >= len(seqs)-2 || l.Retains(newest, s) {
			out = append(out, s)
		}
	}
	return out
}
