package history

import (
	"math"
	"reflect"
	"testing"
)

// FuzzDecodeManifest feeds arbitrary bytes to the manifest decoder — the
// index a historical read trusts to find its checkpoint. The decoder must
// return an error or a valid entry list, never panic, and never allocate
// proportionally to a hostile count prefix; anything it accepts must
// re-encode and re-decode to the identical entries, because SnapshotAt's
// correctness rests on the index being unambiguous.
func FuzzDecodeManifest(f *testing.F) {
	seed := func(entries []Entry) {
		data, err := EncodeManifest(entries)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(nil)
	seed(sampleManifest())
	seed([]Entry{{Seq: 0, Epoch: 0, Count: 0}})
	seed([]Entry{
		{Seq: 1, Epoch: 1 << 40, Count: math.MaxFloat64, Compressed: true},
		{Seq: 1 << 62, Epoch: 1 << 41, Count: 0.5},
	})
	f.Add([]byte("LDPH"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeManifest(data)
		if err != nil {
			return // short, corrupt, out of order — all fine, no panic is the point
		}
		reenc, err := EncodeManifest(entries)
		if err != nil {
			t.Fatalf("decoded manifest failed to re-encode: %v", err)
		}
		back, err := DecodeManifest(reenc)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("manifest changed across re-encode: %d entries != %d", len(back), len(entries))
		}
		for i := range entries {
			if back[i].Seq != entries[i].Seq || back[i].Epoch != entries[i].Epoch ||
				math.Float64bits(back[i].Count) != math.Float64bits(entries[i].Count) ||
				back[i].Compressed != entries[i].Compressed {
				t.Fatalf("entry %d changed across re-encode: %+v != %+v", i, back[i], entries[i])
			}
		}
		if len(entries) == 0 && !reflect.DeepEqual(entries, []Entry{}) && entries != nil {
			t.Fatalf("empty manifest decoded to non-empty value %v", entries)
		}
	})
}
