package opt

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/linalg"
)

// sweepLambda is the O(m log m) sorted-sweep reference for the breakpoint
// search (the seed implementation), kept as an oracle for the
// quickselect-style solveLambda.
func sweepLambda(r, z []float64, e float64) float64 {
	type breakpoint struct {
		lam   float64
		slope float64
	}
	m := len(r)
	bps := make([]breakpoint, 0, 2*m)
	sumZ := 0.0
	for o := 0; o < m; o++ {
		sumZ += z[o]
		bps = append(bps,
			breakpoint{lam: z[o] - r[o], slope: +1},
			breakpoint{lam: e*z[o] - r[o], slope: -1},
		)
	}
	sort.Slice(bps, func(i, j int) bool { return bps[i].lam < bps[j].lam })
	total := sumZ
	slope := 0.0
	prev := math.Inf(-1)
	for _, bp := range bps {
		if slope > 0 {
			needed := (1 - total) / slope
			if prev+needed <= bp.lam {
				return prev + needed
			}
			total += slope * (bp.lam - prev)
		}
		slope += bp.slope
		prev = bp.lam
	}
	return prev
}

func clipSum(r, z []float64, e, lam float64) float64 {
	s := 0.0
	for o := range r {
		v := r[o] + lam
		if v < z[o] {
			v = z[o]
		} else if v > e*z[o] {
			v = e * z[o]
		}
		s += v
	}
	return s
}

// TestSolveLambdaMatchesSweep fuzzes the pivoting solver against the sorted
// sweep it replaced: the shifts must agree to round-off, and both must
// satisfy the sum constraint Σ clip(r+λ, z, ez) = 1.
func TestSolveLambdaMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(80)
		eps := 0.2 + 3*rng.Float64()
		e := math.Exp(eps)
		z := make([]float64, m)
		// Feasible z: Σz uniform in (e^-eps, 1).
		target := math.Exp(-eps) + rng.Float64()*(1-math.Exp(-eps))
		s := 0.0
		for o := range z {
			z[o] = rng.Float64()
			s += z[o]
		}
		for o := range z {
			z[o] *= target / s
		}
		r := make([]float64, m)
		for o := range r {
			r[o] = rng.NormFloat64()
		}
		got := solveLambda(make([]int32, m), r, z, e)
		want := sweepLambda(r, z, e)
		scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
		if math.Abs(got-want) > 1e-9*scale {
			t.Fatalf("trial %d (m=%d, eps=%g): solveLambda = %v, sweep = %v", trial, m, eps, got, want)
		}
		if f := clipSum(r, z, e, got); math.Abs(f-1) > 1e-9 {
			t.Fatalf("trial %d: Σ clip = %v at λ = %v, want 1", trial, f, got)
		}
	}
}

// TestSolveLambdaNonFiniteTerminates is the regression test for the
// narrowing loop hanging on non-finite input: a NaN or Inf coordinate never
// retires from the active set, so solveLambda must detect it up front and
// return NaN (which downstream turns into a NaN column the optimizer's
// blow-up safeguard absorbs) rather than spin forever like an unguarded
// quickselect would.
func TestSolveLambdaNonFiniteTerminates(t *testing.T) {
	z := []float64{0.2, 0.2, 0.2, 0.2}
	for _, r := range [][]float64{
		{0.1, math.NaN(), 0.3, 0.2},
		{0.1, math.Inf(1), 0.3, 0.2},
		{0.1, math.Inf(-1), 0.3, 0.2},
	} {
		done := make(chan float64, 1)
		go func() {
			done <- solveLambda(make([]int32, len(r)), r, z, math.E)
		}()
		select {
		case lam := <-done:
			if !math.IsNaN(lam) {
				t.Errorf("r=%v: got λ=%v, want NaN", r, lam)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("r=%v: solveLambda did not terminate", r)
		}
	}
	// The matrix-level entry point must terminate too (and the NaN column it
	// produces is what core's blow-up safeguard handles).
	rm := linalg.New(4, 2)
	rm.Set(1, 0, math.NaN())
	var out MatrixProjection
	var ws Scratch
	if err := ProjectMatrixInto(&out, &ws, rm, z, 1.0); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Q.At(0, 0)) {
		t.Errorf("NaN column 0 projected to %v, want NaN propagation", out.Q.At(0, 0))
	}
	if math.IsNaN(out.Q.At(0, 1)) {
		t.Error("finite column 1 was polluted by column 0's NaN")
	}
}

// TestSolveLambdaConstantZ exercises the heavily tied regime (all z equal —
// the optimizer's first iteration) where breakpoint ties are systematic.
func TestSolveLambdaConstantZ(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, m := range []int{1, 2, 16, 256} {
		eps := 1.0
		e := math.Exp(eps)
		z := make([]float64, m)
		for o := range z {
			z[o] = 0.7 / float64(m)
		}
		r := make([]float64, m)
		for o := range r {
			r[o] = rng.Float64()
		}
		got := solveLambda(make([]int32, m), r, z, e)
		want := sweepLambda(r, z, e)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("m=%d: solveLambda = %v, sweep = %v", m, got, want)
		}
		if f := clipSum(r, z, e, got); math.Abs(f-1) > 1e-9 {
			t.Fatalf("m=%d: Σ clip = %v, want 1", m, f)
		}
	}
}
