// Package opt provides the numerical-optimization substrate: the projection
// onto the bounded probability simplex (Algorithm 1 of the paper), utilities
// for projected gradient methods, a power-iteration spectral-norm estimator,
// and an accelerated projected-gradient non-negative least squares solver used
// by the WNNLS post-processing step (Appendix A).
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// ClipState records, per coordinate, how the simplex projection resolved it.
// It is consumed by the ∇z back-propagation in internal/core.
type ClipState int8

const (
	// ClipLow marks a coordinate clipped at its lower bound z_o.
	ClipLow ClipState = -1
	// Free marks an interior coordinate (value r_o + λ).
	Free ClipState = 0
	// ClipHigh marks a coordinate clipped at its upper bound e^ε·z_o.
	ClipHigh ClipState = 1
)

// ErrInfeasible is returned when the constraint set
// {q : z ≤ q ≤ e^ε z, 1ᵀq = 1} is empty, i.e. Σz > 1 or e^ε Σz < 1.
var ErrInfeasible = errors.New("opt: bounded simplex is empty for the given z and ε")

// ColumnProjection is the result of projecting one column onto the bounded
// probability simplex.
type ColumnProjection struct {
	// Q is the projected column: clip(r + λ, z, e^ε z) with 1ᵀQ = 1.
	Q []float64
	// Lambda is the shift (the Lagrange multiplier of the sum constraint).
	Lambda float64
	// State[o] records whether coordinate o was clipped low, high, or free.
	State []ClipState
	// NumFree counts interior coordinates.
	NumFree int
}

// ProjectColumn solves Problem 4.1 for a single column (Proposition 4.2 /
// Algorithm 1): it returns the Euclidean projection of r onto
// {q : z ≤ q ≤ e^ε z, 1ᵀq = 1} by finding the shift λ with
// Σ clip(r + λ, z, e^ε z) = 1 via a sorted sweep over the 2m breakpoints,
// O(m log m) total.
//
// z must be coordinate-wise non-negative with Σz ≤ 1 ≤ e^ε Σz (otherwise the
// set is empty and ErrInfeasible is returned).
func ProjectColumn(r, z []float64, eps float64) (*ColumnProjection, error) {
	m := len(r)
	if len(z) != m {
		return nil, fmt.Errorf("opt: r has %d entries, z has %d", m, len(z))
	}
	e := math.Exp(eps)
	sumZ := 0.0
	for _, v := range z {
		if v < 0 {
			return nil, fmt.Errorf("opt: z must be non-negative, got %g", v)
		}
		sumZ += v
	}
	const tol = 1e-12
	if sumZ > 1+tol || e*sumZ < 1-tol {
		return nil, fmt.Errorf("%w: Σz = %g, e^ε Σz = %g", ErrInfeasible, sumZ, e*sumZ)
	}

	// Breakpoints: coordinate o leaves its lower clip when λ > z_o − r_o and
	// enters its upper clip when λ > e^ε z_o − r_o. f(λ) = Σ clip(r+λ, z, ez)
	// is piecewise linear and nondecreasing, starting at Σz (slope 0) and
	// saturating at e^ε Σz.
	type breakpoint struct {
		lam   float64
		slope float64 // +1 when a coordinate becomes free, −1 when it clips high
	}
	bps := make([]breakpoint, 0, 2*m)
	for o := 0; o < m; o++ {
		bps = append(bps,
			breakpoint{lam: z[o] - r[o], slope: +1},
			breakpoint{lam: e*z[o] - r[o], slope: -1},
		)
	}
	sort.Slice(bps, func(i, j int) bool { return bps[i].lam < bps[j].lam })

	var lambda float64
	total := sumZ
	slope := 0.0
	found := false
	prev := math.Inf(-1)
	for _, bp := range bps {
		if slope > 0 {
			needed := (1 - total) / slope
			if prev+needed <= bp.lam {
				lambda = prev + needed
				found = true
				break
			}
			total += slope * (bp.lam - prev)
		}
		slope += bp.slope
		prev = bp.lam
	}
	if !found {
		// All breakpoints passed: f saturates at e^ε Σz ≥ 1, so the crossing is
		// at or beyond the last breakpoint; since f is constant afterwards this
		// can only happen through round-off when e^ε Σz ≈ 1. Use the last λ.
		lambda = prev
	}

	q := make([]float64, m)
	state := make([]ClipState, m)
	free := 0
	for o := 0; o < m; o++ {
		v := r[o] + lambda
		switch {
		case v <= z[o]:
			q[o] = z[o]
			state[o] = ClipLow
		case v >= e*z[o]:
			q[o] = e * z[o]
			state[o] = ClipHigh
		default:
			q[o] = v
			state[o] = Free
			free++
		}
	}
	// Absorb residual round-off into the free coordinates so the column sums
	// to one exactly (keeps downstream LDP validation clean).
	if free > 0 {
		resid := 1 - linalg.Sum(q)
		adj := resid / float64(free)
		for o := 0; o < m; o++ {
			if state[o] == Free {
				q[o] += adj
			}
		}
	}
	return &ColumnProjection{Q: q, Lambda: lambda, State: state, NumFree: free}, nil
}

// MatrixProjection is the result of projecting every column of a matrix onto
// the bounded probability simplex.
type MatrixProjection struct {
	// Q is the projected matrix (each column feasible).
	Q *linalg.Matrix
	// State is m×n; State[o*n+u] is the clip state of entry (o, u).
	State []ClipState
	// NumFree[u] counts free coordinates in column u.
	NumFree []int
}

// ProjectMatrix applies ProjectColumn to every column of r: the operator
// Π_{z,ε}(R) of Problem 4.1.
func ProjectMatrix(r *linalg.Matrix, z []float64, eps float64) (*MatrixProjection, error) {
	m, n := r.Rows(), r.Cols()
	if len(z) != m {
		return nil, fmt.Errorf("opt: z has %d entries, R has %d rows", len(z), m)
	}
	out := &MatrixProjection{
		Q:       linalg.New(m, n),
		State:   make([]ClipState, m*n),
		NumFree: make([]int, n),
	}
	col := make([]float64, m)
	for u := 0; u < n; u++ {
		for o := 0; o < m; o++ {
			col[o] = r.At(o, u)
		}
		cp, err := ProjectColumn(col, z, eps)
		if err != nil {
			return nil, fmt.Errorf("opt: column %d: %w", u, err)
		}
		for o := 0; o < m; o++ {
			out.Q.Set(o, u, cp.Q[o])
			out.State[o*n+u] = cp.State[o]
		}
		out.NumFree[u] = cp.NumFree
	}
	return out, nil
}

// FeasibleZ rescales z in place so the bounded simplex is non-empty:
// Σz ≤ 1 ≤ e^ε Σz, with every coordinate at least floor ≥ 0. It returns z.
func FeasibleZ(z []float64, eps, floor float64) []float64 {
	for i := range z {
		if z[i] < floor {
			z[i] = floor
		}
	}
	e := math.Exp(eps)
	s := linalg.Sum(z)
	if s <= 0 {
		// Degenerate: spread uniformly at a feasible level.
		v := 1 / (e * float64(len(z)))
		for i := range z {
			z[i] = v
		}
		return z
	}
	const margin = 1e-9
	if s > 1-margin {
		linalg.ScaleVec((1-margin)/s, z)
	} else if e*s < 1+margin {
		linalg.ScaleVec((1+margin)/(e*s), z)
	}
	return z
}
