// Package opt provides the numerical-optimization substrate: the projection
// onto the bounded probability simplex (Algorithm 1 of the paper), utilities
// for projected gradient methods, a power-iteration spectral-norm estimator,
// and an accelerated projected-gradient non-negative least squares solver used
// by the WNNLS post-processing step (Appendix A).
//
// The projection is the optimizer's per-iteration hot spot, so it comes in
// two forms: the allocating ProjectColumn/ProjectMatrix, and the
// destination-passing ProjectMatrixInto which reuses a caller-owned
// MatrixProjection plus a Scratch of per-worker buffers and allocates nothing
// in steady state. Columns are independent, so ProjectMatrixInto fans them
// out across GOMAXPROCS goroutines; results are bit-identical to the serial
// path at any worker count.
package opt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ClipState records, per coordinate, how the simplex projection resolved it.
// It is consumed by the ∇z back-propagation in internal/core.
type ClipState int8

const (
	// ClipLow marks a coordinate clipped at its lower bound z_o.
	ClipLow ClipState = -1
	// Free marks an interior coordinate (value r_o + λ).
	Free ClipState = 0
	// ClipHigh marks a coordinate clipped at its upper bound e^ε·z_o.
	ClipHigh ClipState = 1
)

// ErrInfeasible is returned when the constraint set
// {q : z ≤ q ≤ e^ε z, 1ᵀq = 1} is empty, i.e. Σz > 1 or e^ε Σz < 1.
var ErrInfeasible = errors.New("opt: bounded simplex is empty for the given z and ε")

// The kinks of the piecewise-linear sum f(λ) = Σ clip(r+λ, z, ez) come in two
// families: λ = z_o − r_o where a coordinate becomes free (slope +1) and
// λ = e·z_o − r_o where it clips high (slope −1).

// validateZ checks non-negativity and feasibility of the bound vector.
func validateZ(z []float64, e float64) error {
	sumZ := 0.0
	for _, v := range z {
		if v < 0 {
			return fmt.Errorf("opt: z must be non-negative, got %g", v)
		}
		sumZ += v
	}
	const tol = 1e-12
	if sumZ > 1+tol || e*sumZ < 1-tol {
		return fmt.Errorf("%w: Σz = %g, e^ε Σz = %g", ErrInfeasible, sumZ, e*sumZ)
	}
	return nil
}

// pivotIn returns a breakpoint of coordinate o that lies strictly inside
// (a, b). Every active coordinate has one (that is what active means).
func pivotIn(o int32, r, z []float64, e, a, b float64) float64 {
	lo := z[o] - r[o]
	if lo > a && lo < b {
		return lo
	}
	return e*z[o] - r[o]
}

// solveLambda finds the leftmost shift λ with f(λ) = Σ clip(r + λ, z, e·z) = 1
// (Proposition 4.2 / Algorithm 1) by deterministic quickselect-style pivoting
// over the 2m breakpoints — the standard expected-O(m) simplex-projection
// narrowing (no sort): keep an interval (a, b) bracketing the crossing, pick a
// median-of-three breakpoint inside it, evaluate f there in one pass over the
// still-active coordinates, and discard every coordinate whose clip status is
// decided for the whole interval. act is caller-owned scratch of length m.
//
// Pivots are chosen deterministically from the data, so the result is a pure
// function of (r, z, e) — parallel and serial projections agree bit-for-bit.
func solveLambda(act []int32, r, z []float64, e float64) float64 {
	m := len(r)
	act = act[:m]
	for o := range act {
		act[o] = int32(o)
		// A non-finite coordinate would never retire (NaN fails every
		// comparison) and would stall the narrowing loop. Bail out with NaN:
		// the caller's projection then yields a NaN column, which the
		// optimizer's blow-up safeguard already handles (the seed's sorted
		// sweep likewise returned garbage for non-finite input, but
		// terminated).
		if lo := z[o] - r[o]; math.IsNaN(lo) || math.IsInf(lo, 0) {
			return math.NaN()
		}
		// e*z can overflow for extreme ε even with feasible (bounded) z.
		if hi := e*z[o] - r[o]; math.IsNaN(hi) || math.IsInf(hi, 0) {
			return math.NaN()
		}
	}
	a, b := math.Inf(-1), math.Inf(1)
	// f(λ) restricted to λ ∈ (a, b) is base + nfree·λ plus the active
	// coordinates' clip terms: base accumulates the decided contributions
	// (z_o for clipped-low, e·z_o for clipped-high, r_o for free).
	base := 0.0
	nfree := 0
	for len(act) > 0 {
		// Median-of-three deterministic pivot, strictly inside (a, b).
		p := pivotIn(act[0], r, z, e, a, b)
		if len(act) > 2 {
			p1 := pivotIn(act[len(act)/2], r, z, e, a, b)
			p2 := pivotIn(act[len(act)-1], r, z, e, a, b)
			// Median of p, p1, p2.
			if p > p1 {
				p, p1 = p1, p
			}
			if p1 > p2 {
				p1 = p2
			}
			if p < p1 {
				p = p1
			}
		}
		// Evaluate f(p) over the active coordinates.
		f := base + float64(nfree)*p
		for _, o := range act {
			v := r[o] + p
			if zo := z[o]; v < zo {
				v = zo
			} else if hi := e * zo; v > hi {
				v = hi
			}
			f += v
		}
		// f is nondecreasing: the leftmost crossing is ≤ p iff f(p) ≥ 1.
		if f >= 1 {
			b = p
		} else {
			a = p
		}
		// Retire coordinates with no breakpoint left inside (a, b): their
		// clip status is constant across the remaining interval.
		w := 0
		for _, o := range act {
			lo := z[o] - r[o]
			hi := e*z[o] - r[o]
			switch {
			case lo >= b: // clipped low for every λ ≤ b
				base += z[o]
			case hi <= a: // clipped high for every λ > a
				base += e * z[o]
			case lo <= a && hi >= b: // free on the whole interval
				base += r[o]
				nfree++
			default:
				act[w] = o
				w++
			}
		}
		act = act[:w]
	}
	// No breakpoints left in (a, b): f is linear there with slope nfree,
	// f(λ) = base + nfree·λ, and the crossing is bracketed by construction.
	if nfree > 0 {
		lam := (1 - base) / float64(nfree)
		// Round-off guard: keep λ inside the bracket.
		if lam < a {
			lam = a
		} else if lam > b {
			lam = b
		}
		return lam
	}
	// Degenerate flat interval (only reachable when Σz or e^ε Σz round to 1):
	// any λ in the bracket projects identically.
	if !math.IsInf(a, -1) {
		return a
	}
	return b
}

// ColumnProjection is the result of projecting one column onto the bounded
// probability simplex.
type ColumnProjection struct {
	// Q is the projected column: clip(r + λ, z, e^ε z) with 1ᵀQ = 1.
	Q []float64
	// Lambda is the shift (the Lagrange multiplier of the sum constraint).
	Lambda float64
	// State[o] records whether coordinate o was clipped low, high, or free.
	State []ClipState
	// NumFree counts interior coordinates.
	NumFree int
}

// ProjectColumn solves Problem 4.1 for a single column (Proposition 4.2 /
// Algorithm 1): it returns the Euclidean projection of r onto
// {q : z ≤ q ≤ e^ε z, 1ᵀq = 1}.
//
// z must be coordinate-wise non-negative with Σz ≤ 1 ≤ e^ε Σz (otherwise the
// set is empty and ErrInfeasible is returned).
func ProjectColumn(r, z []float64, eps float64) (*ColumnProjection, error) {
	m := len(r)
	if len(z) != m {
		return nil, fmt.Errorf("opt: r has %d entries, z has %d", m, len(z))
	}
	e := math.Exp(eps)
	if err := validateZ(z, e); err != nil {
		return nil, err
	}
	lambda := solveLambda(make([]int32, m), r, z, e)

	q := make([]float64, m)
	state := make([]ClipState, m)
	free := 0
	for o := 0; o < m; o++ {
		v := r[o] + lambda
		switch {
		case v <= z[o]:
			q[o] = z[o]
			state[o] = ClipLow
		case v >= e*z[o]:
			q[o] = e * z[o]
			state[o] = ClipHigh
		default:
			q[o] = v
			state[o] = Free
			free++
		}
	}
	// Absorb residual round-off into the free coordinates so the column sums
	// to one exactly (keeps downstream LDP validation clean).
	if free > 0 {
		resid := 1 - linalg.Sum(q)
		adj := resid / float64(free)
		for o := 0; o < m; o++ {
			if state[o] == Free {
				q[o] += adj
			}
		}
	}
	return &ColumnProjection{Q: q, Lambda: lambda, State: state, NumFree: free}, nil
}

// MatrixProjection is the result of projecting every column of a matrix onto
// the bounded probability simplex.
type MatrixProjection struct {
	// Q is the projected matrix (each column feasible).
	Q *linalg.Matrix
	// State is m×n; State[o*n+u] is the clip state of entry (o, u).
	State []ClipState
	// NumFree[u] counts free coordinates in column u.
	NumFree []int
}

// reshape (re)sizes the projection buffers for an m×n problem, reusing
// existing storage when the shape already matches.
func (p *MatrixProjection) reshape(m, n int) {
	if p.Q == nil || p.Q.Rows() != m || p.Q.Cols() != n {
		p.Q = linalg.New(m, n)
	}
	if cap(p.State) < m*n {
		p.State = make([]ClipState, m*n)
	}
	p.State = p.State[:m*n]
	if cap(p.NumFree) < n {
		p.NumFree = make([]int, n)
	}
	p.NumFree = p.NumFree[:n]
}

// projWorker is one worker's scratch for ProjectMatrixInto.
type projWorker struct {
	col []float64
	act []int32
}

func (w *projWorker) grow(m int) {
	if cap(w.col) < m {
		w.col = make([]float64, m)
		w.act = make([]int32, m)
	}
	w.col = w.col[:m]
	w.act = w.act[:m]
}

// Scratch holds the per-worker buffers ProjectMatrixInto needs. The zero
// value is ready to use; buffers grow on demand and are reused across calls,
// so steady-state projections at a fixed shape allocate nothing. A Scratch
// must not be shared by concurrent ProjectMatrixInto calls (the call itself
// parallelizes internally).
type Scratch struct {
	workers []projWorker
}

// ProjectMatrix applies ProjectColumn to every column of r: the operator
// Π_{z,ε}(R) of Problem 4.1.
func ProjectMatrix(r *linalg.Matrix, z []float64, eps float64) (*MatrixProjection, error) {
	out := &MatrixProjection{}
	var ws Scratch
	if err := ProjectMatrixInto(out, &ws, r, z, eps); err != nil {
		return nil, err
	}
	return out, nil
}

// ProjectMatrixInto is ProjectMatrix writing into a caller-owned out and
// scratch ws, both reused (and resized on demand) across calls. Columns fan
// out across GOMAXPROCS goroutines above a work threshold; each column's
// result is independent of the split, so the output is bit-identical to the
// serial projection at any worker count. out.Q must not alias r.
func ProjectMatrixInto(out *MatrixProjection, ws *Scratch, r *linalg.Matrix, z []float64, eps float64) error {
	m, n := r.Rows(), r.Cols()
	if len(z) != m {
		return fmt.Errorf("opt: z has %d entries, R has %d rows", len(z), m)
	}
	e := math.Exp(eps)
	if err := validateZ(z, e); err != nil {
		return err
	}
	out.reshape(m, n)
	if w := linalg.MaxWorkers(); len(ws.workers) < w {
		ws.workers = append(ws.workers, make([]projWorker, w-len(ws.workers))...)
	}

	// ~m log(2m) comparisons per column dominate; weight them like flops.
	cost := n * m * 24
	if !linalg.ShouldParallel(n, cost) {
		ws.workers[0].projectCols(out, r, z, e, 0, n)
		return nil
	}
	linalg.ParallelRange(n, cost, func(worker, lo, hi int) {
		ws.workers[worker].projectCols(out, r, z, e, lo, hi)
	})
	return nil
}

// projectCols projects the column block [lo, hi) of r into out, using the
// worker's scratch buffers.
func (sc *projWorker) projectCols(out *MatrixProjection, r *linalg.Matrix, z []float64, e float64, lo, hi int) {
	m, n := r.Rows(), r.Cols()
	rd, qd := r.Data(), out.Q.Data()
	sc.grow(m)
	for u := lo; u < hi; u++ {
		for o := 0; o < m; o++ {
			sc.col[o] = rd[o*n+u]
		}
		lambda := solveLambda(sc.act, sc.col, z, e)
		free := 0
		sum := 0.0
		for o := 0; o < m; o++ {
			v := sc.col[o] + lambda
			var q float64
			switch {
			case v <= z[o]:
				q = z[o]
				out.State[o*n+u] = ClipLow
			case v >= e*z[o]:
				q = e * z[o]
				out.State[o*n+u] = ClipHigh
			default:
				q = v
				out.State[o*n+u] = Free
				free++
			}
			qd[o*n+u] = q
			sum += q
		}
		// Absorb residual round-off into the free coordinates so the column
		// sums to one exactly.
		if free > 0 {
			adj := (1 - sum) / float64(free)
			for o := 0; o < m; o++ {
				if out.State[o*n+u] == Free {
					qd[o*n+u] += adj
				}
			}
		}
		out.NumFree[u] = free
	}
}

// FeasibleZ rescales z in place so the bounded simplex is non-empty:
// Σz ≤ 1 ≤ e^ε Σz, with every coordinate at least floor ≥ 0. It returns z.
func FeasibleZ(z []float64, eps, floor float64) []float64 {
	for i := range z {
		if z[i] < floor {
			z[i] = floor
		}
	}
	e := math.Exp(eps)
	s := linalg.Sum(z)
	if s <= 0 {
		// Degenerate: spread uniformly at a feasible level.
		v := 1 / (e * float64(len(z)))
		for i := range z {
			z[i] = v
		}
		return z
	}
	const margin = 1e-9
	if s > 1-margin {
		linalg.ScaleVec((1-margin)/s, z)
	} else if e*s < 1+margin {
		linalg.ScaleVec((1+margin)/(e*s), z)
	}
	return z
}
