package opt

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/linalg"
)

// serialProjectMatrix is a reference implementation built from ProjectColumn,
// the path ProjectMatrixInto must reproduce bit-for-bit.
func serialProjectMatrix(t *testing.T, r *linalg.Matrix, z []float64, eps float64) *MatrixProjection {
	t.Helper()
	m, n := r.Rows(), r.Cols()
	out := &MatrixProjection{Q: linalg.New(m, n), State: make([]ClipState, m*n), NumFree: make([]int, n)}
	col := make([]float64, m)
	for u := 0; u < n; u++ {
		for o := 0; o < m; o++ {
			col[o] = r.At(o, u)
		}
		cp, err := ProjectColumn(col, z, eps)
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < m; o++ {
			out.Q.Set(o, u, cp.Q[o])
			out.State[o*n+u] = cp.State[o]
		}
		out.NumFree[u] = cp.NumFree
	}
	return out
}

func sameProjection(a, b *MatrixProjection) bool {
	if !linalg.ApproxEqual(a.Q, b.Q, 0) { // tol 0: bit-for-bit
		return false
	}
	for i := range a.State {
		if a.State[i] != b.State[i] {
			return false
		}
	}
	for i := range a.NumFree {
		if a.NumFree[i] != b.NumFree[i] {
			return false
		}
	}
	return true
}

// TestProjectMatrixIntoBitIdentical checks the parallel, scratch-reusing
// projection against the column-at-a-time reference across worker counts and
// shapes, reusing the same out/scratch between calls.
func TestProjectMatrixIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var out MatrixProjection
	var ws Scratch
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, sh := range [][2]int{{8, 3}, {64, 16}, {256, 64}, {32, 32}} {
			m, n := sh[0], sh[1]
			eps := 1.0
			z := linalg.Constant(m, 0.7/float64(m))
			r := linalg.New(m, n)
			for i := range r.Data() {
				r.Data()[i] = rng.NormFloat64()
			}
			want := serialProjectMatrix(t, r, z, eps)
			if err := ProjectMatrixInto(&out, &ws, r, z, eps); err != nil {
				t.Fatal(err)
			}
			if !sameProjection(&out, want) {
				t.Errorf("procs=%d m=%d n=%d: ProjectMatrixInto differs from serial reference", procs, m, n)
			}
			mp, err := ProjectMatrix(r, z, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !sameProjection(mp, want) {
				t.Errorf("procs=%d m=%d n=%d: ProjectMatrix differs from serial reference", procs, m, n)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestProjectMatrixIntoSteadyStateAllocFree verifies the workspace contract:
// after the first call warms the buffers, repeated projections at the same
// shape allocate nothing (single-worker path; fan-out goroutines may allocate
// scheduler-side).
func TestProjectMatrixIntoSteadyStateAllocFree(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	m, n := 128, 32
	rng := rand.New(rand.NewSource(10))
	z := linalg.Constant(m, 0.8/float64(m))
	r := linalg.New(m, n)
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	var out MatrixProjection
	var ws Scratch
	if err := ProjectMatrixInto(&out, &ws, r, z, 1.0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := ProjectMatrixInto(&out, &ws, r, z, 1.0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state ProjectMatrixInto allocates %v times per call", allocs)
	}
}

func TestProjectMatrixIntoInfeasible(t *testing.T) {
	var out MatrixProjection
	var ws Scratch
	z := []float64{0.9, 0.9} // Σz > 1
	err := ProjectMatrixInto(&out, &ws, linalg.New(2, 2), z, 1.0)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}
