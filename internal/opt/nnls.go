package opt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Operator is an implicit linear operator with its adjoint, as implemented by
// workload.Workload. NNLS and power iteration only touch W through these two
// products, so workloads with huge explicit forms (AllRange) stay cheap.
type Operator interface {
	// MatVec returns W·x.
	MatVec(x []float64) []float64
	// TMatVec returns Wᵀ·y.
	TMatVec(y []float64) []float64
	// Domain returns the number of columns of W.
	Domain() int
	// Queries returns the number of rows of W.
	Queries() int
}

// PowerIteration estimates the largest eigenvalue of WᵀW (the squared
// spectral norm of W) by power iteration on x ↦ Wᵀ(Wx). It runs iters steps
// from a fixed pseudo-random start; 30–50 iterations give the 2–3 digits the
// NNLS step size needs.
func PowerIteration(op Operator, iters int, seed int64) float64 {
	n := op.Domain()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	nrm := linalg.Norm2(x)
	if nrm == 0 {
		x[0] = 1
		nrm = 1
	}
	linalg.ScaleVec(1/nrm, x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		y := op.TMatVec(op.MatVec(x))
		lambda = linalg.Dot(x, y)
		nrm = linalg.Norm2(y)
		if nrm == 0 {
			return 0
		}
		linalg.ScaleVec(1/nrm, y)
		x = y
	}
	return lambda
}

// NNLSOptions configures the non-negative least squares solver.
type NNLSOptions struct {
	// MaxIters bounds the number of FISTA iterations (default 500).
	MaxIters int
	// Tol stops when the relative change of the objective falls below it
	// (default 1e-9).
	Tol float64
	// X0 optionally seeds the solution (clipped to ≥ 0); nil starts at zero.
	X0 []float64
}

// NNLSResult reports the solution and convergence diagnostics.
type NNLSResult struct {
	// X is the non-negative minimizer found.
	X []float64
	// Objective is ‖Wx − b‖² at X.
	Objective float64
	// Iters is the number of iterations performed.
	Iters int
	// Converged reports whether the tolerance was met before MaxIters.
	Converged bool
}

// NNLS solves min_{x ≥ 0} ‖W·x − b‖² using FISTA (accelerated projected
// gradient) with gradient-based adaptive restart. The Lipschitz constant of
// the gradient is 2·λ_max(WᵀW), estimated by power iteration.
//
// The paper's Appendix A solves this with scipy's L-BFGS; FISTA solves the
// same convex program to tolerance (the program is convex, so any convergent
// first-order method reaches the same objective value). See DESIGN.md §4.
func NNLS(op Operator, b []float64, o NNLSOptions) (*NNLSResult, error) {
	if len(b) != op.Queries() {
		return nil, fmt.Errorf("opt: NNLS rhs length %d, want %d", len(b), op.Queries())
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	n := op.Domain()
	lmax := PowerIteration(op, 40, 1)
	if lmax <= 0 {
		// W is (numerically) zero: any feasible x is optimal; return zero.
		return &NNLSResult{X: make([]float64, n), Objective: linalg.Dot(b, b), Converged: true}, nil
	}
	step := 1 / (2 * lmax * 1.01) // slight shrink for the estimate's error

	x := make([]float64, n)
	if o.X0 != nil {
		if len(o.X0) != n {
			return nil, fmt.Errorf("opt: NNLS X0 length %d, want %d", len(o.X0), n)
		}
		copy(x, o.X0)
		for i := range x {
			if x[i] < 0 {
				x[i] = 0
			}
		}
	}
	y := linalg.CloneVec(x)
	t := 1.0

	obj := func(v []float64) float64 {
		r := op.MatVec(v)
		for i := range r {
			r[i] -= b[i]
		}
		return linalg.Dot(r, r)
	}
	prevObj := obj(x)
	res := &NNLSResult{}
	for it := 0; it < o.MaxIters; it++ {
		res.Iters = it + 1
		// ∇f(y) = 2Wᵀ(Wy − b)
		r := op.MatVec(y)
		for i := range r {
			r[i] -= b[i]
		}
		g := op.TMatVec(r)
		linalg.ScaleVec(2, g)

		xNew := make([]float64, n)
		for i := range xNew {
			v := y[i] - step*g[i]
			if v < 0 {
				v = 0
			}
			xNew[i] = v
		}
		// Gradient restart: if the momentum direction opposes the gradient
		// step, reset acceleration (O'Donoghue–Candès).
		restart := 0.0
		for i := range xNew {
			restart += (y[i] - xNew[i]) * (xNew[i] - x[i])
		}
		if restart > 0 {
			t = 1
			copy(y, xNew)
		} else {
			tNew := (1 + math.Sqrt(1+4*t*t)) / 2
			beta := (t - 1) / tNew
			for i := range y {
				y[i] = xNew[i] + beta*(xNew[i]-x[i])
				if y[i] < 0 {
					y[i] = 0
				}
			}
			t = tNew
		}
		x = xNew

		if (it+1)%10 == 0 || it == o.MaxIters-1 {
			cur := obj(x)
			if math.Abs(prevObj-cur) <= o.Tol*(1+math.Abs(prevObj)) {
				res.Converged = true
				prevObj = cur
				break
			}
			prevObj = cur
		}
	}
	res.X = x
	res.Objective = obj(x)
	return res, nil
}

// MatrixOperator adapts an explicit matrix to the Operator interface.
type MatrixOperator struct{ M *linalg.Matrix }

// MatVec returns M·x.
func (mo MatrixOperator) MatVec(x []float64) []float64 { return mo.M.MulVec(x) }

// TMatVec returns Mᵀ·y.
func (mo MatrixOperator) TMatVec(y []float64) []float64 { return mo.M.MulVecT(y) }

// Domain returns the number of columns.
func (mo MatrixOperator) Domain() int { return mo.M.Cols() }

// Queries returns the number of rows.
func (mo MatrixOperator) Queries() int { return mo.M.Rows() }
