package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/workload"
)

// bisectProject is a slow, obviously-correct reference for ProjectColumn:
// binary search on λ.
func bisectProject(r, z []float64, eps float64) []float64 {
	e := math.Exp(eps)
	f := func(lam float64) float64 {
		s := 0.0
		for i := range r {
			v := r[i] + lam
			if v < z[i] {
				v = z[i]
			}
			if v > e*z[i] {
				v = e * z[i]
			}
			s += v
		}
		return s - 1
	}
	lo, hi := -1e6, 1e6
	for it := 0; it < 200; it++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	lam := (lo + hi) / 2
	out := make([]float64, len(r))
	for i := range r {
		v := r[i] + lam
		if v < z[i] {
			v = z[i]
		}
		if v > e*z[i] {
			v = e * z[i]
		}
		out[i] = v
	}
	return out
}

func feasibleZ(rng *rand.Rand, m int, eps float64) []float64 {
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.Float64()
	}
	// Scale so Σz is strictly inside [e^-ε, 1].
	target := math.Exp(-eps) + (1-math.Exp(-eps))*(0.2+0.6*rng.Float64())
	linalg.ScaleVec(target/linalg.Sum(z), z)
	return z
}

func TestProjectColumnMatchesBisection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(20)
		eps := 0.2 + 3*rng.Float64()
		z := feasibleZ(rng, m, eps)
		r := make([]float64, m)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		cp, err := ProjectColumn(r, z, eps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bisectProject(r, z, eps)
		for i := range want {
			if math.Abs(cp.Q[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: q[%d] = %v, want %v", trial, i, cp.Q[i], want[i])
			}
		}
	}
}

func TestProjectColumnFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(30)
		eps := 0.1 + 4*rng.Float64()
		e := math.Exp(eps)
		z := feasibleZ(rng, m, eps)
		r := make([]float64, m)
		for i := range r {
			r[i] = 5 * rng.NormFloat64()
		}
		cp, err := ProjectColumn(r, z, eps)
		if err != nil {
			return false
		}
		if math.Abs(linalg.Sum(cp.Q)-1) > 1e-9 {
			return false
		}
		for i := range cp.Q {
			if cp.Q[i] < z[i]-1e-9 || cp.Q[i] > e*z[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectColumnIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(10)
		eps := 0.5 + rng.Float64()
		z := feasibleZ(rng, m, eps)
		r := make([]float64, m)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		cp, err := ProjectColumn(r, z, eps)
		if err != nil {
			t.Fatal(err)
		}
		cp2, err := ProjectColumn(cp.Q, z, eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cp.Q {
			if math.Abs(cp.Q[i]-cp2.Q[i]) > 1e-9 {
				t.Fatalf("projection not idempotent at %d: %v vs %v", i, cp.Q[i], cp2.Q[i])
			}
		}
	}
}

// The projection must be the closest feasible point: no random feasible point
// may be closer to r.
func TestProjectColumnIsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(8)
		eps := 0.5 + 2*rng.Float64()
		z := feasibleZ(rng, m, eps)
		r := make([]float64, m)
		for i := range r {
			r[i] = 2 * rng.NormFloat64()
		}
		cp, err := ProjectColumn(r, z, eps)
		if err != nil {
			t.Fatal(err)
		}
		dist := func(q []float64) float64 {
			s := 0.0
			for i := range q {
				s += (q[i] - r[i]) * (q[i] - r[i])
			}
			return s
		}
		dStar := dist(cp.Q)
		// Generate random feasible competitors by projecting random vectors.
		for k := 0; k < 20; k++ {
			v := make([]float64, m)
			for i := range v {
				v[i] = 2 * rng.NormFloat64()
			}
			other, err := ProjectColumn(v, z, eps)
			if err != nil {
				t.Fatal(err)
			}
			if dist(other.Q) < dStar-1e-8 {
				t.Fatalf("found feasible point closer than the projection: %v < %v", dist(other.Q), dStar)
			}
		}
	}
}

func TestProjectColumnInfeasible(t *testing.T) {
	// Σz > 1.
	z := []float64{0.8, 0.8}
	if _, err := ProjectColumn([]float64{0, 0}, z, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible for Σz > 1, got %v", err)
	}
	// e^ε Σz < 1.
	z2 := []float64{0.1, 0.1}
	if _, err := ProjectColumn([]float64{0, 0}, z2, 0.1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible for e^ε Σz < 1, got %v", err)
	}
	// Negative z.
	if _, err := ProjectColumn([]float64{0, 0}, []float64{-0.1, 0.5}, 1); err == nil {
		t.Fatal("expected error for negative z")
	}
}

func TestProjectColumnStates(t *testing.T) {
	// Construct a case with known clip pattern: r very negative in coord 0
	// (clip low), very positive in coord 1 (clip high), moderate in others.
	eps := 1.0
	z := []float64{0.2, 0.2, 0.2}
	r := []float64{-10, 10, 0.3}
	cp, err := ProjectColumn(r, z, eps)
	if err != nil {
		t.Fatal(err)
	}
	if cp.State[0] != ClipLow {
		t.Fatalf("state[0] = %d, want ClipLow", cp.State[0])
	}
	if cp.State[1] != ClipHigh {
		t.Fatalf("state[1] = %d, want ClipHigh", cp.State[1])
	}
	if cp.State[2] != Free {
		t.Fatalf("state[2] = %d, want Free", cp.State[2])
	}
	if cp.NumFree != 1 {
		t.Fatalf("NumFree = %d, want 1", cp.NumFree)
	}
	wantFree := 1 - z[0] - math.E*z[1]
	if math.Abs(cp.Q[2]-wantFree) > 1e-9 {
		t.Fatalf("free coordinate = %v, want %v", cp.Q[2], wantFree)
	}
}

func TestProjectMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 12, 5
	eps := 1.0
	z := feasibleZ(rng, m, eps)
	r := linalg.New(m, n)
	for i := range r.Data() {
		r.Data()[i] = rng.NormFloat64()
	}
	mp, err := ProjectMatrix(r, z, eps)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		col := mp.Q.Col(u)
		if math.Abs(linalg.Sum(col)-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", u, linalg.Sum(col))
		}
	}
	// State bookkeeping: NumFree consistent with State.
	for u := 0; u < n; u++ {
		free := 0
		for o := 0; o < m; o++ {
			if mp.State[o*n+u] == Free {
				free++
			}
		}
		if free != mp.NumFree[u] {
			t.Fatalf("column %d: NumFree = %d, states say %d", u, mp.NumFree[u], free)
		}
	}
}

func TestFeasibleZ(t *testing.T) {
	eps := 1.0
	// Too large: must be scaled down below 1.
	z := []float64{0.9, 0.9}
	FeasibleZ(z, eps, 0)
	if linalg.Sum(z) > 1 {
		t.Fatalf("Σz = %v after FeasibleZ", linalg.Sum(z))
	}
	// Too small: must be scaled up so e^ε Σz ≥ 1.
	z2 := []float64{0.01, 0.01}
	FeasibleZ(z2, eps, 0)
	if math.Exp(eps)*linalg.Sum(z2) < 1 {
		t.Fatalf("e^ε Σz = %v after FeasibleZ", math.Exp(eps)*linalg.Sum(z2))
	}
	// All-zero input gets a uniform feasible vector.
	z3 := []float64{0, 0, 0}
	FeasibleZ(z3, eps, 0)
	if _, err := ProjectColumn([]float64{0.3, 0.3, 0.4}, z3, eps); err != nil {
		t.Fatalf("FeasibleZ output still infeasible: %v", err)
	}
	// Floor respected.
	z4 := []float64{0, 0.5}
	FeasibleZ(z4, eps, 1e-6)
	if z4[0] < 1e-7 {
		t.Fatalf("floor not applied: %v", z4[0])
	}
}

func TestPowerIteration(t *testing.T) {
	// Known spectrum: diag(3, 2, 1) has λ_max(WᵀW) = 9.
	m := linalg.Diag([]float64{3, 2, 1})
	got := PowerIteration(MatrixOperator{m}, 100, 1)
	if math.Abs(got-9) > 1e-6 {
		t.Fatalf("power iteration = %v, want 9", got)
	}
	// Prefix workload: λ_max(WᵀW) must match the eigen solver.
	w := workload.NewPrefix(16)
	vals, _, err := linalg.SymEigen(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	got = PowerIteration(w, 200, 2)
	if math.Abs(got-vals[0]) > 1e-4*vals[0] {
		t.Fatalf("power iteration = %v, want %v", got, vals[0])
	}
}

func TestNNLSUnconstrainedInterior(t *testing.T) {
	// When the LS solution is already non-negative, NNLS must find it.
	w := linalg.NewFrom(3, 2, []float64{1, 0, 0, 1, 1, 1})
	xTrue := []float64{2, 3}
	b := w.MulVec(xTrue)
	res, err := NNLS(MatrixOperator{w}, b, NNLSOptions{MaxIters: 2000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-5 {
			t.Fatalf("NNLS x = %v, want %v (obj %v)", res.X, xTrue, res.Objective)
		}
	}
}

func TestNNLSActiveConstraint(t *testing.T) {
	// min (x0 - (-1))² + (x1 - 2)² s.t. x ≥ 0 → x = (0, 2).
	w := linalg.Identity(2)
	b := []float64{-1, 2}
	res, err := NNLS(MatrixOperator{w}, b, NNLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Fatalf("NNLS x = %v, want [0 2]", res.X)
	}
	if math.Abs(res.Objective-1) > 1e-6 {
		t.Fatalf("objective = %v, want 1", res.Objective)
	}
}

func TestNNLSNonNegativityAlways(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, n := 3+rng.Intn(6), 2+rng.Intn(4)
		w := linalg.New(p, n)
		for i := range w.Data() {
			w.Data()[i] = rng.NormFloat64()
		}
		b := make([]float64, p)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := NNLS(MatrixOperator{w}, b, NNLSOptions{MaxIters: 300})
		if err != nil {
			return false
		}
		for _, v := range res.X {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNNLSWithImplicitWorkload(t *testing.T) {
	// Solve against the implicit AllRange operator and verify the result
	// matches the explicit-matrix solve.
	rng := rand.New(rand.NewSource(5))
	w := workload.NewAllRange(6)
	xTrue := make([]float64, 6)
	for i := range xTrue {
		xTrue[i] = rng.Float64() * 10
	}
	b := w.MatVec(xTrue)
	res1, err := NNLS(w, b, NNLSOptions{MaxIters: 3000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := NNLS(MatrixOperator{w.Matrix()}, b, NNLSOptions{MaxIters: 3000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(res1.X[i]-xTrue[i]) > 1e-3 {
			t.Fatalf("implicit NNLS x = %v, want %v", res1.X, xTrue)
		}
		if math.Abs(res1.X[i]-res2.X[i]) > 1e-3 {
			t.Fatalf("implicit vs explicit disagree: %v vs %v", res1.X, res2.X)
		}
	}
}

func TestNNLSX0Seeding(t *testing.T) {
	w := linalg.Identity(3)
	b := []float64{1, 2, 3}
	res, err := NNLS(MatrixOperator{w}, b, NNLSOptions{X0: []float64{1, 2, 3}, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-10 {
		t.Fatalf("seeded NNLS should converge immediately, obj = %v", res.Objective)
	}
	// Negative seeds are clipped.
	if _, err := NNLS(MatrixOperator{w}, b, NNLSOptions{X0: []float64{-1, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	// Wrong-length seed errors.
	if _, err := NNLS(MatrixOperator{w}, b, NNLSOptions{X0: []float64{1}}); err == nil {
		t.Fatal("expected error for bad X0 length")
	}
}

func TestNNLSBadRHS(t *testing.T) {
	if _, err := NNLS(MatrixOperator{linalg.Identity(3)}, []float64{1}, NNLSOptions{}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}
