package baselines

import (
	"math"
	"testing"

	"repro/internal/mechanism"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Sample complexity must be monotone non-increasing in ε for every baseline:
// more privacy budget can never require more users.
func TestSampleComplexityMonotoneInEpsilon(t *testing.T) {
	n := 16
	w := workload.NewPrefix(n)
	build := func(eps float64) []mechanism.Mechanism {
		ms, err := Competitors(w, eps)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	epsilons := []float64{0.5, 1, 2, 4}
	var prev map[string]float64
	for _, eps := range epsilons {
		cur := map[string]float64{}
		for _, m := range build(eps) {
			vp, err := m.Profile(w)
			if err != nil {
				t.Fatalf("%s at ε=%v: %v", m.Name(), eps, err)
			}
			cur[m.Name()] = vp.SampleComplexity(0.01)
		}
		if prev != nil {
			for name, v := range cur {
				if pv, ok := prev[name]; ok && v > pv*1.0001 {
					t.Errorf("%s: sample complexity rose with ε: %v -> %v", name, pv, v)
				}
			}
		}
		prev = cur
	}
}

// The full-order Fourier strategy must have full column rank so it can answer
// arbitrary workloads (the property the Competitors set depends on).
func TestFourierFullOrderFullRank(t *testing.T) {
	f, err := Fourier(4, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Strategy().Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullRank {
		t.Fatal("full-order Fourier strategy should be full rank")
	}
	// Order-1 Fourier over d=4 has rank ≤ 5 < 16: it must *not* claim to
	// answer the Histogram workload.
	f1, err := Fourier(4, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Profile(workload.NewHistogram(16)); err == nil {
		t.Fatal("order-1 Fourier cannot answer Histogram; expected error")
	}
	// But it answers the 1-way marginals workload exactly.
	if _, err := f1.Profile(workload.NewKWayMarginals(4, 1)); err != nil {
		t.Fatalf("order-1 Fourier should answer 1-way marginals: %v", err)
	}
}

// Hierarchical with the paper's branching factor 4 must validate and have the
// expected number of levels.
func TestHierarchicalBranch4Levels(t *testing.T) {
	h, err := Hierarchical(64, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Widths 16, 4, 1 → cells 4 + 16 + 64 = 84.
	if got := h.Strategy().Outputs(); got != 84 {
		t.Fatalf("outputs = %d, want 84", got)
	}
	if err := h.Strategy().Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

// Subset selection beats randomized response on Histogram at moderate domain
// size and ε = 1 — the Ye–Barg optimality result the paper cites.
func TestSubsetSelectionBeatsRR(t *testing.T) {
	n, eps := 16, 1.0
	w := workload.NewHistogram(n)
	ss, err := SubsetSelection(n, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := ss.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := RandomizedResponse(n, eps).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if sv.SampleComplexity(0.01) >= rv.SampleComplexity(0.01) {
		t.Fatalf("Subset Selection (%v) should beat RR (%v)",
			sv.SampleComplexity(0.01), rv.SampleComplexity(0.01))
	}
}

// RAPPOR's strategy matrix must factor as independent bit flips: the
// probability of the all-zeros report for user u is (1-keep)·keep^{n-1}.
func TestRAPPORClosedFormEntry(t *testing.T) {
	n, eps := 5, 1.0
	rp, err := RAPPOR(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	e2 := math.Exp(eps / 2)
	keep := e2 / (1 + e2)
	want := (1 - keep) * math.Pow(keep, float64(n-1))
	if got := rp.Strategy().Q.At(0, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Pr[0...0 | u] = %v, want %v", got, want)
	}
}

// All additive mechanisms must declare strictly positive noise variance.
func TestAdditiveNoisePositive(t *testing.T) {
	w := workload.NewPrefix(8)
	l1, err := MatrixMechanismL1(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := MatrixMechanismL2(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*mechanism.Additive{l1, l2, Gaussian(8, 1), Laplace(8, 1)} {
		if a.NoiseVar <= 0 {
			t.Fatalf("%s noise variance = %v", a.Name(), a.NoiseVar)
		}
	}
}

// The strategy matrices the baselines produce are genuinely different
// mechanisms (no accidental aliasing between constructions).
func TestBaselinesDistinct(t *testing.T) {
	n, eps := 8, 1.0
	h, err := Hierarchical(n, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Fourier(3, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []*strategy.Strategy{
		RandomizedResponse(n, eps).Strategy(),
		HadamardResponse(n, eps).Strategy(),
		h.Strategy(),
		f.Strategy(),
	}
	for i := range strategies {
		for j := i + 1; j < len(strategies); j++ {
			a, b := strategies[i], strategies[j]
			if a.Outputs() == b.Outputs() && a.Q.FrobNorm2() == b.Q.FrobNorm2() {
				t.Fatalf("strategies %d and %d look identical", i, j)
			}
		}
	}
}
