package baselines

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mechanism"
	"repro/internal/workload"
)

// Every strategy-matrix baseline must satisfy the LDP constraints of
// Proposition 2.6 at its declared ε — the repo-wide privacy smoke test.
func TestAllStrategyBaselinesAreLDP(t *testing.T) {
	n := 8
	for _, eps := range []float64{0.5, 1.0, 3.0} {
		var mechs []*mechanism.Factorization
		mechs = append(mechs, RandomizedResponse(n, eps), HadamardResponse(n, eps))
		h, err := Hierarchical(n, eps, 2)
		if err != nil {
			t.Fatal(err)
		}
		mechs = append(mechs, h)
		f, err := Fourier(3, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		mechs = append(mechs, f)
		ss, err := SubsetSelection(n, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		mechs = append(mechs, ss)
		rp, err := RAPPOR(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		mechs = append(mechs, rp)
		for _, m := range mechs {
			if err := m.Strategy().Validate(1e-9); err != nil {
				t.Errorf("ε=%v: %s violates LDP: %v", eps, m.Name(), err)
			}
		}
	}
}

func TestRandomizedResponseMatchesClosedForm(t *testing.T) {
	// Example 3.7 again, but through the Mechanism interface.
	n, eps := 6, 1.0
	rr := RandomizedResponse(n, eps)
	vp, err := rr.Profile(workload.NewHistogram(n))
	if err != nil {
		t.Fatal(err)
	}
	e := math.Exp(eps)
	nf := float64(n)
	want := (nf - 1) * (nf/((e-1)*(e-1)) + 2/(e-1))
	if got := vp.Worst(1); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("RR worst variance = %v, want %v", got, want)
	}
}

func TestHadamardShape(t *testing.T) {
	// n=8 needs K=16 outputs (2^⌈log2 9⌉).
	h := HadamardResponse(8, 1)
	if h.Strategy().Outputs() != 16 {
		t.Fatalf("outputs = %d, want 16", h.Strategy().Outputs())
	}
	// n=7 needs K=8.
	h = HadamardResponse(7, 1)
	if h.Strategy().Outputs() != 8 {
		t.Fatalf("outputs = %d, want 8", h.Strategy().Outputs())
	}
}

// The paper's headline for Hadamard: at moderate-to-large domains it needs far
// fewer samples than RR for Histogram (sample complexity ~independent of n).
func TestHadamardBeatsRRAtLargeDomain(t *testing.T) {
	n, eps := 64, 1.0
	w := workload.NewHistogram(n)
	rr, err := RandomizedResponse(n, eps).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	had, err := HadamardResponse(n, eps).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if had.SampleComplexity(0.01) >= rr.SampleComplexity(0.01) {
		t.Fatalf("Hadamard (%v) should beat RR (%v) on Histogram at n=64",
			had.SampleComplexity(0.01), rr.SampleComplexity(0.01))
	}
}

func TestHierarchicalStructure(t *testing.T) {
	h, err := Hierarchical(8, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Levels: widths 4,2,1 → cells 2+4+8 = 14 rows.
	if got := h.Strategy().Outputs(); got != 14 {
		t.Fatalf("outputs = %d, want 14", got)
	}
	// Branch < 2 rejected.
	if _, err := Hierarchical(8, 1, 1); err == nil {
		t.Fatal("expected error for branch < 2")
	}
	// Tiny domain degenerates to one singleton level.
	h2, err := Hierarchical(2, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Strategy().Outputs() != 2 {
		t.Fatalf("outputs = %d, want 2", h2.Strategy().Outputs())
	}
}

// Hierarchical is designed for range workloads: it must beat RR on Prefix at
// moderate domain size (Section 6.2: "the best competitor on the Prefix
// workload was Hierarchical").
func TestHierarchicalBeatsRROnPrefix(t *testing.T) {
	n, eps := 64, 1.0
	w := workload.NewPrefix(n)
	h, err := Hierarchical(n, eps, 4)
	if err != nil {
		t.Fatal(err)
	}
	hv, err := h.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := RandomizedResponse(n, eps).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if hv.SampleComplexity(0.01) >= rv.SampleComplexity(0.01) {
		t.Fatalf("Hierarchical (%v) should beat RR (%v) on Prefix",
			hv.SampleComplexity(0.01), rv.SampleComplexity(0.01))
	}
}

func TestFourierStructure(t *testing.T) {
	f, err := Fourier(3, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty subsets of [3]: 7, two outputs each.
	if f.Strategy().Outputs() != 14 {
		t.Fatalf("outputs = %d, want 14", f.Strategy().Outputs())
	}
	f2, err := Fourier(4, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// |S| ∈ {1,2}: 4 + 6 = 10 subsets.
	if f2.Strategy().Outputs() != 20 {
		t.Fatalf("outputs = %d, want 20", f2.Strategy().Outputs())
	}
	if _, err := Fourier(0, 1, 0); err == nil {
		t.Fatal("expected error for d = 0")
	}
}

// Fourier is designed for marginals: it must beat RR on 3-way marginals
// (Section 6.2: "the best competitor on the 3-Way Marginals workload was
// Fourier").
func TestFourierBeatsRROnMarginals(t *testing.T) {
	d, eps := 6, 1.0
	w := workload.NewKWayMarginals(d, 3)
	f, err := Fourier(d, eps, 3)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := f.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := RandomizedResponse(1<<d, eps).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if fv.SampleComplexity(0.01) >= rv.SampleComplexity(0.01) {
		t.Fatalf("Fourier (%v) should beat RR (%v) on 3-way marginals",
			fv.SampleComplexity(0.01), rv.SampleComplexity(0.01))
	}
}

func TestSubsetSelectionAutoD(t *testing.T) {
	// ε=1: d ≈ n/(e+1); for n=8, d = 2.
	ss, err := SubsetSelection(8, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Strategy().Outputs() != 28 { // C(8,2)
		t.Fatalf("outputs = %d, want C(8,2) = 28", ss.Strategy().Outputs())
	}
	// d=1 reduces exactly to randomized response.
	ss1, err := SubsetSelection(5, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr := RandomizedResponse(5, 1.0)
	if !linalg.ApproxEqual(ss1.Strategy().Q, rr.Strategy().Q, 1e-12) {
		t.Fatal("subset selection with d=1 should equal randomized response")
	}
	// Exponential blow-up rejected.
	if _, err := SubsetSelection(64, 0.1, 30); err == nil {
		t.Fatal("expected cap error for huge subset strategy")
	}
	if _, err := SubsetSelection(4, 1, 9); err == nil {
		t.Fatal("expected error for d > n")
	}
}

func TestRAPPORColumnsAreDistributions(t *testing.T) {
	rp, err := RAPPOR(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Strategy().Outputs() != 64 {
		t.Fatalf("outputs = %d, want 2^6", rp.Strategy().Outputs())
	}
	if _, err := RAPPOR(30, 1.0); err == nil {
		t.Fatal("expected cap error for RAPPOR at n=30")
	}
}

func TestMatrixMechanismNuclearNormIdentity(t *testing.T) {
	// For A = G^{1/4}, ‖WA⁺‖²_F = Σ singular values of W. Verify on Prefix.
	w := workload.NewPrefix(12)
	l2, err := MatrixMechanismL2(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := l2.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	nuc, err := linalg.NuclearNormFromGram(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	want := l2.NoiseVar * nuc
	if got := vp.PerUser[0]; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("L2 MM per-user variance = %v, want noiseVar·Σλ = %v", got, want)
	}
}

func TestGaussianDominatedByL2MM(t *testing.T) {
	// Section 6.1: the Gaussian mechanism is strictly dominated by the L2
	// Matrix Mechanism. Verify on Prefix, where strategy choice matters.
	w := workload.NewPrefix(32)
	eps := 1.0
	g, err := Gaussian(32, eps).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	l2m, err := MatrixMechanismL2(w, eps)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := l2m.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if l2.SampleComplexity(0.01) >= g.SampleComplexity(0.01) {
		t.Fatalf("L2 MM (%v) should dominate Gaussian (%v) on Prefix",
			l2.SampleComplexity(0.01), g.SampleComplexity(0.01))
	}
}

func TestAdditiveProfileUniform(t *testing.T) {
	w := workload.NewHistogram(6)
	vp, err := Laplace(6, 1.0).Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vp.PerUser {
		if math.Abs(v-vp.PerUser[0]) > 1e-12 {
			t.Fatal("additive mechanism variance must be uniform across user types")
		}
	}
	// Laplace on Histogram: var = 2(2/ε)²·‖I·I⁺‖²_F = 8n/ε².
	want := 8.0 * 6
	if math.Abs(vp.PerUser[0]-want) > 1e-9 {
		t.Fatalf("Laplace per-user variance = %v, want %v", vp.PerUser[0], want)
	}
}

func TestCompetitorsList(t *testing.T) {
	w := workload.NewPrefix(8)
	ms, err := Competitors(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("expected 6 competitors for power-of-two domain, got %d", len(ms))
	}
	// Non-power-of-two domain: Fourier dropped.
	w2 := workload.NewPrefix(10)
	ms2, err := Competitors(w2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2) != 5 {
		t.Fatalf("expected 5 competitors at n=10, got %d", len(ms2))
	}
	// All evaluable.
	scs := mechanism.SampleComplexities(ms, []workload.Workload{w}, 0.01)
	for i, row := range scs {
		if math.IsInf(row[0], 1) || row[0] <= 0 {
			t.Fatalf("competitor %d (%s) sample complexity = %v", i, ms[i].Name(), row[0])
		}
	}
}

func TestPairwiseColumnDiameter(t *testing.T) {
	a := linalg.NewFrom(2, 3, []float64{0, 1, 3, 0, 0, 4})
	if got := mechanism.PairwiseColumnDiameter(a, 2); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2 diameter = %v, want 5", got)
	}
	if got := mechanism.PairwiseColumnDiameter(a, 1); math.Abs(got-7) > 1e-12 {
		t.Fatalf("L1 diameter = %v, want 7", got)
	}
}

func TestForEachSubset(t *testing.T) {
	count := 0
	seen := map[uint]bool{}
	forEachSubset(6, 3, func(mask uint) {
		count++
		if popcount(mask) != 3 {
			t.Fatalf("mask %b has wrong popcount", mask)
		}
		if seen[mask] {
			t.Fatalf("duplicate mask %b", mask)
		}
		seen[mask] = true
	})
	if count != 20 {
		t.Fatalf("enumerated %d subsets, want C(6,3) = 20", count)
	}
	// d = 0 yields exactly the empty set.
	count = 0
	forEachSubset(4, 0, func(mask uint) { count++ })
	if count != 1 {
		t.Fatalf("d=0 enumerated %d subsets, want 1", count)
	}
}

func popcount(v uint) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

func TestMechanismMetadata(t *testing.T) {
	rr := RandomizedResponse(5, 1.5)
	if rr.Domain() != 5 || rr.Epsilon() != 1.5 || rr.Name() == "" {
		t.Fatal("metadata accessors wrong")
	}
	g := Gaussian(7, 2)
	if g.Domain() != 7 || g.Epsilon() != 2 {
		t.Fatal("additive metadata accessors wrong")
	}
	// Domain mismatch must error cleanly.
	if _, err := rr.Profile(workload.NewHistogram(6)); err == nil {
		t.Fatal("expected domain mismatch error")
	}
	if _, err := g.Profile(workload.NewHistogram(6)); err == nil {
		t.Fatal("expected domain mismatch error for additive mechanism")
	}
}
