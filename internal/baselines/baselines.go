// Package baselines implements every competitor mechanism from the paper's
// evaluation (Section 6.1): Randomized Response [44], Hadamard response [2],
// Hierarchical [13, 42], Fourier [12], the distributed Matrix Mechanism in
// its L1 (Laplace) and L2 (Gaussian) forms [27, 17], the Gaussian mechanism
// [4], and the two mechanisms the paper discusses but omits from its plots
// for exponential strategy size — RAPPOR [18] and Subset Selection [45]
// (available here for small domains).
//
// The first four are workload factorization mechanisms (Table 1): each is a
// fixed strategy matrix Q, re-used across workloads with the optimal
// reconstruction V of Theorem 3.10. The Matrix Mechanism and Gaussian
// mechanism are additive-noise mechanisms.
package baselines

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hadamard"
	"repro/internal/linalg"
	"repro/internal/mechanism"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// RandomizedResponse returns Warner's randomized response mechanism
// (Example 2.7): report the true type with probability ∝ e^ε, anything else
// with probability ∝ 1.
func RandomizedResponse(n int, eps float64) *mechanism.Factorization {
	e := math.Exp(eps)
	denom := e + float64(n) - 1
	q := linalg.New(n, n)
	for o := 0; o < n; o++ {
		row := q.Row(o)
		for u := 0; u < n; u++ {
			if o == u {
				row[u] = e / denom
			} else {
				row[u] = 1 / denom
			}
		}
	}
	return mechanism.NewFactorization("Randomized Response", strategy.New(q, eps))
}

// HadamardResponse returns the Hadamard response mechanism of Acharya et al.
// (Table 1): K = 2^⌈log2(n+1)⌉ outputs; user u reports output o with
// probability ∝ e^ε when H_{o,u+1} = +1 and ∝ 1 otherwise, where H is the
// K×K Sylvester–Hadamard matrix and users are assigned the non-constant
// columns 1..n.
func HadamardResponse(n int, eps float64) *mechanism.Factorization {
	k := hadamard.NextPow2(n + 1)
	e := math.Exp(eps)
	// Every non-constant Hadamard column has K/2 entries of each sign, so the
	// normalizer is shared by all users.
	denom := float64(k) / 2 * (e + 1)
	q := linalg.New(k, n)
	for o := 0; o < k; o++ {
		row := q.Row(o)
		for u := 0; u < n; u++ {
			if hadamard.Sign(o, u+1) > 0 {
				row[u] = e / denom
			} else {
				row[u] = 1 / denom
			}
		}
	}
	return mechanism.NewFactorization("Hadamard", strategy.New(q, eps))
}

// Hierarchical returns the hierarchical-histogram mechanism for range-query
// workloads [13, 42]: the domain is covered by L levels of progressively
// finer interval partitions (branching factor b, leaf level = singletons);
// each user picks a level uniformly at random and runs randomized response
// over that level's cells. Outputs are (level, cell) pairs.
func Hierarchical(n int, eps float64, branch int) (*mechanism.Factorization, error) {
	if branch < 2 {
		return nil, fmt.Errorf("baselines: branching factor must be ≥ 2, got %d", branch)
	}
	// Cell widths per level: n/b, n/b², ..., 1 (rounded up), deduplicated.
	var widths []int
	for w := ceilDiv(n, branch); ; w = ceilDiv(w, branch) {
		if len(widths) == 0 || widths[len(widths)-1] != w {
			widths = append(widths, w)
		}
		if w == 1 {
			break
		}
	}
	levels := len(widths)
	e := math.Exp(eps)
	rows := 0
	for _, w := range widths {
		rows += ceilDiv(n, w)
	}
	q := linalg.New(rows, n)
	at := 0
	for _, w := range widths {
		cells := ceilDiv(n, w)
		denom := float64(levels) * (e + float64(cells) - 1)
		for c := 0; c < cells; c++ {
			row := q.Row(at)
			for u := 0; u < n; u++ {
				if u/w == c {
					row[u] = e / denom
				} else {
					row[u] = 1 / denom
				}
			}
			at++
		}
	}
	return mechanism.NewFactorization("Hierarchical", strategy.New(q, eps)), nil
}

// Fourier returns the Fourier mechanism for marginal workloads over binary
// domains [12]: each user samples a non-empty subset S with |S| ≤ maxOrder
// uniformly from the needed Fourier coefficients and reports a randomized
// response of the parity bit χ_S(u) = (−1)^{⟨u,S⟩}. Outputs are (S, ±1)
// pairs. The domain size is 2^d; maxOrder ≤ 0 means all orders (d).
func Fourier(d int, eps float64, maxOrder int) (*mechanism.Factorization, error) {
	if d < 1 {
		return nil, fmt.Errorf("baselines: need d ≥ 1 binary attributes, got %d", d)
	}
	if maxOrder <= 0 || maxOrder > d {
		maxOrder = d
	}
	var subsets []int
	for s := 1; s < 1<<d; s++ {
		if bits.OnesCount(uint(s)) <= maxOrder {
			subsets = append(subsets, s)
		}
	}
	n := 1 << d
	e := math.Exp(eps)
	q := linalg.New(2*len(subsets), n)
	denom := float64(len(subsets)) * (e + 1)
	for i, s := range subsets {
		plus, minus := q.Row(2*i), q.Row(2*i+1)
		for u := 0; u < n; u++ {
			if bits.OnesCount(uint(s&u))%2 == 0 { // χ_S(u) = +1
				plus[u] = e / denom
				minus[u] = 1 / denom
			} else {
				plus[u] = 1 / denom
				minus[u] = e / denom
			}
		}
	}
	return mechanism.NewFactorization("Fourier", strategy.New(q, eps)), nil
}

// maxExplicitRows caps the materialized strategy size of the exponential
// mechanisms (RAPPOR, Subset Selection) — the same constraint that makes the
// paper omit them from its evaluation (Section 6.1).
const maxExplicitRows = 1 << 17

// SubsetSelection returns the subset-selection mechanism of Ye & Barg
// (Table 1): outputs are all size-d subsets of the domain; user u reports a
// subset with probability ∝ e^ε when it contains u and ∝ 1 otherwise.
// d ≤ 0 selects the asymptotically optimal d ≈ n/(e^ε + 1). The strategy has
// C(n, d) rows and is only materialized for small domains.
func SubsetSelection(n int, eps float64, d int) (*mechanism.Factorization, error) {
	e := math.Exp(eps)
	if d <= 0 {
		d = int(math.Round(float64(n) / (e + 1)))
		if d < 1 {
			d = 1
		}
	}
	if d > n {
		return nil, fmt.Errorf("baselines: subset size %d exceeds domain %d", d, n)
	}
	rows := binom(n, d)
	if rows <= 0 || rows > maxExplicitRows {
		return nil, fmt.Errorf("baselines: subset selection needs %d rows (cap %d); the paper omits it for the same reason", rows, maxExplicitRows)
	}
	// Column u: C(n−1, d−1) subsets contain u.
	denom := e*float64(binom(n-1, d-1)) + float64(rows-binom(n-1, d-1))
	q := linalg.New(rows, n)
	at := 0
	forEachSubset(n, d, func(mask uint) {
		row := q.Row(at)
		for u := 0; u < n; u++ {
			if mask&(1<<u) != 0 {
				row[u] = e / denom
			} else {
				row[u] = 1 / denom
			}
		}
		at++
	})
	name := fmt.Sprintf("Subset Selection (d=%d)", d)
	return mechanism.NewFactorization(name, strategy.New(q, eps)), nil
}

// RAPPOR returns the basic one-hot RAPPOR mechanism (Table 1): the user's
// type is one-hot encoded into n bits and every bit is flipped independently
// with probability 1/(1+e^{ε/2}); the output range is {0,1}^n. The strategy
// has 2^n rows and is only materialized for small domains.
func RAPPOR(n int, eps float64) (*mechanism.Factorization, error) {
	if n >= 18 || 1<<n > maxExplicitRows {
		return nil, fmt.Errorf("baselines: RAPPOR needs 2^%d rows (cap %d); the paper omits it for the same reason", n, maxExplicitRows)
	}
	e2 := math.Exp(eps / 2)
	keep := e2 / (1 + e2) // probability a bit is reported truthfully
	q := linalg.New(1<<n, n)
	for o := 0; o < 1<<n; o++ {
		row := q.Row(o)
		for u := 0; u < n; u++ {
			// Hamming distance between output o and one-hot e_u.
			dist := bits.OnesCount(uint(o) ^ (1 << u))
			row[u] = math.Pow(keep, float64(n-dist)) * math.Pow(1-keep, float64(dist))
		}
	}
	return mechanism.NewFactorization("RAPPOR", strategy.New(q, eps)), nil
}

// gaussianNoiseFactor converts ε to the Gaussian noise multiplier
// σ = Δ₂·√(2 ln(1.25/δ))/ε with δ = 1e−6: the classical analytic Gaussian
// calibration. The paper is not explicit about its L2 calibration; this
// choice (documented in DESIGN.md §4) preserves the qualitative behaviour the
// paper reports — L2 mechanisms lose badly at small domains and catch up only
// as n grows.
const gaussianDelta = 1e-6

func gaussianNoiseFactor(eps float64) float64 {
	return math.Sqrt(2*math.Log(1.25/gaussianDelta)) / eps
}

// sqrtStrategy returns A = G^{1/4} (so AᵀA = G^{1/2}), the square-root
// strategy that is the classical near-optimal solution of the L2 Matrix
// Mechanism program min tr(X⁻¹G) s.t. bounded diagonal [29, 46]: for this A,
// ‖WA⁺‖²_F = tr(G^{1/2}) = Σ singular values of W.
func sqrtStrategy(gram *linalg.Matrix) (*linalg.Matrix, error) {
	vals, vecs, err := linalg.SymEigen(gram)
	if err != nil {
		return nil, err
	}
	quarter := make([]float64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		quarter[i] = math.Pow(v, 0.25)
	}
	scaled := vecs.Clone().ScaleCols(quarter)
	return linalg.MulABt(scaled, vecs), nil
}

// MatrixMechanismL2 returns the distributed L2 Matrix Mechanism [17, 27]:
// each user reports A·e_u plus per-coordinate Gaussian noise calibrated to
// the exact pairwise-column L2 diameter of A; the analyst reconstructs with
// W·A⁺. The strategy A = G^{1/4} is the square-root mechanism.
func MatrixMechanismL2(w workload.Workload, eps float64) (*mechanism.Additive, error) {
	a, err := sqrtStrategy(w.Gram())
	if err != nil {
		return nil, err
	}
	delta2 := mechanism.PairwiseColumnDiameter(a, 2)
	sigma := delta2 * gaussianNoiseFactor(eps)
	return mechanism.NewAdditive("Matrix Mechanism (L2)", a, eps, sigma*sigma), nil
}

// MatrixMechanismL1 returns the distributed L1 Matrix Mechanism: per-user
// Laplace noise with scale Δ₁(A)/ε where Δ₁ is the exact pairwise-column L1
// diameter (per-coordinate variance 2(Δ₁/ε)²), over the same square-root
// strategy.
func MatrixMechanismL1(w workload.Workload, eps float64) (*mechanism.Additive, error) {
	a, err := sqrtStrategy(w.Gram())
	if err != nil {
		return nil, err
	}
	delta1 := mechanism.PairwiseColumnDiameter(a, 1)
	b := delta1 / eps
	return mechanism.NewAdditive("Matrix Mechanism (L1)", a, eps, 2*b*b), nil
}

// Gaussian returns the Gaussian mechanism of Bassily [4]: A = I (each user
// perturbs their one-hot encoding directly). The paper omits it from plots as
// strictly dominated by the L2 Matrix Mechanism; it is provided for
// completeness and for verifying that domination.
func Gaussian(n int, eps float64) *mechanism.Additive {
	delta2 := math.Sqrt2 // ‖e_u − e_v‖₂
	sigma := delta2 * gaussianNoiseFactor(eps)
	return mechanism.NewAdditive("Gaussian", linalg.Identity(n), eps, sigma*sigma)
}

// Laplace returns the one-hot Laplace mechanism (the L1 analogue of
// Gaussian): A = I with per-user Laplace(2/ε) noise.
func Laplace(n int, eps float64) *mechanism.Additive {
	b := 2 / eps // ‖e_u − e_v‖₁ = 2
	return mechanism.NewAdditive("Laplace", linalg.Identity(n), eps, 2*b*b)
}

// Competitors builds the paper's six competitor mechanisms (Figure 1's legend
// minus "Optimized") for a workload over domain size n. The Fourier mechanism
// requires a power-of-two domain; when n is not a power of two it is skipped.
// The Matrix Mechanism variants depend on the workload.
func Competitors(w workload.Workload, eps float64) ([]mechanism.Mechanism, error) {
	n := w.Domain()
	out := []mechanism.Mechanism{RandomizedResponse(n, eps), HadamardResponse(n, eps)}
	h, err := Hierarchical(n, eps, 4)
	if err != nil {
		return nil, err
	}
	out = append(out, h)
	if n&(n-1) == 0 && n > 1 {
		d := bits.TrailingZeros(uint(n))
		// All orders: the full-order Fourier strategy has full column rank
		// (its rows span {χ_S}), so it can answer every workload — that is
		// how the paper runs it outside the marginals panels.
		f, err := Fourier(d, eps, d)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	l1, err := MatrixMechanismL1(w, eps)
	if err != nil {
		return nil, err
	}
	l2, err := MatrixMechanismL2(w, eps)
	if err != nil {
		return nil, err
	}
	out = append(out, l1, l2)
	return out, nil
}

// ceilDiv returns ⌈a/b⌉ for positive integers.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// binom returns C(n, k), or a negative value on overflow.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c < 0 || c > 1<<40 {
			return -1
		}
	}
	return c
}

// forEachSubset enumerates all size-d subsets of {0..n−1} as bitmasks in
// lexicographic order (Gosper's hack).
func forEachSubset(n, d int, fn func(mask uint)) {
	if d == 0 {
		fn(0)
		return
	}
	v := uint(1<<d) - 1
	limit := uint(1) << n
	for v < limit {
		fn(v)
		// Gosper's hack: next integer with the same popcount.
		c := v & (-v)
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
	}
}
