// Package retry is the failure discipline shared by every networked client
// in this repository: a jittered exponential backoff policy with per-attempt
// timeouts and bounded attempts, a definitive-vs-retryable error
// classification, and a per-backend circuit breaker. RemoteCollector, the
// fan-in Fleet, and cmd/ldprouter all drive their requests through it, so
// "how hard do we hammer a struggling shard" is decided in exactly one place.
//
// The randomness and the clock are injectable, so tests pin a policy fully
// deterministic (zero jitter, recorded sleeps) while production gets full
// jitter — two retrying clients that failed together must not retry together.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Policy bounds a retry loop: how many attempts, how long each may take, and
// how the pauses between them grow. The zero Policy retries nothing (one
// attempt, no pause); DefaultPolicy is a sane production shape.
type Policy struct {
	// MaxAttempts is the total number of tries, first included. Values < 1
	// mean one attempt (no retries).
	MaxAttempts int
	// InitialBackoff is the pause after the first failed attempt.
	InitialBackoff time.Duration
	// MaxBackoff caps the grown pause. 0 means no cap.
	MaxBackoff time.Duration
	// Multiplier grows the pause between attempts (values < 1 mean 2).
	Multiplier float64
	// Jitter randomizes each pause within ±Jitter×pause (clamped to [0,1]).
	// Jittered clients that failed together do not retry together.
	Jitter float64
	// PerAttemptTimeout bounds each attempt with its own deadline, so one
	// black-holed request cannot consume the whole loop's budget. 0 inherits
	// the caller's context deadline alone.
	PerAttemptTimeout time.Duration

	// Rand supplies the jitter draw in [0,1); nil uses math/rand/v2. Tests
	// pin it for deterministic schedules.
	Rand func() float64
	// Sleep pauses between attempts; nil uses a context-aware timer. Tests
	// substitute a recorder so a schedule is asserted, not slept.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes each retry decision: attempt is the
	// 1-based number of the attempt that just failed with err, immediately
	// before the backoff pause. Telemetry only — it cannot alter the loop.
	OnRetry func(attempt int, err error)
}

// RetryAfterHinter is implemented by errors carrying a server-issued
// Retry-After hint (the transport's StatusError on 429/503 responses). Do
// honors the hint: the pause before the next attempt is raised to the hint,
// capped at the policy's MaxBackoff — a draining shard asking for a second
// gets its second, but a hostile or confused server cannot park clients
// beyond the policy's own ceiling.
type RetryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// RetryAfterHint extracts a positive Retry-After hint from anywhere in err's
// chain (0, false when absent).
func RetryAfterHint(err error) (time.Duration, bool) {
	var h RetryAfterHinter
	if errors.As(err, &h) {
		if d := h.RetryAfterHint(); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// DefaultPolicy is the production shape: four attempts spaced 100ms → 200ms →
// 400ms (full ±50% jitter, capped at 2s), each attempt individually bounded
// at 30s so a black-holed connection fails over instead of hanging.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:       4,
		InitialBackoff:    100 * time.Millisecond,
		MaxBackoff:        2 * time.Second,
		Multiplier:        2,
		Jitter:            0.5,
		PerAttemptTimeout: 30 * time.Second,
	}
}

// attempts returns the effective total attempt count.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the pause after failed attempt i (0-based), jitter applied.
func (p Policy) Backoff(i int) time.Duration {
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.InitialBackoff)
	for k := 0; k < i; k++ {
		d *= mult
		if p.MaxBackoff > 0 && d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		r := p.Rand
		if r == nil {
			r = rand.Float64
		}
		// Uniform in [1-j, 1+j): full spread both ways keeps the mean pause
		// at the nominal value.
		d *= 1 - j + 2*j*r()
	}
	return time.Duration(d)
}

// sleep pauses for d or until ctx is done, whichever comes first.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// definitive wraps an error the retry loop must not retry: the failure is a
// fact (a 4xx rejection, a mechanism mismatch), not weather.
type definitive struct{ err error }

func (d definitive) Error() string { return d.err.Error() }
func (d definitive) Unwrap() error { return d.err }

// Definitive marks err as non-retryable: Do returns it immediately. A nil
// err stays nil.
func Definitive(err error) error {
	if err == nil {
		return nil
	}
	return definitive{err}
}

// IsDefinitive reports whether err (anywhere in its chain) was marked
// Definitive. Context cancellation and deadline expiry of the caller's
// context are handled separately by Do and need no marking.
func IsDefinitive(err error) bool {
	var d definitive
	return errors.As(err, &d)
}

// AttemptsError annotates the final error of an exhausted retry loop with
// how many attempts were spent, so an operator reading a log line can tell a
// first-try rejection from a worn-down outage.
type AttemptsError struct {
	Attempts int
	Err      error
}

func (e *AttemptsError) Error() string {
	return fmt.Sprintf("after %d attempts: %v", e.Attempts, e.Err)
}

func (e *AttemptsError) Unwrap() error { return e.Err }

// Do runs op under the policy: each attempt gets its own per-attempt
// deadline, failures classified retryable pause (jittered, growing) and try
// again, and the loop stops on success, a Definitive error, the caller's
// context ending, or attempts running out. The returned error is the last
// attempt's, wrapped in *AttemptsError when more than one attempt ran.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	attempts := p.attempts()
	var err error
	ran := 0
	for i := 0; i < attempts; i++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = op(actx)
		if cancel != nil {
			cancel()
		}
		ran = i + 1
		if err == nil {
			return nil
		}
		// A definitive failure, a dead parent context, or spent attempts end
		// the loop. A per-attempt deadline alone is retryable — that is what
		// it is for — but the parent's is not.
		if IsDefinitive(err) || ctx.Err() != nil || i+1 >= attempts {
			break
		}
		pause := p.Backoff(i)
		// Honor the server's Retry-After over a shorter computed backoff: the
		// hint is the server saying when it will be worth asking again. The
		// policy's MaxBackoff stays the ceiling in both directions.
		if hint, ok := RetryAfterHint(err); ok {
			if p.MaxBackoff > 0 && hint > p.MaxBackoff {
				hint = p.MaxBackoff
			}
			if hint > pause {
				pause = hint
			}
		}
		if p.OnRetry != nil {
			p.OnRetry(i+1, err)
		}
		if serr := p.sleep(ctx, pause); serr != nil {
			break
		}
	}
	if err != nil && ran > 1 {
		return &AttemptsError{Attempts: ran, Err: err}
	}
	return err
}
