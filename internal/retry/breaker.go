package retry

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports that a circuit breaker refused the call without
// trying the backend: enough consecutive failures have accumulated that
// hammering it further only slows everyone down. The caller should degrade
// (serve stale, skip the shard) and let the cooldown probe rediscover health.
var ErrBreakerOpen = errors.New("retry: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes every call through (healthy backend).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets one probe through; its outcome closes or reopens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerPolicy shapes a Breaker: how many consecutive failures trip it and
// how long it stays open before probing again.
type BreakerPolicy struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open. Values < 1 mean 5.
	FailureThreshold int
	// Cooldown is how long an open breaker refuses before allowing one
	// half-open probe. Values <= 0 mean 5s.
	Cooldown time.Duration

	// Now is the clock; nil uses time.Now. Tests pin it.
	Now func() time.Time

	// OnStateChange, when set, observes every transition (from != to) —
	// telemetry's view into trip/probe/recover cycles. Called outside the
	// breaker's lock is NOT guaranteed; keep it cheap and non-reentrant (a
	// metric increment, not a call back into the breaker).
	OnStateChange func(from, to BreakerState)
}

func (p BreakerPolicy) threshold() int {
	if p.FailureThreshold < 1 {
		return 5
	}
	return p.FailureThreshold
}

func (p BreakerPolicy) cooldown() time.Duration {
	if p.Cooldown <= 0 {
		return 5 * time.Second
	}
	return p.Cooldown
}

func (p BreakerPolicy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// Breaker is a per-backend circuit breaker: consecutive failures trip it
// open, an open breaker refuses calls for the cooldown, then exactly one
// probe is let through and its outcome decides (half-open). Safe for
// concurrent use.
type Breaker struct {
	policy BreakerPolicy

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker under the policy.
func NewBreaker(p BreakerPolicy) *Breaker {
	return &Breaker{policy: p}
}

// setState transitions the breaker (caller holds b.mu) and notifies the
// policy's observer on a real change.
func (b *Breaker) setState(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.policy.OnStateChange != nil {
		b.policy.OnStateChange(from, to)
	}
}

// Allow asks whether a call may proceed. It returns nil (go ahead) or
// ErrBreakerOpen. In half-open, only the first caller after the cooldown gets
// through; concurrent callers are refused until the probe reports.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.policy.now().Sub(b.openedAt) < b.policy.cooldown() {
			return ErrBreakerOpen
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success reports a call that went through and succeeded: the breaker closes
// and the failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(BreakerClosed)
	b.failures = 0
	b.probing = false
}

// Failure reports a call that went through and failed. A closed breaker
// accumulates toward the threshold; a half-open probe failure reopens
// immediately (the cooldown restarts).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.setState(BreakerOpen)
		b.openedAt = b.policy.now()
		b.probing = false
	default:
		b.failures++
		if b.failures >= b.policy.threshold() {
			b.setState(BreakerOpen)
			b.openedAt = b.policy.now()
			b.failures = 0
		}
	}
}

// State returns the breaker's current position (open flips to half-open only
// on the next Allow, so an idle open breaker reads open past its cooldown).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
