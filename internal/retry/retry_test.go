package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The backoff schedule must be the textbook jittered exponential: initial ×
// multiplier^i, capped, spread ±jitter. Pinned rand makes it exact.
func TestBackoffSchedule(t *testing.T) {
	p := Policy{
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     2 * time.Second,
		Multiplier:     2,
		Jitter:         0, // deterministic
	}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// Rand pinned to the extremes: jitter 0.5 spreads ±50%.
	for _, tc := range []struct {
		r    float64
		want time.Duration
	}{
		{0, 50 * time.Millisecond},       // 1 - j
		{0.5, 100 * time.Millisecond},    // nominal
		{0.9999, 150 * time.Millisecond}, // → 1 + j
	} {
		p := Policy{InitialBackoff: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return tc.r }}
		got := p.Backoff(0)
		if d := got - tc.want; d < -time.Millisecond || d > time.Millisecond {
			t.Errorf("Backoff(0) with rand=%v = %v, want ~%v", tc.r, got, tc.want)
		}
	}
}

// Do must stop immediately on success, on a Definitive error, and after
// MaxAttempts retryable failures — sleeping the pinned schedule in between.
func TestDoRetriesUntilAttemptsExhausted(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts:    4,
		InitialBackoff: 10 * time.Millisecond,
		Multiplier:     2,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		return boom
	})
	if calls != 4 {
		t.Fatalf("op ran %d times, want 4", calls)
	}
	var ae *AttemptsError
	if !errors.As(err, &ae) || ae.Attempts != 4 || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want AttemptsError{4, boom}", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestDoSucceedsMidway(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

func TestDoStopsOnDefinitive(t *testing.T) {
	calls := 0
	rejected := errors.New("rejected")
	p := Policy{MaxAttempts: 5, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		return Definitive(rejected)
	})
	if calls != 1 {
		t.Fatalf("op ran %d times after a definitive error, want 1", calls)
	}
	if !errors.Is(err, rejected) || !IsDefinitive(err) {
		t.Fatalf("err = %v, want the definitive rejection", err)
	}
	// One attempt: no AttemptsError wrapper noise.
	var ae *AttemptsError
	if errors.As(err, &ae) {
		t.Fatalf("single-attempt error wrapped in AttemptsError: %v", err)
	}
}

func TestDoHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 10, InitialBackoff: time.Millisecond}
	err := Do(ctx, p, func(ctx context.Context) error {
		calls++
		cancel() // parent dies during the first attempt
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("op ran %d times after parent cancellation, want 1", calls)
	}
	if err == nil {
		t.Fatal("want the attempt's error back")
	}
}

// A per-attempt timeout must bound each attempt without consuming the parent
// budget: the attempt context expires, the loop retries.
func TestDoPerAttemptTimeout(t *testing.T) {
	calls := 0
	p := Policy{
		MaxAttempts:       3,
		PerAttemptTimeout: 5 * time.Millisecond,
		Sleep:             func(ctx context.Context, d time.Duration) error { return nil },
	}
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		<-ctx.Done() // attempt blocks until its own deadline
		return ctx.Err()
	})
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3 (per-attempt deadline is retryable)", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the last deadline error", err)
	}
}

func TestDefinitiveNil(t *testing.T) {
	if Definitive(nil) != nil {
		t.Fatal("Definitive(nil) must stay nil")
	}
	if IsDefinitive(errors.New("plain")) {
		t.Fatal("plain error misclassified definitive")
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	p := BreakerPolicy{FailureThreshold: 3, Cooldown: time.Second, Now: func() time.Time { return now }}
	b := NewBreaker(p)

	// Under threshold: stays closed.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", b.State())
	}
	// Third consecutive failure trips it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call (err=%v)", err)
	}

	// After the cooldown exactly one probe passes; concurrent calls refused.
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent half-open call allowed")
	}
	// Probe fails → reopen, cooldown restarts.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker allowed a call before the new cooldown")
	}

	// Next probe succeeds → closed, and a fresh failure streak is required to
	// trip again.
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("streak did not reset on close")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerPolicy{FailureThreshold: 2})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes must keep the breaker closed")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("two consecutive failures must trip threshold 2")
	}
}
