package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// hintErr is a scripted retryable failure carrying a server Retry-After.
type hintErr struct{ after time.Duration }

func (e hintErr) Error() string                 { return fmt.Sprintf("scripted 503 (retry after %v)", e.after) }
func (e hintErr) RetryAfterHint() time.Duration { return e.after }

func deterministic(maxBackoff time.Duration) (Policy, *[]time.Duration) {
	sleeps := &[]time.Duration{}
	return Policy{
		MaxAttempts:    4,
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     maxBackoff,
		Multiplier:     2,
		Jitter:         0, // deterministic schedule
		Sleep: func(ctx context.Context, d time.Duration) error {
			*sleeps = append(*sleeps, d)
			return nil
		},
	}, sleeps
}

// TestRetryAfterRaisesBackoff scripts a draining backend: every failure says
// "come back in 1s" while the exponential schedule would have paused 100ms →
// 200ms → 400ms. The hint must win every pause.
func TestRetryAfterRaisesBackoff(t *testing.T) {
	p, sleeps := deterministic(2 * time.Second)
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		return hintErr{after: time.Second}
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	want := []time.Duration{time.Second, time.Second, time.Second}
	if len(*sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v", *sleeps, want)
	}
	for i, d := range want {
		if (*sleeps)[i] != d {
			t.Fatalf("sleep %d = %v, want %v (hint not honored)", i, (*sleeps)[i], d)
		}
	}
}

// TestRetryAfterCappedAtMaxBackoff scripts a backend demanding a 30s pause
// against a policy whose ceiling is 2s: the hint is honored only up to the
// policy's MaxBackoff — a confused server cannot park clients.
func TestRetryAfterCappedAtMaxBackoff(t *testing.T) {
	p, sleeps := deterministic(2 * time.Second)
	_ = Do(context.Background(), p, func(ctx context.Context) error {
		return hintErr{after: 30 * time.Second}
	})
	for i, d := range *sleeps {
		if d != 2*time.Second {
			t.Fatalf("sleep %d = %v, want the 2s MaxBackoff cap", i, d)
		}
	}
	if len(*sleeps) != 3 {
		t.Fatalf("expected 3 pauses, got %v", *sleeps)
	}
}

// TestRetryAfterShorterThanBackoffDoesNotShorten: by the third failure the
// exponential pause (400ms) exceeds a 50ms hint; the longer of the two wins
// (the hint is a floor on politeness, not a license to hammer).
func TestRetryAfterShorterThanBackoffDoesNotShorten(t *testing.T) {
	p, sleeps := deterministic(2 * time.Second)
	_ = Do(context.Background(), p, func(ctx context.Context) error {
		return hintErr{after: 50 * time.Millisecond}
	})
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	for i, d := range want {
		if (*sleeps)[i] != d {
			t.Fatalf("sleep %d = %v, want %v", i, (*sleeps)[i], d)
		}
	}
}

// TestRetryAfterHintWrapped proves the hint survives error wrapping.
func TestRetryAfterHintWrapped(t *testing.T) {
	err := fmt.Errorf("ship batch: %w", hintErr{after: 3 * time.Second})
	d, ok := RetryAfterHint(err)
	if !ok || d != 3*time.Second {
		t.Fatalf("hint = %v/%v", d, ok)
	}
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Fatal("hint found on a plain error")
	}
}

// TestOnRetryObservesEachPause: the telemetry hook sees every retry decision
// with the failed attempt number and the causing error.
func TestOnRetryObservesEachPause(t *testing.T) {
	p, _ := deterministic(2 * time.Second)
	var seen []int
	p.OnRetry = func(attempt int, err error) {
		if err == nil {
			t.Error("OnRetry with nil error")
		}
		seen = append(seen, attempt)
	}
	_ = Do(context.Background(), p, func(ctx context.Context) error {
		return errors.New("transient")
	})
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("OnRetry attempts %v, want [1 2 3]", seen)
	}
}

// TestBreakerOnStateChange walks closed → open → half-open → closed and
// checks the observer saw exactly those transitions.
func TestBreakerOnStateChange(t *testing.T) {
	now := time.Unix(0, 0)
	var transitions []string
	b := NewBreaker(BreakerPolicy{
		FailureThreshold: 2,
		Cooldown:         time.Second,
		Now:              func() time.Time { return now },
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, fmt.Sprintf("%s→%s", from, to))
		},
	})
	b.Failure()
	b.Failure() // trips open
	now = now.Add(2 * time.Second)
	if err := b.Allow(); err != nil { // half-open probe
		t.Fatalf("probe refused: %v", err)
	}
	b.Success() // closes
	want := []string{"closed→open", "open→half-open", "half-open→closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}
