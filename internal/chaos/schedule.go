package chaos

import (
	"fmt"
	"sort"
	"sync"
)

// EventKind is the process-level fault an Event fires: plan swaps on a
// shard's fault proxy, readiness drains, and hard kill/restart of the shard
// process itself. The schedule only sequences events — the harness executing
// it owns the shard handles and decides what "kill" means (SIGKILL for a
// subprocess shard, listener teardown for an in-process one).
type EventKind int

const (
	// EventSetPlan swaps the target shard proxy's fault mix to Event.Plan.
	EventSetPlan EventKind = iota
	// EventHeal clears the target proxy's faults (empty Plan).
	EventHeal
	// EventKill hard-stops the shard process (SIGKILL; nothing flushes).
	EventKill
	// EventRestart restarts a killed shard on its surviving data directory.
	EventRestart
	// EventDrain gates the shard out of readiness (routers stop sending).
	EventDrain
	// EventUndrain restores the shard's readiness.
	EventUndrain
)

func (k EventKind) String() string {
	switch k {
	case EventSetPlan:
		return "set-plan"
	case EventHeal:
		return "heal"
	case EventKill:
		return "kill"
	case EventRestart:
		return "restart"
	case EventDrain:
		return "drain"
	case EventUndrain:
		return "undrain"
	}
	return fmt.Sprintf("chaos.EventKind(%d)", int(k))
}

// Event is one scheduled fault. At is a progress fraction in [0, 1] of the
// scenario's offered load — not wall time — so a run at a fixed seed fires
// the same events after the same report counts regardless of machine speed.
type Event struct {
	At    float64
	Shard int // target shard index; -1 targets every shard
	Kind  EventKind
	Plan  Plan // fault mix for EventSetPlan, ignored otherwise
}

// Schedule is an ordered, pop-once sequence of fault events indexed by load
// progress. A harness reports its progress after each ingest wave; Due hands
// back every event whose time has come, exactly once, in order. Safe for
// concurrent use.
type Schedule struct {
	mu     sync.Mutex
	events []Event
	next   int
}

// NewSchedule sorts events by At (stable, so same-instant events keep their
// given order — a kill scheduled before a restart at the same fraction stays
// a kill-then-restart) and returns the ready schedule.
func NewSchedule(events ...Event) *Schedule {
	s := &Schedule{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	return s
}

// Due pops every not-yet-fired event with At <= progress, in schedule order.
// Returns nil when nothing is due.
func (s *Schedule) Due(progress float64) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.next
	for s.next < len(s.events) && s.events[s.next].At <= progress {
		s.next++
	}
	if s.next == start {
		return nil
	}
	return s.events[start:s.next:s.next]
}

// Remaining reports how many events have not fired yet. A scenario asserts
// this reaches zero so a schedule can't silently test the happy path.
func (s *Schedule) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events) - s.next
}
