package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoBackend counts the requests that actually reach it and returns a fixed
// body, so each fault's backend-visibility contract is checkable.
func echoBackend(hits *atomic.Int64, body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = io.Copy(io.Discard, r.Body)
		_, _ = io.WriteString(w, body)
	})
}

func TestTransparentWhenPlanEmpty(t *testing.T) {
	var hits atomic.Int64
	p := New(echoBackend(&hits, "ok"), Plan{}, 1)
	hs := httptest.NewServer(p)
	defer hs.Close()
	for i := 0; i < 10; i++ {
		resp, err := hs.Client().Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(b) != "ok" {
			t.Fatalf("got %d %q", resp.StatusCode, b)
		}
	}
	st := p.Stats()
	if hits.Load() != 10 || st.Forwarded != 10 || st.Requests != 10 {
		t.Fatalf("hits=%d stats=%+v", hits.Load(), st)
	}
}

// DropBefore must surface as a client transport error with the backend never
// seeing the request; DropAfter must surface the same error with the backend
// having absorbed it — the distinction the idempotency machinery hinges on.
func TestDropSemantics(t *testing.T) {
	for _, tc := range []struct {
		name        string
		plan        Plan
		backendSees bool
	}{
		{"before", Plan{DropBefore: 1}, false},
		{"after", Plan{DropAfter: 1}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			p := New(echoBackend(&hits, "ok"), tc.plan, 7)
			hs := httptest.NewServer(p)
			defer hs.Close()
			resp, err := hs.Client().Post(hs.URL, "text/plain", strings.NewReader("payload"))
			if err == nil {
				resp.Body.Close()
				t.Fatal("dropped request returned a response")
			}
			if got := hits.Load() == 1; got != tc.backendSees {
				t.Fatalf("backend saw request: %v, want %v", got, tc.backendSees)
			}
		})
	}
}

func TestTruncateCutsBodyMidFrame(t *testing.T) {
	var hits atomic.Int64
	const body = "0123456789abcdef0123456789abcdef"
	p := New(echoBackend(&hits, body), Plan{Truncate: 1}, 7)
	hs := httptest.NewServer(p)
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL)
	if err != nil {
		// Some transports surface the abort before any body byte; both
		// shapes are a failed read, which is the contract.
		return
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(resp.Body)
	if rerr == nil && len(b) >= len(body) {
		t.Fatalf("truncated response delivered %d bytes intact", len(b))
	}
	if len(b) > len(body)/2 {
		t.Fatalf("got %d bytes, want at most half of %d", len(b), len(body))
	}
	if hits.Load() != 1 {
		t.Fatalf("backend hits %d, want 1 (truncate runs the backend)", hits.Load())
	}
}

// Unavailable with BurstLen must 503 the triggering request and the next
// BurstLen-1, without the backend hearing any of them.
func TestUnavailableBurst(t *testing.T) {
	var hits atomic.Int64
	p := New(echoBackend(&hits, "ok"), Plan{Unavailable: 1, BurstLen: 3}, 7)
	hs := httptest.NewServer(p)
	defer hs.Close()
	for i := 0; i < 3; i++ {
		resp, err := hs.Client().Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" && i == 0 {
			t.Error("503 missing Retry-After")
		}
	}
	if hits.Load() != 0 {
		t.Fatalf("backend saw %d requests through a 503 burst", hits.Load())
	}
	if st := p.Stats(); st.Unavailable != 3 {
		t.Fatalf("stats %+v, want 3 unavailable", st)
	}
}

func TestDelayStallsRequest(t *testing.T) {
	var hits atomic.Int64
	p := New(echoBackend(&hits, "ok"), Plan{Delay: 1, DelayFor: 30 * time.Millisecond}, 7)
	hs := httptest.NewServer(p)
	defer hs.Close()
	start := time.Now()
	resp, err := hs.Client().Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 30ms of injected delay", el)
	}
}

// SetPlan must heal the proxy: the same client that failed through the storm
// succeeds afterwards, and the burst state is cleared.
func TestSetPlanHeals(t *testing.T) {
	var hits atomic.Int64
	p := New(echoBackend(&hits, "ok"), Plan{Unavailable: 1, BurstLen: 100}, 7)
	hs := httptest.NewServer(p)
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("storm request got %d", resp.StatusCode)
	}
	p.SetPlan(Plan{})
	resp, err = hs.Client().Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed request got %d, want 200 (burst must clear)", resp.StatusCode)
	}
}

// The seeded mix must be reproducible: the same seed over a serial request
// sequence yields identical stats; a different seed yields a different mix.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed uint64) Stats {
		var hits atomic.Int64
		p := New(echoBackend(&hits, "ok"), Plan{DropBefore: 0.3, DropAfter: 0.2, Unavailable: 0.1}, seed)
		hs := httptest.NewServer(p)
		defer hs.Close()
		for i := 0; i < 60; i++ {
			resp, err := hs.Client().Get(hs.URL)
			if err == nil {
				resp.Body.Close()
			}
		}
		return p.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if c := run(43); a == c {
		t.Fatalf("different seeds produced the identical mix %+v — PRNG not wired to the seed", a)
	}
	if a.DropsBefore == 0 || a.DropsAfter == 0 || a.Unavailable == 0 {
		t.Fatalf("mix %+v left a fault class untouched at these probabilities", a)
	}
}

// A request aborted by the proxy must not take the server down; subsequent
// requests keep working (http.ErrAbortHandler is the sanctioned abort).
func TestAbortDoesNotPoisonServer(t *testing.T) {
	var hits atomic.Int64
	p := New(echoBackend(&hits, "ok"), Plan{DropBefore: 1}, 7)
	hs := httptest.NewServer(p)
	defer hs.Close()
	if resp, err := hs.Client().Get(hs.URL); err == nil {
		resp.Body.Close()
		t.Fatal("expected a dropped connection")
	}
	p.SetPlan(Plan{})
	resp, err := hs.Client().Get(hs.URL)
	if err != nil {
		t.Fatalf("server unusable after an injected abort: %v", err)
	}
	resp.Body.Close()
	if errors.Is(err, io.EOF) || resp.StatusCode != 200 {
		t.Fatalf("got %d", resp.StatusCode)
	}
}
