// Package chaos is the in-repo fault-injection harness: an http.Handler
// proxy that stands between a client and a collector backend and injects the
// failures a production fleet actually sees — connections dropped before the
// backend hears the request, responses lost after the backend absorbed it,
// added latency, 503 bursts from an overloaded or draining shard, and
// responses killed mid-frame. Faults are drawn from a seeded PRNG, so a CI
// run at a fixed seed exercises the same fault mix every time, and every
// injection is counted so a test can assert the scenario actually bit.
//
// The proxy exists to prove the failure discipline end-to-end: retries with
// backoff must converge, idempotency keys must keep absorbs exactly-once
// through lost responses, and degraded merges must stay honest — all under
// sustained injected failure. See the chaos end-to-end test in the root
// package and the CI chaos smoke job.
package chaos

import (
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Plan is one fault mix: per-request probabilities for each injection, drawn
// independently in the order the fields are declared. Zero value injects
// nothing (a transparent proxy).
type Plan struct {
	// DropBefore aborts the connection before the backend sees the request:
	// the client observes a transport error and the request was never
	// absorbed. Safe to retry blindly.
	DropBefore float64
	// DropAfter runs the backend, then aborts the connection instead of
	// returning its response: the client observes a transport error for a
	// request the backend absorbed — the lost-response ambiguity idempotency
	// keys exist for.
	DropAfter float64
	// Truncate runs the backend, returns roughly half of its response body,
	// and aborts mid-frame: a decoder on the client side must fail cleanly,
	// never hand back a short read as truth.
	Truncate float64
	// Unavailable short-circuits with 503 without touching the backend, and
	// keeps doing so for the next BurstLen-1 requests — an overload burst,
	// not an independent coin per request.
	Unavailable float64
	// BurstLen is the 503 burst length once Unavailable triggers (values < 1
	// mean 1: a single 503).
	BurstLen int
	// Delay stalls the request by DelayFor before forwarding — injected
	// latency that retry budgets and per-attempt timeouts must absorb.
	Delay    float64
	DelayFor time.Duration
}

// Stats counts what the proxy actually injected, so a chaos scenario can
// prove its faults fired rather than silently testing the happy path.
type Stats struct {
	Requests    int64 // requests that reached the proxy
	Forwarded   int64 // reached the backend and returned normally
	DropsBefore int64 // aborted before the backend
	DropsAfter  int64 // absorbed, response dropped
	Truncated   int64 // absorbed, response cut mid-body
	Unavailable int64 // 503 without touching the backend
	Delayed     int64 // stalled by DelayFor before forwarding
}

// Proxy is the fault-injecting middleman. Wrap a backend handler and serve
// the proxy instead; SetPlan swaps the fault mix mid-test (heal, storm).
type Proxy struct {
	inner http.Handler

	mu    sync.Mutex
	plan  Plan
	rng   *rand.Rand
	burst int // remaining forced-503 requests
	stats Stats
}

// New wraps inner with the plan's faults, drawing from a PRNG seeded with
// seed — the same seed replays the same injection sequence for a serial
// client (concurrent clients race for draws, but the mix stays seeded).
func New(inner http.Handler, plan Plan, seed uint64) *Proxy {
	return &Proxy{inner: inner, plan: plan, rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// SetPlan replaces the fault mix; in-flight requests finish under the old
// one. An empty Plan heals the proxy.
func (p *Proxy) SetPlan(plan Plan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plan = plan
	p.burst = 0
}

// Stats returns a snapshot of the injection counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// verdict is the fate the seeded PRNG assigns one request.
type verdict int

const (
	passThrough verdict = iota
	dropBefore
	dropAfter
	truncate
	unavailable
)

// decide draws one request's fate and updates burst state under the lock.
func (p *Proxy) decide() (v verdict, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Requests++
	if p.burst > 0 {
		p.burst--
		p.stats.Unavailable++
		return unavailable, 0
	}
	if p.plan.Delay > 0 && p.rng.Float64() < p.plan.Delay {
		delay = p.plan.DelayFor
		p.stats.Delayed++
	}
	switch {
	case p.plan.DropBefore > 0 && p.rng.Float64() < p.plan.DropBefore:
		p.stats.DropsBefore++
		return dropBefore, delay
	case p.plan.DropAfter > 0 && p.rng.Float64() < p.plan.DropAfter:
		p.stats.DropsAfter++
		return dropAfter, delay
	case p.plan.Truncate > 0 && p.rng.Float64() < p.plan.Truncate:
		p.stats.Truncated++
		return truncate, delay
	case p.plan.Unavailable > 0 && p.rng.Float64() < p.plan.Unavailable:
		if p.plan.BurstLen > 1 {
			p.burst = p.plan.BurstLen - 1
		}
		p.stats.Unavailable++
		return unavailable, delay
	}
	p.stats.Forwarded++
	return passThrough, delay
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	v, delay := p.decide()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
	}
	switch v {
	case dropBefore:
		// The body is deliberately unread: the backend never saw a byte.
		panic(http.ErrAbortHandler)
	case unavailable:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "chaos: injected overload", http.StatusServiceUnavailable)
	case dropAfter:
		// The backend fully absorbs the request; its response dies with the
		// connection. A recorder keeps the inner handler oblivious.
		p.inner.ServeHTTP(httptest.NewRecorder(), r)
		panic(http.ErrAbortHandler)
	case truncate:
		rec := httptest.NewRecorder()
		p.inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		for k, vals := range rec.Header() {
			for _, val := range vals {
				w.Header().Add(k, val)
			}
		}
		w.WriteHeader(rec.Code)
		if len(body) > 1 {
			_, _ = w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		panic(http.ErrAbortHandler)
	default:
		p.inner.ServeHTTP(w, r)
	}
}
