package chaos

import (
	"testing"
	"time"
)

func TestScheduleFiresInOrderExactlyOnce(t *testing.T) {
	sched := NewSchedule(
		Event{At: 0.5, Shard: 0, Kind: EventRestart},
		Event{At: 0.2, Shard: 1, Kind: EventSetPlan, Plan: Plan{Delay: 1, DelayFor: time.Millisecond}},
		Event{At: 0.5, Shard: 0, Kind: EventKill}, // same instant as the restart, listed after → fires after
		Event{At: 0.9, Shard: -1, Kind: EventHeal},
	)
	if got := sched.Remaining(); got != 4 {
		t.Fatalf("Remaining = %d, want 4", got)
	}
	if ev := sched.Due(0.1); ev != nil {
		t.Fatalf("Due(0.1) = %v, want nil", ev)
	}
	ev := sched.Due(0.6)
	if len(ev) != 3 {
		t.Fatalf("Due(0.6) returned %d events, want 3", len(ev))
	}
	if ev[0].Kind != EventSetPlan || ev[0].Shard != 1 {
		t.Fatalf("first event = %+v, want shard 1 set-plan", ev[0])
	}
	// The stable sort keeps the listed order at At == 0.5.
	if ev[1].Kind != EventRestart || ev[2].Kind != EventKill {
		t.Fatalf("tied events fired as %v, %v; want restart then kill", ev[1].Kind, ev[2].Kind)
	}
	// Re-polling the same progress pops nothing: events fire exactly once.
	if again := sched.Due(0.6); again != nil {
		t.Fatalf("second Due(0.6) = %v, want nil", again)
	}
	if got := sched.Remaining(); got != 1 {
		t.Fatalf("Remaining after 0.6 = %d, want 1", got)
	}
	last := sched.Due(1.0)
	if len(last) != 1 || last[0].Kind != EventHeal || last[0].Shard != -1 {
		t.Fatalf("Due(1.0) = %v, want the heal-all event", last)
	}
	if got := sched.Remaining(); got != 0 {
		t.Fatalf("Remaining at end = %d, want 0", got)
	}
}
