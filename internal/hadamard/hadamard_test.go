package hadamard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {511, 512}, {513, 1024},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Fatalf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMatrixIsHadamard(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		h, err := Matrix(k)
		if err != nil {
			t.Fatal(err)
		}
		if !IsHadamard(h, 1e-12) {
			t.Fatalf("Matrix(%d) is not Hadamard", k)
		}
	}
	if _, err := Matrix(6); err == nil {
		t.Fatal("expected error for non-power-of-two size")
	}
	if _, err := Matrix(0); err == nil {
		t.Fatal("expected error for size 0")
	}
}

func TestSylvesterRecursion(t *testing.T) {
	// H_{2k} = [[H_k, H_k], [H_k, −H_k]].
	k := 8
	h2, err := Matrix(2 * k)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Matrix(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if h2.At(i, j) != h.At(i, j) || h2.At(i, j+k) != h.At(i, j) ||
				h2.At(i+k, j) != h.At(i, j) || h2.At(i+k, j+k) != -h.At(i, j) {
				t.Fatalf("Sylvester recursion violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestFWHTMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 8, 64} {
		x := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		h, err := Matrix(k)
		if err != nil {
			t.Fatal(err)
		}
		want := h.MulVec(x)
		got := linalg.CloneVec(x)
		if err := FWHT(got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("k=%d: FWHT[%d] = %v, want %v", k, i, got[i], want[i])
			}
		}
	}
	if err := FWHT(make([]float64, 3)); err == nil {
		t.Fatal("expected error for non-power-of-two length")
	}
}

// Property: InverseFWHT(FWHT(x)) = x.
func TestFWHTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 << (1 + rng.Intn(6))
		x := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := linalg.CloneVec(x)
		if err := FWHT(y); err != nil {
			return false
		}
		if err := InverseFWHT(y); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Parseval: FWHT preserves energy up to the factor n.
func TestFWHTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := 32
	x := make([]float64, k)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	before := linalg.Dot(x, x)
	if err := FWHT(x); err != nil {
		t.Fatal(err)
	}
	after := linalg.Dot(x, x)
	if math.Abs(after-float64(k)*before) > 1e-9*after {
		t.Fatalf("Parseval violated: %v vs %v·%d", after, before, k)
	}
}

func TestIsHadamardRejects(t *testing.T) {
	// Non-square.
	if IsHadamard(linalg.New(2, 3), 1e-9) {
		t.Fatal("non-square accepted")
	}
	// ±1 but not orthogonal.
	m := linalg.NewFrom(2, 2, []float64{1, 1, 1, 1})
	if IsHadamard(m, 1e-9) {
		t.Fatal("non-orthogonal accepted")
	}
	// Orthogonal but not ±1.
	if IsHadamard(linalg.Identity(2), 1e-9) {
		t.Fatal("non-±1 accepted")
	}
}
