// Package hadamard provides Sylvester–Hadamard matrices and the fast
// Walsh–Hadamard transform. It is the shared substrate of the Hadamard
// response baseline [2] (whose strategy matrix is defined through H's sign
// pattern) and the Parity workload (whose query matrix *is* H).
package hadamard

import (
	"fmt"
	"math/bits"

	"repro/internal/linalg"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Sign returns the (i, j) entry of the Sylvester–Hadamard matrix:
// (−1)^{⟨i,j⟩} where ⟨i,j⟩ is the parity of the AND of the binary indices.
// Valid for any non-negative i, j (the infinite Sylvester pattern).
func Sign(i, j int) int {
	if bits.OnesCount(uint(i&j))%2 == 0 {
		return 1
	}
	return -1
}

// Matrix returns the k×k Sylvester–Hadamard matrix H with H_{ij} = Sign(i,j).
// k must be a power of two.
func Matrix(k int) (*linalg.Matrix, error) {
	if k <= 0 || k&(k-1) != 0 {
		return nil, fmt.Errorf("hadamard: size %d is not a power of two", k)
	}
	h := linalg.New(k, k)
	for i := 0; i < k; i++ {
		row := h.Row(i)
		for j := 0; j < k; j++ {
			row[j] = float64(Sign(i, j))
		}
	}
	return h, nil
}

// FWHT applies the fast Walsh–Hadamard transform in place: x ← H·x in
// O(n log n). len(x) must be a power of two.
func FWHT(x []float64) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("hadamard: FWHT length %d is not a power of two", n)
	}
	for h := 1; h < n; h *= 2 {
		for i := 0; i < n; i += 2 * h {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
	return nil
}

// InverseFWHT applies H⁻¹ = H/n in place.
func InverseFWHT(x []float64) error {
	if err := FWHT(x); err != nil {
		return err
	}
	linalg.ScaleVec(1/float64(len(x)), x)
	return nil
}

// IsHadamard reports whether m is a ±1 matrix with pairwise-orthogonal rows.
func IsHadamard(m *linalg.Matrix, tol float64) bool {
	if m.Rows() != m.Cols() {
		return false
	}
	n := m.Rows()
	for _, v := range m.Data() {
		if v != 1 && v != -1 {
			return false
		}
	}
	g := linalg.MulABt(m, m)
	return linalg.ApproxEqual(g, linalg.Identity(n).Scale(float64(n)), tol)
}
