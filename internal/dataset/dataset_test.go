package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/linalg"
)

func TestGeneratorsBasicInvariants(t *testing.T) {
	const n, total = 128, 5000
	for _, name := range append(append([]string{}, Names...), "UNIFORM") {
		x, err := ByName(name, n, total, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(x) != n {
			t.Fatalf("%s: length %d, want %d", name, len(x), n)
		}
		if got := linalg.Sum(x); got != total {
			t.Fatalf("%s: total %v, want %d", name, got, total)
		}
		for i, v := range x {
			if v < 0 || v != math.Trunc(v) {
				t.Fatalf("%s: x[%d] = %v is not a non-negative integer", name, i, v)
			}
		}
	}
	if _, err := ByName("nope", n, total, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGeneratorsDeterministicInSeed(t *testing.T) {
	a := HEPTHLike(64, 1000, 42)
	b := HEPTHLike(64, 1000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same data")
		}
	}
	c := HEPTHLike(64, 1000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestShapesAreDistinct(t *testing.T) {
	const n, total = 256, 100000
	hepth := HEPTHLike(n, total, 1)
	medcost := MEDCOSTLike(n, total, 1)
	nettrace := NETTRACELike(n, total, 1)

	// MEDCOST has a dominant spike at zero.
	if medcost[0] < 0.15*total {
		t.Fatalf("MEDCOST zero-spike only %v of %v", medcost[0], total)
	}
	// NETTRACE is sparse: its top-5 cells carry most of the mass.
	top := topK(nettrace, 5)
	if top < 0.8*total {
		t.Fatalf("NETTRACE top-5 mass %v of %v — not sparse enough", top, total)
	}
	// HEPTH is comparatively spread out: top-5 cells well under half.
	if topK(hepth, 5) > 0.5*total {
		t.Fatalf("HEPTH top-5 mass %v of %v — too concentrated", topK(hepth, 5), total)
	}
}

func topK(x []float64, k int) float64 {
	c := linalg.CloneVec(x)
	total := 0.0
	for i := 0; i < k; i++ {
		j := linalg.ArgMax(c)
		total += c[j]
		c[j] = -1
	}
	return total
}

func TestZipf(t *testing.T) {
	x := Zipf(50, 10000, 1.5, 3)
	if linalg.Sum(x) != 10000 {
		t.Fatalf("Zipf total = %v", linalg.Sum(x))
	}
	// Mass should be decreasing-ish: cell 0 ≫ cell 40.
	if x[0] <= x[40] {
		t.Fatalf("Zipf not decaying: x[0]=%v x[40]=%v", x[0], x[40])
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 3})
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Fatalf("Normalize = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-mass input")
		}
	}()
	Normalize([]float64{0, 0})
}

func TestCSVRoundTrip(t *testing.T) {
	x := []float64{3, 0, 7, 2}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(x) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(x))
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("round-trip[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{"a,b", "1", "1,x", "-1,5"}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
	// Comments and blanks are skipped.
	got, err := ReadCSV(strings.NewReader("# comment\n\n0,4\n2,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("parsed %v", got)
	}
}
