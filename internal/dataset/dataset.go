// Package dataset provides the data vectors used by the paper's
// data-dependent experiments (Sections 6.4 and 6.7).
//
// The paper uses three benchmark datasets from the DPBench study [22]:
// HEPTH (arXiv citation degrees), MEDCOST (medical costs) and NETTRACE
// (network connections). Those files are not redistributable here, so this
// package generates synthetic data vectors with the published shape
// characteristics instead — HEPTH: smooth, unimodal with a power-law tail;
// MEDCOST: heavy-tailed with a large spike at zero; NETTRACE: extremely
// sparse with a handful of hot cells. Section 6.4's finding is that
// data-dependent variance is close to worst-case variance for *any* data
// shape, so exercising three very different shapes preserves the experiment's
// meaning (see DESIGN.md §4 for the substitution rationale).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/linalg"
)

// Names lists the synthetic stand-ins for the DPBench datasets.
var Names = []string{"HEPTH", "MEDCOST", "NETTRACE"}

// ByName generates a dataset by name with the given domain size and total
// count. Unknown names return an error.
func ByName(name string, n, total int, seed int64) ([]float64, error) {
	switch strings.ToUpper(name) {
	case "HEPTH":
		return HEPTHLike(n, total, seed), nil
	case "MEDCOST":
		return MEDCOSTLike(n, total, seed), nil
	case "NETTRACE":
		return NETTRACELike(n, total, seed), nil
	case "UNIFORM":
		return Uniform(n, total, seed), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q", name)
}

// HEPTHLike returns a smooth unimodal histogram with a power-law tail,
// mimicking the citation-degree shape of the HEPTH dataset.
func HEPTHLike(n, total int, seed int64) []float64 {
	pdf := make([]float64, n)
	peak := float64(n) / 16
	for i := range pdf {
		x := float64(i)
		// Log-normal-like bump: rises quickly, decays polynomially.
		pdf[i] = (x + 1) / ((1 + (x/peak)*(x/peak)) * (1 + x/peak))
	}
	return Multinomial(Normalize(pdf), total, rand.New(rand.NewSource(seed)))
}

// MEDCOSTLike returns a heavy-tailed histogram with a large spike at zero,
// mimicking the medical-cost shape of the MEDCOST dataset.
func MEDCOSTLike(n, total int, seed int64) []float64 {
	pdf := make([]float64, n)
	pdf[0] = 0.25 // the zero-cost spike
	scale := float64(n) / 8
	for i := 1; i < n; i++ {
		pdf[i] = 0.75 * math.Exp(-float64(i)/scale) / scale
	}
	return Multinomial(Normalize(pdf), total, rand.New(rand.NewSource(seed)))
}

// NETTRACELike returns an extremely sparse histogram — a few hot cells carry
// nearly all of the mass — mimicking the NETTRACE connection counts.
func NETTRACELike(n, total int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	pdf := make([]float64, n)
	hot := n / 64
	if hot < 3 {
		hot = 3
	}
	perm := rng.Perm(n)
	for i := 0; i < hot; i++ {
		pdf[perm[i]] = math.Pow(2, -float64(i)/2)
	}
	// A faint uniform background so no cell is impossible.
	for i := range pdf {
		pdf[i] += 1e-3 / float64(n)
	}
	return Multinomial(Normalize(pdf), total, rng)
}

// Uniform returns a multinomial draw from the uniform distribution.
func Uniform(n, total int, seed int64) []float64 {
	pdf := make([]float64, n)
	for i := range pdf {
		pdf[i] = 1 / float64(n)
	}
	return Multinomial(pdf, total, rand.New(rand.NewSource(seed)))
}

// Zipf returns a multinomial draw from a Zipf(s) distribution over n cells.
func Zipf(n, total int, s float64, seed int64) []float64 {
	pdf := make([]float64, n)
	for i := range pdf {
		pdf[i] = math.Pow(float64(i+1), -s)
	}
	return Multinomial(Normalize(pdf), total, rand.New(rand.NewSource(seed)))
}

// Normalize scales a non-negative vector to sum to one.
func Normalize(pdf []float64) []float64 {
	out := linalg.CloneVec(pdf)
	total := linalg.Sum(out)
	if total <= 0 {
		panic("dataset: probability mass must be positive")
	}
	linalg.ScaleVec(1/total, out)
	return out
}

// Multinomial draws `total` samples from pdf and returns the counts.
func Multinomial(pdf []float64, total int, rng *rand.Rand) []float64 {
	// Inverse-CDF sampling over the cumulative distribution; O(log n) per
	// draw keeps even 10^6 users cheap.
	n := len(pdf)
	cdf := make([]float64, n)
	run := 0.0
	for i, p := range pdf {
		run += p
		cdf[i] = run
	}
	counts := make([]float64, n)
	for j := 0; j < total; j++ {
		u := rng.Float64() * run
		i := sort.SearchFloat64s(cdf, u)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// WriteCSV writes a data vector as "index,count" lines.
func WriteCSV(w io.Writer, x []float64) error {
	bw := bufio.NewWriter(w)
	for i, v := range x {
		if _, err := fmt.Fprintf(bw, "%d,%g\n", i, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a data vector written by WriteCSV. The domain size is the
// largest index seen plus one.
func ReadCSV(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	var idx []int
	var val []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("dataset: malformed line %q", line)
		}
		i, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("dataset: bad index in %q: %w", line, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: bad count in %q: %w", line, err)
		}
		if i < 0 {
			return nil, fmt.Errorf("dataset: negative index %d", i)
		}
		idx = append(idx, i)
		val = append(val, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	maxIdx := -1
	for _, i := range idx {
		if i > maxIdx {
			maxIdx = i
		}
	}
	out := make([]float64, maxIdx+1)
	for k, i := range idx {
		out[i] = val[k]
	}
	return out, nil
}
