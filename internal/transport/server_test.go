package transport

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/protocol"
)

// memBackend is a minimal Backend: it appends reports and exposes a running
// index histogram, enough to observe exactly what the server ingested.
type memBackend struct {
	mu      sync.Mutex
	reports []protocol.Report
	reject  bool
}

func (m *memBackend) IngestBatch(reports []protocol.Report) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reject {
		return errors.New("backend says no")
	}
	m.reports = append(m.reports, reports...)
	return nil
}

func (m *memBackend) Snapshot() ([]float64, float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	state := make([]float64, 8)
	for _, r := range m.reports {
		if r.Index >= 0 && r.Index < len(state) {
			state[r.Index]++
		}
	}
	return state, float64(len(m.reports))
}

func (m *memBackend) Count() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(len(m.reports))
}

func newTestServer(t *testing.T, b Backend) (*httptest.Server, *Client) {
	t.Helper()
	s, err := NewServer(b, Info{Mechanism: "TEST", Domain: 8, Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c, err := NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	return hs, c
}

func TestServerEndToEnd(t *testing.T) {
	backend := &memBackend{}
	_, c := newTestServer(t, backend)
	ctx := context.Background()

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Count != 0 || h.Mechanism != "TEST" || h.Domain != 8 || h.Epsilon != 1.5 {
		t.Fatalf("healthz: %+v", h)
	}

	batch := []protocol.Report{{Index: 1}, {Index: 1}, {Index: 5}}
	accepted, err := c.PostReports(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(batch) {
		t.Fatalf("accepted %d, want %d", accepted, len(batch))
	}

	state, count, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 || !reflect.DeepEqual(state, []float64{0, 2, 0, 0, 0, 1, 0, 0}) {
		t.Fatalf("snapshot: count %v, state %v", count, state)
	}
}

func TestServerMultiFrameBody(t *testing.T) {
	backend := &memBackend{}
	hs, _ := newTestServer(t, backend)

	var body bytes.Buffer
	if err := EncodeReports(&body, []protocol.Report{{Index: 0}, {Index: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeReports(&body, []protocol.Report{{Index: 2}}); err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/reports", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := backend.Count(); got != 3 {
		t.Fatalf("ingested %v reports across frames, want 3", got)
	}
}

func TestServerRejectsMalformedBody(t *testing.T) {
	backend := &memBackend{}
	hs, _ := newTestServer(t, backend)
	resp, err := hs.Client().Post(hs.URL+"/reports", "application/octet-stream",
		bytes.NewReader([]byte("this is not a frame")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if backend.Count() != 0 {
		t.Fatal("malformed body mutated the backend")
	}
}

func TestClientSurfacesBackendRejection(t *testing.T) {
	backend := &memBackend{reject: true}
	_, c := newTestServer(t, backend)
	_, err := c.PostReports(context.Background(), []protocol.Report{{Index: 1}})
	if err == nil {
		t.Fatal("backend rejection not surfaced")
	}
	var se *statusError
	if !errors.As(err, &se) || se.status != 400 {
		t.Fatalf("want a 400 status error, got %v", err)
	}
}

func TestServerMethodRouting(t *testing.T) {
	hs, _ := newTestServer(t, &memBackend{})
	// GET /reports and POST /snapshot are not routes.
	resp, err := hs.Client().Get(hs.URL + "/reports")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("GET /reports served")
	}
	resp, err = hs.Client().Post(hs.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("POST /snapshot served")
	}
}
