package transport

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

// memBackend is a minimal Backend: it appends reports and exposes a running
// index histogram, enough to observe exactly what the server ingested.
type memBackend struct {
	mu      sync.Mutex
	reports []protocol.Report
	reject  bool
}

func (m *memBackend) IngestBatch(reports []protocol.Report) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reject {
		return errors.New("backend says no")
	}
	m.reports = append(m.reports, reports...)
	return nil
}

func (m *memBackend) SnapshotEpoch() ([]float64, float64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	state := make([]float64, 8)
	for _, r := range m.reports {
		if r.Index >= 0 && r.Index < len(state) {
			state[r.Index]++
		}
	}
	// The report count doubles as the epoch: it advances exactly when the
	// state does, which is all the Backend contract asks.
	return state, float64(len(m.reports)), uint64(len(m.reports))
}

func (m *memBackend) CountEpoch() (float64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(len(m.reports)), uint64(len(m.reports))
}

func (m *memBackend) Count() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(len(m.reports))
}

func newTestServer(t *testing.T, b Backend) (*httptest.Server, *Client) {
	t.Helper()
	s, err := NewServer(b, Info{Mechanism: "TEST", Domain: 8, Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c, err := NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	return hs, c
}

func TestServerEndToEnd(t *testing.T) {
	backend := &memBackend{}
	_, c := newTestServer(t, backend)
	ctx := context.Background()

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Count != 0 || h.Mechanism != "TEST" || h.Domain != 8 || h.Epsilon != 1.5 {
		t.Fatalf("healthz: %+v", h)
	}

	batch := []protocol.Report{{Index: 1}, {Index: 1}, {Index: 5}}
	accepted, err := c.PostReports(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(batch) {
		t.Fatalf("accepted %d, want %d", accepted, len(batch))
	}

	state, count, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 || !reflect.DeepEqual(state, []float64{0, 2, 0, 0, 0, 1, 0, 0}) {
		t.Fatalf("snapshot: count %v, state %v", count, state)
	}
}

func TestServerMultiFrameBody(t *testing.T) {
	backend := &memBackend{}
	hs, _ := newTestServer(t, backend)

	var body bytes.Buffer
	if err := EncodeReports(&body, []protocol.Report{{Index: 0}, {Index: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeReports(&body, []protocol.Report{{Index: 2}}); err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/reports", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := backend.Count(); got != 3 {
		t.Fatalf("ingested %v reports across frames, want 3", got)
	}
}

func TestServerRejectsMalformedBody(t *testing.T) {
	backend := &memBackend{}
	hs, _ := newTestServer(t, backend)
	resp, err := hs.Client().Post(hs.URL+"/reports", "application/octet-stream",
		bytes.NewReader([]byte("this is not a frame")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if backend.Count() != 0 {
		t.Fatal("malformed body mutated the backend")
	}
}

func TestClientSurfacesBackendRejection(t *testing.T) {
	backend := &memBackend{reject: true}
	_, c := newTestServer(t, backend)
	_, err := c.PostReports(context.Background(), []protocol.Report{{Index: 1}})
	if err == nil {
		t.Fatal("backend rejection not surfaced")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != 400 {
		t.Fatalf("want a 400 status error, got %v", err)
	}
}

// A keyed request is absorbed at most once: the second POST under the same
// idempotency key replays the recorded response without touching the
// backend — the lost-response retry contract.
func TestIdempotencyKeyReplaysResponse(t *testing.T) {
	backend := &memBackend{}
	_, c := newTestServer(t, backend)
	ctx := context.Background()
	batch := []protocol.Report{{Index: 1}, {Index: 2}, {Index: 3}}

	accepted, err := c.PostReportsKeyed(ctx, batch, "retry-key-1")
	if err != nil || accepted != 3 {
		t.Fatalf("first keyed post: %d, %v", accepted, err)
	}
	accepted, err = c.PostReportsKeyed(ctx, batch, "retry-key-1")
	if err != nil || accepted != 3 {
		t.Fatalf("replayed keyed post: %d, %v", accepted, err)
	}
	if got := backend.Count(); got != 3 {
		t.Fatalf("backend absorbed %v reports across a keyed retry, want exactly 3", got)
	}
	// A different key is a different request.
	if accepted, err = c.PostReportsKeyed(ctx, batch, "retry-key-2"); err != nil || accepted != 3 {
		t.Fatalf("fresh keyed post: %d, %v", accepted, err)
	}
	if got := backend.Count(); got != 6 {
		t.Fatalf("backend holds %v reports, want 6", got)
	}
	// Unkeyed requests never dedupe.
	if _, err = c.PostReports(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err = c.PostReports(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if got := backend.Count(); got != 12 {
		t.Fatalf("backend holds %v reports, want 12", got)
	}
}

// Error responses replay too: a retried key whose original request was
// rejected must see the same rejection (with the same accepted count), not a
// second absorb attempt.
func TestIdempotencyKeyReplaysRejection(t *testing.T) {
	backend := &memBackend{reject: true}
	_, c := newTestServer(t, backend)
	ctx := context.Background()
	batch := []protocol.Report{{Index: 1}}

	_, err := c.PostReportsKeyed(ctx, batch, "rejected-key")
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != 400 {
		t.Fatalf("want a 400 status error, got %v", err)
	}
	// The backend recovers, but the recorded rejection must still replay.
	backend.mu.Lock()
	backend.reject = false
	backend.mu.Unlock()
	_, err = c.PostReportsKeyed(ctx, batch, "rejected-key")
	if !errors.As(err, &se) || se.StatusCode != 400 {
		t.Fatalf("replay of recorded rejection: got %v", err)
	}
	if got := backend.Count(); got != 0 {
		t.Fatalf("backend absorbed %v reports through a replayed rejection", got)
	}
}

// claimFinished claims a key and immediately records an outcome.
func claimFinished(t *testing.T, c *idemCache, key string, accepted int) {
	t.Helper()
	e, owner := c.begin(key)
	if !owner {
		t.Fatalf("key %q already claimed", key)
	}
	c.finish(e, 200, ingestResponse{Accepted: accepted})
}

// The key LRU is bounded: inserting past capacity evicts the least recently
// used finished key, a refreshed key survives the sweep, and in-flight
// claims are never evicted.
func TestIdemCacheEvictsLRU(t *testing.T) {
	c := newIdemCache(3)
	for _, k := range []string{"a", "b", "c"} {
		claimFinished(t, c, k, 1)
	}
	if _, owner := c.begin("a"); owner {
		t.Fatal("finished key handed out as a fresh claim")
	} // refresh: "b" is now the oldest
	claimFinished(t, c, "d", 1)
	if _, owner := c.begin("b"); !owner {
		t.Fatal("least recently used key survived eviction")
	}
	// "b" is now a live claim again; its re-claim pushed the cache over
	// capacity and evicted the least recently used finished key, "c" (the
	// only key never refreshed). "a" (refreshed) and "d" stay replayable.
	for _, k := range []string{"a", "d"} {
		e, owner := c.begin(k)
		if owner {
			t.Fatalf("key %q evicted out of order", k)
		}
		if status, resp, ok := c.outcome(e); !ok || status != 200 || resp.Accepted != 1 {
			t.Fatalf("key %q outcome: %v %v %v", k, status, resp, ok)
		}
	}
	// An aborted claim releases its key: the next begin owns it afresh.
	e, owner := c.begin("x")
	if !owner {
		t.Fatal("fresh key not claimable")
	}
	c.abort(e)
	if _, owner := c.begin("x"); !owner {
		t.Fatal("aborted key not reclaimable")
	}
}

// gatedBackend blocks IngestBatch until released, so a test can hold one
// keyed request mid-absorb while a duplicate arrives.
type gatedBackend struct {
	memBackend
	entered chan struct{}
	release chan struct{}
}

func (g *gatedBackend) IngestBatch(reports []protocol.Report) error {
	g.entered <- struct{}{}
	<-g.release
	return g.memBackend.IngestBatch(reports)
}

// The in-flight window: a duplicate keyed request arriving while the
// original is still absorbing must wait for its outcome and replay it — not
// absorb a second copy.
func TestIdempotencyKeyInFlightDuplicate(t *testing.T) {
	backend := &gatedBackend{entered: make(chan struct{}, 2), release: make(chan struct{})}
	_, c := newTestServer(t, backend)
	ctx := context.Background()
	batch := []protocol.Report{{Index: 1}, {Index: 2}}

	type result struct {
		accepted int
		err      error
	}
	results := make(chan result, 2)
	post := func() {
		accepted, err := c.PostReportsKeyed(ctx, batch, "in-flight-key")
		results <- result{accepted, err}
	}
	go post()
	<-backend.entered // the first request is mid-absorb
	go post()
	// Give the duplicate time to reach the server; it must be parked on the
	// claim, not inside the backend (the gate would have signaled).
	select {
	case <-backend.entered:
		t.Fatal("duplicate keyed request reached the backend while the original was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(backend.release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.accepted != len(batch) {
			t.Fatalf("request %d: %d, %v", i, r.accepted, r.err)
		}
	}
	if got := backend.Count(); got != float64(len(batch)) {
		t.Fatalf("backend absorbed %v reports for one key, want exactly %d", got, len(batch))
	}
}

// /healthz reports the snapshot epoch alongside the count: the epoch
// advances when (and only when) the observed state changes, which is how an
// operator or ldpfed spots a stale shard without pulling a snapshot.
func TestHealthzReportsEpoch(t *testing.T) {
	backend := &memBackend{}
	_, c := newTestServer(t, backend)
	ctx := context.Background()

	h1, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostReports(ctx, []protocol.Report{{Index: 1}}); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Epoch <= h1.Epoch {
		t.Fatalf("epoch did not advance after an ingest: %d -> %d", h1.Epoch, h2.Epoch)
	}
	if h2.Count != 1 {
		t.Fatalf("count %v, want 1", h2.Count)
	}
	h3, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h3.Epoch != h2.Epoch || h3.Count != h2.Count {
		t.Fatalf("idle poll moved the view: %+v -> %+v", h2, h3)
	}
	// The snapshot frame carries the same epoch.
	snap, err := c.Snap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != h3.Epoch {
		t.Fatalf("snapshot epoch %d, healthz epoch %d", snap.Epoch, h3.Epoch)
	}
	if snap.Info != (Info{Mechanism: "TEST", Domain: 8, Epsilon: 1.5}) {
		t.Fatalf("snapshot identity %+v", snap.Info)
	}
}

func TestServerMethodRouting(t *testing.T) {
	hs, _ := newTestServer(t, &memBackend{})
	// GET /reports and POST /snapshot are not routes.
	resp, err := hs.Client().Get(hs.URL + "/reports")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("GET /reports served")
	}
	resp, err = hs.Client().Post(hs.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("POST /snapshot served")
	}
}
