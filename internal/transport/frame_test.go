package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/protocol"
)

func sampleReports() []protocol.Report {
	return []protocol.Report{
		{Index: 0},
		{Index: 42},
		{Index: -3}, // hostile index; the framing must carry it verbatim
		{Seed: 0xdeadbeefcafe, Index: 2},
		{Seed: math.MaxUint64, Index: 7},
		{Bits: []bool{}},
		{Bits: []bool{true}},
		{Bits: []bool{true, false, true, true, false, false, true, false, true}},
	}
}

func TestReportsRoundTrip(t *testing.T) {
	for _, batch := range [][]protocol.Report{
		nil,
		{},
		sampleReports(),
	} {
		var buf bytes.Buffer
		if err := EncodeReports(&buf, batch); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeReports(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(batch) {
			t.Fatalf("round trip: %d reports, want %d", len(got), len(batch))
		}
		for i := range batch {
			if !reflect.DeepEqual(got[i], batch[i]) {
				t.Fatalf("report %d: %+v != %+v", i, got[i], batch[i])
			}
		}
		// The stream is exhausted exactly at the frame boundary.
		if _, err := DecodeReports(&buf); err != ErrFrameEOF {
			t.Fatalf("want ErrFrameEOF after the last frame, got %v", err)
		}
	}
}

func TestReportsStream(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(1))
	var want []protocol.Report
	for f := 0; f < 5; f++ {
		batch := make([]protocol.Report, rng.Intn(50))
		for i := range batch {
			batch[i] = protocol.Report{Index: rng.Intn(100), Seed: rng.Uint64()}
		}
		want = append(want, batch...)
		if err := EncodeReports(&buf, batch); err != nil {
			t.Fatal(err)
		}
	}
	var got []protocol.Report
	for {
		batch, err := DecodeReports(&buf)
		if err == ErrFrameEOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("frame stream did not round-trip")
	}
}

// EncodeReportsChunked must split batches that cannot fit one frame — by
// payload bytes (wide unary reports) and by report count — and the chunked
// stream must decode back to exactly the original batch.
func TestReportsChunkedRoundTrip(t *testing.T) {
	// 66 reports × 1 Mi bits ≈ 8.25 MiB of packed bits: just over one
	// frame's payload cap, forcing a byte-driven split well before the
	// count limit (and keeping the -race run affordable — every bool is
	// instrumented).
	const nbits = 1 << 20
	reports := make([]protocol.Report, 66)
	for i := range reports {
		bits := make([]bool, nbits)
		for j := 0; j < 64; j++ {
			bits[(i*131+j*977)%nbits] = true
		}
		reports[i] = protocol.Report{Index: i, Bits: bits}
	}
	var buf bytes.Buffer
	if err := EncodeReportsChunked(&buf, reports); err != nil {
		t.Fatal(err)
	}
	var got []protocol.Report
	frames := 0
	for {
		batch, err := DecodeReports(&buf)
		if err == ErrFrameEOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		got = append(got, batch...)
	}
	if frames < 2 {
		t.Fatalf("oversized batch landed in %d frame(s), expected a split", frames)
	}
	if len(got) != len(reports) {
		t.Fatalf("chunked round trip: %d reports, want %d", len(got), len(reports))
	}
	for i := range got {
		if got[i].Index != reports[i].Index || !reflect.DeepEqual(got[i].Bits, reports[i].Bits) {
			t.Fatalf("report %d mangled by chunking", i)
		}
	}

	// A single report over the bit cap cannot be split — clear error.
	if err := EncodeReportsChunked(&buf, []protocol.Report{{Bits: make([]bool, MaxReportBits+1)}}); err == nil {
		t.Fatal("unencodable report accepted")
	}
	// The single-frame encoder enforces the same cap.
	if err := EncodeReports(&buf, []protocol.Report{{Bits: make([]bool, MaxReportBits+1)}}); err == nil {
		t.Fatal("unencodable report accepted by EncodeReports")
	}

	// An empty batch still produces one decodable (empty) frame.
	buf.Reset()
	if err := EncodeReportsChunked(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if batch, err := DecodeReports(&buf); err != nil || len(batch) != 0 {
		t.Fatalf("empty chunked batch: %v %v", batch, err)
	}
}

func TestReportsChunkedCountLimit(t *testing.T) {
	// Tiny reports in excess of MaxBatchReports split by count.
	reports := make([]protocol.Report, MaxBatchReports+3)
	for i := range reports {
		reports[i] = protocol.Report{Index: i & 0xff}
	}
	var buf bytes.Buffer
	if err := EncodeReportsChunked(&buf, reports); err != nil {
		t.Fatal(err)
	}
	first, err := DecodeReports(&buf)
	if err != nil {
		t.Fatal(err)
	}
	second, err := DecodeReports(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != MaxBatchReports || len(second) != 3 {
		t.Fatalf("split %d + %d, want %d + 3", len(first), len(second), MaxBatchReports)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	state := []float64{0, 1.5, -2.25, math.MaxFloat64, 1e-300}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, state, 12345); err != nil {
		t.Fatal(err)
	}
	got, count, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 12345 || !reflect.DeepEqual(got, state) {
		t.Fatalf("snapshot round trip: count %v, state %v", count, got)
	}
	// Zero-length state round-trips too.
	buf.Reset()
	if err := EncodeSnapshot(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	if got, count, err = DecodeSnapshot(&buf); err != nil || count != 0 || len(got) != 0 {
		t.Fatalf("empty snapshot round trip: %v %v %v", got, count, err)
	}
}

// mutateFrame returns a valid encoded frame with one edit applied.
func validFrame(t *testing.T) []byte {
	t.Helper()
	b, err := encodeReportsBytes(sampleReports())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecodeReportsRejectsMalformed(t *testing.T) {
	base := validFrame(t)
	cases := map[string][]byte{
		"empty":            {},
		"short header":     base[:5],
		"truncated body":   base[:len(base)-3],
		"bad magic":        append([]byte("NOPE"), base[4:]...),
		"bad version":      mutate(base, 4, 9),
		"wrong kind":       mutate(base, 5, kindSnapshot),
		"trailing payload": lengthened(base),
	}
	for name, data := range cases {
		if _, err := DecodeReports(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: decoded without error", name)
		} else if err == ErrFrameEOF && name != "empty" {
			t.Fatalf("%s: masked as clean EOF", name)
		}
	}
	// "empty" is the one clean-EOF case.
	if _, err := DecodeReports(bytes.NewReader(nil)); err != ErrFrameEOF {
		t.Fatalf("empty stream: want ErrFrameEOF, got %v", err)
	}
}

func TestDecodeReportsRejectsHostileLengths(t *testing.T) {
	// Declared payload length over the frame limit: rejected before any
	// allocation or read.
	hdr := make([]byte, headerLen)
	copy(hdr, frameMagic)
	hdr[4] = frameVersion
	hdr[5] = kindReports
	binary.BigEndian.PutUint32(hdr[6:], MaxReportsPayload+1)
	if _, err := DecodeReports(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized payload length: %v", err)
	}

	// Declared report count that cannot fit the actual payload.
	frame := frameWithPayload(kindReports, binary.BigEndian.AppendUint32(nil, 1<<16))
	if _, err := DecodeReports(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "not fit") {
		t.Fatalf("hostile count: %v", err)
	}

	// Declared bit width over the per-report limit.
	payload := binary.BigEndian.AppendUint32(nil, 1)
	payload = append(payload, flagBits)            // flags
	payload = append(payload, 0)                   // index 0
	payload = binary.AppendUvarint(payload, 1<<40) // nbits, absurd
	payload = append(payload, make([]byte, 1024)...)
	frame = frameWithPayload(kindReports, payload)
	if _, err := DecodeReports(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "bits") {
		t.Fatalf("hostile bit width: %v", err)
	}

	// Nonzero padding bits break the one-encoding property.
	payload = binary.BigEndian.AppendUint32(nil, 1)
	payload = append(payload, flagBits, 0)
	payload = binary.AppendUvarint(payload, 3)
	payload = append(payload, 0xFF) // bits 3..7 must be zero
	frame = frameWithPayload(kindReports, payload)
	if _, err := DecodeReports(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "padding") {
		t.Fatalf("nonzero padding: %v", err)
	}
}

func TestDecodeSnapshotRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, []float64{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	for name, data := range map[string][]byte{
		"truncated":       base[:len(base)-1],
		"length mismatch": lengthened(base),
		"nan count":       mutate(base, headerLen, 0x7F, 0xF8, 0, 0, 0, 0, 0, 1),
	} {
		if _, _, err := DecodeSnapshot(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
}

func mutate(b []byte, at int, with ...byte) []byte {
	out := append([]byte(nil), b...)
	copy(out[at:], with)
	return out
}

// lengthened declares one more payload byte than the frame carries… and then
// appends two, so the payload parses with a trailing byte.
func lengthened(b []byte) []byte {
	out := append([]byte(nil), b...)
	n := binary.BigEndian.Uint32(out[6:])
	binary.BigEndian.PutUint32(out[6:], n+1)
	return append(out, 0)
}

func frameWithPayload(kind byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameVersion, kind, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
