package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// Observer receives one callback per HTTP request the client issues: the
// operation name ("reports", "query", "snapshot", "healthz", "readyz"), the
// wall time from request start to response headers (or failure), the HTTP
// status (0 when the request never got a response), and the transport-level
// error, if any. Callbacks run on the calling goroutine, so an observer must
// be cheap and concurrency-safe.
type Observer func(op string, d time.Duration, status int, err error)

// Client speaks the transport's HTTP binding from the ingesting side. It is
// safe for concurrent use; each call is one HTTP request.
type Client struct {
	base string
	hc   *http.Client
	obs  Observer
}

// NewClient returns a client for the server at base (e.g.
// "http://10.0.0.1:8089"). hc == nil uses http.DefaultClient.
func NewClient(base string, hc *http.Client) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("transport: empty server address")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}, nil
}

// SetHTTPClient substitutes the underlying http.Client. Call before the first
// request; the client is not otherwise synchronized.
func (c *Client) SetHTTPClient(hc *http.Client) {
	if hc != nil {
		c.hc = hc
	}
}

// SetObserver installs a per-request latency observer. Call before the first
// request; the client is not otherwise synchronized. A nil observer removes
// instrumentation.
func (c *Client) SetObserver(obs Observer) { c.obs = obs }

// do issues req, timing it for the observer. The duration covers request
// start through response headers — body streaming is the caller's. Every
// request carries an Ldp-Request-Id: the caller's context id when one is
// there (a router forwarding keeps the edge's id), a freshly minted one
// otherwise — so one logical request traces through every hop's logs.
func (c *Client) do(req *http.Request, op string) (*http.Response, error) {
	if req.Header.Get(obs.RequestIDHeader) == "" {
		id := obs.RequestID(req.Context())
		if id == "" {
			id = obs.NewRequestID()
		}
		req.Header.Set(obs.RequestIDHeader, id)
	}
	if c.obs == nil {
		return c.hc.Do(req)
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	status := 0
	if resp != nil {
		status = resp.StatusCode
	}
	c.obs(op, time.Since(start), status, err)
	return resp, err
}

// PostReports sends a batch of reports, chunked into as many frames as the
// frame limits require (one frame for typical batches), and returns the
// server's accepted count. The server applies each frame atomically; on a
// transport error the response's accepted count says how many reports of
// this request landed.
func (c *Client) PostReports(ctx context.Context, reports []protocol.Report) (int, error) {
	return c.PostReportsKeyed(ctx, reports, "")
}

// PostReportsKeyed is PostReports with an idempotency key: a server that
// already absorbed a request under this key replays its recorded response
// instead of absorbing again, so a retry after a lost HTTP response cannot
// double-count. An empty key sends an unkeyed (non-idempotent) request.
func (c *Client) PostReportsKeyed(ctx context.Context, reports []protocol.Report, key string) (int, error) {
	var buf bytes.Buffer
	if err := EncodeReportsChunked(&buf, reports); err != nil {
		return 0, err
	}
	body := buf.Bytes()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/reports", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	resp, err := c.do(req, "reports")
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	var ir ingestResponse
	jsonErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ir)
	if resp.StatusCode != http.StatusOK {
		msg := ir.Error
		if jsonErr != nil {
			msg = ""
		}
		return ir.Accepted, statusError(resp, msg)
	}
	if jsonErr != nil {
		return 0, fmt.Errorf("transport: bad ingest response: %w", jsonErr)
	}
	return ir.Accepted, nil
}

// PostQuery sends one workload query and streams the result rows to fn in
// order; returning false from fn stops the stream early (the remaining body
// is discarded). The returned info describes the snapshot the answers were
// reconstructed from and which row fields are populated. A server predating
// the query engine answers 404, surfaced as a StatusError.
func (c *Client) PostQuery(ctx context.Context, q QueryRequest, fn func(QueryRow) bool) (QueryResultInfo, error) {
	var buf bytes.Buffer
	if err := EncodeQueryFrame(&buf, q); err != nil {
		return QueryResultInfo{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return QueryResultInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.do(req, "query")
	if err != nil {
		return QueryResultInfo{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		var ir ingestResponse
		msg := ""
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ir) == nil {
			msg = ir.Error
		}
		return QueryResultInfo{}, statusError(resp, msg)
	}
	return DecodeQueryResult(resp.Body, fn)
}

// Snap fetches the server's full snapshot: accumulator, count, epoch, and
// mechanism identity (epoch and identity are zero against a v1 server).
func (c *Client) Snap(ctx context.Context) (Snapshot, error) {
	resp, err := c.get(ctx, "/snapshot")
	if err != nil {
		return Snapshot{}, err
	}
	defer drain(resp)
	return DecodeSnapshotFrame(resp.Body)
}

// SnapAt fetches the snapshot the server's epoch history retains for the
// given epoch (GET /snapshot?epoch=N). With nearest, the newest retained
// epoch at or below the requested one is served instead of requiring an exact
// match. An epoch the server has coarsened away — or a server with no history
// at all — answers 404, surfaced as a StatusError whose message carries the
// retained range.
func (c *Client) SnapAt(ctx context.Context, epoch uint64, nearest bool) (Snapshot, error) {
	path := "/snapshot?epoch=" + strconv.FormatUint(epoch, 10)
	if nearest {
		path += "&nearest=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return Snapshot{}, err
	}
	resp, err := c.do(req, "snapshot")
	if err != nil {
		return Snapshot{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return Snapshot{}, statusError(resp, strings.TrimSpace(string(body)))
	}
	return DecodeSnapshotFrame(resp.Body)
}

// Snapshot fetches the server's merged accumulator and report count.
//
// Deprecated: use Snap, which also carries the snapshot's epoch and
// mechanism identity.
func (c *Client) Snapshot(ctx context.Context) (state []float64, count float64, err error) {
	s, err := c.Snap(ctx)
	if err != nil {
		return nil, 0, err
	}
	return s.State, s.Count, nil
}

// Healthz fetches the server's liveness report and mechanism identity.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return Health{}, err
	}
	defer drain(resp)
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("transport: bad healthz response: %w", err)
	}
	return h, nil
}

// Readyz asks the server's readiness probe: (true, "") for a shard that
// should receive traffic, (false, reason) for one that is alive but gated
// out (draining, recovering). A server predating /readyz answers 404; its
// liveness probe stands in, so old shards read as ready-while-alive. The
// error is non-nil only when the shard could not be reached at all.
func (c *Client) Readyz(ctx context.Context) (bool, string, error) {
	resp, err := c.get(ctx, "/readyz")
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			switch se.StatusCode {
			case http.StatusNotFound:
				// Pre-readiness server: fall back to liveness.
				if _, herr := c.Healthz(ctx); herr != nil {
					return false, "", herr
				}
				return true, "", nil
			case http.StatusServiceUnavailable:
				reason := se.Msg
				// The 503 body is the readyz JSON; surface its reason field
				// when it parses, the raw text otherwise.
				var rr struct {
					Ready  bool   `json:"ready"`
					Reason string `json:"reason"`
				}
				if jerr := json.Unmarshal([]byte(se.Msg), &rr); jerr == nil && rr.Reason != "" {
					reason = rr.Reason
				}
				return false, reason, nil
			}
		}
		return false, "", err
	}
	defer drain(resp)
	var rr struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr); err != nil {
		return false, "", fmt.Errorf("transport: bad readyz response: %w", err)
	}
	return rr.Ready, rr.Reason, nil
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req, strings.TrimPrefix(path, "/"))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		drain(resp)
		return nil, statusError(resp, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// statusError builds the StatusError for a non-2xx response, capturing the
// Retry-After header (delta-seconds or HTTP-date) so the retry loop can honor
// a draining server's pacing.
func statusError(resp *http.Response, msg string) *StatusError {
	se := &StatusError{StatusCode: resp.StatusCode, Msg: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(ra); err == nil {
			if d := time.Until(at); d > 0 {
				se.RetryAfter = d
			}
		}
	}
	return se
}

// drain consumes what remains of a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
