package transport

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// Backend is what a transport server needs from a collector: batch ingestion
// with all-or-nothing validation and a consistent point-in-time snapshot of
// the merged accumulator. The root package's sharded Collector satisfies it
// (through an adapter that unpacks its Snapshot value).
type Backend interface {
	// IngestBatch records a batch of reports, validating the whole batch
	// before any state changes.
	IngestBatch(reports []protocol.Report) error
	// SnapshotEpoch returns the merged accumulator, the number of absorbed
	// reports, and the monotonic snapshot epoch — one consistent view: the
	// epoch advances exactly when the returned state differs from the
	// previously returned one.
	SnapshotEpoch() (state []float64, count float64, epoch uint64)
	// CountEpoch returns the same consistent (count, epoch) pair without
	// materializing the state — the cheap view /healthz polls.
	CountEpoch() (count float64, epoch uint64)
}

// KeyedBackend is optionally implemented by backends that persist ingested
// batches (a write-ahead log): the transport hands the request's idempotency
// key down with each frame so the key is logged alongside the batch, and a
// client retry arriving after a crash-restart still absorbs exactly once —
// the recovered key seeds the idempotency cache via SeedIdempotency.
type KeyedBackend interface {
	// IngestBatchKeyed is IngestBatch with the idempotency key the request
	// declared (never empty; unkeyed requests use plain IngestBatch).
	IngestBatchKeyed(reports []protocol.Report, key string) error
}

// DurabilityHealth is the durable-ingest status a backend exposes through
// /healthz: what recovery restored at startup and how far the WAL has run
// ahead of the last checkpoint (the replay cost of a crash right now).
type DurabilityHealth struct {
	// Recovered is true when startup restored prior state (checkpoint and/or
	// WAL records) rather than starting empty.
	Recovered bool `json:"recovered"`
	// RecoveredReports counts the reports restored at startup.
	RecoveredReports int64 `json:"recovered_reports"`
	// ReplayedRecords counts the WAL records replayed on top of the
	// checkpoint at startup.
	ReplayedRecords int64 `json:"replayed_records"`
	// DroppedTailBytes counts torn trailing WAL bytes discarded at startup —
	// the unacknowledged remains of the previous crash.
	DroppedTailBytes int64 `json:"dropped_tail_bytes"`
	// CheckpointSeq is the newest durable checkpoint's sequence number.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// WALRecordLag and WALByteLag measure the WAL tail no checkpoint covers
	// yet — what a restart right now would have to replay.
	WALRecordLag int64 `json:"wal_record_lag"`
	WALByteLag   int64 `json:"wal_byte_lag"`
	// Fsync reports whether every group commit fsyncs before acknowledging.
	Fsync bool `json:"fsync"`
	// LastError carries the most recent background checkpoint failure, if
	// any — ingest continues on the WAL alone, but an operator should know.
	LastError string `json:"last_error,omitempty"`
}

// DurableBackend is optionally implemented by backends with durable ingest;
// /healthz includes the returned status when ok is true.
type DurableBackend interface {
	Durability() (health DurabilityHealth, ok bool)
}

// HistoryBackend is optionally implemented by backends that retain an epoch
// history (a durable collector with checkpoint retention): GET /snapshot
// gains the ?epoch= form, served from the retained checkpoint ladder without
// replay.
type HistoryBackend interface {
	// SnapshotAt returns the snapshot retained for epoch. With nearest false
	// the epoch must match a retained checkpoint exactly; with nearest true
	// the newest retained epoch ≤ the requested one is served. A miss returns
	// *EpochNotRetainedError.
	SnapshotAt(epoch uint64, nearest bool) (Snapshot, error)
}

// QueryBackend is optionally implemented by backends that can answer workload
// queries over their current snapshot. The implementation resolves the
// request's workload, reconstructs answers from a consistent snapshot, and
// streams the result as query-result frames through a QueryResultWriter built
// on w. An error returned before the first frame is written maps to an HTTP
// status (StatusError chooses the code; anything else answers 422); an error
// after bytes are on the wire aborts the connection so the client sees a
// truncated stream rather than a silently short result.
type QueryBackend interface {
	Query(q QueryRequest, w io.Writer) error
}

// Info describes the mechanism a server fronts; /healthz and every v2
// snapshot frame report it so clients can verify they randomize through the
// configuration the collector aggregates under.
type Info struct {
	Mechanism string  `json:"mechanism"`
	Domain    int     `json:"domain"`
	Epsilon   float64 `json:"epsilon"`
	// Digest fingerprints the exact mechanism configuration when name,
	// domain, and ε cannot (strategy matrices: two different matrices share
	// all three). Empty for mechanisms fully determined by the fields above.
	Digest string `json:"digest,omitempty"`
}

// Health is the /healthz response body. Count and Epoch are one consistent
// snapshot view, so an operator (or ldpfed) comparing two shards sees a
// stale or diverged one without pulling either full snapshot.
//
// /healthz is liveness: it answers 200 for as long as the process can serve
// reads at all, including while draining or otherwise not accepting ingest.
// Readiness — "should a router send this shard traffic" — is the separate
// Ready/Reason pair, also served standalone by GET /readyz (200/503), so a
// recovering or draining shard reports alive-but-not-ready and a fan-in tier
// gates it out of membership without declaring it dead.
type Health struct {
	Status string  `json:"status"`
	Count  float64 `json:"count"`
	Epoch  uint64  `json:"epoch"`
	// Version is the serving binary's build version (ldflags-stamped or the
	// module version); empty against servers predating it.
	Version string `json:"version,omitempty"`
	// Ready reports whether the shard is accepting ingest traffic; Reason
	// says why not (e.g. "draining") when false.
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	Info
	// Durability reports the backend's durable-ingest status; nil for a
	// purely in-memory collector.
	Durability *DurabilityHealth `json:"durability,omitempty"`
}

// IdempotencyKeyHeader is the request header a client stamps a POST /reports
// with to make it retry-safe: the server remembers the response of each
// recently absorbed key and replays it for a duplicate instead of absorbing
// the reports twice. Keys are opaque; clients use 16 random bytes, hex.
const IdempotencyKeyHeader = "Ldp-Idempotency-Key"

const (
	// idemCacheSize bounds the remembered-key LRU. At the default 4096-report
	// batches this spans ~17M reports of keyed history — far longer than any
	// client retry loop — while capping memory at a few hundred KiB. A retry
	// arriving after the key was evicted re-absorbs; size the cache up if a
	// deployment retries across longer horizons.
	idemCacheSize = 4096
	// maxIdemKeyLen bounds an accepted key so a hostile client cannot park
	// megabytes in the LRU; longer keys are ignored (treated as unkeyed).
	maxIdemKeyLen = 64
)

// idemOutcome is one idempotency key's entry: the recorded response once
// processing finished (done closed), or a claim that a request is being
// processed right now (done open). Claiming the key before the absorb — not
// recording after it — is what closes the in-flight window: a duplicate that
// arrives while the original is still absorbing waits for the outcome
// instead of absorbing a second time.
type idemOutcome struct {
	key    string
	done   chan struct{} // closed once status/resp are recorded
	status int
	resp   ingestResponse
}

// idemCache is a mutex-guarded bounded LRU of request outcomes keyed by
// idempotency key. begin claims a key (or returns the existing claim),
// finish records the outcome, abort releases a claim whose request died
// without one. Insertion past capacity evicts the least recently used
// finished entry.
type idemCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *idemOutcome
	byKey map[string]*list.Element
}

func newIdemCache(capacity int) *idemCache {
	return &idemCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element, capacity)}
}

// begin claims key for processing. owner == true means the caller must
// process the request and finish (or abort) the entry; owner == false means
// another request holds or held the key — wait on entry.done, then either
// replay the recorded outcome or, if the holder aborted, call begin again.
func (c *idemCache) begin(key string) (entry *idemOutcome, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*idemOutcome), false
	}
	entry = &idemOutcome{key: key, done: make(chan struct{})}
	c.byKey[key] = c.order.PushFront(entry)
	c.evictLocked()
	return entry, true
}

// evictLocked removes finished entries past capacity; in-flight claims are
// skipped (an unbounded number would need that many concurrent distinct keys,
// which the server's connection limits bound long before this map matters).
// Caller holds c.mu.
func (c *idemCache) evictLocked() {
	for el := c.order.Back(); c.order.Len() > c.cap && el != nil; {
		prev := el.Prev()
		if out := el.Value.(*idemOutcome); isDone(out.done) {
			c.order.Remove(el)
			delete(c.byKey, out.key)
		}
		el = prev
	}
}

// seed inserts an already-finished outcome for key (skipped if the key is
// present). Recovery uses it to pre-answer retries of batches the write-ahead
// log proves were absorbed before a restart.
func (c *idemCache) seed(key string, status int, resp ingestResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	entry := &idemOutcome{key: key, done: make(chan struct{}), status: status, resp: resp}
	close(entry.done)
	c.byKey[key] = c.order.PushFront(entry)
	c.evictLocked()
}

// finish records the outcome on a claimed entry and wakes every waiter. The
// entry keeps serving replays until evicted.
func (c *idemCache) finish(entry *idemOutcome, status int, resp ingestResponse) {
	c.mu.Lock()
	entry.status, entry.resp = status, resp
	c.mu.Unlock()
	close(entry.done)
}

// abort releases a claim that will never finish (the owning request died
// before producing a response): the key is removed so a retry reprocesses,
// and waiters are woken to claim it themselves.
func (c *idemCache) abort(entry *idemOutcome) {
	c.mu.Lock()
	if el, ok := c.byKey[entry.key]; ok && el.Value.(*idemOutcome) == entry {
		c.order.Remove(el)
		delete(c.byKey, entry.key)
	}
	entry.status = 0 // status 0 = no outcome; waiters re-begin
	c.mu.Unlock()
	close(entry.done)
}

func isDone(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// outcome reads a finished entry's recorded response (valid once done is
// closed; ok reports whether an outcome was recorded at all, false after an
// abort).
func (c *idemCache) outcome(entry *idemOutcome) (int, ingestResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return entry.status, entry.resp, entry.status != 0
}

// Server binds a collector backend to the HTTP transport:
//
//	POST /reports  — body is a stream of report-batch frames; each frame is
//	                 ingested atomically (all-or-nothing per frame). The JSON
//	                 response carries the number of reports accepted; a
//	                 malformed or rejected frame aborts the request with
//	                 status 400 after the preceding frames have been applied.
//	                 A request stamped with IdempotencyKeyHeader is absorbed
//	                 at most once: a duplicate replays the recorded response.
//	GET  /snapshot — one v2 snapshot frame: merged accumulator, count, epoch,
//	                 and the mechanism identity.
//	GET  /healthz  — JSON liveness, report count, snapshot epoch, and
//	                 mechanism identity.
type Server struct {
	backend Backend
	info    Info
	mux     *http.ServeMux
	idem    *idemCache

	// observability: the registry behind GET /metrics (always non-nil — a
	// server wired without WithMetrics gets a private one so the handlers
	// never branch), plus the pre-resolved counters the ingest path bumps.
	metrics       *obs.Registry
	version       string
	decodeRejects *obs.Counter
	idemReplays   *obs.Counter

	// maxRequestBytes bounds one POST /reports body before any frame decoding
	// runs (http.MaxBytesReader); past it the request fails 413 with the
	// accepted count so the client trims and re-sends the remainder.
	maxRequestBytes int64

	// readiness state: draining is one-way (a shard that started its drain
	// never comes back on this process), notReadyReason covers transient
	// not-ready phases an embedder declares (recovery, rebalancing).
	readyMu        sync.Mutex
	draining       bool
	notReadyReason string
}

// DefaultMaxRequestBytes bounds a POST /reports body. The per-frame caps
// bound each frame long before this, but a request may carry many frames —
// 64 MiB is ~8M unary-report frames, far past any sane client batch, while
// still refusing an unbounded streaming body before it parks in memory.
const DefaultMaxRequestBytes = 64 << 20

// ServerOption configures a Server's observability wiring.
type ServerOption func(*serverConfig)

type serverConfig struct {
	reg       *obs.Registry
	logger    *slog.Logger
	slow      time.Duration
	component string
	version   string
}

// WithMetrics shares reg as the server's metric registry: the HTTP families,
// ingest counters, and GET /metrics all land on it, so an embedder can add
// its own families (WAL gauges, pool stats) to the same exposition.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(c *serverConfig) { c.reg = reg }
}

// WithLogger sets the structured logger request lines are emitted through
// (nil keeps slog.Default).
func WithLogger(l *slog.Logger) ServerOption {
	return func(c *serverConfig) { c.logger = l }
}

// WithSlowRequest sets the latency at or above which a request logs at Warn
// instead of Debug (<= 0 keeps obs.DefaultSlowRequest).
func WithSlowRequest(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.slow = d }
}

// WithComponent names the serving tier in log lines ("collector", "router").
func WithComponent(name string) ServerOption {
	return func(c *serverConfig) { c.component = name }
}

// WithVersion surfaces the build version in /healthz.
func WithVersion(v string) ServerOption {
	return func(c *serverConfig) { c.version = v }
}

// NewServer wraps a collector backend for serving. Every route is
// instrumented: per-endpoint request counts and latency histograms, trace-id
// propagation (Ldp-Request-Id minted when absent, echoed always), and
// structured request logs. GET /metrics serves the registry in Prometheus
// text format.
func NewServer(b Backend, info Info, opts ...ServerOption) (*Server, error) {
	if b == nil {
		return nil, errors.New("transport: nil backend")
	}
	cfg := serverConfig{component: "collector"}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	s := &Server{backend: b, info: info, mux: http.NewServeMux(), idem: newIdemCache(idemCacheSize),
		maxRequestBytes: DefaultMaxRequestBytes,
		metrics:         cfg.reg,
		version:         cfg.version,
		decodeRejects: cfg.reg.Counter("ldp_ingest_decode_rejections_total",
			"POST /reports requests aborted before ingest: malformed frames or oversized bodies."),
		idemReplays: cfg.reg.Counter("ldp_ingest_idempotent_replays_total",
			"Duplicate keyed ingest requests answered from the idempotency cache instead of re-absorbed."),
	}
	hm := obs.NewHTTPMetrics(cfg.reg, cfg.component, cfg.logger, cfg.slow)
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		s.mux.Handle(pattern, hm.Wrap(endpoint, h))
	}
	route("POST /reports", "reports", s.handleReports)
	route("POST /query", "query", s.handleQuery)
	route("GET /snapshot", "snapshot", s.handleSnapshot)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", cfg.reg.Handler())
	return s, nil
}

// Metrics returns the server's registry (never nil), for embedders that
// register additional families on the same /metrics exposition.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetMaxRequestBytes overrides the POST /reports body bound (n <= 0 keeps
// the default). Call before serving traffic.
func (s *Server) SetMaxRequestBytes(n int64) {
	if n > 0 {
		s.maxRequestBytes = n
	}
}

// Drain marks the server draining: ingest answers 503 + Retry-After instead
// of hanging into a shutdown, /readyz flips to 503, and /healthz keeps
// answering 200 (alive, not ready) with the final count — reads stay up so a
// fan-in tier can pull the last snapshot. Drain is one-way.
func (s *Server) Drain() {
	s.readyMu.Lock()
	s.draining = true
	s.readyMu.Unlock()
}

// SetReady declares a transient readiness state: ready=false with a reason
// (e.g. "recovering") gates the shard out of router membership while it
// stays alive; ready=true clears it. Draining overrides — a draining server
// never reports ready again.
func (s *Server) SetReady(ready bool, reason string) {
	s.readyMu.Lock()
	if ready {
		s.notReadyReason = ""
	} else {
		if reason == "" {
			reason = "not ready"
		}
		s.notReadyReason = reason
	}
	s.readyMu.Unlock()
}

// readiness returns the current (ready, reason) pair.
func (s *Server) readiness() (bool, string) {
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	if s.draining {
		return false, "draining"
	}
	if s.notReadyReason != "" {
		return false, s.notReadyReason
	}
	return true, ""
}

// SeededKey is one idempotency key recovered from a durable backend's log,
// together with the report count absorbed under it.
type SeededKey struct {
	Key      string
	Accepted int
}

// SeedIdempotency pre-fills the idempotency cache with keys a recovery proved
// absorbed, oldest first: a client that retries a batch whose response was
// lost to a crash gets a recorded outcome replayed instead of a second
// absorb. Call before serving traffic. Keys the transport would not have
// accepted (empty or oversized) are skipped; when there are more keys than
// the cache holds, the newest win.
//
// The seeded outcome is deliberately a definitive 409, not a 200: the log
// proves Accepted reports landed under the key, but not that they were the
// request's *entire* batch — a multi-frame request interrupted mid-way logs
// only its absorbed prefix. Replaying a 409 with the recovered count makes
// the retrying client trim exactly that prefix and re-send any remainder
// under a fresh key (the transport's definitive-rejection path), so a
// complete batch costs the client one extra round trip after a crash and a
// partial one is completed instead of silently losing its suffix.
func (s *Server) SeedIdempotency(keys []SeededKey) {
	for _, k := range keys {
		if k.Key == "" || len(k.Key) > maxIdemKeyLen {
			continue
		}
		s.idem.seed(k.Key, http.StatusConflict, ingestResponse{
			Accepted: k.Accepted,
			Error:    "request interrupted by a collector restart; the accepted count is what the write-ahead log recovered under this key",
		})
	}
}

// ingestResponse is the POST /reports JSON response body.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	// A draining (or otherwise not-ready) shard refuses ingest up front with
	// a retryable 503 instead of racing the listener shutdown: the client's
	// keyed batch stays intact and lands on a ready shard or a later retry.
	if ready, reason := s.readiness(); !ready {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ingestResponse{Error: "collector not ready: " + reason})
		return
	}
	// Bound the body before any decoding: a frame decoder never sees more
	// than maxRequestBytes, and an overlong request fails 413 (definitive)
	// with the accepted count, so the client trims and re-sends the rest.
	r.Body = http.MaxBytesReader(w, r.Body, s.maxRequestBytes)
	key := r.Header.Get(IdempotencyKeyHeader)
	if len(key) > maxIdemKeyLen {
		key = ""
	}
	var claim *idemOutcome
	for key != "" {
		entry, owner := s.idem.begin(key)
		if owner {
			claim = entry
			break
		}
		// Another request holds (or held) this key. Wait for its outcome and
		// replay it — absorbing here would double-count the batch the
		// original request is still applying. A holder that died without an
		// outcome releases the key; loop to claim it.
		select {
		case <-entry.done:
		case <-r.Context().Done():
			return // client gone; nothing to replay to
		}
		if status, resp, ok := s.idem.outcome(entry); ok {
			s.idemReplays.Inc()
			writeJSON(w, status, resp)
			return
		}
	}
	finished := false
	if claim != nil {
		// If the handler dies before recording an outcome (e.g. the request
		// body errors in a way that panics upstream), release the claim so
		// waiters and retries reprocess instead of hanging on a dead key.
		defer func() {
			if !finished {
				s.idem.abort(claim)
			}
		}()
	}
	finish := func(status int, resp ingestResponse) {
		// Both outcomes are remembered: a replayed 400 carries the same
		// accepted count as the original, so the client trims exactly the
		// prefix the server really applied even when the first response
		// never arrived.
		if claim != nil {
			s.idem.finish(claim, status, resp)
			finished = true
		}
		writeJSON(w, status, resp)
	}
	// A keyed request against a durable backend logs the key with each frame,
	// so the batch's idempotency survives a crash-restart (the recovered key
	// re-seeds this cache).
	ingest := s.backend.IngestBatch
	if kb, ok := s.backend.(KeyedBackend); ok && key != "" {
		ingest = func(reports []protocol.Report) error { return kb.IngestBatchKeyed(reports, key) }
	}
	accepted := 0
	for {
		reports, err := DecodeReports(r.Body)
		if err == ErrFrameEOF {
			break
		}
		if err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
			s.decodeRejects.Inc()
			finish(status, ingestResponse{Accepted: accepted, Error: err.Error()})
			return
		}
		if err := ingest(reports); err != nil {
			finish(http.StatusBadRequest, ingestResponse{Accepted: accepted, Error: err.Error()})
			return
		}
		accepted += len(reports)
	}
	finish(http.StatusOK, ingestResponse{Accepted: accepted})
}

// trackingWriter records whether any response bytes went out, deciding
// between a clean error status and a connection abort when a query fails.
type trackingWriter struct {
	w     io.Writer
	wrote bool
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		t.wrote = true
	}
	return t.w.Write(p)
}

// handleQuery serves POST /query: one query-request frame in, a stream of
// query-result frames out. A backend without query support answers 404 so a
// probing client can tell "old shard" from "bad request".
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	qb, ok := s.backend.(QueryBackend)
	if !ok {
		http.Error(w, "transport: this collector does not serve queries", http.StatusNotFound)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, headerLen+MaxQueryPayload)
	q, err := DecodeQueryFrame(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ingestResponse{Error: err.Error()})
		return
	}
	tw := &trackingWriter{w: w}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := qb.Query(q, tw); err != nil {
		if tw.wrote {
			// The stream is committed; drop the connection so the client sees
			// a truncated result instead of a silently short one.
			panic(http.ErrAbortHandler)
		}
		status := http.StatusUnprocessableEntity
		var se *StatusError
		if errors.As(err, &se) {
			status = se.StatusCode
		}
		writeJSON(w, status, ingestResponse{Error: err.Error()})
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var snap Snapshot
	if eq := r.URL.Query().Get("epoch"); eq != "" {
		hb, ok := s.backend.(HistoryBackend)
		if !ok {
			http.Error(w, "transport: this collector does not retain epoch history", http.StatusNotFound)
			return
		}
		epoch, err := strconv.ParseUint(eq, 10, 64)
		if err != nil {
			http.Error(w, "transport: invalid epoch: "+err.Error(), http.StatusBadRequest)
			return
		}
		nearest := r.URL.Query().Get("nearest") == "1"
		snap, err = hb.SnapshotAt(epoch, nearest)
		if err != nil {
			var enr *EpochNotRetainedError
			if errors.As(err, &enr) {
				// The epoch was coarsened away (or never existed): a definitive
				// 404 whose body names the retained range, so the caller can
				// pick a retained epoch instead of retrying.
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		state, count, epoch := s.backend.SnapshotEpoch()
		snap = Snapshot{State: state, Count: count, Epoch: epoch, Info: s.info}
	}
	if err := snapshotFrameError(snap); err != nil {
		// An unframeable snapshot (oversized identity or state) is a server
		// misconfiguration; nothing has been written yet, so report it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := EncodeSnapshotFrame(w, snap); err != nil {
		// A mid-write failure: the header is out, so all we can do is drop
		// the connection and let the client see a truncated frame instead of
		// a silent short read.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	count, epoch := s.backend.CountEpoch()
	ready, reason := s.readiness()
	status := "ok"
	if !ready {
		status = reason
	}
	h := Health{Status: status, Count: count, Epoch: epoch, Version: s.version, Ready: ready, Reason: reason, Info: s.info}
	if db, ok := s.backend.(DurableBackend); ok {
		if d, ok := db.Durability(); ok {
			h.Durability = &d
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// readyzResponse is the GET /readyz JSON body.
type readyzResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// handleReadyz is the readiness probe: 200 when the shard should receive
// traffic, 503 (alive, not ready) while recovering or draining. Liveness
// stays on /healthz, which answers 200 in both cases.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.readiness()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, readyzResponse{Ready: ready, Reason: reason})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Body writes after WriteHeader can only fail on a dead connection.
		_ = err
	}
}

// StatusError reports a non-2xx transport response. Its presence in an error
// chain means the server definitively answered the request — as opposed to a
// network failure, where the request may have been applied and the response
// lost.
type StatusError struct {
	StatusCode int
	Msg        string
	// RetryAfter is the server's Retry-After response header, parsed (0 when
	// absent). A draining shard's 503 says when ingest is worth retrying; the
	// retry package honors it through RetryAfterHint, capped at the retry
	// policy's own MaxBackoff.
	RetryAfter time.Duration
}

// RetryAfterHint implements retry.RetryAfterHinter.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("transport: server returned %d: %s", e.StatusCode, e.Msg)
	}
	return fmt.Sprintf("transport: server returned %d", e.StatusCode)
}

// EpochNotRetainedError reports a historical snapshot request for an epoch
// the retention ladder does not hold: either it was coarsened away or it
// never existed. It is definitive — retrying the same epoch cannot succeed —
// and carries the retained range so the caller can choose a retained epoch.
type EpochNotRetainedError struct {
	// Requested is the epoch asked for.
	Requested uint64
	// Oldest and Newest bound the retained epochs (both 0 when none are).
	Oldest, Newest uint64
	// Nearest is the newest retained epoch ≤ Requested (0 when none is).
	Nearest uint64
}

func (e *EpochNotRetainedError) Error() string {
	if e.Oldest == 0 && e.Newest == 0 {
		return fmt.Sprintf("transport: epoch %d is not retained (no epochs retained)", e.Requested)
	}
	return fmt.Sprintf("transport: epoch %d is not retained (retained range %d..%d, nearest at or below: %d)",
		e.Requested, e.Oldest, e.Newest, e.Nearest)
}

// Temporary reports whether the response is worth retrying: 408 (request
// timeout), 429 (throttled), and every 5xx mean the server is alive but
// cannot serve right now. Everything else — the 4xx family in particular —
// is a definitive answer that a retry of the same request cannot change.
func (e *StatusError) Temporary() bool {
	return e.StatusCode == http.StatusRequestTimeout ||
		e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode >= 500
}
