package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/protocol"
)

// Backend is what a transport server needs from a collector: batch ingestion
// with all-or-nothing validation and a consistent point-in-time snapshot of
// the merged accumulator. The root package's sharded Collector satisfies it.
type Backend interface {
	// IngestBatch records a batch of reports, validating the whole batch
	// before any state changes.
	IngestBatch(reports []protocol.Report) error
	// Snapshot returns the merged accumulator and the number of absorbed
	// reports as one consistent view.
	Snapshot() (state []float64, count float64)
	// Count returns the number of absorbed reports without paying for a
	// snapshot merge (the collector's lock-free counter fast path).
	Count() float64
}

// Info describes the mechanism a server fronts; /healthz reports it so
// clients can verify they randomize through the configuration the collector
// aggregates under.
type Info struct {
	Mechanism string  `json:"mechanism"`
	Domain    int     `json:"domain"`
	Epsilon   float64 `json:"epsilon"`
	// Digest fingerprints the exact mechanism configuration when name,
	// domain, and ε cannot (strategy matrices: two different matrices share
	// all three). Empty for mechanisms fully determined by the fields above.
	Digest string `json:"digest,omitempty"`
}

// Health is the /healthz response body.
type Health struct {
	Status string  `json:"status"`
	Count  float64 `json:"count"`
	Info
}

// Server binds a collector backend to the HTTP transport:
//
//	POST /reports  — body is a stream of report-batch frames; each frame is
//	                 ingested atomically (all-or-nothing per frame). The JSON
//	                 response carries the number of reports accepted; a
//	                 malformed or rejected frame aborts the request with
//	                 status 400 after the preceding frames have been applied.
//	GET  /snapshot — one snapshot frame of the merged accumulator and count.
//	GET  /healthz  — JSON liveness, report count, and mechanism identity.
type Server struct {
	backend Backend
	info    Info
	mux     *http.ServeMux
}

// NewServer wraps a collector backend for serving.
func NewServer(b Backend, info Info) (*Server, error) {
	if b == nil {
		return nil, errors.New("transport: nil backend")
	}
	s := &Server{backend: b, info: info, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /reports", s.handleReports)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ingestResponse is the POST /reports JSON response body.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	accepted := 0
	for {
		reports, err := DecodeReports(r.Body)
		if err == ErrFrameEOF {
			break
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ingestResponse{Accepted: accepted, Error: err.Error()})
			return
		}
		if err := s.backend.IngestBatch(reports); err != nil {
			writeJSON(w, http.StatusBadRequest, ingestResponse{Accepted: accepted, Error: err.Error()})
			return
		}
		accepted += len(reports)
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	state, count := s.backend.Snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := EncodeSnapshot(w, state, count); err != nil {
		// The header is out; all we can do is drop the connection so the
		// client sees a truncated frame instead of a silent short read.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{Status: "ok", Count: s.backend.Count(), Info: s.info})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Body writes after WriteHeader can only fail on a dead connection.
		_ = err
	}
}

// statusError reports a non-2xx transport response.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("transport: server returned %d: %s", e.status, e.msg)
	}
	return fmt.Sprintf("transport: server returned %d", e.status)
}
