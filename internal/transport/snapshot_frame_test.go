package transport

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		State: []float64{0, 1.5, -2.25, math.MaxFloat64, 1e-300},
		Count: 12345,
		Epoch: 42,
		Info:  Info{Mechanism: "strategy", Domain: 5, Epsilon: 1.25, Digest: "00f1e2d3c4b5a697"},
	}
}

func TestSnapshotFrameV2RoundTrip(t *testing.T) {
	for name, snap := range map[string]Snapshot{
		"full":     sampleSnapshot(),
		"bareInfo": {State: []float64{7}, Count: 7},
		"empty":    {},
	} {
		var buf bytes.Buffer
		if err := EncodeSnapshotFrame(&buf, snap); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := DecodeSnapshotFrame(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Count != snap.Count || got.Epoch != snap.Epoch || got.Info != snap.Info {
			t.Fatalf("%s: metadata changed: %+v != %+v", name, got, snap)
		}
		if len(got.State) != len(snap.State) {
			t.Fatalf("%s: state width %d != %d", name, len(got.State), len(snap.State))
		}
		for i := range snap.State {
			if got.State[i] != snap.State[i] {
				t.Fatalf("%s: state[%d] %v != %v", name, i, got.State[i], snap.State[i])
			}
		}
	}
}

// A version-1 snapshot frame — what every pre-v2 ldpserve emits — must keep
// decoding through the new reader, with the metadata it never carried coming
// back zero.
func TestSnapshotFrameV1StillDecodes(t *testing.T) {
	state := []float64{3, 0, 9.5}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, state, 12); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshotFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 12 || got.Epoch != 0 || got.Info != (Info{}) || !reflect.DeepEqual(got.State, state) {
		t.Fatalf("v1 decode: %+v", got)
	}
	// The deprecated pair-returning reader sees the same view.
	buf.Reset()
	if err := EncodeSnapshot(&buf, state, 12); err != nil {
		t.Fatal(err)
	}
	st, count, err := DecodeSnapshot(&buf)
	if err != nil || count != 12 || !reflect.DeepEqual(st, state) {
		t.Fatalf("DecodeSnapshot on v1: %v %v %v", st, count, err)
	}
}

// goldenFrame regenerates testdata/<name> from got when UPDATE_GOLDEN=1 and
// returns the checked-in bytes. The goldens pin decode compatibility: frame
// bytes written by a past version of this library must keep loading to the
// same values, whatever the current writer emits.
func goldenFrame(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	return want
}

// The golden files pin v1→v2 wire compatibility in CI: the checked-in v1
// frame bytes (written by the version-1 encoder, byte-identical since PR 3)
// and v2 frame bytes must both load to exactly the expected snapshot.
func TestSnapshotFrameGoldenCompatibility(t *testing.T) {
	v1State := []float64{1, 0, 2, 0, 3, 0, 4, 0.5}
	var v1 bytes.Buffer
	if err := EncodeSnapshot(&v1, v1State, 11); err != nil {
		t.Fatal(err)
	}
	v1Bytes := goldenFrame(t, "snapshot_v1.golden", v1.Bytes())
	got, err := DecodeSnapshotFrame(bytes.NewReader(v1Bytes))
	if err != nil {
		t.Fatalf("golden v1 frame no longer decodes: %v", err)
	}
	if got.Count != 11 || got.Epoch != 0 || got.Info != (Info{}) || !reflect.DeepEqual(got.State, v1State) {
		t.Fatalf("golden v1 frame decoded to %+v", got)
	}

	want := sampleSnapshot()
	var v2 bytes.Buffer
	if err := EncodeSnapshotFrame(&v2, want); err != nil {
		t.Fatal(err)
	}
	v2Bytes := goldenFrame(t, "snapshot_v2.golden", v2.Bytes())
	got, err = DecodeSnapshotFrame(bytes.NewReader(v2Bytes))
	if err != nil {
		t.Fatalf("golden v2 frame no longer decodes: %v", err)
	}
	if got.Count != want.Count || got.Epoch != want.Epoch || got.Info != want.Info || !reflect.DeepEqual(got.State, want.State) {
		t.Fatalf("golden v2 frame decoded to %+v", got)
	}
}

func TestDecodeSnapshotFrameRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshotFrame(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	nanEps := append([]byte(nil), base...)
	// epsilon sits at payload offset 8+8+4 = 20.
	copy(nanEps[headerLen+20:], []byte{0x7F, 0xF8, 0, 0, 0, 0, 0, 1})
	// A well-framed v2 payload too short for its fixed metadata exercises the
	// field-by-field truncation checks (the cases above fail frame-level
	// length validation instead).
	var shortMeta bytes.Buffer
	if err := writeFrame(&shortMeta, snapshotVersion, kindSnapshot, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"truncated metadata": base[:headerLen+10],
		"truncated state":    base[:len(base)-1],
		"length mismatch":    lengthened(base),
		"nan epsilon":        nanEps,
		"future version":     mutate(base, 4, 3),
		"short v2 metadata":  shortMeta.Bytes(),
	} {
		if _, err := DecodeSnapshotFrame(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
}

// Identity strings over the one-byte length field must be refused by the
// encoder, not silently truncated.
func TestEncodeSnapshotFrameRejectsOversizedIdentity(t *testing.T) {
	long := string(make([]byte, maxSnapshotMeta+1))
	var buf bytes.Buffer
	if err := EncodeSnapshotFrame(&buf, Snapshot{Info: Info{Digest: long}}); err == nil {
		t.Fatal("oversized digest accepted")
	}
	if err := EncodeSnapshotFrame(&buf, Snapshot{Info: Info{Mechanism: long}}); err == nil {
		t.Fatal("oversized mechanism name accepted")
	}
}
