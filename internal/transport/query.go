package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Query frames carry the query engine's request/response pair over the same
// "LDPF" framing as reports and snapshots.
//
// A version-1 query request payload (kind 3) is
//
//	nameLen   uint8, then nameLen bytes   (workload family, e.g. "Prefix")
//	digestLen uint8, then digestLen bytes (expected canonical workload
//	                                       digest; empty skips the check)
//	domain    uint32  big-endian          (0 = the server's own domain)
//	level     float64 big-endian IEEE-754 (CI level in (0,1); 0 = no CIs)
//	flags     uint8                       bit0 = want variance, bit1 = want CI
//
// A version-1 query result payload (kind 4) chunks the answer rows across as
// many frames as they need, each self-describing:
//
//	count     float64 big-endian (snapshot report count)
//	epoch     uint64  big-endian (snapshot epoch)
//	flags     uint8             bit0 = rows carry variance, bit1 = rows carry CI
//	totalRows uint32  big-endian (rows in the whole result)
//	rowStart  uint32  big-endian (index of this frame's first row)
//	rowCount  uint32  big-endian
//	rows      rowCount × (answer f64 [, variance f64 [, lo f64, hi f64]])
//
// so a reader folds rows in order without ever holding more than one frame,
// and a truncated stream is detected by totalRows never being reached.
const (
	kindQuery       = 3
	kindQueryResult = 4

	queryVersion = 1

	// MaxQueryPayload bounds one request frame: two short strings and a few
	// scalars.
	MaxQueryPayload = 1 << 12
	// MaxQueryResultPayload bounds one result frame; larger results span
	// frames (the response body is a frame stream).
	MaxQueryResultPayload = 1 << 20
	// MaxQueryDomain caps the domain a request may name, mirroring the wire
	// layer's dimension cap.
	MaxQueryDomain = 1 << 20
	// MaxQueryRows caps a result's declared total row count.
	MaxQueryRows = 1 << 31 // fits uint32 and int on 64-bit

	queryFlagVariance = 1 << 0
	queryFlagCI       = 1 << 1
)

// QueryRequest asks a serving shard (or a router fronting a fleet) to answer
// one workload over its current snapshot.
type QueryRequest struct {
	// Workload names the family (resolved server-side by name and domain).
	Workload string
	// Domain is the expected domain size; 0 accepts the server's own.
	Domain int
	// Digest, when set, is the canonical workload digest the client expects;
	// the server rejects the query if its resolved workload digests
	// differently — the same guard the snapshot path applies to mechanisms.
	Digest string
	// Level is the two-sided confidence level for CIs; required in (0,1)
	// when WantCI is set, 0 otherwise.
	Level float64
	// WantVariance asks for per-query closed-form variances.
	WantVariance bool
	// WantCI asks for confidence intervals at Level (implies variance
	// computation server-side).
	WantCI bool
}

// QueryRow is one streamed result row.
type QueryRow struct {
	Index     int
	Answer    float64
	Variance  float64 // present when the result declares variance
	Low, High float64 // present when the result declares CIs
}

// QueryResultInfo is the result stream's fixed header: the snapshot the
// answers were reconstructed from and what each row carries.
type QueryResultInfo struct {
	Count       float64
	Epoch       uint64
	TotalRows   int
	HasVariance bool
	HasCI       bool
}

// EncodeQueryFrame writes one query request frame.
func EncodeQueryFrame(w io.Writer, q QueryRequest) error {
	if len(q.Workload) == 0 || len(q.Workload) > 255 {
		return fmt.Errorf("transport: query workload name length %d outside 1..255", len(q.Workload))
	}
	if len(q.Digest) > 255 {
		return fmt.Errorf("transport: query digest length %d over 255", len(q.Digest))
	}
	if q.Domain < 0 || q.Domain > MaxQueryDomain {
		return fmt.Errorf("transport: query domain %d outside 0..%d", q.Domain, MaxQueryDomain)
	}
	if err := checkQueryLevel(q.Level, q.WantCI); err != nil {
		return err
	}
	var flags byte
	if q.WantVariance {
		flags |= queryFlagVariance
	}
	if q.WantCI {
		flags |= queryFlagCI
	}
	buf := make([]byte, 0, 2+len(q.Workload)+len(q.Digest)+4+8+1)
	buf = append(buf, byte(len(q.Workload)))
	buf = append(buf, q.Workload...)
	buf = append(buf, byte(len(q.Digest)))
	buf = append(buf, q.Digest...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(q.Domain))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(q.Level))
	buf = append(buf, flags)
	return writeFrame(w, queryVersion, kindQuery, buf)
}

// checkQueryLevel validates the CI level against the CI flag: a CI request
// needs a level strictly inside (0,1); without CIs the level must be 0.
func checkQueryLevel(level float64, wantCI bool) error {
	if wantCI {
		if math.IsNaN(level) || level <= 0 || level >= 1 {
			return fmt.Errorf("transport: query CI level %v outside (0, 1)", level)
		}
		return nil
	}
	if level != 0 {
		return fmt.Errorf("transport: query level %v set without requesting CIs", level)
	}
	return nil
}

// DecodeQueryFrame reads one query request frame, strictly bounds-checked:
// every length is validated against the remaining payload, the payload must
// be consumed exactly, and the decoded fields must satisfy the same
// invariants the encoder enforces.
func DecodeQueryFrame(r io.Reader) (QueryRequest, error) {
	payload, _, err := readFrame(r, kindQuery)
	if err != nil {
		return QueryRequest{}, err
	}
	var q QueryRequest
	buf := payload
	take := func(n int, what string) ([]byte, error) {
		if len(buf) < n {
			return nil, fmt.Errorf("transport: query frame truncated at its %s", what)
		}
		out := buf[:n]
		buf = buf[n:]
		return out, nil
	}
	for _, field := range []struct {
		what string
		dst  *string
	}{{"workload name", &q.Workload}, {"digest", &q.Digest}} {
		b, err := take(1, field.what+" length")
		if err != nil {
			return QueryRequest{}, err
		}
		if b, err = take(int(b[0]), field.what); err != nil {
			return QueryRequest{}, err
		}
		*field.dst = string(b)
	}
	if q.Workload == "" {
		return QueryRequest{}, errors.New("transport: query names no workload")
	}
	b, err := take(4, "domain")
	if err != nil {
		return QueryRequest{}, err
	}
	q.Domain = int(binary.BigEndian.Uint32(b))
	if q.Domain > MaxQueryDomain {
		return QueryRequest{}, fmt.Errorf("transport: query domain %d over the %d limit", q.Domain, MaxQueryDomain)
	}
	if b, err = take(8, "level"); err != nil {
		return QueryRequest{}, err
	}
	q.Level = math.Float64frombits(binary.BigEndian.Uint64(b))
	if b, err = take(1, "flags"); err != nil {
		return QueryRequest{}, err
	}
	flags := b[0]
	if flags&^(queryFlagVariance|queryFlagCI) != 0 {
		return QueryRequest{}, fmt.Errorf("transport: query has unknown flag bits %#x", flags)
	}
	q.WantVariance = flags&queryFlagVariance != 0
	q.WantCI = flags&queryFlagCI != 0
	if err := checkQueryLevel(q.Level, q.WantCI); err != nil {
		return QueryRequest{}, err
	}
	if len(buf) != 0 {
		return QueryRequest{}, fmt.Errorf("transport: %d trailing bytes after query frame", len(buf))
	}
	return q, nil
}

// queryRowWidth returns the encoded byte width of one row under the result
// flags.
func queryRowWidth(hasVar, hasCI bool) int {
	w := 8
	if hasVar {
		w += 8
	}
	if hasCI {
		w += 16
	}
	return w
}

// QueryResultWriter streams a query result as chunked frames: rows are
// buffered and shipped whenever the next row would overflow one frame's
// payload, so the writer never holds more than MaxQueryResultPayload bytes
// regardless of result size. Close flushes the final (possibly empty) frame;
// a zero-row result still emits one frame so the reader sees the header.
type QueryResultWriter struct {
	w        io.Writer
	info     QueryResultInfo
	buf      []byte
	metaLen  int
	rowStart int // result index of the first buffered row
	rows     int // buffered row count
	written  int // rows shipped in earlier frames
	flushed  bool
}

// NewQueryResultWriter prepares a streaming result with the given header.
func NewQueryResultWriter(w io.Writer, info QueryResultInfo) (*QueryResultWriter, error) {
	if info.TotalRows < 0 || int64(info.TotalRows) > MaxQueryRows {
		return nil, fmt.Errorf("transport: query result declares %d rows, limit %d", info.TotalRows, int64(MaxQueryRows))
	}
	qw := &QueryResultWriter{w: w, info: info}
	qw.buf = qw.appendMeta(make([]byte, 0, 4096), 0)
	qw.metaLen = len(qw.buf)
	return qw, nil
}

// appendMeta appends the per-frame header for a frame starting at rowStart.
func (qw *QueryResultWriter) appendMeta(buf []byte, rowStart int) []byte {
	var flags byte
	if qw.info.HasVariance {
		flags |= queryFlagVariance
	}
	if qw.info.HasCI {
		flags |= queryFlagCI
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(qw.info.Count))
	buf = binary.BigEndian.AppendUint64(buf, qw.info.Epoch)
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(qw.info.TotalRows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rowStart))
	buf = append(buf, 0, 0, 0, 0) // rowCount, patched at flush
	return buf
}

// WriteRow appends the next row (rows must arrive in result order).
func (qw *QueryResultWriter) WriteRow(row QueryRow) error {
	if qw.written+qw.rows >= qw.info.TotalRows {
		return fmt.Errorf("transport: query result overflows its declared %d rows", qw.info.TotalRows)
	}
	width := queryRowWidth(qw.info.HasVariance, qw.info.HasCI)
	if len(qw.buf)+width > MaxQueryResultPayload {
		if err := qw.flush(); err != nil {
			return err
		}
	}
	qw.buf = binary.BigEndian.AppendUint64(qw.buf, math.Float64bits(row.Answer))
	if qw.info.HasVariance {
		qw.buf = binary.BigEndian.AppendUint64(qw.buf, math.Float64bits(row.Variance))
	}
	if qw.info.HasCI {
		qw.buf = binary.BigEndian.AppendUint64(qw.buf, math.Float64bits(row.Low))
		qw.buf = binary.BigEndian.AppendUint64(qw.buf, math.Float64bits(row.High))
	}
	qw.rows++
	return nil
}

// flush ships the buffered frame and resets the buffer for the next chunk.
func (qw *QueryResultWriter) flush() error {
	binary.BigEndian.PutUint32(qw.buf[qw.metaLen-4:], uint32(qw.rows))
	if err := writeFrame(qw.w, queryVersion, kindQueryResult, qw.buf); err != nil {
		return err
	}
	qw.written += qw.rows
	qw.rowStart = qw.written
	qw.rows = 0
	qw.buf = qw.appendMeta(qw.buf[:0], qw.rowStart)
	qw.flushed = true
	return nil
}

// Close flushes the final frame and verifies the declared row count was
// delivered in full — a short result is a bug surfaced here, not silence.
func (qw *QueryResultWriter) Close() error {
	if qw.written+qw.rows != qw.info.TotalRows {
		return fmt.Errorf("transport: query result wrote %d of %d declared rows", qw.written+qw.rows, qw.info.TotalRows)
	}
	if qw.rows > 0 || !qw.flushed {
		return qw.flush()
	}
	return nil
}

// DecodeQueryResult reads a chunked query result stream, calling fn for each
// row in order until the stream completes, fn returns false, or an error.
// The returned info is the header of the first frame; every later frame must
// agree with it. A stream ending before totalRows rows is an error.
func DecodeQueryResult(r io.Reader, fn func(QueryRow) bool) (QueryResultInfo, error) {
	var info QueryResultInfo
	first := true
	seen := 0
	for {
		if !first && seen >= info.TotalRows {
			return info, nil
		}
		payload, _, err := readFrame(r, kindQueryResult)
		if err != nil {
			if err == ErrFrameEOF {
				if first {
					return info, errors.New("transport: empty query response")
				}
				return info, fmt.Errorf("transport: query result truncated after %d of %d rows", seen, info.TotalRows)
			}
			return info, err
		}
		frameInfo, rowStart, rows, err := decodeQueryResultFrame(payload, fn)
		if err != nil {
			return info, err
		}
		if first {
			info = frameInfo
			first = false
		} else if frameInfo != info {
			return info, errors.New("transport: query result frames disagree on their header")
		}
		if rowStart != seen {
			return info, fmt.Errorf("transport: query result frame starts at row %d, want %d", rowStart, seen)
		}
		seen += rows
		if seen > info.TotalRows {
			return info, fmt.Errorf("transport: query result carries %d rows, declared %d", seen, info.TotalRows)
		}
		if rows < 0 {
			// fn stopped the stream early; drain no further.
			return info, nil
		}
	}
}

// decodeQueryResultFrame decodes one result frame's payload, invoking fn per
// row. It returns rows = -1 when fn stopped the stream.
func decodeQueryResultFrame(payload []byte, fn func(QueryRow) bool) (QueryResultInfo, int, int, error) {
	var info QueryResultInfo
	buf := payload
	take := func(n int, what string) ([]byte, error) {
		if len(buf) < n {
			return nil, fmt.Errorf("transport: query result frame truncated at its %s", what)
		}
		out := buf[:n]
		buf = buf[n:]
		return out, nil
	}
	b, err := take(8, "count")
	if err != nil {
		return info, 0, 0, err
	}
	info.Count = math.Float64frombits(binary.BigEndian.Uint64(b))
	if math.IsNaN(info.Count) || math.IsInf(info.Count, 0) || info.Count < 0 {
		return info, 0, 0, fmt.Errorf("transport: query result count %v is not a non-negative finite number", info.Count)
	}
	if b, err = take(8, "epoch"); err != nil {
		return info, 0, 0, err
	}
	info.Epoch = binary.BigEndian.Uint64(b)
	if b, err = take(1, "flags"); err != nil {
		return info, 0, 0, err
	}
	flags := b[0]
	if flags&^(queryFlagVariance|queryFlagCI) != 0 {
		return info, 0, 0, fmt.Errorf("transport: query result has unknown flag bits %#x", flags)
	}
	info.HasVariance = flags&queryFlagVariance != 0
	info.HasCI = flags&queryFlagCI != 0
	if b, err = take(4, "total row count"); err != nil {
		return info, 0, 0, err
	}
	info.TotalRows = int(binary.BigEndian.Uint32(b))
	if b, err = take(4, "row start"); err != nil {
		return info, 0, 0, err
	}
	rowStart := int(binary.BigEndian.Uint32(b))
	if b, err = take(4, "row count"); err != nil {
		return info, 0, 0, err
	}
	rows := int(binary.BigEndian.Uint32(b))
	width := queryRowWidth(info.HasVariance, info.HasCI)
	if int64(rows)*int64(width) != int64(len(buf)) {
		return info, 0, 0, fmt.Errorf("transport: query result frame declares %d rows but carries %d payload bytes", rows, len(buf))
	}
	if rowStart+rows > info.TotalRows {
		return info, 0, 0, fmt.Errorf("transport: query result frame rows %d..%d exceed the declared total %d", rowStart, rowStart+rows, info.TotalRows)
	}
	for i := 0; i < rows; i++ {
		row := QueryRow{Index: rowStart + i}
		row.Answer = math.Float64frombits(binary.BigEndian.Uint64(buf))
		buf = buf[8:]
		if info.HasVariance {
			row.Variance = math.Float64frombits(binary.BigEndian.Uint64(buf))
			buf = buf[8:]
		}
		if info.HasCI {
			row.Low = math.Float64frombits(binary.BigEndian.Uint64(buf))
			buf = buf[8:]
			row.High = math.Float64frombits(binary.BigEndian.Uint64(buf))
			buf = buf[8:]
		}
		if !fn(row) {
			return info, rowStart, -1, nil
		}
	}
	return info, rowStart, rows, nil
}
