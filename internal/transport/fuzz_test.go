package transport

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/protocol"
)

// FuzzDecodeReportFrame feeds arbitrary bytes to the report-frame decoder.
// The decoder must return an error or a batch — never panic — and anything
// it accepts must re-encode and re-decode to the same batch (the frame
// format is unambiguous within a version). Over-allocation is covered too:
// a decoder that trusted a hostile length prefix would OOM the fuzz process.
func FuzzDecodeReportFrame(f *testing.F) {
	seed := func(reports []protocol.Report) {
		b, err := encodeReportsBytes(reports)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(nil)
	seed(sampleReportsF())
	seed([]protocol.Report{{Index: 1 << 30}, {Index: -1 << 30}})
	// A two-frame stream, so mutations explore frame boundaries.
	var multi bytes.Buffer
	if err := EncodeReports(&multi, []protocol.Report{{Index: 1}}); err != nil {
		f.Fatal(err)
	}
	if err := EncodeReports(&multi, []protocol.Report{{Seed: 7, Index: 2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(multi.Bytes())
	f.Add([]byte("LDPF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			reports, err := DecodeReports(r)
			if err != nil {
				return // ErrFrameEOF or a rejection — both fine, no panic is the point
			}
			reencoded, err := encodeReportsBytes(reports)
			if err != nil {
				t.Fatalf("decoded batch failed to re-encode: %v", err)
			}
			back, err := DecodeReports(bytes.NewReader(reencoded))
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			if len(back) != len(reports) {
				t.Fatalf("re-decode changed batch size: %d != %d", len(back), len(reports))
			}
			for i := range back {
				if !reflect.DeepEqual(back[i], reports[i]) {
					t.Fatalf("report %d changed across re-encode: %+v != %+v", i, back[i], reports[i])
				}
			}
		}
	})
}

// FuzzDecodeSnapshotFrame is the same contract for the snapshot decoder,
// which reads both frame versions: anything accepted must survive a v2
// re-encode bit-for-bit (v1 input re-encodes with zero epoch/identity, which
// is exactly what it declared).
func FuzzDecodeSnapshotFrame(f *testing.F) {
	var v1 bytes.Buffer
	if err := EncodeSnapshot(&v1, []float64{1, 2.5, -3}, 3); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	var v2 bytes.Buffer
	if err := EncodeSnapshotFrame(&v2, Snapshot{
		State: []float64{4, 0, 9}, Count: 13, Epoch: 7,
		Info: Info{Mechanism: "OLH", Domain: 3, Epsilon: 1.25, Digest: "deadbeefdeadbeef"},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshotFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeSnapshotFrame(&out, s); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		s2, err := DecodeSnapshotFrame(&out)
		if err != nil || s2.Count != s.Count || s2.Epoch != s.Epoch || s2.Info != s.Info || len(s2.State) != len(s.State) {
			t.Fatalf("snapshot changed across re-encode: %+v vs %+v (%v)", s2, s, err)
		}
		for i := range s.State {
			// Bit-level comparison: NaN state entries are legal payload and
			// must survive verbatim, and NaN != NaN under ==.
			if math.Float64bits(s2.State[i]) != math.Float64bits(s.State[i]) {
				t.Fatalf("state[%d] changed across re-encode", i)
			}
		}
	})
}

// FuzzDecodeQueryFrame is the same contract for the query-request decoder:
// arbitrary bytes must produce an error or a request — never a panic or an
// over-allocation — and any accepted request must survive a re-encode
// unchanged, since the decoder re-validates every invariant the encoder
// enforces (lengths, domain cap, flag bits, CI-level coupling).
func FuzzDecodeQueryFrame(f *testing.F) {
	seed := func(q QueryRequest) {
		var buf bytes.Buffer
		if err := EncodeQueryFrame(&buf, q); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(QueryRequest{Workload: "Histogram"})
	seed(QueryRequest{Workload: "Prefix", Domain: 256, Digest: "00f1e2d3c4b5a697", WantVariance: true})
	seed(QueryRequest{Workload: "AllRange", Domain: MaxQueryDomain, Level: 0.95, WantVariance: true, WantCI: true})
	f.Add([]byte("LDPF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQueryFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeQueryFrame(&out, q); err != nil {
			t.Fatalf("decoded query failed to re-encode: %v", err)
		}
		q2, err := DecodeQueryFrame(&out)
		if err != nil {
			t.Fatalf("re-encoded query failed to decode: %v", err)
		}
		// Bit-level level comparison: the CI level rides as raw IEEE-754 bits.
		if q2.Workload != q.Workload || q2.Digest != q.Digest || q2.Domain != q.Domain ||
			q2.WantVariance != q.WantVariance || q2.WantCI != q.WantCI ||
			math.Float64bits(q2.Level) != math.Float64bits(q.Level) {
			t.Fatalf("query changed across re-encode: %+v vs %+v", q2, q)
		}
	})
}

func sampleReportsF() []protocol.Report {
	return []protocol.Report{
		{Index: 3},
		{Seed: 0x1234, Index: 1},
		{Bits: []bool{true, false, true}},
	}
}
