package transport

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/protocol"
)

// FuzzDecodeReportFrame feeds arbitrary bytes to the report-frame decoder.
// The decoder must return an error or a batch — never panic — and anything
// it accepts must re-encode and re-decode to the same batch (the frame
// format is unambiguous within a version). Over-allocation is covered too:
// a decoder that trusted a hostile length prefix would OOM the fuzz process.
func FuzzDecodeReportFrame(f *testing.F) {
	seed := func(reports []protocol.Report) {
		b, err := encodeReportsBytes(reports)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(nil)
	seed(sampleReportsF())
	seed([]protocol.Report{{Index: 1 << 30}, {Index: -1 << 30}})
	// A two-frame stream, so mutations explore frame boundaries.
	var multi bytes.Buffer
	if err := EncodeReports(&multi, []protocol.Report{{Index: 1}}); err != nil {
		f.Fatal(err)
	}
	if err := EncodeReports(&multi, []protocol.Report{{Seed: 7, Index: 2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(multi.Bytes())
	f.Add([]byte("LDPF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			reports, err := DecodeReports(r)
			if err != nil {
				return // ErrFrameEOF or a rejection — both fine, no panic is the point
			}
			reencoded, err := encodeReportsBytes(reports)
			if err != nil {
				t.Fatalf("decoded batch failed to re-encode: %v", err)
			}
			back, err := DecodeReports(bytes.NewReader(reencoded))
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			if len(back) != len(reports) {
				t.Fatalf("re-decode changed batch size: %d != %d", len(back), len(reports))
			}
			for i := range back {
				if !reflect.DeepEqual(back[i], reports[i]) {
					t.Fatalf("report %d changed across re-encode: %+v != %+v", i, back[i], reports[i])
				}
			}
		}
	})
}

// FuzzDecodeSnapshotFrame is the same contract for the snapshot decoder.
func FuzzDecodeSnapshotFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, []float64{1, 2.5, -3}, 3); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		state, count, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeSnapshot(&out, state, count); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		state2, count2, err := DecodeSnapshot(&out)
		if err != nil || count2 != count || len(state2) != len(state) {
			t.Fatalf("snapshot changed across re-encode: %v %v %v", state2, count2, err)
		}
		for i := range state {
			// Bit-level comparison: NaN state entries are legal payload and
			// must survive verbatim, and NaN != NaN under ==.
			if math.Float64bits(state2[i]) != math.Float64bits(state[i]) {
				t.Fatalf("state[%d] changed across re-encode", i)
			}
		}
	})
}

func sampleReportsF() []protocol.Report {
	return []protocol.Report{
		{Index: 3},
		{Seed: 0x1234, Index: 1},
		{Bits: []bool{true, false, true}},
	}
}
