package transport

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleQuery() QueryRequest {
	return QueryRequest{
		Workload:     "Prefix",
		Domain:       256,
		Digest:       "00f1e2d3c4b5a697",
		Level:        0.95,
		WantVariance: true,
		WantCI:       true,
	}
}

func TestQueryFrameRoundTrip(t *testing.T) {
	for name, q := range map[string]QueryRequest{
		"full":         sampleQuery(),
		"answersOnly":  {Workload: "Histogram"},
		"variance":     {Workload: "AllRange", Domain: 64, WantVariance: true},
		"noDigest":     {Workload: "Parity", Level: 0.5, WantCI: true},
		"domainOnly":   {Workload: "WidthRange", Domain: MaxQueryDomain},
		"longWorkload": {Workload: strings.Repeat("w", 255), Digest: strings.Repeat("d", 255)},
	} {
		var buf bytes.Buffer
		if err := EncodeQueryFrame(&buf, q); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := DecodeQueryFrame(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != q {
			t.Fatalf("%s: round trip changed the request: %+v != %+v", name, got, q)
		}
	}
}

func TestQueryFrameEncodeRejects(t *testing.T) {
	for name, q := range map[string]QueryRequest{
		"emptyWorkload":   {},
		"longWorkload":    {Workload: strings.Repeat("w", 256)},
		"longDigest":      {Workload: "Prefix", Digest: strings.Repeat("d", 256)},
		"negativeDomain":  {Workload: "Prefix", Domain: -1},
		"hugeDomain":      {Workload: "Prefix", Domain: MaxQueryDomain + 1},
		"levelWithoutCI":  {Workload: "Prefix", Level: 0.95},
		"ciWithoutLevel":  {Workload: "Prefix", WantCI: true},
		"ciLevelOverOne":  {Workload: "Prefix", WantCI: true, Level: 1},
		"ciLevelNaN":      {Workload: "Prefix", WantCI: true, Level: math.NaN()},
		"ciLevelNegative": {Workload: "Prefix", WantCI: true, Level: -0.5},
	} {
		if err := EncodeQueryFrame(&bytes.Buffer{}, q); err == nil {
			t.Errorf("%s: encoder accepted %+v", name, q)
		}
	}
}

// Hostile frames: every mutation below must be refused by the strict decoder,
// never panic or silently misread.
func TestQueryFrameDecodeRejects(t *testing.T) {
	encode := func(q QueryRequest) []byte {
		var buf bytes.Buffer
		if err := EncodeQueryFrame(&buf, q); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	good := encode(sampleQuery())

	mutate := func(name string, fn func([]byte) []byte) {
		b := fn(append([]byte(nil), good...))
		if _, err := DecodeQueryFrame(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decoder accepted a hostile frame", name)
		}
	}
	mutate("truncatedPayload", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("trailingBytes", func(b []byte) []byte {
		// Grow the declared payload so extra bytes sit inside the frame.
		b = append(b, 0xAA, 0xBB)
		b[9] += 2 // payload length low byte (lengths here are < 254)
		return b
	})
	mutate("unknownFlags", func(b []byte) []byte {
		b[len(b)-1] |= 0x80
		return b
	})
	mutate("oversizedNameLength", func(b []byte) []byte {
		b[headerLen] = 0xFF // name length now runs past the payload
		return b
	})
	mutate("wrongKind", func(b []byte) []byte {
		b[5] = kindReports
		return b
	})

	// Level present without the CI flag, and CI flag with a zero level: the
	// decoder re-validates the invariants the encoder enforces.
	noCI := encode(QueryRequest{Workload: "Prefix", WantCI: true, Level: 0.9})
	noCI[len(noCI)-1] &^= queryFlagCI // clear CI but leave the level bits
	if _, err := DecodeQueryFrame(bytes.NewReader(noCI)); err == nil {
		t.Error("decoder accepted a level without the CI flag")
	}
	withCI := encode(QueryRequest{Workload: "Prefix"})
	withCI[len(withCI)-1] |= queryFlagCI // set CI over the zero level
	if _, err := DecodeQueryFrame(bytes.NewReader(withCI)); err == nil {
		t.Error("decoder accepted the CI flag with a zero level")
	}
}

// The request frame bytes are pinned: a query encoded by a past version of
// this library must keep decoding to the same request.
func TestQueryFrameGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeQueryFrame(&buf, sampleQuery()); err != nil {
		t.Fatal(err)
	}
	want := goldenFrame(t, "query_v1.golden", buf.Bytes())
	got, err := DecodeQueryFrame(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden query frame no longer decodes: %v", err)
	}
	if got != sampleQuery() {
		t.Fatalf("golden query frame decoded to %+v", got)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("encoder output drifted from the golden frame (bump the version if the format changed)")
	}
}

func sampleResultInfo(rows int) QueryResultInfo {
	return QueryResultInfo{Count: 1234.5, Epoch: 9, TotalRows: rows, HasVariance: true, HasCI: true}
}

func TestQueryResultRoundTrip(t *testing.T) {
	for name, info := range map[string]QueryResultInfo{
		"full":        sampleResultInfo(37),
		"answersOnly": {Count: 3, TotalRows: 5},
		"variance":    {Count: 10, Epoch: 2, TotalRows: 4, HasVariance: true},
		"empty":       {Count: 0, TotalRows: 0},
	} {
		var buf bytes.Buffer
		qw, err := NewQueryResultWriter(&buf, info)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := make([]QueryRow, info.TotalRows)
		for i := range want {
			want[i] = QueryRow{Index: i, Answer: float64(i) + 0.5}
			if info.HasVariance {
				want[i].Variance = float64(i) * 2
			}
			if info.HasCI {
				want[i].Low, want[i].High = float64(i)-1, float64(i)+1
			}
			if err := qw.WriteRow(want[i]); err != nil {
				t.Fatalf("%s row %d: %v", name, i, err)
			}
		}
		if err := qw.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got []QueryRow
		gotInfo, err := DecodeQueryResult(&buf, func(row QueryRow) bool {
			got = append(got, row)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gotInfo != info {
			t.Fatalf("%s: info changed: %+v != %+v", name, gotInfo, info)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows decoded, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}
}

// A result too large for one frame must chunk transparently: CI rows are
// 32 bytes, so 40k rows overflow the 1 MiB frame payload and span frames.
func TestQueryResultChunksAcrossFrames(t *testing.T) {
	const rows = 40000
	info := sampleResultInfo(rows)
	var buf bytes.Buffer
	qw, err := NewQueryResultWriter(&buf, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := qw.WriteRow(QueryRow{Index: i, Answer: float64(i), Variance: 1, Low: -1, High: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= headerLen+MaxQueryResultPayload {
		t.Fatalf("%d bytes fit one frame; the test no longer forces chunking", buf.Len())
	}
	next := 0
	gotInfo, err := DecodeQueryResult(&buf, func(row QueryRow) bool {
		if row.Index != next || row.Answer != float64(next) {
			t.Fatalf("row %d arrived as %+v", next, row)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != rows || gotInfo.TotalRows != rows {
		t.Fatalf("decoded %d of %d rows (info %+v)", next, rows, gotInfo)
	}
}

func TestQueryResultEarlyStop(t *testing.T) {
	info := QueryResultInfo{Count: 5, TotalRows: 10}
	var buf bytes.Buffer
	qw, err := NewQueryResultWriter(&buf, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := qw.WriteRow(QueryRow{Index: i, Answer: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qw.Close(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	if _, err := DecodeQueryResult(&buf, func(QueryRow) bool {
		seen++
		return seen < 3
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("reader did not stop on false: %d rows", seen)
	}
}

// The writer enforces its declared row count both ways.
func TestQueryResultWriterRowAccounting(t *testing.T) {
	var buf bytes.Buffer
	qw, err := NewQueryResultWriter(&buf, QueryResultInfo{TotalRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := qw.Close(); err == nil {
		t.Error("Close accepted a short result")
	}
	qw, err = NewQueryResultWriter(&buf, QueryResultInfo{TotalRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := qw.WriteRow(QueryRow{}); err != nil {
		t.Fatal(err)
	}
	if err := qw.WriteRow(QueryRow{}); err == nil {
		t.Error("WriteRow accepted a row past the declared total")
	}
}

// A stream that ends before delivering totalRows is an explicit truncation
// error, and a first frame claiming more payload rows than bytes is refused.
func TestQueryResultDecodeRejects(t *testing.T) {
	info := QueryResultInfo{Count: 2, TotalRows: 6, HasVariance: true}
	var buf bytes.Buffer
	qw, err := NewQueryResultWriter(&buf, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := qw.WriteRow(QueryRow{Index: i, Answer: 1, Variance: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := DecodeQueryResult(bytes.NewReader(full[:len(full)-20]), func(QueryRow) bool { return true }); err == nil {
		t.Error("decoder accepted a truncated result stream")
	}
	if _, err := DecodeQueryResult(bytes.NewReader(nil), func(QueryRow) bool { return true }); err == nil {
		t.Error("decoder accepted an empty response")
	}

	// Corrupt the declared row count so rows×width disagrees with the payload.
	bad := append([]byte(nil), full...)
	bad[headerLen+8+8+1+4+4+3]++ // rowCount low byte
	if _, err := DecodeQueryResult(bytes.NewReader(bad), func(QueryRow) bool { return true }); err == nil {
		t.Error("decoder accepted a frame whose row count disagrees with its payload")
	}
}
