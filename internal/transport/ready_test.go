package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/protocol"
)

// The liveness/readiness split, pinned: /healthz answers 200 for as long as
// the process serves at all, /readyz flips to 503 the moment the shard
// should stop receiving traffic — recovering (SetReady false) or draining —
// and ingest refuses with a retryable 503 instead of absorbing into a
// shutdown.
func TestReadinessSplitsFromLiveness(t *testing.T) {
	backend := &memBackend{}
	s, err := NewServer(backend, Info{Mechanism: "TEST", Domain: 8, Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c, err := NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Fresh server: alive and ready.
	ready, reason, err := c.Readyz(ctx)
	if err != nil || !ready || reason != "" {
		t.Fatalf("fresh readyz = (%v, %q, %v), want ready", ready, reason, err)
	}
	h, err := c.Healthz(ctx)
	if err != nil || !h.Ready || h.Status != "ok" {
		t.Fatalf("fresh healthz = %+v (err %v)", h, err)
	}

	// A transient not-ready phase (a shard mid-recovery): alive, gated out.
	s.SetReady(false, "recovering")
	ready, reason, err = c.Readyz(ctx)
	if err != nil || ready || reason != "recovering" {
		t.Fatalf("recovering readyz = (%v, %q, %v), want (false, recovering)", ready, reason, err)
	}
	if h, err = c.Healthz(ctx); err != nil || h.Ready || h.Reason != "recovering" {
		t.Fatalf("recovering healthz = %+v (err %v): liveness must stay 200 with ready=false", h, err)
	}
	if _, err := c.PostReports(ctx, []protocol.Report{{Index: 1}}); err == nil {
		t.Fatal("not-ready server accepted ingest")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable || !se.Temporary() {
			t.Fatalf("not-ready ingest error = %v, want a retryable 503", err)
		}
	}
	if backend.Count() != 0 {
		t.Fatalf("backend absorbed %v reports while not ready", backend.Count())
	}

	// Recovery finishes: ready again, ingest flows.
	s.SetReady(true, "")
	if ready, _, _ = c.Readyz(ctx); !ready {
		t.Fatal("readyz still false after SetReady(true)")
	}
	if _, err := c.PostReports(ctx, []protocol.Report{{Index: 1}}); err != nil {
		t.Fatalf("ready server refused ingest: %v", err)
	}

	// Drain: one-way not-ready, reads stay alive so the fan-in tier can pull
	// the final snapshot, and SetReady(true) cannot un-drain.
	s.Drain()
	s.SetReady(true, "")
	ready, reason, err = c.Readyz(ctx)
	if err != nil || ready || reason != "draining" {
		t.Fatalf("draining readyz = (%v, %q, %v), want (false, draining)", ready, reason, err)
	}
	if _, err := c.PostReports(ctx, []protocol.Report{{Index: 2}}); err == nil {
		t.Fatal("draining server accepted ingest")
	}
	if h, err = c.Healthz(ctx); err != nil || h.Ready || h.Status != "draining" {
		t.Fatalf("draining healthz = %+v (err %v)", h, err)
	}
	if snap, err := c.Snap(ctx); err != nil || snap.Count != 1 {
		t.Fatalf("draining snapshot = (%+v, %v): reads must survive the drain", snap, err)
	}
	if backend.Count() != 1 {
		t.Fatalf("backend count %v after drain-refused ingest, want 1", backend.Count())
	}
}

// A client against a server that predates /readyz must fall back to the
// liveness probe instead of declaring the shard not ready.
func TestReadyzFallsBackToHealthzOn404(t *testing.T) {
	backend := &memBackend{}
	s, err := NewServer(backend, Info{})
	if err != nil {
		t.Fatal(err)
	}
	// An old server: same handlers minus /readyz.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	c, err := NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	ready, reason, err := c.Readyz(context.Background())
	if err != nil || !ready || reason != "" {
		t.Fatalf("readyz against a pre-readiness server = (%v, %q, %v), want ready-while-alive", ready, reason, err)
	}
}

// The request-body bound: a POST past MaxRequestBytes fails 413 — a
// definitive status carrying the accepted count — instead of streaming
// without limit, and the frames that fit were applied.
func TestReportsBodyBounded(t *testing.T) {
	backend := &memBackend{}
	s, err := NewServer(backend, Info{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetMaxRequestBytes(64) // a few reports fit, a big batch does not
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c, err := NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	small := []protocol.Report{{Index: 1}, {Index: 2}}
	if _, err := c.PostReports(ctx, small); err != nil {
		t.Fatalf("small batch refused: %v", err)
	}

	big := make([]protocol.Report, 4096)
	for i := range big {
		big[i] = protocol.Report{Index: i % 8}
	}
	_, err = c.PostReports(ctx, big)
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body error = %v, want 413", err)
	}
	if se.Temporary() {
		t.Fatal("413 classified retryable — the same request would just fail again")
	}
}
