// Package transport carries the streaming protocol's Report batches and
// collector snapshots across a process boundary: a compact length-prefixed
// binary framing (this file) bound to HTTP (server.go, client.go). The
// framing is mechanism-agnostic — it moves protocol.Report values verbatim —
// so one server binary fronts any Randomizer/Aggregator pair.
//
// # Frame format
//
// Every frame is
//
//	magic   [4]byte  "LDPF"
//	version uint8    (reports: 1; snapshots: 1 or 2)
//	kind    uint8    (1 = report batch, 2 = snapshot)
//	length  uint32   big-endian payload byte count
//	payload [length]byte
//
// A report-batch payload is
//
//	count uint32 big-endian, then count reports, each:
//	  flags uint8          bit0 = has Seed, bit1 = has Bits
//	  index uvarint        zigzag-encoded Report.Index
//	  seed  uvarint        only when bit0 is set
//	  nbits uvarint        only when bit1 is set
//	  bits  ⌈nbits/8⌉ bytes LSB-first packed booleans
//
// A version-1 snapshot payload is the bare accumulator:
//
//	count    float64 big-endian IEEE-754 bits
//	stateLen uint32  big-endian
//	state    stateLen × float64 big-endian IEEE-754 bits
//
// A version-2 snapshot payload prefixes the state with the snapshot's
// identity, so a fan-in reader can reject a mismatched shard before touching
// a single state entry:
//
//	count     float64 big-endian IEEE-754 bits
//	epoch     uint64  big-endian (monotonic per producing collector)
//	domain    uint32  big-endian
//	epsilon   float64 big-endian IEEE-754 bits (0 = undeclared)
//	mechLen   uint8, then mechLen bytes   (mechanism name, may be empty)
//	digestLen uint8, then digestLen bytes (mechanism digest, may be empty)
//	stateLen  uint32  big-endian
//	state     stateLen × float64 big-endian IEEE-754 bits
//
// Writers emit version 2; readers accept both, so a new ldpfed can merge
// snapshots from an old ldpserve (the metadata simply comes back empty).
//
// Decoders are strict: every length is bounds-checked against both a hard
// limit and the remaining payload before any allocation, payloads must be
// consumed exactly (trailing bytes are an error), and malformed input always
// returns an error — never a panic and never an attacker-sized allocation.
// The fuzz targets in fuzz_test.go enforce this.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/protocol"
)

const (
	frameMagic = "LDPF"
	// frameVersion is the version every report frame carries; snapshot frames
	// are written at snapshotVersion and read at either.
	frameVersion    = 1
	snapshotVersion = 2

	kindReports  = 1
	kindSnapshot = 2

	// maxSnapshotMeta bounds the v2 identity strings (mechanism name and
	// digest). One byte of length each on the wire; the cap exists so the
	// layout cannot grow past it silently.
	maxSnapshotMeta = 255

	headerLen = 4 + 1 + 1 + 4

	// MaxReportsPayload bounds one report-batch frame. Larger ingest simply
	// spans several frames (the HTTP body is a frame stream), so the cap
	// costs nothing while keeping a hostile length prefix from reserving
	// gigabytes.
	MaxReportsPayload = 8 << 20
	// MaxSnapshotPayload bounds one snapshot frame; it admits accumulators
	// up to 32Mi float64 entries — far beyond any practical StateLen.
	MaxSnapshotPayload = 256 << 20
	// MaxBatchReports bounds the declared report count of one frame.
	MaxBatchReports = 1 << 17
	// MaxReportBits bounds one report's unary-encoding width.
	MaxReportBits = 1 << 21
)

// ErrFrameEOF reports a clean end of a frame stream: the reader was
// exhausted exactly at a frame boundary.
var ErrFrameEOF = errors.New("transport: end of frame stream")

func payloadLimit(kind byte) int {
	switch kind {
	case kindSnapshot:
		return MaxSnapshotPayload
	case kindQuery:
		return MaxQueryPayload
	case kindQueryResult:
		return MaxQueryResultPayload
	}
	return MaxReportsPayload
}

// writeFrame emits one complete frame at the given format version.
func writeFrame(w io.Writer, version, kind byte, payload []byte) error {
	if len(payload) > payloadLimit(kind) {
		return fmt.Errorf("transport: %d-byte payload exceeds the %d-byte frame limit", len(payload), payloadLimit(kind))
	}
	var hdr [headerLen]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = version
	hdr[5] = kind
	binary.BigEndian.PutUint32(hdr[6:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// maxVersionOf returns the newest frame version readable for a kind. Report
// frames are still version 1; snapshot frames read 1 (bare accumulator) and
// 2 (identity-prefixed).
func maxVersionOf(kind byte) byte {
	switch kind {
	case kindSnapshot:
		return snapshotVersion
	case kindQuery, kindQueryResult:
		return queryVersion
	}
	return frameVersion
}

// readFrame reads one frame of the wanted kind and returns its payload
// together with the version byte the frame declared (the caller dispatches
// the payload layout on it). A reader exhausted exactly at a frame boundary
// returns ErrFrameEOF, so callers can loop over a stream.
func readFrame(r io.Reader, wantKind byte) ([]byte, byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, ErrFrameEOF
		}
		return nil, 0, fmt.Errorf("transport: truncated frame header: %w", err)
	}
	if string(hdr[:4]) != frameMagic {
		return nil, 0, fmt.Errorf("transport: bad frame magic %q", hdr[:4])
	}
	if hdr[4] < 1 || hdr[4] > maxVersionOf(wantKind) {
		return nil, 0, fmt.Errorf("transport: unsupported frame version %d (this library reads versions 1..%d)", hdr[4], maxVersionOf(wantKind))
	}
	if hdr[5] != wantKind {
		return nil, 0, fmt.Errorf("transport: frame kind %d, want %d", hdr[5], wantKind)
	}
	n := binary.BigEndian.Uint32(hdr[6:])
	if int64(n) > int64(payloadLimit(wantKind)) {
		return nil, 0, fmt.Errorf("transport: %d-byte payload exceeds the %d-byte frame limit", n, payloadLimit(wantKind))
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("transport: truncated frame payload: %w", err)
	}
	return payload, hdr[4], nil
}

const (
	flagSeed = 1 << 0
	flagBits = 1 << 1
)

// appendReport serializes one report. The pointer parameter and the
// index-only fast path matter: this is the per-report inner loop of the
// durable WAL's ingest-path encoder.
func appendReport(buf []byte, r *protocol.Report) []byte {
	idx := int64(r.Index)
	zig := uint64(idx)<<1 ^ uint64(idx>>63)
	if r.Seed == 0 && r.Bits == nil {
		// Index-only report (strategy mechanisms): flags byte + varint.
		if zig < 0x80 {
			return append(buf, 0, byte(zig))
		}
		return binary.AppendUvarint(append(buf, 0), zig)
	}
	var flags byte
	if r.Seed != 0 {
		flags |= flagSeed
	}
	if r.Bits != nil {
		flags |= flagBits
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, zig)
	if flags&flagSeed != 0 {
		buf = binary.AppendUvarint(buf, r.Seed)
	}
	if flags&flagBits != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(r.Bits)))
		var acc byte
		for i, b := range r.Bits {
			if b {
				acc |= 1 << (i & 7)
			}
			if i&7 == 7 {
				buf = append(buf, acc)
				acc = 0
			}
		}
		if len(r.Bits)&7 != 0 {
			buf = append(buf, acc)
		}
	}
	return buf
}

// AppendReportsFrame appends one complete report-batch frame to buf and
// returns the extended slice — the allocation-free form of EncodeReports for
// callers that embed frames into their own buffers (the durable WAL's record
// encoder is the motivating one: it pools buffers on a hot ingest path). The
// batch must respect the frame limits; on error buf is returned unchanged.
func AppendReportsFrame(buf []byte, reports []protocol.Report) ([]byte, error) {
	if len(reports) > MaxBatchReports {
		return buf, fmt.Errorf("transport: %d reports exceed the %d-report frame limit; split the batch", len(reports), MaxBatchReports)
	}
	start := len(buf)
	out := append(buf, frameMagic...)
	out = append(out, frameVersion, kindReports)
	out = append(out, 0, 0, 0, 0) // payload length, patched below
	payloadStart := len(out)
	out = binary.BigEndian.AppendUint32(out, uint32(len(reports)))
	for i := range reports {
		r := &reports[i]
		if len(r.Bits) > MaxReportBits {
			return buf, fmt.Errorf("transport: report %d carries %d bits, over the %d-bit frame limit", i, len(r.Bits), MaxReportBits)
		}
		out = appendReport(out, r)
	}
	plen := len(out) - payloadStart
	if plen > MaxReportsPayload {
		return buf, fmt.Errorf("transport: %d-byte payload exceeds the %d-byte frame limit", plen, MaxReportsPayload)
	}
	binary.BigEndian.PutUint32(out[start+6:], uint32(plen))
	return out, nil
}

// EncodeReports writes one report-batch frame. The batch must respect the
// frame limits (report count, per-report bit width, total payload bytes);
// EncodeReportsChunked splits arbitrarily large batches instead of erroring.
func EncodeReports(w io.Writer, reports []protocol.Report) error {
	buf, err := AppendReportsFrame(make([]byte, 0, headerLen+4+8*len(reports)), reports)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// EncodeReportsChunked writes a batch as one or more frames, cutting a new
// frame whenever the next report would push the payload over the frame
// limits — the encoder-side mirror of the decoder's caps, so any batch of
// individually-encodable reports (≤ MaxReportBits bits each) ships,
// regardless of count or unary width. An empty batch writes one empty frame.
// Atomicity is per frame: a receiver applies each chunk independently.
func EncodeReportsChunked(w io.Writer, reports []protocol.Report) error {
	buf := make([]byte, 4, 4096)
	count := 0
	flush := func() error {
		binary.BigEndian.PutUint32(buf, uint32(count))
		if err := writeFrame(w, frameVersion, kindReports, buf); err != nil {
			return err
		}
		buf, count = buf[:4], 0
		return nil
	}
	for i := range reports {
		r := &reports[i]
		if len(r.Bits) > MaxReportBits {
			return fmt.Errorf("transport: report %d carries %d bits, over the %d-bit frame limit", i, len(r.Bits), MaxReportBits)
		}
		mark := len(buf)
		buf = appendReport(buf, r)
		if len(buf) > MaxReportsPayload && count > 0 {
			// Ship the frame without the overflowing report, then restart
			// the new frame with it.
			over := append([]byte(nil), buf[mark:]...)
			buf = buf[:mark]
			if err := flush(); err != nil {
				return err
			}
			buf = append(buf, over...)
		}
		count++
		if count == MaxBatchReports {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if count > 0 || len(reports) == 0 {
		return flush()
	}
	return nil
}

// decodeUvarint reads one uvarint from buf, rejecting truncation and values
// over 64 bits.
func decodeUvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, errors.New("transport: bad varint")
	}
	return v, n, nil
}

// DecodeReports reads one report-batch frame. A stream exhausted exactly at a
// frame boundary returns (nil, ErrFrameEOF). Allocation is proportional to
// the bytes actually present, never to a declared length alone.
func DecodeReports(r io.Reader) ([]protocol.Report, error) {
	payload, _, err := readFrame(r, kindReports)
	if err != nil {
		return nil, err
	}
	if len(payload) < 4 {
		return nil, errors.New("transport: report frame shorter than its count field")
	}
	count := binary.BigEndian.Uint32(payload)
	if count > MaxBatchReports {
		return nil, fmt.Errorf("transport: declared report count %d exceeds the %d-report frame limit", count, MaxBatchReports)
	}
	// Each report occupies at least two bytes (flags + index), so a count
	// that could not fit in the payload is rejected before any allocation.
	buf := payload[4:]
	if uint64(count)*2 > uint64(len(buf)) {
		return nil, fmt.Errorf("transport: declared report count %d does not fit a %d-byte payload", count, len(buf))
	}
	reports := make([]protocol.Report, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf) == 0 {
			return nil, fmt.Errorf("transport: frame truncated at report %d of %d", i, count)
		}
		flags := buf[0]
		if flags&^(flagSeed|flagBits) != 0 {
			return nil, fmt.Errorf("transport: report %d has unknown flag bits %#x", i, flags)
		}
		buf = buf[1:]
		var rep protocol.Report
		uidx, n, err := decodeUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("transport: report %d index: %w", i, err)
		}
		buf = buf[n:]
		rep.Index = int(int64(uidx>>1) ^ -int64(uidx&1))
		if flags&flagSeed != 0 {
			rep.Seed, n, err = decodeUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("transport: report %d seed: %w", i, err)
			}
			buf = buf[n:]
		}
		if flags&flagBits != 0 {
			nbits, n, err := decodeUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("transport: report %d bit count: %w", i, err)
			}
			buf = buf[n:]
			if nbits > MaxReportBits {
				return nil, fmt.Errorf("transport: report %d declares %d bits, limit %d", i, nbits, MaxReportBits)
			}
			nbytes := int((nbits + 7) / 8)
			if nbytes > len(buf) {
				return nil, fmt.Errorf("transport: report %d declares %d bits but only %d payload bytes remain", i, nbits, len(buf))
			}
			rep.Bits = make([]bool, nbits)
			for j := range rep.Bits {
				rep.Bits[j] = buf[j>>3]&(1<<(j&7)) != 0
			}
			// Spare bits in the final byte must be zero, so every batch has
			// exactly one encoding.
			if nbits&7 != 0 && buf[nbytes-1]>>(nbits&7) != 0 {
				return nil, fmt.Errorf("transport: report %d has nonzero padding bits", i)
			}
			buf = buf[nbytes:]
		}
		reports = append(reports, rep)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after %d reports", len(buf), count)
	}
	return reports, nil
}

// Snapshot is one framed collector snapshot: the merged accumulator, the
// report count it reflects, the producing collector's monotonic snapshot
// epoch, and the mechanism identity it was aggregated under. Epoch and Info
// are zero when the frame was written by a version-1 producer.
type Snapshot struct {
	State []float64
	Count float64
	Epoch uint64
	Info  Info
}

// EncodeSnapshot writes one version-1 snapshot frame (bare accumulator, no
// identity). Current producers write EncodeSnapshotFrame; this writer is kept
// so compatibility with version-1 readers — and the golden files pinning the
// v1 layout — can be exercised.
func EncodeSnapshot(w io.Writer, state []float64, count float64) error {
	if 12+8*len(state) > MaxSnapshotPayload {
		return fmt.Errorf("transport: %d-entry state exceeds the snapshot frame limit", len(state))
	}
	buf := make([]byte, 12+8*len(state))
	binary.BigEndian.PutUint64(buf, math.Float64bits(count))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(state)))
	for i, v := range state {
		binary.BigEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return writeFrame(w, 1, kindSnapshot, buf)
}

// snapshotFrameError reports why a snapshot cannot be framed (identity
// strings over the one-byte length fields, a domain outside uint32, or a
// state over the payload cap) — checked before any byte is written, so a
// caller that has not committed its response yet can still fail cleanly.
func snapshotFrameError(s Snapshot) error {
	if len(s.Info.Mechanism) > maxSnapshotMeta || len(s.Info.Digest) > maxSnapshotMeta {
		return fmt.Errorf("transport: snapshot identity strings exceed %d bytes", maxSnapshotMeta)
	}
	if s.Info.Domain < 0 || int64(s.Info.Domain) > math.MaxUint32 {
		return fmt.Errorf("transport: snapshot domain %d does not fit the frame", s.Info.Domain)
	}
	meta := 8 + 8 + 4 + 8 + 1 + len(s.Info.Mechanism) + 1 + len(s.Info.Digest) + 4
	if meta+8*len(s.State) > MaxSnapshotPayload {
		return fmt.Errorf("transport: %d-entry state exceeds the snapshot frame limit", len(s.State))
	}
	return nil
}

// EncodeSnapshotFrame writes one version-2 snapshot frame carrying the full
// snapshot: identity and epoch first, state last, so a reader can reject a
// mismatched shard from the fixed-size prefix alone.
func EncodeSnapshotFrame(w io.Writer, s Snapshot) error {
	if err := snapshotFrameError(s); err != nil {
		return err
	}
	meta := 8 + 8 + 4 + 8 + 1 + len(s.Info.Mechanism) + 1 + len(s.Info.Digest) + 4
	buf := make([]byte, 0, meta+8*len(s.State))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Count))
	buf = binary.BigEndian.AppendUint64(buf, s.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.Info.Domain))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Info.Epsilon))
	buf = append(buf, byte(len(s.Info.Mechanism)))
	buf = append(buf, s.Info.Mechanism...)
	buf = append(buf, byte(len(s.Info.Digest)))
	buf = append(buf, s.Info.Digest...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.State)))
	for _, v := range s.State {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return writeFrame(w, snapshotVersion, kindSnapshot, buf)
}

// snapshotChunkFloats is how many state entries the streaming snapshot codec
// moves per write/read — 32 KiB of wire bytes, small enough to live on one
// buffer regardless of accumulator size.
const snapshotChunkFloats = 4096

// EncodeSnapshotFrameStream writes the identical bytes EncodeSnapshotFrame
// would, but streams the state through a fixed-size chunk instead of
// materializing the whole payload — the writer for checkpoint files whose
// accumulators are far larger than any sensible single allocation.
func EncodeSnapshotFrameStream(w io.Writer, s Snapshot) error {
	if err := snapshotFrameError(s); err != nil {
		return err
	}
	meta := 8 + 8 + 4 + 8 + 1 + len(s.Info.Mechanism) + 1 + len(s.Info.Digest) + 4
	var hdr [headerLen]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = snapshotVersion
	hdr[5] = kindSnapshot
	binary.BigEndian.PutUint32(hdr[6:], uint32(meta+8*len(s.State)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 8*snapshotChunkFloats)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Count))
	buf = binary.BigEndian.AppendUint64(buf, s.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.Info.Domain))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Info.Epsilon))
	buf = append(buf, byte(len(s.Info.Mechanism)))
	buf = append(buf, s.Info.Mechanism...)
	buf = append(buf, byte(len(s.Info.Digest)))
	buf = append(buf, s.Info.Digest...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.State)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for off := 0; off < len(s.State); off += snapshotChunkFloats {
		end := off + snapshotChunkFloats
		if end > len(s.State) {
			end = len(s.State)
		}
		buf = buf[:0]
		for _, v := range s.State[off:end] {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotFrameLen returns the exact byte length EncodeSnapshotFrame(Stream)
// produces for s, header included — what a streaming checkpoint writer needs
// to frame its payload before a single state entry moves.
func SnapshotFrameLen(s Snapshot) (int, error) {
	if err := snapshotFrameError(s); err != nil {
		return 0, err
	}
	meta := 8 + 8 + 4 + 8 + 1 + len(s.Info.Mechanism) + 1 + len(s.Info.Digest) + 4
	return headerLen + meta + 8*len(s.State), nil
}

// DecodeSnapshotFrameStream reads one snapshot frame of either version
// directly from r, converting the state chunk by chunk — unlike
// DecodeSnapshotFrame it never holds a second whole-state byte buffer. The
// validation is identical; the two are equivalence-tested.
func DecodeSnapshotFrameStream(r io.Reader) (Snapshot, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Snapshot{}, errors.New("transport: empty snapshot response")
		}
		return Snapshot{}, fmt.Errorf("transport: truncated frame header: %w", err)
	}
	if string(hdr[:4]) != frameMagic {
		return Snapshot{}, fmt.Errorf("transport: bad frame magic %q", hdr[:4])
	}
	version := hdr[4]
	if version < 1 || version > snapshotVersion {
		return Snapshot{}, fmt.Errorf("transport: unsupported frame version %d (this library reads versions 1..%d)", version, snapshotVersion)
	}
	if hdr[5] != kindSnapshot {
		return Snapshot{}, fmt.Errorf("transport: frame kind %d, want %d", hdr[5], kindSnapshot)
	}
	plen := binary.BigEndian.Uint32(hdr[6:])
	if int64(plen) > int64(MaxSnapshotPayload) {
		return Snapshot{}, fmt.Errorf("transport: %d-byte payload exceeds the %d-byte frame limit", plen, MaxSnapshotPayload)
	}
	lr := &io.LimitedReader{R: r, N: int64(plen)}
	var s Snapshot
	scratch := make([]byte, 8*snapshotChunkFloats)
	take := func(n int, what string) ([]byte, error) {
		if _, err := io.ReadFull(lr, scratch[:n]); err != nil {
			return nil, fmt.Errorf("transport: snapshot frame truncated at its %s", what)
		}
		return scratch[:n], nil
	}
	b, err := take(8, "count")
	if err != nil {
		return Snapshot{}, err
	}
	s.Count = math.Float64frombits(binary.BigEndian.Uint64(b))
	if version >= snapshotVersion {
		if b, err = take(8, "epoch"); err != nil {
			return Snapshot{}, err
		}
		s.Epoch = binary.BigEndian.Uint64(b)
		if b, err = take(4, "domain"); err != nil {
			return Snapshot{}, err
		}
		s.Info.Domain = int(binary.BigEndian.Uint32(b))
		if b, err = take(8, "epsilon"); err != nil {
			return Snapshot{}, err
		}
		s.Info.Epsilon = math.Float64frombits(binary.BigEndian.Uint64(b))
		if math.IsNaN(s.Info.Epsilon) || math.IsInf(s.Info.Epsilon, 0) || s.Info.Epsilon < 0 {
			return Snapshot{}, fmt.Errorf("transport: snapshot ε %v is not a non-negative finite number", s.Info.Epsilon)
		}
		for _, field := range []struct {
			what string
			dst  *string
		}{{"mechanism", &s.Info.Mechanism}, {"digest", &s.Info.Digest}} {
			if b, err = take(1, field.what+" length"); err != nil {
				return Snapshot{}, err
			}
			if b, err = take(int(b[0]), field.what); err != nil {
				return Snapshot{}, err
			}
			*field.dst = string(b)
		}
	}
	if b, err = take(4, "state length"); err != nil {
		return Snapshot{}, err
	}
	stateLen := binary.BigEndian.Uint32(b)
	if lr.N != 8*int64(stateLen) {
		return Snapshot{}, fmt.Errorf("transport: snapshot declares %d state entries but carries %d payload bytes", stateLen, lr.N)
	}
	if math.IsNaN(s.Count) || math.IsInf(s.Count, 0) || s.Count < 0 {
		return Snapshot{}, fmt.Errorf("transport: snapshot count %v is not a non-negative finite number", s.Count)
	}
	s.State = make([]float64, stateLen)
	for off := 0; off < len(s.State); off += snapshotChunkFloats {
		end := off + snapshotChunkFloats
		if end > len(s.State) {
			end = len(s.State)
		}
		chunk := scratch[:8*(end-off)]
		if _, err := io.ReadFull(lr, chunk); err != nil {
			return Snapshot{}, fmt.Errorf("transport: snapshot frame truncated in its state: %w", err)
		}
		for i := off; i < end; i++ {
			s.State[i] = math.Float64frombits(binary.BigEndian.Uint64(chunk[8*(i-off):]))
		}
	}
	return s, nil
}

// DecodeSnapshotFrame reads one snapshot frame of either version. Version-1
// frames decode with zero Epoch and Info — the state and count are all they
// carry.
func DecodeSnapshotFrame(r io.Reader) (Snapshot, error) {
	payload, version, err := readFrame(r, kindSnapshot)
	if err != nil {
		if err == ErrFrameEOF {
			err = errors.New("transport: empty snapshot response")
		}
		return Snapshot{}, err
	}
	var s Snapshot
	buf := payload
	take := func(n int, what string) ([]byte, error) {
		if len(buf) < n {
			return nil, fmt.Errorf("transport: snapshot frame truncated at its %s", what)
		}
		out := buf[:n]
		buf = buf[n:]
		return out, nil
	}
	b, err := take(8, "count")
	if err != nil {
		return Snapshot{}, err
	}
	s.Count = math.Float64frombits(binary.BigEndian.Uint64(b))
	if version >= snapshotVersion {
		if b, err = take(8, "epoch"); err != nil {
			return Snapshot{}, err
		}
		s.Epoch = binary.BigEndian.Uint64(b)
		if b, err = take(4, "domain"); err != nil {
			return Snapshot{}, err
		}
		s.Info.Domain = int(binary.BigEndian.Uint32(b))
		if b, err = take(8, "epsilon"); err != nil {
			return Snapshot{}, err
		}
		s.Info.Epsilon = math.Float64frombits(binary.BigEndian.Uint64(b))
		if math.IsNaN(s.Info.Epsilon) || math.IsInf(s.Info.Epsilon, 0) || s.Info.Epsilon < 0 {
			return Snapshot{}, fmt.Errorf("transport: snapshot ε %v is not a non-negative finite number", s.Info.Epsilon)
		}
		for _, field := range []struct {
			what string
			dst  *string
		}{{"mechanism", &s.Info.Mechanism}, {"digest", &s.Info.Digest}} {
			if b, err = take(1, field.what+" length"); err != nil {
				return Snapshot{}, err
			}
			if b, err = take(int(b[0]), field.what); err != nil {
				return Snapshot{}, err
			}
			*field.dst = string(b)
		}
	}
	if b, err = take(4, "state length"); err != nil {
		return Snapshot{}, err
	}
	stateLen := binary.BigEndian.Uint32(b)
	if int64(len(buf)) != 8*int64(stateLen) {
		return Snapshot{}, fmt.Errorf("transport: snapshot declares %d state entries but carries %d payload bytes", stateLen, len(buf))
	}
	if math.IsNaN(s.Count) || math.IsInf(s.Count, 0) || s.Count < 0 {
		return Snapshot{}, fmt.Errorf("transport: snapshot count %v is not a non-negative finite number", s.Count)
	}
	s.State = make([]float64, stateLen)
	for i := range s.State {
		s.State[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return s, nil
}

// DecodeSnapshot reads one snapshot frame of either version and returns the
// bare accumulator view.
//
// Deprecated: use DecodeSnapshotFrame, which also surfaces the snapshot's
// epoch and mechanism identity.
func DecodeSnapshot(r io.Reader) (state []float64, count float64, err error) {
	s, err := DecodeSnapshotFrame(r)
	if err != nil {
		return nil, 0, err
	}
	return s.State, s.Count, nil
}

// encodeReportsBytes is EncodeReports into memory (the client's request-body
// builder and tests share it).
func encodeReportsBytes(reports []protocol.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeReports(&buf, reports); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
