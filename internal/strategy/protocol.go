package strategy

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/protocol"
)

// DefaultValidateTol is the single ε-validation tolerance used everywhere a
// strategy crosses a trust boundary (building a randomizer, loading a saved
// strategy). One shared constant guarantees that any strategy accepted by one
// entry point is accepted by all of them — a strategy that loads must never
// be refused by the client that is about to randomize through it.
const DefaultValidateTol = 1e-6

// Randomizer adapts a validated strategy matrix to the streaming protocol's
// client side: Randomize samples one output index per user through the
// column's alias table.
type Randomizer struct {
	s       *Strategy
	sampler *Sampler
}

// NewRandomizer validates the strategy's declared ε (a client must never
// randomize through a matrix that does not provide the promised privacy) and
// preprocesses its columns for O(1) sampling.
func NewRandomizer(s *Strategy) (*Randomizer, error) {
	if err := s.Validate(DefaultValidateTol); err != nil {
		return nil, fmt.Errorf("strategy: refusing to randomize: %w", err)
	}
	sp, err := NewSampler(s)
	if err != nil {
		return nil, err
	}
	return &Randomizer{s: s, sampler: sp}, nil
}

// Domain returns the number of user types accepted.
func (r *Randomizer) Domain() int { return r.sampler.Domain() }

// Epsilon returns the privacy budget each report satisfies.
func (r *Randomizer) Epsilon() float64 { return r.s.Eps }

// Outputs returns the size of the response range m.
func (r *Randomizer) Outputs() int { return r.sampler.Outputs() }

// Strategy returns the validated strategy backing this randomizer.
func (r *Randomizer) Strategy() *Strategy { return r.s }

// Randomize samples output o with probability Q[o][u].
func (r *Randomizer) Randomize(u int, rng *rand.Rand) (protocol.Report, error) {
	if u < 0 || u >= r.sampler.Domain() {
		return protocol.Report{}, fmt.Errorf("strategy: type %d out of domain %d", u, r.sampler.Domain())
	}
	return protocol.Report{Index: r.sampler.Sample(u, rng)}, nil
}

// Aggregator adapts a strategy's optimal reconstruction (Theorem 3.10) to the
// streaming protocol's server side. The accumulator is the response histogram
// y (length m); EstimateCounts returns B·y, the unbiased estimate of the data
// vector within the strategy's row space.
type Aggregator struct {
	s     *Strategy
	recon *linalg.Matrix // B = (QᵀD⁻¹Q)⁺QᵀD⁻¹, n×m
}

// NewAggregator precomputes the reconstruction factor B.
func NewAggregator(s *Strategy) (*Aggregator, error) {
	b, err := s.ReconFactor()
	if err != nil {
		return nil, err
	}
	return &Aggregator{s: s, recon: b}, nil
}

// Domain returns the number of user types estimated.
func (a *Aggregator) Domain() int { return a.s.Domain() }

// Epsilon returns the privacy budget of the strategy aggregated under.
func (a *Aggregator) Epsilon() float64 { return a.s.Eps }

// Strategy returns the strategy backing this aggregator — the exact channel
// identity a snapshot or transport handshake fingerprints.
func (a *Aggregator) Strategy() *Strategy { return a.s }

// Recon returns the precomputed reconstruction factor B = (QᵀD⁻¹Q)⁺QᵀD⁻¹.
// Callers must treat it as read-only; the variance algebra of the estimator
// layer (per-query variance of V·y with V = W·B) is built from it.
func (a *Aggregator) Recon() *linalg.Matrix { return a.recon }

// StateLen returns m, the response-histogram width.
func (a *Aggregator) StateLen() int { return a.s.Outputs() }

// Check validates the report's output index without touching any state.
func (a *Aggregator) Check(r protocol.Report) error {
	if r.Bits != nil {
		return fmt.Errorf("strategy: unary-encoded report sent to a strategy aggregator")
	}
	if r.Index < 0 || r.Index >= a.s.Outputs() {
		return fmt.Errorf("strategy: response %d out of range [0, %d)", r.Index, a.s.Outputs())
	}
	return nil
}

// Absorb counts the report into the response histogram.
func (a *Aggregator) Absorb(acc []float64, r protocol.Report) error {
	if err := a.Check(r); err != nil {
		return err
	}
	acc[r.Index]++
	return nil
}

// EstimateCounts returns B·acc; the report count is not needed because the
// reconstruction is already unbiased at any N.
func (a *Aggregator) EstimateCounts(acc []float64, count float64) []float64 {
	return a.recon.MulVec(acc)
}
