// Package strategy implements the strategy-matrix representation of LDP
// mechanisms (Section 2.2 of the paper) and all of the variance algebra of
// Sections 3 and 5.
//
// A strategy matrix Q ∈ R^{m×n} encodes a local randomizer: column u is the
// output distribution Pr[M(u) = ·] for user type u. Q defines an ε-LDP
// mechanism iff (Proposition 2.6)
//
//  1. Q_{ou} ≤ e^ε · Q_{ou'} for all outputs o and user types u, u', and
//  2. every column is a probability distribution.
//
// Together with a reconstruction matrix V satisfying W = VQ, Q defines the
// workload factorization mechanism M_{V,Q}(x) = V·M_Q(x) (Definition 3.2),
// whose estimates are unbiased for the workload answers Wx.
//
// All variance quantities are computed from the workload only through its
// Gram matrix G = WᵀW:
//
//	B      = (QᵀD⁻¹Q)⁺ QᵀD⁻¹          (so the optimal V = W·B, Theorem 3.10)
//	C      = Bᵀ G B                    (m×m)
//	var(u) = qᵤᵀ diag(C) − qᵤᵀ C qᵤ    (per-user-type variance, Theorem 3.4)
//
// where D = Diag(Q·1). L_worst = N·maxᵤ var(u) (Corollary 3.5), L_avg =
// (N/n)·Σᵤ var(u) (Corollary 3.6), and the optimization objective is
// L(Q) = tr[(QᵀD⁻¹Q)⁺ G] (Theorem 3.11).
package strategy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Strategy is an ε-LDP strategy matrix: Q is m×n with columns that are
// probability distributions over m outputs.
type Strategy struct {
	// Q is the m×n strategy matrix; Q[o][u] = Pr[M(u) = o].
	Q *linalg.Matrix
	// Eps is the privacy budget ε the matrix is claimed to satisfy.
	Eps float64
}

// New wraps a strategy matrix with its privacy budget. It does not validate;
// call Validate for that.
func New(q *linalg.Matrix, eps float64) *Strategy {
	return &Strategy{Q: q, Eps: eps}
}

// Outputs returns m, the size of the output range.
func (s *Strategy) Outputs() int { return s.Q.Rows() }

// Domain returns n, the number of user types.
func (s *Strategy) Domain() int { return s.Q.Cols() }

// ErrNotLDP is wrapped by Validate errors when the matrix violates the ε-LDP
// constraints of Proposition 2.6.
var ErrNotLDP = errors.New("strategy: matrix violates LDP constraints")

// Validate checks the conditions of Proposition 2.6 to within tol:
// non-negativity, column sums equal to one, and the e^ε ratio bound between
// any two entries in the same row. The ratio bound is checked via the row
// min/max, which is exactly equivalent to the all-pairs condition.
func (s *Strategy) Validate(tol float64) error {
	q := s.Q
	m, n := q.Rows(), q.Cols()
	if m == 0 || n == 0 {
		return fmt.Errorf("%w: empty strategy matrix", ErrNotLDP)
	}
	ratio := math.Exp(s.Eps)
	for o := 0; o < m; o++ {
		row := q.Row(o)
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < -tol {
				return fmt.Errorf("%w: negative probability %g in row %d", ErrNotLDP, v, o)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		// hi ≤ e^ε·lo, with absolute tolerance to absorb round-off.
		if hi > ratio*lo+tol {
			return fmt.Errorf("%w: row %d ratio %g exceeds e^ε = %g (min %g, max %g)",
				ErrNotLDP, o, hi/math.Max(lo, 1e-300), ratio, lo, hi)
		}
	}
	for u := 0; u < n; u++ {
		sum := 0.0
		for o := 0; o < m; o++ {
			sum += q.At(o, u)
		}
		if math.Abs(sum-1) > tol*float64(m) {
			return fmt.Errorf("%w: column %d sums to %g, want 1", ErrNotLDP, u, sum)
		}
	}
	return nil
}

// RowSums returns D's diagonal, Q·1 (expected responses per output under the
// uniform user mix, up to scaling).
func (s *Strategy) RowSums() []float64 { return s.Q.RowSums() }

// Trim removes all-zero rows of Q (outputs that never occur); such rows make
// D singular but can be dropped without changing the mechanism (Section 3.1).
// It returns a new Strategy if any rows were removed, or s unchanged.
func (s *Strategy) Trim(tol float64) *Strategy {
	d := s.RowSums()
	keep := make([]int, 0, len(d))
	for o, v := range d {
		if v > tol {
			keep = append(keep, o)
		}
	}
	if len(keep) == s.Outputs() {
		return s
	}
	q := linalg.New(len(keep), s.Domain())
	for i, o := range keep {
		copy(q.Row(i), s.Q.Row(o))
	}
	return &Strategy{Q: q, Eps: s.Eps}
}

// Recon is the workload-independent part of the optimal reconstruction of
// Theorem 3.10: B = (QᵀD⁻¹Q)⁺ QᵀD⁻¹, so the variance-optimal V for workload
// W is W·B. When Q is column-rank deficient, Proj carries the projection
// Q⁺Q = M⁺M needed to verify the factorization constraint W = WQ⁺Q for a
// given workload.
type Recon struct {
	// B is (QᵀD⁻¹Q)⁺QᵀD⁻¹, n×m.
	B *linalg.Matrix
	// FullRank reports whether M = QᵀD⁻¹Q was numerically positive definite.
	FullRank bool
	// Proj is M⁺M (nil when FullRank): the orthogonal projection onto Q's
	// row space.
	Proj *linalg.Matrix
}

// Reconstruction computes the optimal reconstruction factor together with
// rank information.
func (s *Strategy) Reconstruction() (*Recon, error) {
	return s.ReconstructionWithWeights(nil)
}

// ReconstructionWithWeights computes the reconstruction factor that is
// variance-optimal under a prior distribution over user types (the paper's
// footnote 2: "if we had a prior distribution over x, we could use that to
// estimate variance"). With D_p = Diag(Q·p), the prior-weighted expected
// loss of V is tr(V·D_p·Vᵀ) up to workload constants, minimized by
// V = W(QᵀD_p⁻¹Q)⁺QᵀD_p⁻¹ — the same derivation as Theorem 3.10 with D_p in
// place of D. weights == nil means the uniform prior (the paper's L_avg),
// which reduces exactly to Theorem 3.10.
func (s *Strategy) ReconstructionWithWeights(weights []float64) (*Recon, error) {
	q := s.Q
	var d []float64
	if weights == nil {
		d = s.RowSums()
	} else {
		if len(weights) != s.Domain() {
			return nil, fmt.Errorf("strategy: %d weights for domain %d", len(weights), s.Domain())
		}
		for u, w := range weights {
			if w < 0 || math.IsNaN(w) {
				return nil, fmt.Errorf("strategy: weight %g for type %d is invalid", w, u)
			}
		}
		d = q.MulVec(weights)
	}
	for o, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("strategy: output %d has zero mass; Trim the strategy first", o)
		}
	}
	dinv := make([]float64, len(d))
	for i, v := range d {
		dinv[i] = 1 / v
	}
	qs := q.Clone().ScaleRows(dinv) // D⁻¹Q
	msym := linalg.MulAtB(q, qs)    // M = QᵀD⁻¹Q (n×n, symmetric PSD)
	msym.Symmetrize()
	// B = M⁺ (D⁻¹Q)ᵀ = M⁺ Qsᵀ.
	if ch, err := linalg.FactorCholesky(msym); err == nil {
		return &Recon{B: ch.Solve(qs.T()), FullRank: true}, nil
	}
	pinv, err := linalg.PinvPSD(msym, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("strategy: reconstruction solve failed: %w", err)
	}
	return &Recon{
		B:    linalg.Mul(pinv, qs.T()),
		Proj: linalg.Mul(pinv, msym),
	}, nil
}

// SupportsGram verifies the factorization constraint W = WQ⁺Q (Theorem 3.10's
// applicability condition) for a workload given by its Gram matrix: W lies in
// the row space of Q iff tr(G·(I − M⁺M)) = 0. ErrUnsupportedWorkload is
// wrapped when the constraint fails — the strategy simply cannot express the
// workload unbiasedly.
func (r *Recon) SupportsGram(gram *linalg.Matrix) error {
	if r.FullRank {
		return nil
	}
	// residual = tr(G) − tr(G·Proj); both O(n²) given Proj.
	trG := gram.Trace()
	trGP := 0.0
	n := gram.Rows()
	for i := 0; i < n; i++ {
		trGP += linalg.Dot(gram.Row(i), r.Proj.Col(i))
	}
	if trG-trGP > 1e-6*(1+trG) {
		return fmt.Errorf("%w: workload energy %g outside strategy row space (tr G = %g)",
			ErrUnsupportedWorkload, trG-trGP, trG)
	}
	return nil
}

// ErrUnsupportedWorkload is wrapped when a workload is not expressible by a
// (rank-deficient) strategy, i.e. W ≠ WQ⁺Q.
var ErrUnsupportedWorkload = errors.New("strategy: workload not in the strategy's row space")

// ReconFactor computes B = (QᵀD⁻¹Q)⁺ QᵀD⁻¹ (n×m); see Reconstruction for the
// rank-aware variant.
func (s *Strategy) ReconFactor() (*linalg.Matrix, error) {
	r, err := s.Reconstruction()
	if err != nil {
		return nil, err
	}
	return r.B, nil
}

// OptimalV returns the variance-optimal reconstruction matrix
// V = W (QᵀD⁻¹Q)⁺ QᵀD⁻¹ for an explicit workload matrix w (Theorem 3.10).
func (s *Strategy) OptimalV(w *linalg.Matrix) (*linalg.Matrix, error) {
	if w.Cols() != s.Domain() {
		return nil, fmt.Errorf("strategy: workload has %d columns, domain is %d", w.Cols(), s.Domain())
	}
	b, err := s.ReconFactor()
	if err != nil {
		return nil, err
	}
	return linalg.Mul(w, b), nil
}

// Objective evaluates L(Q) = tr[(QᵀD⁻¹Q)⁺ G] (Theorem 3.11) for the workload
// Gram matrix G = WᵀW. It returns +Inf when the factorization constraint
// W = WQ⁺Q cannot hold because QᵀD⁻¹Q is singular on W's row space (detected
// via a failed Cholesky combined with G having mass outside Q's row space).
func (s *Strategy) Objective(gram *linalg.Matrix) (float64, error) {
	n := s.Domain()
	if gram.Rows() != n || gram.Cols() != n {
		return 0, fmt.Errorf("strategy: Gram matrix is %dx%d, want %dx%d", gram.Rows(), gram.Cols(), n, n)
	}
	d := s.RowSums()
	dinv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return 0, fmt.Errorf("strategy: output %d has zero mass", i)
		}
		dinv[i] = 1 / v
	}
	qs := s.Q.Clone().ScaleRows(dinv)
	msym := linalg.MulAtB(s.Q, qs)
	msym.Symmetrize()
	if ch, err := linalg.FactorCholesky(msym); err == nil {
		// tr(M⁻¹G) = Σ diag of solve(M, G).
		x := ch.Solve(gram)
		return x.Trace(), nil
	}
	// Rank-deficient M: use the pseudo-inverse, but only when W actually lies
	// in the row space of Q — otherwise the mechanism cannot express W and
	// the objective is +∞ (constraint W = WQ⁺Q of Problem 3.12).
	pinv, err := linalg.PinvPSD(msym, 1e-12)
	if err != nil {
		return 0, err
	}
	r := &Recon{Proj: linalg.Mul(pinv, msym)}
	if err := r.SupportsGram(gram); err != nil {
		return math.Inf(1), err
	}
	return linalg.Mul(pinv, gram).Trace(), nil
}

// VarianceProfile holds per-user-type variances for a fixed factorization:
// PerUser[u] is the total variance over all workload queries contributed by a
// single user of type u (Theorem 3.4 with x = e_u).
type VarianceProfile struct {
	// PerUser[u] = Σ_i vᵢᵀDiag(qᵤ)vᵢ − (vᵢᵀqᵤ)².
	PerUser []float64
	// Queries is p, the number of workload queries (for normalization).
	Queries int
}

// Variances computes the per-user-type variance profile of the factorization
// mechanism that uses strategy s with the optimal V for a workload with Gram
// matrix gram and p queries.
func (s *Strategy) Variances(gram *linalg.Matrix, p int) (*VarianceProfile, error) {
	r, err := s.Reconstruction()
	if err != nil {
		return nil, err
	}
	if err := r.SupportsGram(gram); err != nil {
		return nil, err
	}
	return s.VariancesWithRecon(gram, p, r.B)
}

// VariancesWithRecon is Variances with a precomputed reconstruction factor B
// (from ReconFactor), so multiple workloads can share the expensive solve.
func (s *Strategy) VariancesWithRecon(gram *linalg.Matrix, p int, b *linalg.Matrix) (*VarianceProfile, error) {
	n := s.Domain()
	m := s.Outputs()
	if gram.Rows() != n {
		return nil, fmt.Errorf("strategy: Gram matrix is %dx%d, want %dx%d", gram.Rows(), gram.Cols(), n, n)
	}
	// C = Bᵀ G B (m×m). Computed as (GB)ᵀ B column-block-wise to avoid m×m
	// storage when only diag(C) and quadratic forms are needed? C is m×m with
	// m = O(n); at m = 4n, C has 16n² entries — acceptable, and we need full C
	// for the quadratic form qᵤᵀCqᵤ anyway.
	gb := linalg.Mul(gram, b) // n×m
	c := linalg.MulAtB(b, gb) // m×m
	diag := c.DiagOf()
	vars := make([]float64, n)
	cq := make([]float64, m)
	for u := 0; u < n; u++ {
		qu := s.Q.Col(u)
		// qᵤᵀ diag(C)
		lin := linalg.Dot(qu, diag)
		// qᵤᵀ C qᵤ
		for o := 0; o < m; o++ {
			cq[o] = linalg.Dot(c.Row(o), qu)
		}
		quad := linalg.Dot(qu, cq)
		v := lin - quad
		if v < 0 && v > -1e-9 {
			v = 0 // round-off guard: variance is non-negative by construction
		}
		vars[u] = v
	}
	return &VarianceProfile{PerUser: vars, Queries: p}, nil
}

// VariancesExplicit computes the variance profile directly from explicit V
// and Q by the summation formula of Theorem 3.4. O(p·m·n) — intended for
// tests and small problems; Variances is the production path.
func VariancesExplicit(v, q *linalg.Matrix, eps float64) *VarianceProfile {
	p, m := v.Rows(), v.Cols()
	n := q.Cols()
	if q.Rows() != m {
		panic("strategy: V/Q shape mismatch")
	}
	vars := make([]float64, n)
	for u := 0; u < n; u++ {
		qu := q.Col(u)
		total := 0.0
		for i := 0; i < p; i++ {
			vi := v.Row(i)
			lin, dot := 0.0, 0.0
			for o := 0; o < m; o++ {
				lin += vi[o] * vi[o] * qu[o]
				dot += vi[o] * qu[o]
			}
			total += lin - dot*dot
		}
		vars[u] = total
	}
	return &VarianceProfile{PerUser: vars, Queries: p}
}

// Worst returns L_worst for N users (Corollary 3.5): N·maxᵤ var(u).
func (vp *VarianceProfile) Worst(numUsers float64) float64 {
	return numUsers * linalg.MaxVec(vp.PerUser)
}

// Avg returns L_avg for N users (Corollary 3.6): (N/n)·Σᵤ var(u).
func (vp *VarianceProfile) Avg(numUsers float64) float64 {
	return numUsers / float64(len(vp.PerUser)) * linalg.Sum(vp.PerUser)
}

// OnData returns the exact expected total squared error Σᵤ xᵤ·var(u) for a
// concrete data vector x (Theorem 3.4).
func (vp *VarianceProfile) OnData(x []float64) float64 {
	if len(x) != len(vp.PerUser) {
		panic("strategy: data vector length mismatch")
	}
	return linalg.Dot(x, vp.PerUser)
}

// SampleComplexity returns the number of users needed to reach normalized
// worst-case variance alpha (Corollary 5.4): N ≥ maxᵤ var(u) / (p·α).
func (vp *VarianceProfile) SampleComplexity(alpha float64) float64 {
	return linalg.MaxVec(vp.PerUser) / (float64(vp.Queries) * alpha)
}

// SampleComplexityOnData returns the sample complexity for a concrete data
// distribution: N such that the normalized variance on data proportional to
// x equals alpha. Section 6.4 computes this by replacing L_worst with the
// data-dependent variance: N ≥ Σᵤ (xᵤ/‖x‖₁)·var(u) / (p·α).
func (vp *VarianceProfile) SampleComplexityOnData(x []float64, alpha float64) float64 {
	total := linalg.Sum(x)
	if total <= 0 {
		panic("strategy: data vector must have positive mass")
	}
	avg := vp.OnData(x) / total
	return avg / (float64(vp.Queries) * alpha)
}

// NormalizedVariance returns L_norm for N users (Corollary 5.3):
// maxᵤ var(u) / (p·N).
func (vp *VarianceProfile) NormalizedVariance(numUsers float64) float64 {
	return linalg.MaxVec(vp.PerUser) / (float64(vp.Queries) * numUsers)
}
