package strategy

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
)

// Sampler draws randomized responses from a strategy matrix: Sample(u, rng)
// returns an output index o with probability Q[o][u]. Each column is
// preprocessed into a Walker alias table, so sampling is O(1) per draw after
// O(m·n) setup — the per-user randomizer the LDP protocol actually executes.
type Sampler struct {
	n      int
	m      int
	tables []aliasTable
}

// aliasTable is a Walker alias table over m outcomes.
type aliasTable struct {
	prob  []float64
	alias []int
}

// NewSampler preprocesses every column of the strategy into an alias table.
// Columns must be (approximately) normalized probability vectors; they are
// re-normalized defensively to absorb round-off.
func NewSampler(s *Strategy) (*Sampler, error) {
	m, n := s.Outputs(), s.Domain()
	sp := &Sampler{n: n, m: m, tables: make([]aliasTable, n)}
	for u := 0; u < n; u++ {
		col := s.Q.Col(u)
		total := linalg.Sum(col)
		if total <= 0 {
			return nil, fmt.Errorf("strategy: column %d has no probability mass", u)
		}
		for i := range col {
			if col[i] < 0 {
				if col[i] > -1e-12 {
					col[i] = 0
				} else {
					return nil, fmt.Errorf("strategy: column %d has negative probability %g", u, col[i])
				}
			}
			col[i] /= total
		}
		sp.tables[u] = buildAlias(col)
	}
	return sp, nil
}

// buildAlias constructs a Walker alias table from a normalized probability
// vector using Vose's stable O(m) construction.
func buildAlias(p []float64) aliasTable {
	m := len(p)
	t := aliasTable{prob: make([]float64, m), alias: make([]int, m)}
	scaled := make([]float64, m)
	small := make([]int, 0, m)
	large := make([]int, 0, m)
	for i, v := range p {
		scaled[i] = v * float64(m)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through round-off; treat as probability one.
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// Sample draws one randomized response for a user of type u.
func (sp *Sampler) Sample(u int, rng *rand.Rand) int {
	t := &sp.tables[u]
	i := rng.Intn(sp.m)
	if rng.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// Outputs returns the output-range size m.
func (sp *Sampler) Outputs() int { return sp.m }

// Domain returns the domain size n.
func (sp *Sampler) Domain() int { return sp.n }

// ResponseVector simulates the full protocol for a data vector x of
// non-negative integer counts: each of the Σxᵤ users randomizes their type
// independently, and the counts of each output are accumulated into the
// response vector y = M_Q(x).
func (sp *Sampler) ResponseVector(x []float64, rng *rand.Rand) ([]float64, error) {
	if len(x) != sp.n {
		return nil, fmt.Errorf("strategy: data vector length %d, want %d", len(x), sp.n)
	}
	y := make([]float64, sp.m)
	for u, cnt := range x {
		c := int(cnt)
		if float64(c) != cnt || c < 0 {
			return nil, fmt.Errorf("strategy: data vector entry %d = %g is not a non-negative integer", u, cnt)
		}
		for j := 0; j < c; j++ {
			y[sp.Sample(u, rng)]++
		}
	}
	return y, nil
}
