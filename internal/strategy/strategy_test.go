package strategy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/workload"
)

// rrStrategy builds the randomized response strategy matrix of Example 2.7.
func rrStrategy(n int, eps float64) *Strategy {
	e := math.Exp(eps)
	q := linalg.New(n, n)
	denom := e + float64(n) - 1
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u {
				q.Set(o, u, e/denom)
			} else {
				q.Set(o, u, 1/denom)
			}
		}
	}
	return New(q, eps)
}

// randStrategy builds a random feasible strategy: project random entries into
// the ε-band and normalize columns.
func randStrategy(rng *rand.Rand, m, n int, eps float64) *Strategy {
	e := math.Exp(eps)
	q := linalg.New(m, n)
	base := make([]float64, m)
	for o := range base {
		base[o] = 0.1 + rng.Float64()
	}
	for o := 0; o < m; o++ {
		for u := 0; u < n; u++ {
			q.Set(o, u, base[o]*(1+(e-1)*rng.Float64()))
		}
	}
	// Normalize columns. Column scaling preserves... note: scaling columns by
	// different constants can violate the row ratio bound, so normalize by a
	// shared pattern: instead rescale each column and then verify in tests
	// that Validate catches violations when they occur. For test fixtures we
	// construct matrices that satisfy the bound by clipping.
	for u := 0; u < n; u++ {
		col := q.Col(u)
		s := linalg.Sum(col)
		for o := 0; o < m; o++ {
			q.Set(o, u, col[o]/s)
		}
	}
	// Clip rows into the band [min, e·min] then renormalize once more; after a
	// single pass the matrix is close enough to feasible for tolerance-based
	// validation used in tests.
	for o := 0; o < m; o++ {
		row := q.Row(o)
		lo := linalg.MinVec(row)
		for u := range row {
			if row[u] > e*lo {
				row[u] = e * lo
			}
		}
	}
	for u := 0; u < n; u++ {
		col := q.Col(u)
		s := linalg.Sum(col)
		for o := 0; o < m; o++ {
			q.Set(o, u, col[o]/s)
		}
	}
	return New(q, eps+0.05) // small slack so renormalization can't break validation
}

func TestValidateRandomizedResponse(t *testing.T) {
	for _, eps := range []float64{0.1, 1, 4} {
		s := rrStrategy(5, eps)
		if err := s.Validate(1e-9); err != nil {
			t.Fatalf("RR(ε=%v) should validate: %v", eps, err)
		}
	}
}

func TestValidateRejectsViolations(t *testing.T) {
	// Column not summing to one.
	q := linalg.NewFrom(2, 2, []float64{0.5, 0.5, 0.4, 0.5})
	if err := New(q, 1).Validate(1e-9); err == nil {
		t.Fatal("expected column-sum violation")
	}
	// Ratio violation: identity matrix is only ∞-LDP.
	if err := New(linalg.Identity(3), 1).Validate(1e-9); err == nil {
		t.Fatal("expected ratio violation for identity strategy")
	}
	// Negative entries.
	q2 := linalg.NewFrom(2, 2, []float64{1.2, 0.6, -0.2, 0.4})
	if err := New(q2, 10).Validate(1e-9); err == nil {
		t.Fatal("expected negativity violation")
	}
}

func TestValidateRatioIsTight(t *testing.T) {
	// A matrix exactly at the e^ε boundary must pass.
	eps := 1.0
	e := math.Exp(eps)
	q := linalg.NewFrom(2, 2, []float64{
		e / (e + 1), 1 / (e + 1),
		1 / (e + 1), e / (e + 1),
	})
	if err := New(q, eps).Validate(1e-9); err != nil {
		t.Fatalf("boundary matrix should validate: %v", err)
	}
	// But it must fail for a slightly smaller ε.
	if err := New(q, eps*0.99).Validate(1e-9); err == nil {
		t.Fatal("matrix should not validate at smaller ε")
	}
}

func TestReconFactorGivesExactFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randStrategy(rng, 12, 5, 1.0)
	w := workload.NewPrefix(5).Matrix()
	v, err := s.OptimalV(w)
	if err != nil {
		t.Fatal(err)
	}
	// W = VQ must hold exactly (Q has full column rank here).
	if !linalg.ApproxEqual(linalg.Mul(v, s.Q), w, 1e-8) {
		t.Fatal("VQ != W")
	}
}

func TestOptimalVForRRIsInverse(t *testing.T) {
	// Example 3.3: for the Histogram workload, the RR reconstruction is Q⁻¹.
	n := 4
	s := rrStrategy(n, 1.0)
	v, err := s.OptimalV(linalg.Identity(n))
	if err != nil {
		t.Fatal(err)
	}
	qinv, err := linalg.Inverse(s.Q)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.ApproxEqual(v, qinv, 1e-8) {
		t.Fatalf("optimal V != Q⁻¹ for RR on Histogram\nV=%v\nQ⁻¹=%v", v, qinv)
	}
}

func TestOptimalVIsVarianceOptimal(t *testing.T) {
	// Any other V' with V'Q = W must have at least the variance of the
	// optimal V, column by column of the profile (Theorem 3.10).
	rng := rand.New(rand.NewSource(2))
	s := randStrategy(rng, 10, 4, 1.0)
	w := workload.NewHistogram(4).Matrix()
	v, err := s.OptimalV(w)
	if err != nil {
		t.Fatal(err)
	}
	base := VariancesExplicit(v, s.Q, s.Eps)
	// Perturb V in the null space of Qᵀ: V' = V + Z where ZQ = 0.
	// Build Z from a random vector projected onto null(Qᵀ).
	for trial := 0; trial < 5; trial++ {
		z := linalg.New(4, 10)
		for i := range z.Data() {
			z.Data()[i] = rng.NormFloat64()
		}
		// Project each row of Z onto null space of Qᵀ: z ← z − z Q (QᵀQ)⁻¹ Qᵀ.
		qtq := linalg.Gram(s.Q)
		sol, err := linalg.SolvePSD(qtq, linalg.MulAtB(s.Q, z.T()))
		if err != nil {
			t.Fatal(err)
		}
		proj := linalg.Mul(s.Q, sol).T() // rows: z Q (QᵀQ)⁻¹ Qᵀ
		zp := linalg.Sub(z, proj)
		v2 := linalg.Add(v, zp)
		if !linalg.ApproxEqual(linalg.Mul(v2, s.Q), w, 1e-6) {
			t.Fatal("perturbed V' does not satisfy V'Q = W")
		}
		perturbed := VariancesExplicit(v2, s.Q, s.Eps)
		if perturbed.Avg(1) < base.Avg(1)-1e-9 {
			t.Fatalf("perturbed V has smaller average variance: %v < %v",
				perturbed.Avg(1), base.Avg(1))
		}
	}
}

func TestVarianceMatchesExample37(t *testing.T) {
	// Example 3.7: RR on Histogram has
	// L_worst = L_avg = N(n−1)[n/(e^ε−1)² + 2/(e^ε−1)].
	for _, n := range []int{3, 5, 16} {
		for _, eps := range []float64{0.5, 1.0, 2.0} {
			s := rrStrategy(n, eps)
			vp, err := s.Variances(linalg.Identity(n), n)
			if err != nil {
				t.Fatal(err)
			}
			e := math.Exp(eps)
			nf := float64(n)
			want := (nf - 1) * (nf/((e-1)*(e-1)) + 2/(e-1))
			gotWorst := vp.Worst(1)
			gotAvg := vp.Avg(1)
			if math.Abs(gotWorst-want) > 1e-6*want {
				t.Fatalf("n=%d ε=%v: L_worst = %v, want %v", n, eps, gotWorst, want)
			}
			if math.Abs(gotAvg-want) > 1e-6*want {
				t.Fatalf("n=%d ε=%v: L_avg = %v, want %v", n, eps, gotAvg, want)
			}
		}
	}
}

func TestGramPathMatchesExplicitPath(t *testing.T) {
	// The production variance path (Gram only) must agree with the direct
	// Theorem 3.4 summation using explicit V.
	rng := rand.New(rand.NewSource(3))
	ws := []workload.Workload{
		workload.NewHistogram(5),
		workload.NewPrefix(5),
		workload.NewAllRange(5),
	}
	for _, w := range ws {
		s := randStrategy(rng, 14, 5, 1.0)
		vp, err := s.Variances(w.Gram(), w.Queries())
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.OptimalV(w.Matrix())
		if err != nil {
			t.Fatal(err)
		}
		direct := VariancesExplicit(v, s.Q, s.Eps)
		for u := range vp.PerUser {
			if math.Abs(vp.PerUser[u]-direct.PerUser[u]) > 1e-7*(1+direct.PerUser[u]) {
				t.Fatalf("%s: var(%d) Gram path %v != explicit %v",
					w.Name(), u, vp.PerUser[u], direct.PerUser[u])
			}
		}
	}
}

func TestObjectiveIdentity(t *testing.T) {
	// Theorem 3.9: L_avg(V*,Q) = (N/n)(L(Q) − ‖W‖²_F) when V* is optimal.
	rng := rand.New(rand.NewSource(4))
	w := workload.NewPrefix(6)
	s := randStrategy(rng, 16, 6, 1.0)
	obj, err := s.Objective(w.Gram())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := s.Variances(w.Gram(), w.Queries())
	if err != nil {
		t.Fatal(err)
	}
	nUsers := 100.0
	wantAvg := nUsers / 6 * (obj - w.FrobNorm2())
	gotAvg := vp.Avg(nUsers)
	if math.Abs(gotAvg-wantAvg) > 1e-6*(1+math.Abs(wantAvg)) {
		t.Fatalf("L_avg = %v, want (N/n)(L − ‖W‖²) = %v", gotAvg, wantAvg)
	}
}

func TestTheorem51Bounds(t *testing.T) {
	// L_avg ≤ L_worst ≤ e^ε (L_avg + (N/n)‖W‖²_F).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		w := workload.NewPrefix(n)
		s := randStrategy(rng, 2*n+3, n, 0.5+rng.Float64())
		vp, err := s.Variances(w.Gram(), w.Queries())
		if err != nil {
			t.Fatal(err)
		}
		nUsers := 50.0
		avg, worst := vp.Avg(nUsers), vp.Worst(nUsers)
		if avg > worst+1e-9 {
			t.Fatalf("L_avg %v > L_worst %v", avg, worst)
		}
		// Use the declared (slack-adjusted) ε of the strategy.
		upper := math.Exp(s.Eps) * (avg + nUsers/float64(n)*w.FrobNorm2())
		if worst > upper+1e-6 {
			t.Fatalf("L_worst %v exceeds Theorem 5.1 upper bound %v", worst, upper)
		}
	}
}

func TestSampleComplexityRREample55(t *testing.T) {
	// Example 5.5: RR on Histogram needs N ≥ (n−1)/(αn)·[n/(e^ε−1)² + 2/(e^ε−1)].
	n, eps, alpha := 8, 1.0, 0.01
	s := rrStrategy(n, eps)
	vp, err := s.Variances(linalg.Identity(n), n)
	if err != nil {
		t.Fatal(err)
	}
	e := math.Exp(eps)
	nf := float64(n)
	want := (nf - 1) / (alpha * nf) * (nf/((e-1)*(e-1)) + 2/(e-1))
	got := vp.SampleComplexity(alpha)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("sample complexity = %v, want %v", got, want)
	}
}

func TestOnDataAndDataSampleComplexity(t *testing.T) {
	n := 5
	s := rrStrategy(n, 1.0)
	vp, err := s.Variances(linalg.Identity(n), n)
	if err != nil {
		t.Fatal(err)
	}
	// For RR on Histogram all user types have equal variance, so data-
	// dependent variance equals worst-case regardless of the data.
	x := []float64{10, 0, 0, 5, 85}
	onData := vp.OnData(x)
	if math.Abs(onData-100*vp.PerUser[0]) > 1e-9 {
		t.Fatalf("OnData = %v, want %v", onData, 100*vp.PerUser[0])
	}
	sc := vp.SampleComplexityOnData(x, 0.01)
	scWorst := vp.SampleComplexity(0.01)
	if math.Abs(sc-scWorst) > 1e-9*scWorst {
		t.Fatalf("data sample complexity %v != worst-case %v for symmetric mechanism", sc, scWorst)
	}
}

func TestTrim(t *testing.T) {
	q := linalg.New(4, 2)
	// Rows 0 and 2 carry mass; rows 1 and 3 are zero.
	q.Set(0, 0, 0.6)
	q.Set(0, 1, 0.5)
	q.Set(2, 0, 0.4)
	q.Set(2, 1, 0.5)
	s := New(q, 1)
	trimmed := s.Trim(1e-12)
	if trimmed.Outputs() != 2 {
		t.Fatalf("trimmed outputs = %d, want 2", trimmed.Outputs())
	}
	if trimmed.Q.At(1, 1) != 0.5 {
		t.Fatal("trim kept wrong rows")
	}
	// Trim of a dense strategy is a no-op returning the same object.
	s2 := rrStrategy(3, 1)
	if s2.Trim(1e-12) != s2 {
		t.Fatal("Trim should return receiver when nothing to remove")
	}
}

func TestNormalizedVarianceConsistency(t *testing.T) {
	n := 6
	s := rrStrategy(n, 1.0)
	vp, err := s.Variances(linalg.Identity(n), n)
	if err != nil {
		t.Fatal(err)
	}
	// L_norm(N) = L_worst(N)/(p·N²) (Corollary 5.3).
	N := 1234.0
	want := vp.Worst(N) / (float64(n) * N * N)
	if got := vp.NormalizedVariance(N); math.Abs(got-want) > 1e-12 {
		t.Fatalf("normalized variance = %v, want %v", got, want)
	}
}

// Property: variance profile is invariant under row permutations of Q.
func TestVarianceRowPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := n + 2 + rng.Intn(6)
		s := randStrategy(rng, m, n, 1.0)
		w := workload.NewPrefix(n)
		vp1, err := s.Variances(w.Gram(), w.Queries())
		if err != nil {
			return false
		}
		// Random permutation of rows.
		perm := rng.Perm(m)
		q2 := linalg.New(m, n)
		for i, pi := range perm {
			copy(q2.Row(i), s.Q.Row(pi))
		}
		vp2, err := New(q2, s.Eps).Variances(w.Gram(), w.Queries())
		if err != nil {
			return false
		}
		for u := range vp1.PerUser {
			if math.Abs(vp1.PerUser[u]-vp2.PerUser[u]) > 1e-7*(1+vp1.PerUser[u]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerDistribution(t *testing.T) {
	s := rrStrategy(4, 1.5)
	sp, err := NewSampler(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	const draws = 200000
	counts := make([]float64, 4)
	for i := 0; i < draws; i++ {
		counts[sp.Sample(1, rng)]++
	}
	for o := 0; o < 4; o++ {
		got := counts[o] / draws
		want := s.Q.At(o, 1)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("empirical Pr[o=%d] = %v, want %v", o, got, want)
		}
	}
}

func TestResponseVector(t *testing.T) {
	s := rrStrategy(3, 2)
	sp, err := NewSampler(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := []float64{100, 50, 25}
	y, err := sp.ResponseVector(x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.Sum(y) != 175 {
		t.Fatalf("response vector total = %v, want 175 (one response per user)", linalg.Sum(y))
	}
	// Non-integer data must be rejected.
	if _, err := sp.ResponseVector([]float64{1.5, 0, 0}, rng); err == nil {
		t.Fatal("expected error for fractional counts")
	}
	if _, err := sp.ResponseVector([]float64{-1, 0, 0}, rng); err == nil {
		t.Fatal("expected error for negative counts")
	}
}

func TestResponseVectorUnbiasedEstimate(t *testing.T) {
	// End-to-end unbiasedness: averaging V·y over many runs approaches Wx.
	n := 3
	s := rrStrategy(n, 2.0)
	w := workload.NewPrefix(n)
	v, err := s.OptimalV(w.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSampler(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x := []float64{60, 30, 10}
	truth := w.MatVec(x)
	est := make([]float64, n)
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		y, err := sp.ResponseVector(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		linalg.AxpyVec(1.0/trials, v.MulVec(y), est)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 3 {
			t.Fatalf("estimate[%d] = %v, truth %v (bias too large)", i, est[i], truth[i])
		}
	}
}

func TestAliasTableEdgeCases(t *testing.T) {
	// Deterministic column: all mass on one output.
	q := linalg.New(3, 1)
	q.Set(1, 0, 1)
	sp, err := NewSampler(New(q, 100))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if got := sp.Sample(0, rng); got != 1 {
			t.Fatalf("deterministic sampler returned %d", got)
		}
	}
	// Zero column must error.
	q2 := linalg.New(2, 1)
	if _, err := NewSampler(New(q2, 1)); err == nil {
		t.Fatal("expected error for zero-mass column")
	}
}
