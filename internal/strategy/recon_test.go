package strategy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/workload"
)

func TestReconstructionFullRankFlag(t *testing.T) {
	s := rrStrategy(5, 1)
	r, err := s.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullRank {
		t.Fatal("RR strategy should be full rank")
	}
	if r.Proj != nil {
		t.Fatal("full-rank reconstruction should not carry a projection")
	}
	// Full-rank strategies support every workload.
	if err := r.SupportsGram(workload.NewAllRange(5).Gram()); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructionRankDeficient(t *testing.T) {
	// Two identical output rows over 3 types: rank 1.
	q := linalg.New(2, 3)
	for u := 0; u < 3; u++ {
		q.Set(0, u, 0.4)
		q.Set(1, u, 0.6)
	}
	s := New(q, 1)
	r, err := s.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	if r.FullRank {
		t.Fatal("rank-1 strategy misreported as full rank")
	}
	if r.Proj == nil {
		t.Fatal("projection missing")
	}
	// Histogram unsupported...
	if err := r.SupportsGram(linalg.Identity(3)); !errors.Is(err, ErrUnsupportedWorkload) {
		t.Fatalf("expected ErrUnsupportedWorkload, got %v", err)
	}
	// ...but the total-count workload is fine.
	total := linalg.NewFrom(3, 3, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}) // Gram of all-ones row
	if err := r.SupportsGram(total); err != nil {
		t.Fatalf("total count should be supported: %v", err)
	}
}

func TestObjectiveInfForUnsupportedWorkload(t *testing.T) {
	q := linalg.New(2, 3)
	for u := 0; u < 3; u++ {
		q.Set(0, u, 0.5)
		q.Set(1, u, 0.5)
	}
	s := New(q, 1)
	obj, err := s.Objective(linalg.Identity(3))
	if err == nil {
		t.Fatal("expected error for unsupported workload")
	}
	if !math.IsInf(obj, 1) {
		t.Fatalf("objective = %v, want +Inf", obj)
	}
}

func TestReconstructionWithWeightsUniformMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randStrategy(rng, 10, 4, 1)
	r1, err := s.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.ReconstructionWithWeights(linalg.Ones(4))
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.ApproxEqual(r1.B, r2.B, 1e-9) {
		t.Fatal("uniform weights should match unweighted reconstruction")
	}
}

// The weighted reconstruction must be optimal under the weighted loss: any
// null-space perturbation increases Σᵤ wᵤ·var(u).
func TestWeightedReconstructionOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, m := 4, 10
	s := randStrategy(rng, m, n, 1)
	w := workload.NewHistogram(n)
	weights := []float64{3, 1, 0.5, 0.1}
	r, err := s.ReconstructionWithWeights(weights)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.Mul(w.Matrix(), r.B)
	if !linalg.ApproxEqual(linalg.Mul(v, s.Q), w.Matrix(), 1e-7) {
		t.Fatal("weighted V does not satisfy VQ = W")
	}
	base := VariancesExplicit(v, s.Q, s.Eps)
	baseLoss := linalg.Dot(weights, base.PerUser)
	qtq := linalg.Gram(s.Q)
	for trial := 0; trial < 5; trial++ {
		z := linalg.New(n, m)
		for i := range z.Data() {
			z.Data()[i] = rng.NormFloat64()
		}
		sol, err := linalg.SolvePSD(qtq, linalg.MulAtB(s.Q, z.T()))
		if err != nil {
			t.Fatal(err)
		}
		proj := linalg.Mul(s.Q, sol).T()
		v2 := linalg.Add(v, linalg.Sub(z, proj))
		perturbed := VariancesExplicit(v2, s.Q, s.Eps)
		if loss := linalg.Dot(weights, perturbed.PerUser); loss < baseLoss-1e-8 {
			t.Fatalf("perturbed weighted loss %v < optimal %v", loss, baseLoss)
		}
	}
}

func TestReconstructionWithWeightsValidation(t *testing.T) {
	s := rrStrategy(3, 1)
	if _, err := s.ReconstructionWithWeights([]float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := s.ReconstructionWithWeights([]float64{1, -1, 1}); err == nil {
		t.Fatal("expected negativity error")
	}
	if _, err := s.ReconstructionWithWeights([]float64{0, 0, 0}); err == nil {
		t.Fatal("expected zero-mass error")
	}
}

// Property: for full-rank strategies, VariancesWithRecon with the weighted B
// still reports valid (non-negative) per-user variances satisfying
// L_avg ≤ L_worst.
func TestWeightedVarianceProfileSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		s := randStrategy(rng, n+4+rng.Intn(5), n, 1)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
		}
		r, err := s.ReconstructionWithWeights(weights)
		if err != nil {
			return false
		}
		w := workload.NewPrefix(n)
		vp, err := s.VariancesWithRecon(w.Gram(), w.Queries(), r.B)
		if err != nil {
			return false
		}
		for _, v := range vp.PerUser {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return vp.Avg(1) <= vp.Worst(1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
