// Package postprocess implements the paper's WNNLS extension (Remark 1 and
// Appendix A): the unbiased factorization-mechanism estimates Vy can be
// inconsistent — e.g. implying negative counts — so we find the non-negative
// data vector whose workload answers are closest to the unbiased estimates,
//
//	x̂ = argmin_{x ≥ 0} ‖W·x − V·y‖²₂,
//
// and answer the workload with W·x̂. The result is consistent (it corresponds
// to an actual feasible data vector) and usually has substantially lower
// variance in the high-privacy / low-data regime, at the cost of bias.
// Post-processing cannot degrade the ε-LDP guarantee.
package postprocess

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/workload"
)

// Options configures WNNLS.
type Options struct {
	// MaxIters bounds the NNLS iterations (default 2000).
	MaxIters int
	// Tol is the relative objective tolerance (default 1e-10).
	Tol float64
	// TotalCount, when positive, rescales x̂ so Σx̂ = TotalCount. The number
	// of respondents N is public in the LDP protocol, so projecting onto the
	// known total is free and further reduces error.
	TotalCount float64
}

// Result reports the consistent estimates.
type Result struct {
	// X is the non-negative data-vector estimate x̂.
	X []float64
	// Answers is W·x̂, the consistent workload answers.
	Answers []float64
	// Iters and Converged report NNLS convergence.
	Iters     int
	Converged bool
}

// Run computes the WNNLS estimate from unbiased workload estimates vy
// (the vector V·y produced by a factorization mechanism).
func Run(w workload.Workload, vy []float64, o Options) (*Result, error) {
	if len(vy) != w.Queries() {
		return nil, fmt.Errorf("postprocess: estimate vector has %d entries, workload has %d queries", len(vy), w.Queries())
	}
	maxIters := o.MaxIters
	if maxIters <= 0 {
		maxIters = 2000
	}
	tol := o.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	res, err := opt.NNLS(w, vy, opt.NNLSOptions{MaxIters: maxIters, Tol: tol})
	if err != nil {
		return nil, fmt.Errorf("postprocess: %w", err)
	}
	x := res.X
	if o.TotalCount > 0 {
		total := linalg.Sum(x)
		if total > 0 {
			linalg.ScaleVec(o.TotalCount/total, x)
		} else {
			// Degenerate all-zero solution: spread the known mass uniformly.
			for i := range x {
				x[i] = o.TotalCount / float64(len(x))
			}
		}
	}
	return &Result{
		X:         x,
		Answers:   w.MatVec(x),
		Iters:     res.Iters,
		Converged: res.Converged,
	}, nil
}
