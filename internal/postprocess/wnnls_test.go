package postprocess

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/workload"
)

func TestRunRecoversCleanAnswers(t *testing.T) {
	// When the "noisy" estimates are exact answers of a non-negative x, WNNLS
	// must reproduce them.
	w := workload.NewPrefix(8)
	x := []float64{5, 0, 3, 2, 0, 0, 7, 1}
	vy := w.MatVec(x)
	res, err := Run(w, vy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vy {
		if math.Abs(res.Answers[i]-vy[i]) > 1e-4 {
			t.Fatalf("answer[%d] = %v, want %v", i, res.Answers[i], vy[i])
		}
	}
	for i := range x {
		if res.X[i] < 0 {
			t.Fatalf("x̂[%d] = %v < 0", i, res.X[i])
		}
	}
}

func TestRunFixesNegativeEstimates(t *testing.T) {
	// Histogram workload with a negative noisy estimate: the consistent
	// answer must be non-negative and closer (in the feasible set) to truth.
	w := workload.NewHistogram(4)
	noisy := []float64{10, -3, 5, 2}
	res, err := Run(w, noisy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 0, 5, 2}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-5 {
			t.Fatalf("x̂ = %v, want %v", res.X, want)
		}
	}
}

func TestRunTotalCountProjection(t *testing.T) {
	w := workload.NewHistogram(3)
	noisy := []float64{4, 4, 4}
	res, err := Run(w, noisy, Options{TotalCount: 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linalg.Sum(res.X)-30) > 1e-9 {
		t.Fatalf("Σx̂ = %v, want 30", linalg.Sum(res.X))
	}
	// All-zero degenerate case: mass spread uniformly.
	res2, err := Run(w, []float64{-1, -1, -1}, Options{TotalCount: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res2.X {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("degenerate projection x̂ = %v, want uniform 3", res2.X)
		}
	}
}

func TestRunReducesErrorOnNoisyEstimates(t *testing.T) {
	// The headline Figure 4 effect: WNNLS answers are closer to the truth
	// than the raw noisy estimates, in expectation over noise draws.
	rng := rand.New(rand.NewSource(1))
	w := workload.NewPrefix(16)
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(rng.Intn(20))
	}
	truth := w.MatVec(x)
	rawErr, ppErr := 0.0, 0.0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		noisy := make([]float64, len(truth))
		for i := range noisy {
			noisy[i] = truth[i] + 40*rng.NormFloat64()
		}
		res, err := Run(w, noisy, Options{TotalCount: linalg.Sum(x)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			rawErr += (noisy[i] - truth[i]) * (noisy[i] - truth[i])
			ppErr += (res.Answers[i] - truth[i]) * (res.Answers[i] - truth[i])
		}
	}
	if ppErr >= rawErr {
		t.Fatalf("WNNLS error %v not below raw error %v", ppErr, rawErr)
	}
}

func TestRunLengthMismatch(t *testing.T) {
	if _, err := Run(workload.NewHistogram(3), []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
