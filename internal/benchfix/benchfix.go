// Package benchfix holds the optimizer hot-path benchmark bodies shared by
// the repository benchmark suite (bench_test.go) and the machine-readable
// perf tracker (cmd/ldpbench -exp bench), so the two always measure the same
// code with the same fixtures and cannot drift apart.
package benchfix

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/core"
	"repro/internal/freqoracle"
	"repro/internal/history"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/protocol"
	"repro/internal/strategy"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Fixture builds the shared (Q, gram, z) fixture the hot-path benchmarks
// use: a projected random strategy at m = 4n on the Prefix workload.
func Fixture(n int) (q, gram *linalg.Matrix, z []float64) {
	m := 4 * n
	rng := rand.New(rand.NewSource(1))
	gram = workload.NewPrefix(n).Gram()
	z = linalg.Constant(m, (1+math.Exp(-1.0))/(2*float64(m)))
	r := linalg.New(m, n)
	for i := range r.Data() {
		r.Data()[i] = rng.Float64()
	}
	proj, err := opt.ProjectMatrix(r, z, 1.0)
	if err != nil {
		panic(err)
	}
	return proj.Q, gram, z
}

// Optimize benchmarks complete strategy optimization (Algorithm 2
// end-to-end) on Prefix at the given domain size.
func Optimize(n int) func(b *testing.B) {
	return func(b *testing.B) {
		w := workload.NewPrefix(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(w, 1.0, core.Options{Iters: 100, Seed: 2}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ObjectiveGrad benchmarks one objective + analytic gradient evaluation
// through a reused core.Workspace. Steady state must report 0 allocs/op.
func ObjectiveGrad(n int) func(b *testing.B) {
	return func(b *testing.B) {
		q, gram, _ := Fixture(n)
		ws := core.NewWorkspace(q.Rows(), q.Cols())
		grad := linalg.New(q.Rows(), q.Cols())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.ObjectiveGrad(q, gram, nil, grad); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Projection benchmarks Algorithm 1 over a full strategy matrix through
// reused projection buffers. Steady state must report 0 allocs/op.
func Projection(n int) func(b *testing.B) {
	return func(b *testing.B) {
		q, _, z := Fixture(n)
		var out opt.MatrixProjection
		var ws opt.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := opt.ProjectMatrixInto(&out, &ws, q, z, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// RRStrategy returns the n-ary randomized-response strategy matrix — the
// standard cheap fixture for protocol benchmarks.
func RRStrategy(n int, eps float64) *strategy.Strategy {
	e := math.Exp(eps)
	q := linalg.New(n, n)
	denom := e + float64(n) - 1
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u {
				q.Set(o, u, e/denom)
			} else {
				q.Set(o, u, 1/denom)
			}
		}
	}
	return strategy.New(q, eps)
}

// CollectorIngest benchmarks concurrent report ingestion through the
// collector: shards ≤ 0 uses the sharded default, shards = 1 degenerates to
// the single-mutex configuration the sharded design replaced, so the two
// runs isolate the cost of lock contention. GOMAXPROCS is raised to the
// goroutine count for the duration so the goroutines actually contend even
// when the harness machine has fewer cores (on real multicore hardware this
// is a no-op). The per-report critical section (one histogram increment) is
// the worst case for a global lock — there is nothing to amortize it.
func CollectorIngest(goroutines, shards int) func(b *testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(0)
		if goroutines > prev {
			runtime.GOMAXPROCS(goroutines)
			defer runtime.GOMAXPROCS(prev)
		}
		const n = 64
		s := RRStrategy(n, 1.0)
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			b.Fatal(err)
		}
		col, err := ldp.NewCollector(agg, workload.NewHistogram(n), shards)
		if err != nil {
			b.Fatal(err)
		}
		const pool = 1 << 14
		rng := rand.New(rand.NewSource(9))
		reports := make([]ldp.Report, pool)
		for i := range reports {
			reports[i] = ldp.Report{Index: rng.Intn(n)}
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per, extra := b.N/goroutines, b.N%goroutines
		for g := 0; g < goroutines; g++ {
			cnt := per
			if g < extra {
				cnt++
			}
			wg.Add(1)
			go func(g, cnt int) {
				defer wg.Done()
				for i := 0; i < cnt; i++ {
					if err := col.Ingest(reports[(g*7+i)&(pool-1)]); err != nil {
						b.Error(err)
						return
					}
				}
			}(g, cnt)
		}
		wg.Wait()
	}
}

// SnapshotCached benchmarks the collector's read path at n=256 with 32
// shards. cached=true polls a quiescent collector — after the first merge
// every State() is served from the snapshot cache (one copy, no shard
// locks). cached=false ingests one report before each read, forcing the
// pre-cache behavior: a full lock-all remerge of every shard per read. The
// gap between the two is what snapshot caching buys a server whose /snapshot
// is polled more often than reports arrive.
func SnapshotCached(cached bool) func(b *testing.B) {
	return func(b *testing.B) {
		const n = 256
		s := RRStrategy(n, 1.0)
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			b.Fatal(err)
		}
		col, err := ldp.NewCollector(agg, workload.NewHistogram(n), 32)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 4096; i++ {
			if err := col.Ingest(ldp.Report{Index: rng.Intn(n)}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !cached {
				if err := col.Ingest(ldp.Report{Index: i % n}); err != nil {
					b.Fatal(err)
				}
			}
			if st := col.State(); len(st) != n {
				b.Fatal("bad snapshot")
			}
		}
	}
}

// OLHAbsorb benchmarks OLH report aggregation at domain size n: batched=true
// runs the candidate-enumeration absorb (invert the report's hash, visit the
// ~p/g field elements of the reported bucket), batched=false the classic
// per-type scan hashing all n types. Both compute identical accumulators
// (equivalence-tested in freqoracle); the ratio is the aggregation speedup.
func OLHAbsorb(batched bool, n int) func(b *testing.B) {
	return func(b *testing.B) {
		o, err := freqoracle.NewOLH(n, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(12))
		const pool = 256
		reports := make([]protocol.Report, pool)
		for i := range reports {
			reports[i], err = o.Randomize(rng.Intn(n), rng)
			if err != nil {
				b.Fatal(err)
			}
		}
		acc := make([]float64, o.StateLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reports[i%pool]
			if batched {
				err = o.Absorb(acc, r)
			} else {
				err = o.AbsorbScan(acc, r)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// WALAppend benchmarks durable batch ingest against the in-memory baseline
// the durability layer wraps: per op, one batch-report batch flows through
// Collector.IngestBatch. mode "memory" is the plain sharded collector;
// "buffered" adds the write-ahead log with group-commit buffered writes (the
// production default — within 2× of memory at the transport's default batch
// size); "fsync" additionally fsyncs every group commit before acknowledging.
// The gap between the three is the price of each durability level on the hot
// path. Small batches pay the fixed write(2) per record without amortizing
// it (a single-goroutine bench cannot group-commit with anyone), so the
// ratio is measured at both 64 and the transport's 4096-report default.
func WALAppend(mode string, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		const n = 64
		s := RRStrategy(n, 1.0)
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			b.Fatal(err)
		}
		var opts []ldp.CollectorOption
		var dir string
		if mode != "memory" {
			if dir, err = os.MkdirTemp("", "walbench"); err != nil {
				b.Fatal(err)
			}
			// Checkpoints off: the benchmark isolates the append path.
			dopts := []ldp.DurabilityOption{ldp.CheckpointEvery(0), ldp.FsyncEachCommit(mode == "fsync")}
			opts = append(opts, ldp.WithDurability(dir, dopts...))
		}
		col, err := ldp.NewCollector(agg, workload.NewHistogram(n), 0, opts...)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		reports := make([]ldp.Report, batch)
		for i := range reports {
			reports[i] = ldp.Report{Index: rng.Intn(n)}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := col.IngestBatch(reports); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := col.Close(); err != nil {
			b.Fatal(err)
		}
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
}

// RecoverReplay benchmarks crash recovery: per op, a collector opens a data
// directory holding 256 WAL records × 64 reports (no checkpoint — the pure
// replay path) and reconstructs its state. The ns/op is the restart cost a
// checkpoint interval amortizes away.
func RecoverReplay() func(b *testing.B) {
	return func(b *testing.B) {
		const n, records, batch = 64, 256, 64
		s := RRStrategy(n, 1.0)
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			b.Fatal(err)
		}
		w := workload.NewHistogram(n)
		dir, err := os.MkdirTemp("", "recoverbench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		seedCol, err := ldp.NewCollector(agg, w, 0, ldp.WithDurability(dir, ldp.CheckpointEvery(0)))
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(22))
		reports := make([]ldp.Report, batch)
		for r := 0; r < records; r++ {
			for i := range reports {
				reports[i] = ldp.Report{Index: rng.Intn(n)}
			}
			if err := seedCol.IngestBatch(reports); err != nil {
				b.Fatal(err)
			}
		}
		if err := seedCol.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			col, err := ldp.NewCollector(agg, w, 0, ldp.WithDurability(dir, ldp.CheckpointEvery(0)))
			if err != nil {
				b.Fatal(err)
			}
			if err := col.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// SnapAt benchmarks the historical read path: per op, one retained epoch is
// served from the checkpoint ladder (file read + CRC + decode, no WAL
// replay). The fixture checkpoints 8 epochs at n=256 and reads the oldest
// retained one — the fully cold rung; the cost bounds every historical read
// an `ldpquery -as-of` or a fleet SnapAt triggers. compress toggles gzip
// history, isolating the decompression share.
func SnapAt(compress bool) func(b *testing.B) {
	return func(b *testing.B) {
		const n, perEpoch, epochs = 256, 512, 8
		s := RRStrategy(n, 1.0)
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "snapatbench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		col, err := ldp.NewCollector(agg, workload.NewHistogram(n), 0,
			ldp.WithDurability(dir, ldp.CheckpointEvery(0), ldp.HistoryKeep(2), ldp.GzipHistory(compress)))
		if err != nil {
			b.Fatal(err)
		}
		defer col.Close()
		rng := rand.New(rand.NewSource(31))
		for e := 0; e < epochs; e++ {
			for i := 0; i < perEpoch; i++ {
				if err := col.Ingest(ldp.Report{Index: rng.Intn(n)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := col.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		oldest := col.RetainedEpochs()[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := col.SnapAt(oldest); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// CheckpointStream benchmarks the streaming checkpoint writer: per op, one
// n=4096 snapshot flows through WriteCheckpointFile (header patch, CRC,
// atomic rename, fsync dance included). This is the write-side cost each
// checkpoint cut pays off the ingest path; compress adds the gzip layer the
// unary mechanisms opt into.
func CheckpointStream(compress bool) func(b *testing.B) {
	return func(b *testing.B) {
		const n = 4096
		snap := transport.Snapshot{
			State: make([]float64, n),
			Count: 1 << 17,
			Epoch: 5,
			Info:  transport.Info{Mechanism: "OUE", Domain: n, Epsilon: 1},
		}
		for i := range snap.State {
			snap.State[i] = float64(i % 7)
		}
		keys := []history.KeyCount{{Key: "00f1e2d3c4b5a6978877665544332211", Reports: 1 << 17}}
		dir, err := os.MkdirTemp("", "ckptbench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := history.WriteCheckpointFile(dir, 3, snap, keys, compress); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MulAtB benchmarks the goroutine-parallel matmul kernel at the optimizer's
// Gram-product shape M = QᵀQ (it fans out above a flop threshold; at
// GOMAXPROCS=1 it measures the serial kernel).
func MulAtB(m, n int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(8))
		a := linalg.New(m, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		dst := linalg.New(n, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			linalg.MulAtBTo(dst, a, a)
		}
	}
}

// PoolAnswerBatch benchmarks answering a heterogeneous four-workload batch
// over one snapshot. shared routes the batch through an EstimatorPool's
// AnswerBatch — the estimate x̂ is computed once, repeated W·B rows are shared
// (AllRange contains every Histogram and Prefix row), and estimators are
// cached across iterations. naive is the pool-less server baseline: a fresh
// estimator and separate Answers + Variance reads per workload per request.
func PoolAnswerBatch(shared bool) func(b *testing.B) {
	return func(b *testing.B) {
		const n, users = 64, 400
		s := RRStrategy(n, 1.0)
		agg, err := ldp.NewAggregator(s)
		if err != nil {
			b.Fatal(err)
		}
		workloads := []ldp.Workload{
			ldp.Histogram(n), ldp.Prefix(n), ldp.AllRange(n), ldp.WidthRange(n, 4),
		}
		col, err := ldp.NewCollector(agg, workloads[0], 0)
		if err != nil {
			b.Fatal(err)
		}
		rz, err := ldp.NewRandomizer(s)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < users; i++ {
			rep, err := rz.Randomize(rng.Intn(n), rng)
			if err != nil {
				b.Fatal(err)
			}
			if err := col.Ingest(rep); err != nil {
				b.Fatal(err)
			}
		}
		snap := col.Snap()
		pool := ldp.NewEstimatorPool()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if shared {
				if _, err := pool.AnswerBatch(agg, snap, workloads, ldp.WithBatchVariance()); err != nil {
					b.Fatal(err)
				}
				continue
			}
			for _, w := range workloads {
				est, err := ldp.NewEstimator(agg, w)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := est.Answers(snap); err != nil {
					b.Fatal(err)
				}
				if _, err := est.Variance(snap); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// MetricsHotPath benchmarks one hot-path telemetry step — a pre-resolved
// labeled counter increment, a gauge set, and a latency-histogram
// observation — the exact operations every instrumented ingest pays. The
// benchgate pins it at 0 allocs/op: instrumentation that starts allocating
// per request is a regression even when no scraper is attached.
func MetricsHotPath() func(b *testing.B) {
	return func(b *testing.B) {
		reg := obs.NewRegistry()
		c := reg.CounterVec("ldp_bench_requests_total", "Benchmark counter.", "endpoint", "code").
			With("reports", "200")
		g := reg.Gauge("ldp_bench_level", "Benchmark gauge.")
		h := reg.Histogram("ldp_bench_duration_seconds", "Benchmark latency in seconds.", obs.LatencyBounds())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.Set(float64(i))
			h.Observe(12e-6)
		}
	}
}
