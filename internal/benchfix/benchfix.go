// Package benchfix holds the optimizer hot-path benchmark bodies shared by
// the repository benchmark suite (bench_test.go) and the machine-readable
// perf tracker (cmd/ldpbench -exp bench), so the two always measure the same
// code with the same fixtures and cannot drift apart.
package benchfix

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/workload"
)

// Fixture builds the shared (Q, gram, z) fixture the hot-path benchmarks
// use: a projected random strategy at m = 4n on the Prefix workload.
func Fixture(n int) (q, gram *linalg.Matrix, z []float64) {
	m := 4 * n
	rng := rand.New(rand.NewSource(1))
	gram = workload.NewPrefix(n).Gram()
	z = linalg.Constant(m, (1+math.Exp(-1.0))/(2*float64(m)))
	r := linalg.New(m, n)
	for i := range r.Data() {
		r.Data()[i] = rng.Float64()
	}
	proj, err := opt.ProjectMatrix(r, z, 1.0)
	if err != nil {
		panic(err)
	}
	return proj.Q, gram, z
}

// Optimize benchmarks complete strategy optimization (Algorithm 2
// end-to-end) on Prefix at the given domain size.
func Optimize(n int) func(b *testing.B) {
	return func(b *testing.B) {
		w := workload.NewPrefix(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(w, 1.0, core.Options{Iters: 100, Seed: 2}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ObjectiveGrad benchmarks one objective + analytic gradient evaluation
// through a reused core.Workspace. Steady state must report 0 allocs/op.
func ObjectiveGrad(n int) func(b *testing.B) {
	return func(b *testing.B) {
		q, gram, _ := Fixture(n)
		ws := core.NewWorkspace(q.Rows(), q.Cols())
		grad := linalg.New(q.Rows(), q.Cols())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.ObjectiveGrad(q, gram, nil, grad); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Projection benchmarks Algorithm 1 over a full strategy matrix through
// reused projection buffers. Steady state must report 0 allocs/op.
func Projection(n int) func(b *testing.B) {
	return func(b *testing.B) {
		q, _, z := Fixture(n)
		var out opt.MatrixProjection
		var ws opt.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := opt.ProjectMatrixInto(&out, &ws, q, z, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MulAtB benchmarks the goroutine-parallel matmul kernel at the optimizer's
// Gram-product shape M = QᵀQ (it fans out above a flop threshold; at
// GOMAXPROCS=1 it measures the serial kernel).
func MulAtB(m, n int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(8))
		a := linalg.New(m, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		dst := linalg.New(n, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			linalg.MulAtBTo(dst, a, a)
		}
	}
}
