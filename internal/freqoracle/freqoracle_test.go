package freqoracle

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/protocol"
)

func oracles(t *testing.T, n int, eps float64) []Oracle {
	t.Helper()
	rp, err := NewRAPPOR(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	oue, err := NewOUE(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := NewOLH(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	return []Oracle{rp, oue, olh}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewRAPPOR(0, 1); err == nil {
		t.Fatal("expected error for empty domain")
	}
	if _, err := NewOUE(0, 1); err == nil {
		t.Fatal("expected error for empty domain")
	}
	if _, err := NewOLH(0, 1); err == nil {
		t.Fatal("expected error for empty domain")
	}
	// ε must be a positive finite number within the supported range — NaN or
	// ±Inf poison the flip probabilities (found by FuzzLoadOracle).
	for _, mk := range map[string]func(int, float64) error{
		"RAPPOR": func(n int, e float64) error { _, err := NewRAPPOR(n, e); return err },
		"OUE":    func(n int, e float64) error { _, err := NewOUE(n, e); return err },
		"OLH":    func(n int, e float64) error { _, err := NewOLH(n, e); return err },
	} {
		for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1), 1e6} {
			if err := mk(8, eps); err == nil {
				t.Fatalf("ε=%v accepted", eps)
			}
		}
	}
}

// The candidate-enumeration absorb must agree exactly with the reference
// all-types scan for every report — they are two evaluations of the same
// support predicate.
func TestOLHAbsorbMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct {
		n   int
		eps float64
	}{{1, 1}, {2, 0.5}, {3, 2}, {17, 1}, {64, 1}, {64, 4}, {100, 0.25}, {257, 3}} {
		o, err := NewOLH(cfg.n, cfg.eps)
		if err != nil {
			t.Fatal(err)
		}
		fast := make([]float64, o.StateLen())
		scan := make([]float64, o.StateLen())
		for trial := 0; trial < 200; trial++ {
			rep, err := o.Randomize(rng.Intn(cfg.n), rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := o.Absorb(fast, rep); err != nil {
				t.Fatal(err)
			}
			if err := o.AbsorbScan(scan, rep); err != nil {
				t.Fatal(err)
			}
		}
		for v := range fast {
			if fast[v] != scan[v] {
				t.Fatalf("n=%d ε=%g: support[%d] = %v (candidates) vs %v (scan)",
					cfg.n, cfg.eps, v, fast[v], scan[v])
			}
		}
	}
}

// The estimator's channel constants must match the hash family: the true
// type is supported with probability exactly p, a false one with exactly qs.
// Measured over many seeds, the empirical frequencies must agree.
func TestOLHSupportProbabilities(t *testing.T) {
	o, err := NewOLH(12, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	const trials = 200000
	trueHits, falseHits := 0, 0
	for i := 0; i < trials; i++ {
		rep, err := o.Randomize(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		a, b := o.coeffs(rep.Seed)
		if o.hashOf(a, b, 3) == rep.Index {
			trueHits++
		}
		if o.hashOf(a, b, 7) == rep.Index {
			falseHits++
		}
	}
	// 5σ bands around the binomial means.
	pTrue, pFalse := o.p, o.qs
	for _, c := range []struct {
		hits int
		want float64
	}{{trueHits, pTrue}, {falseHits, pFalse}} {
		got := float64(c.hits) / trials
		band := 5 * math.Sqrt(c.want*(1-c.want)/trials)
		if math.Abs(got-c.want) > band {
			t.Fatalf("support probability %v, want %v ± %v", got, c.want, band)
		}
	}
}

func TestMetadata(t *testing.T) {
	for _, o := range oracles(t, 10, 1.5) {
		if o.Domain() != 10 || o.Epsilon() != 1.5 || o.Name() == "" {
			t.Fatalf("%s metadata wrong", o.Name())
		}
		if o.VariancePerUser() <= 0 {
			t.Fatalf("%s variance constant not positive", o.Name())
		}
	}
}

func TestOLHHashRange(t *testing.T) {
	olh, err := NewOLH(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// g = round(e) + 1 = 4.
	if olh.HashRange() != 4 {
		t.Fatalf("g = %d, want 4", olh.HashRange())
	}
	// Tiny ε still yields a valid range ≥ 2.
	olh2, err := NewOLH(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if olh2.HashRange() < 2 {
		t.Fatalf("g = %d", olh2.HashRange())
	}
}

// Unbiasedness: the mean estimate over many protocol runs approaches the true
// histogram for every oracle.
func TestEstimatorsUnbiased(t *testing.T) {
	n := 6
	x := []float64{50, 0, 30, 10, 0, 10} // N = 100
	for _, o := range oracles(t, n, 2.0) {
		mean := make([]float64, n)
		const runs = 60
		for r := 0; r < runs; r++ {
			est, err := Run(o, x, int64(r))
			if err != nil {
				t.Fatal(err)
			}
			linalg.AxpyVec(1.0/runs, est, mean)
		}
		for v := range x {
			// Standard error at N=100, 60 runs: a few counts.
			if math.Abs(mean[v]-x[v]) > 8 {
				t.Fatalf("%s: mean estimate[%d] = %v, truth %v", o.Name(), v, mean[v], x[v])
			}
		}
	}
}

// Empirical variance must approximate the closed-form constant.
func TestVarianceMatchesClosedForm(t *testing.T) {
	n := 4
	// All users of type 0 — the variance formula's f→0 regime holds for the
	// empty cells 1..3.
	x := []float64{200, 0, 0, 0}
	for _, o := range oracles(t, n, 1.0) {
		var sumsq float64
		const runs = 150
		for r := 0; r < runs; r++ {
			est, err := Run(o, x, int64(1000+r))
			if err != nil {
				t.Fatal(err)
			}
			// Cell 1 is empty: its estimator has variance N·VariancePerUser.
			sumsq += est[1] * est[1]
		}
		empirical := sumsq / runs
		want := 200 * o.VariancePerUser()
		if empirical < 0.5*want || empirical > 1.7*want {
			t.Fatalf("%s: empirical variance %v vs closed form %v", o.Name(), empirical, want)
		}
	}
}

// OUE must dominate symmetric RAPPOR in variance at the same ε (that is the
// "optimized" in its name), and OLH must be comparable to OUE.
func TestOUEBeatsRAPPOR(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2, 4} {
		rp, _ := NewRAPPOR(32, eps)
		oue, _ := NewOUE(32, eps)
		if oue.VariancePerUser() >= rp.VariancePerUser() {
			t.Fatalf("ε=%v: OUE variance %v not below RAPPOR %v",
				eps, oue.VariancePerUser(), rp.VariancePerUser())
		}
		olh, _ := NewOLH(32, eps)
		ratio := olh.VariancePerUser() / oue.VariancePerUser()
		// The classic analysis puts OLH ≈ OUE (q' = 1/g). With the exact
		// channel inversion over a small hash field the false-support
		// probability drops below 1/g — at ε=4 (g=56, p=59 on n=32) to
		// roughly half — so OLH may land well below OUE but must never be
		// meaningfully worse.
		if ratio > 1.3 || ratio < 0.3 {
			t.Fatalf("ε=%v: OLH/OUE variance ratio %v outside the expected band", eps, ratio)
		}
	}
}

func TestAbsorbRejectsMalformed(t *testing.T) {
	oue, _ := NewOUE(4, 1)
	acc := make([]float64, oue.StateLen())
	if err := oue.Absorb(acc, protocol.Report{}); err == nil {
		t.Fatal("expected error for report without bits")
	}
	if err := oue.Absorb(acc, protocol.Report{Bits: make([]bool, 3)}); err == nil {
		t.Fatal("expected error for wrong-length report")
	}
	olh, _ := NewOLH(4, 1)
	oacc := make([]float64, olh.StateLen())
	if err := olh.Absorb(oacc, protocol.Report{Bits: make([]bool, 4)}); err == nil {
		t.Fatal("expected error for unary report sent to OLH")
	}
	if err := olh.Absorb(oacc, protocol.Report{Seed: 1, Index: 99}); err == nil {
		t.Fatal("expected error for out-of-range OLH value")
	}
	// A rejected report must leave the accumulators untouched.
	for _, v := range append(acc, oacc...) {
		if v != 0 {
			t.Fatal("rejected report mutated the accumulator")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"OUE", "OLH", "RAPPOR"} {
		o, err := ByName(name, 16, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() != name || o.Domain() != 16 || o.Epsilon() != 1.0 {
			t.Fatalf("%s: metadata wrong", name)
		}
	}
	if _, err := ByName("bogus", 16, 1.0); err == nil {
		t.Fatal("expected error for unknown oracle name")
	}
}

func TestRunValidatesData(t *testing.T) {
	oue, _ := NewOUE(3, 1)
	if _, err := Run(oue, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Run(oue, []float64{1, 2.5, 0}, 1); err == nil {
		t.Fatal("expected non-integer error")
	}
	if _, err := Run(oue, []float64{1, -2, 0}, 1); err == nil {
		t.Fatal("expected negativity error")
	}
}

func TestRandomizeRejectsOutOfDomain(t *testing.T) {
	oue, _ := NewOUE(3, 1)
	if _, err := oue.Randomize(5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for out-of-domain type")
	}
	olh, _ := NewOLH(3, 1)
	if _, err := olh.Randomize(-1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for out-of-domain type")
	}
}

// The LDP guarantee of unary encoding, checked directly: the likelihood ratio
// of any single report bit pattern between two user types is bounded by e^ε.
func TestUnaryLikelihoodRatioBound(t *testing.T) {
	n, eps := 5, 1.0
	for _, mk := range []func(int, float64) (*Unary, error){NewRAPPOR, NewOUE} {
		u, err := mk(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		prob := func(bits []bool, v int) float64 {
			p := 1.0
			for i, b := range bits {
				pi := u.q
				if i == v {
					pi = u.p
				}
				if b {
					p *= pi
				} else {
					p *= 1 - pi
				}
			}
			return p
		}
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 200; trial++ {
			bits := make([]bool, n)
			for i := range bits {
				bits[i] = rng.Intn(2) == 0
			}
			for v1 := 0; v1 < n; v1++ {
				for v2 := 0; v2 < n; v2++ {
					ratio := prob(bits, v1) / prob(bits, v2)
					if ratio > math.Exp(eps)*(1+1e-9) {
						t.Fatalf("%s: likelihood ratio %v exceeds e^ε", u.Name(), ratio)
					}
				}
			}
		}
	}
}
