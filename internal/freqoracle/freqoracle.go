// Package freqoracle implements the practical LDP frequency oracles the paper
// cites as the state of the art for the Histogram workload [41, 18]: unary
// encoding (symmetric RAPPOR and Optimized Unary Encoding) and Optimized
// Local Hashing. Unlike the strategy-matrix mechanisms elsewhere in this
// repository, these scale to domains far beyond what an explicit m×n strategy
// matrix allows (their implicit output ranges are exponential or
// hash-parameterized), at the cost of answering only point queries directly.
//
// Every oracle implements both sides of the streaming protocol contract
// (internal/protocol): protocol.Randomizer on the client and
// protocol.Aggregator on the server, so the same Client/Server/Collector
// pipeline that serves strategy-matrix mechanisms serves these too. Each also
// exposes the closed-form per-count variance from Wang et al., so they can be
// compared against the factorization mechanisms on the Histogram workload at
// any domain size.
package freqoracle

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/protocol"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// Epsilon bounds every oracle constructor enforces. ε must be a positive
// finite number (NaN/±Inf poison the flip probabilities: exp(NaN) propagates
// and exp(±Inf) turns p into NaN via Inf/Inf — a bug surfaced by
// FuzzLoadOracle feeding mutated wire files into ByName). The upper caps
// reject budgets so large the mechanism degenerates: beyond MaxUnaryEps the
// flip probabilities are indistinguishable from 0/1 in float64, and beyond
// MaxOLHEps the hash range g = ⌈e^ε⌉+1 no longer fits sane integer
// arithmetic. Neither cap excludes any meaningful privacy regime.
const (
	MaxUnaryEps = 64
	MaxOLHEps   = 16
)

func validEps(eps, max float64) error {
	if err := protocol.CheckEpsilon(eps, max); err != nil {
		return fmt.Errorf("freqoracle: %w", err)
	}
	return nil
}

// Oracle is a frequency-estimation protocol: clients randomize their type
// (protocol.Randomizer), the server aggregates reports and estimates the
// histogram (protocol.Aggregator).
type Oracle interface {
	protocol.Randomizer
	protocol.Aggregator
	// Name identifies the protocol ("OUE", "OLH", "RAPPOR").
	Name() string
	// VariancePerUser returns the estimator's variance contribution of one
	// user to one count (the n·Var[ĉ_v]/N figure of merit, asymptotically
	// independent of the true frequencies for these oracles).
	VariancePerUser() float64
}

// ByName constructs the named oracle ("OUE", "OLH", "RAPPOR") for domain n at
// privacy budget eps — the inverse of Oracle.Name, used by the versioned wire
// format to rebuild a saved oracle configuration.
func ByName(name string, n int, eps float64) (Oracle, error) {
	switch name {
	case "OUE":
		return NewOUE(n, eps)
	case "OLH":
		return NewOLH(n, eps)
	case "RAPPOR":
		return NewRAPPOR(n, eps)
	}
	return nil, fmt.Errorf("freqoracle: unknown oracle %q", name)
}

// ---------------------------------------------------------------------------
// Unary encoding (RAPPOR / OUE)
// ---------------------------------------------------------------------------

// Unary is the unary-encoding family: the user one-hot encodes their type
// into n bits and reports each bit flipped with bit-dependent probabilities.
// p is Pr[1 stays 1], q is Pr[0 becomes 1]. Symmetric RAPPOR uses
// p = e^{ε/2}/(1+e^{ε/2}), q = 1−p; OUE uses p = 1/2, q = 1/(1+e^ε), which
// minimizes estimation variance at the same ε.
type Unary struct {
	name string
	n    int
	eps  float64
	p, q float64
}

// NewRAPPOR returns symmetric RAPPOR (basic one-hot variant) for any domain
// size — unlike baselines.RAPPOR, no strategy matrix is materialized.
func NewRAPPOR(n int, eps float64) (*Unary, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	if err := validEps(eps, MaxUnaryEps); err != nil {
		return nil, err
	}
	e2 := math.Exp(eps / 2)
	p := e2 / (1 + e2)
	return &Unary{name: "RAPPOR", n: n, eps: eps, p: p, q: 1 - p}, nil
}

// NewOUE returns Optimized Unary Encoding (Wang et al.).
func NewOUE(n int, eps float64) (*Unary, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	if err := validEps(eps, MaxUnaryEps); err != nil {
		return nil, err
	}
	return &Unary{name: "OUE", n: n, eps: eps, p: 0.5, q: 1 / (1 + math.Exp(eps))}, nil
}

func (u *Unary) Name() string { return u.name }

// Domain returns n.
func (u *Unary) Domain() int { return u.n }

// Epsilon returns ε.
func (u *Unary) Epsilon() float64 { return u.eps }

// Randomize perturbs the one-hot encoding of v into the report's bit vector.
func (u *Unary) Randomize(v int, rng *rand.Rand) (protocol.Report, error) {
	if v < 0 || v >= u.n {
		return protocol.Report{}, fmt.Errorf("freqoracle: type %d out of domain %d", v, u.n)
	}
	bits := make([]bool, u.n)
	for i := range bits {
		if i == v {
			bits[i] = rng.Float64() < u.p
		} else {
			bits[i] = rng.Float64() < u.q
		}
	}
	return protocol.Report{Bits: bits}, nil
}

// VariancePerUser returns q(1−q)/(p−q)² + [p(1−p) − q(1−q)]·f/(p−q)² with the
// frequency term dropped (the standard approximate variance; exact for f→0).
func (u *Unary) VariancePerUser() float64 {
	d := u.p - u.q
	return u.q * (1 - u.q) / (d * d)
}

// StateLen returns n: the accumulator holds per-position one-counts.
func (u *Unary) StateLen() int { return u.n }

// Check validates the report's bit-vector shape without touching any state.
func (u *Unary) Check(r protocol.Report) error {
	if len(r.Bits) != u.n {
		return fmt.Errorf("freqoracle: malformed unary report (%d bits, want %d)", len(r.Bits), u.n)
	}
	return nil
}

// Absorb adds the report's set bits to the per-position one-counts.
func (u *Unary) Absorb(acc []float64, r protocol.Report) error {
	if err := u.Check(r); err != nil {
		return err
	}
	for i, b := range r.Bits {
		if b {
			acc[i]++
		}
	}
	return nil
}

// EstimateCounts inverts the bit-flip channel: ĉ_v = (ones_v − q·N)/(p − q).
func (u *Unary) EstimateCounts(acc []float64, count float64) []float64 {
	out := make([]float64, u.n)
	d := u.p - u.q
	for v := range out {
		out[v] = (acc[v] - u.q*count) / d
	}
	return out
}

// ---------------------------------------------------------------------------
// Optimized Local Hashing (OLH)
// ---------------------------------------------------------------------------

// OLH is Optimized Local Hashing (Wang et al.): each user hashes their type
// into a small range g = ⌈e^ε⌉ + 1 with a per-user hash seed, then applies
// randomized response over the hash range. Communication is O(log g) and no
// n-sized state is ever sent.
//
// The hash family is invertible on purpose: h_seed(v) = ((a·v + b) mod p)
// mod g with p the smallest prime ≥ max(n, g) and (a, b) ∈ [1,p)×[0,p)
// derived from the report seed. The family is pairwise uniform — for u ≠ v
// the pair (a·u+b, a·v+b) mod p is exactly uniform over ordered distinct
// pairs — so the collision probability needed by the estimator is known in
// closed form, and because the map is a bijection of Z_p the aggregator can
// enumerate the ~p/g preimages of the reported bucket (Absorb) instead of
// hashing all n types per report — a g-fold cut in aggregation work, the
// known bottleneck of OLH. The LDP guarantee is hash-independent (the
// randomized response over [0, g) alone bounds the likelihood ratio by e^ε),
// so the family choice only affects utility and speed, and the channel
// inversion in EstimateCounts uses the family's exact support probability, so
// estimates stay exactly unbiased at any p.
type OLH struct {
	n     int
	eps   float64
	g     int
	p     float64 // Pr[report the true hash value]
	prime uint64  // modulus of the hash field, smallest prime ≥ max(n, g)
	qs    float64 // exact Pr[a false type is supported by a report]
}

// NewOLH returns the OLH oracle with the variance-optimal hash range.
func NewOLH(n int, eps float64) (*OLH, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	if err := validEps(eps, MaxOLHEps); err != nil {
		return nil, err
	}
	if uint64(n) > 1<<31 {
		return nil, fmt.Errorf("freqoracle: OLH domain %d exceeds the 2³¹ hash-field limit", n)
	}
	e := math.Exp(eps)
	g := int(math.Round(e)) + 1
	if g < 2 {
		g = 2
	}
	o := &OLH{n: n, eps: eps, g: g, p: e / (e + float64(g) - 1)}
	lo := uint64(n)
	if uint64(g) > lo {
		lo = uint64(g)
	}
	o.prime = nextPrime(lo)
	// Exact pairwise collision probability of the family: with the pair
	// (x, y) uniform over ordered distinct pairs of Z_p², and c_r the number
	// of field elements in bucket r, Pr[x, y share a bucket] is
	// (Σ_r c_r² − p) / (p(p−1)). From it, the probability that a false type
	// is supported: the report is the true bucket w.p. p (collides with the
	// false type's bucket w.p. qc) and one of the other g−1 buckets
	// otherwise.
	p, gg := o.prime, uint64(o.g)
	k, s := p/gg, p%gg
	sumC2 := s*(k+1)*(k+1) + (gg-s)*k*k
	qc := float64(sumC2-p) / (float64(p) * float64(p-1))
	o.qs = o.p*qc + (1-o.p)*(1-qc)/float64(o.g-1)
	return o, nil
}

// nextPrime returns the smallest prime ≥ lo (≥ 2). Trial division is ample:
// the gap to the next prime is tiny and lo is a domain size, not a secret.
func nextPrime(lo uint64) uint64 {
	if lo <= 2 {
		return 2
	}
	for p := lo | 1; ; p += 2 {
		composite := false
		for d := uint64(3); d*d <= p; d += 2 {
			if p%d == 0 {
				composite = true
				break
			}
		}
		if !composite {
			return p
		}
	}
}

// mix is the splitmix64 finalizer, the avalanche step between the raw report
// seed and the hash coefficients.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// coeffs derives the report's hash coefficients (a, b) ∈ [1, p) × [0, p)
// from its seed. The modulo bias is ≤ p/2⁶⁴ — immaterial at p < 2³².
func (o *OLH) coeffs(seed uint64) (a, b uint64) {
	a = 1 + mix(seed)%(o.prime-1)
	b = mix(seed+0x9e3779b97f4a7c15) % o.prime
	return a, b
}

// hashOf buckets type v under coefficients (a, b).
func (o *OLH) hashOf(a, b uint64, v int) int {
	return int(((a*uint64(v) + b) % o.prime) % uint64(o.g))
}

func (o *OLH) Name() string { return "OLH" }

// Domain returns n.
func (o *OLH) Domain() int { return o.n }

// Epsilon returns ε.
func (o *OLH) Epsilon() float64 { return o.eps }

// HashRange returns g.
func (o *OLH) HashRange() int { return o.g }

// Randomize hashes the user's type with a fresh seed and perturbs the hash
// value with randomized response over [0, g). The report carries the seed and
// the (perturbed) hash value.
func (o *OLH) Randomize(v int, rng *rand.Rand) (protocol.Report, error) {
	if v < 0 || v >= o.n {
		return protocol.Report{}, fmt.Errorf("freqoracle: type %d out of domain %d", v, o.n)
	}
	seed := rng.Uint64()
	a, b := o.coeffs(seed)
	true_ := o.hashOf(a, b, v)
	if rng.Float64() < o.p {
		return protocol.Report{Seed: seed, Index: true_}, nil
	}
	// Report one of the other g−1 values uniformly.
	alt := rng.Intn(o.g - 1)
	if alt >= true_ {
		alt++
	}
	return protocol.Report{Seed: seed, Index: alt}, nil
}

// VariancePerUser is the Wang et al. figure of merit q'(1−q')/(p'−q')² with
// p' the true-support probability and q' the family's exact false-support
// probability (→ 1/g as the hash field grows; slightly below it at small
// fields, which only helps).
func (o *OLH) VariancePerUser() float64 {
	d := o.p - o.qs
	return o.qs * (1 - o.qs) / (d * d)
}

// StateLen returns n: the accumulator holds per-type support counts.
func (o *OLH) StateLen() int { return o.n }

// Check validates the report's hash value without touching any state.
func (o *OLH) Check(r protocol.Report) error {
	if r.Bits != nil {
		return errors.New("freqoracle: unary-encoded report sent to an OLH aggregator")
	}
	if r.Index < 0 || r.Index >= o.g {
		return fmt.Errorf("freqoracle: OLH report value %d out of range [0, %d)", r.Index, o.g)
	}
	return nil
}

// Absorb adds the report's support: type v is supported when v hashes to the
// reported value under the report's seed. Instead of hashing all n types, it
// inverts the report's hash — the supported field elements are exactly
// {t ∈ Z_p : t ≡ Index (mod g)}, and v = a⁻¹(t − b) mod p recovers each
// candidate type — so one report costs ~p/g field operations, a g-fold
// reduction of OLH's aggregation bottleneck. AbsorbScan is the reference
// per-type loop it is tested against and benchmarked with.
func (o *OLH) Absorb(acc []float64, r protocol.Report) error {
	if err := o.Check(r); err != nil {
		return err
	}
	a, b := o.coeffs(r.Seed)
	p := o.prime
	ainv := powmod(a, p-2, p) // Fermat: a⁻¹ mod prime p
	n, g := uint64(o.n), uint64(o.g)
	for t := uint64(r.Index); t < p; t += g {
		d := t + p - b
		if d >= p {
			d -= p
		}
		if v := ainv * d % p; v < n {
			acc[v]++
		}
	}
	return nil
}

// AbsorbScan is the classic OLH absorb: hash every type under the report's
// seed and count the matches. It computes exactly what Absorb computes
// (property-tested) and is retained as the reference for equivalence tests
// and the BenchmarkOLHAbsorb comparison.
func (o *OLH) AbsorbScan(acc []float64, r protocol.Report) error {
	if err := o.Check(r); err != nil {
		return err
	}
	a, b := o.coeffs(r.Seed)
	for v := 0; v < o.n; v++ {
		if o.hashOf(a, b, v) == r.Index {
			acc[v]++
		}
	}
	return nil
}

// powmod computes a^e mod m by square-and-multiply (m < 2³², so products fit
// uint64).
func powmod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	res := uint64(1)
	a %= m
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			res = res * a % m
		}
		a = a * a % m
	}
	return res
}

// EstimateCounts inverts the support channel: a true v is supported with
// probability p, any other with exactly qs; ĉ_v = (support_v − qs·N)/(p − qs).
func (o *OLH) EstimateCounts(acc []float64, count float64) []float64 {
	out := make([]float64, o.n)
	d := o.p - o.qs
	for v := range out {
		out[v] = (acc[v] - o.qs*count) / d
	}
	return out
}

// Run executes a full protocol for integer data vector x and returns the
// estimated counts. It is the shared simulator (internal/simulate) driving
// the oracle as both protocol halves, so the execution loop exists once.
func Run(o Oracle, x []float64, seed int64) ([]float64, error) {
	p, err := simulate.New(o, o, workload.NewHistogram(o.Domain()))
	if err != nil {
		return nil, err
	}
	out, err := p.Run(x, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return out.XEstimate, nil
}
