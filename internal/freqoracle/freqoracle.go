// Package freqoracle implements the practical LDP frequency oracles the paper
// cites as the state of the art for the Histogram workload [41, 18]: unary
// encoding (symmetric RAPPOR and Optimized Unary Encoding) and Optimized
// Local Hashing. Unlike the strategy-matrix mechanisms elsewhere in this
// repository, these scale to domains far beyond what an explicit m×n strategy
// matrix allows (their implicit output ranges are exponential or
// hash-parameterized), at the cost of answering only point queries directly.
//
// Every oracle implements both sides of the streaming protocol contract
// (internal/protocol): protocol.Randomizer on the client and
// protocol.Aggregator on the server, so the same Client/Server/Collector
// pipeline that serves strategy-matrix mechanisms serves these too. Each also
// exposes the closed-form per-count variance from Wang et al., so they can be
// compared against the factorization mechanisms on the Histogram workload at
// any domain size.
package freqoracle

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/protocol"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// Oracle is a frequency-estimation protocol: clients randomize their type
// (protocol.Randomizer), the server aggregates reports and estimates the
// histogram (protocol.Aggregator).
type Oracle interface {
	protocol.Randomizer
	protocol.Aggregator
	// Name identifies the protocol ("OUE", "OLH", "RAPPOR").
	Name() string
	// VariancePerUser returns the estimator's variance contribution of one
	// user to one count (the n·Var[ĉ_v]/N figure of merit, asymptotically
	// independent of the true frequencies for these oracles).
	VariancePerUser() float64
}

// ByName constructs the named oracle ("OUE", "OLH", "RAPPOR") for domain n at
// privacy budget eps — the inverse of Oracle.Name, used by the versioned wire
// format to rebuild a saved oracle configuration.
func ByName(name string, n int, eps float64) (Oracle, error) {
	switch name {
	case "OUE":
		return NewOUE(n, eps)
	case "OLH":
		return NewOLH(n, eps)
	case "RAPPOR":
		return NewRAPPOR(n, eps)
	}
	return nil, fmt.Errorf("freqoracle: unknown oracle %q", name)
}

// ---------------------------------------------------------------------------
// Unary encoding (RAPPOR / OUE)
// ---------------------------------------------------------------------------

// Unary is the unary-encoding family: the user one-hot encodes their type
// into n bits and reports each bit flipped with bit-dependent probabilities.
// p is Pr[1 stays 1], q is Pr[0 becomes 1]. Symmetric RAPPOR uses
// p = e^{ε/2}/(1+e^{ε/2}), q = 1−p; OUE uses p = 1/2, q = 1/(1+e^ε), which
// minimizes estimation variance at the same ε.
type Unary struct {
	name string
	n    int
	eps  float64
	p, q float64
}

// NewRAPPOR returns symmetric RAPPOR (basic one-hot variant) for any domain
// size — unlike baselines.RAPPOR, no strategy matrix is materialized.
func NewRAPPOR(n int, eps float64) (*Unary, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	e2 := math.Exp(eps / 2)
	p := e2 / (1 + e2)
	return &Unary{name: "RAPPOR", n: n, eps: eps, p: p, q: 1 - p}, nil
}

// NewOUE returns Optimized Unary Encoding (Wang et al.).
func NewOUE(n int, eps float64) (*Unary, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	return &Unary{name: "OUE", n: n, eps: eps, p: 0.5, q: 1 / (1 + math.Exp(eps))}, nil
}

func (u *Unary) Name() string { return u.name }

// Domain returns n.
func (u *Unary) Domain() int { return u.n }

// Epsilon returns ε.
func (u *Unary) Epsilon() float64 { return u.eps }

// Randomize perturbs the one-hot encoding of v into the report's bit vector.
func (u *Unary) Randomize(v int, rng *rand.Rand) (protocol.Report, error) {
	if v < 0 || v >= u.n {
		return protocol.Report{}, fmt.Errorf("freqoracle: type %d out of domain %d", v, u.n)
	}
	bits := make([]bool, u.n)
	for i := range bits {
		if i == v {
			bits[i] = rng.Float64() < u.p
		} else {
			bits[i] = rng.Float64() < u.q
		}
	}
	return protocol.Report{Bits: bits}, nil
}

// VariancePerUser returns q(1−q)/(p−q)² + [p(1−p) − q(1−q)]·f/(p−q)² with the
// frequency term dropped (the standard approximate variance; exact for f→0).
func (u *Unary) VariancePerUser() float64 {
	d := u.p - u.q
	return u.q * (1 - u.q) / (d * d)
}

// StateLen returns n: the accumulator holds per-position one-counts.
func (u *Unary) StateLen() int { return u.n }

// Check validates the report's bit-vector shape without touching any state.
func (u *Unary) Check(r protocol.Report) error {
	if len(r.Bits) != u.n {
		return fmt.Errorf("freqoracle: malformed unary report (%d bits, want %d)", len(r.Bits), u.n)
	}
	return nil
}

// Absorb adds the report's set bits to the per-position one-counts.
func (u *Unary) Absorb(acc []float64, r protocol.Report) error {
	if err := u.Check(r); err != nil {
		return err
	}
	for i, b := range r.Bits {
		if b {
			acc[i]++
		}
	}
	return nil
}

// EstimateCounts inverts the bit-flip channel: ĉ_v = (ones_v − q·N)/(p − q).
func (u *Unary) EstimateCounts(acc []float64, count float64) []float64 {
	out := make([]float64, u.n)
	d := u.p - u.q
	for v := range out {
		out[v] = (acc[v] - u.q*count) / d
	}
	return out
}

// ---------------------------------------------------------------------------
// Optimized Local Hashing (OLH)
// ---------------------------------------------------------------------------

// OLH is Optimized Local Hashing (Wang et al.): each user hashes their type
// into a small range g = ⌈e^ε⌉ + 1 with a per-user hash seed, then applies
// randomized response over the hash range. Communication is O(log g) and no
// n-sized state is ever sent.
type OLH struct {
	n   int
	eps float64
	g   int
	p   float64 // Pr[report the true hash value]
}

// NewOLH returns the OLH oracle with the variance-optimal hash range.
func NewOLH(n int, eps float64) (*OLH, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	g := int(math.Round(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	e := math.Exp(eps)
	return &OLH{n: n, eps: eps, g: g, p: e / (e + float64(g) - 1)}, nil
}

func (o *OLH) Name() string { return "OLH" }

// Domain returns n.
func (o *OLH) Domain() int { return o.n }

// Epsilon returns ε.
func (o *OLH) Epsilon() float64 { return o.eps }

// HashRange returns g.
func (o *OLH) HashRange() int { return o.g }

// hashTo hashes (seed, v) into [0, g). The value bytes are fed first so they
// mix through the seed bytes' multiplications (feeding them last makes FNV's
// output differ by a fixed additive offset between adjacent values — a real
// pitfall that destroys the 1/g collision property), and a splitmix64
// finalizer avalanches the result before reduction.
func (o *OLH) hashTo(seed uint64, v int) int {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(v) >> (8 * i))
		buf[8+i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	x := h.Sum64()
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(o.g))
}

// Randomize hashes the user's type with a fresh seed and perturbs the hash
// value with randomized response over [0, g). The report carries the seed and
// the (perturbed) hash value.
func (o *OLH) Randomize(v int, rng *rand.Rand) (protocol.Report, error) {
	if v < 0 || v >= o.n {
		return protocol.Report{}, fmt.Errorf("freqoracle: type %d out of domain %d", v, o.n)
	}
	seed := rng.Uint64()
	true_ := o.hashTo(seed, v)
	if rng.Float64() < o.p {
		return protocol.Report{Seed: seed, Index: true_}, nil
	}
	// Report one of the other g−1 values uniformly.
	alt := rng.Intn(o.g - 1)
	if alt >= true_ {
		alt++
	}
	return protocol.Report{Seed: seed, Index: alt}, nil
}

// VariancePerUser returns the Wang et al. OLH variance constant
// e^ε·... expressed through p and g: q = [p + (1−p)/(g−1)]·(1/g) support
// probability; the standard form is (q'(1−q'))/(p'−q')² with p' = p and
// q' = 1/g.
func (o *OLH) VariancePerUser() float64 {
	pPrime := o.p
	qPrime := 1 / float64(o.g)
	d := pPrime - qPrime
	return qPrime * (1 - qPrime) / (d * d)
}

// StateLen returns n: the accumulator holds per-type support counts.
// Absorbing must scan each report against each candidate type, so ingestion
// costs O(n) per report — the known trade-off of OLH (cheap communication,
// expensive aggregation).
func (o *OLH) StateLen() int { return o.n }

// Check validates the report's hash value without touching any state.
func (o *OLH) Check(r protocol.Report) error {
	if r.Bits != nil {
		return errors.New("freqoracle: unary-encoded report sent to an OLH aggregator")
	}
	if r.Index < 0 || r.Index >= o.g {
		return fmt.Errorf("freqoracle: OLH report value %d out of range [0, %d)", r.Index, o.g)
	}
	return nil
}

// Absorb adds the report's support: type v is supported when v hashes to the
// reported value under the report's seed.
func (o *OLH) Absorb(acc []float64, r protocol.Report) error {
	if err := o.Check(r); err != nil {
		return err
	}
	for v := 0; v < o.n; v++ {
		if o.hashTo(r.Seed, v) == r.Index {
			acc[v]++
		}
	}
	return nil
}

// EstimateCounts inverts the support channel: a true v is supported with
// probability p, any other with 1/g; ĉ_v = (support_v − N/g)/(p − 1/g).
func (o *OLH) EstimateCounts(acc []float64, count float64) []float64 {
	out := make([]float64, o.n)
	q := 1 / float64(o.g)
	d := o.p - q
	for v := range out {
		out[v] = (acc[v] - q*count) / d
	}
	return out
}

// Run executes a full protocol for integer data vector x and returns the
// estimated counts. It is the shared simulator (internal/simulate) driving
// the oracle as both protocol halves, so the execution loop exists once.
func Run(o Oracle, x []float64, seed int64) ([]float64, error) {
	p, err := simulate.New(o, o, workload.NewHistogram(o.Domain()))
	if err != nil {
		return nil, err
	}
	out, err := p.Run(x, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return out.XEstimate, nil
}
