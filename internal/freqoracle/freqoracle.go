// Package freqoracle implements the practical LDP frequency oracles the paper
// cites as the state of the art for the Histogram workload [41, 18]: unary
// encoding (symmetric RAPPOR and Optimized Unary Encoding) and Optimized
// Local Hashing. Unlike the strategy-matrix mechanisms elsewhere in this
// repository, these scale to domains far beyond what an explicit m×n strategy
// matrix allows (their implicit output ranges are exponential or
// hash-parameterized), at the cost of answering only point queries directly.
//
// Each oracle provides the client-side randomizer and the server-side
// unbiased frequency estimator, plus the closed-form per-count variance from
// Wang et al., so they can be compared against the factorization mechanisms
// on the Histogram workload at any domain size.
package freqoracle

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Oracle is a frequency-estimation protocol: clients randomize their type,
// the server aggregates and estimates the histogram.
type Oracle interface {
	// Name identifies the protocol.
	Name() string
	// Domain returns the number of user types.
	Domain() int
	// Epsilon returns the privacy budget each report satisfies.
	Epsilon() float64
	// NewAggregate returns an empty aggregation state.
	NewAggregate() Aggregate
	// Randomize produces one client report for user type u.
	Randomize(u int, rng *rand.Rand) Report
	// VariancePerUser returns the estimator's variance contribution of one
	// user to one count (the n·Var[ĉ_v]/N figure of merit, asymptotically
	// independent of the true frequencies for these oracles).
	VariancePerUser() float64
}

// Report is an opaque client report consumed by Aggregate.Add.
type Report interface{}

// Aggregate accumulates reports and produces histogram estimates.
type Aggregate interface {
	// Add ingests one report.
	Add(r Report) error
	// Count returns the number of reports ingested.
	Count() int
	// Estimate returns unbiased estimates of the per-type counts.
	Estimate() []float64
}

// ---------------------------------------------------------------------------
// Unary encoding (RAPPOR / OUE)
// ---------------------------------------------------------------------------

// Unary is the unary-encoding family: the user one-hot encodes their type
// into n bits and reports each bit flipped with bit-dependent probabilities.
// p is Pr[1 stays 1], q is Pr[0 becomes 1]. Symmetric RAPPOR uses
// p = e^{ε/2}/(1+e^{ε/2}), q = 1−p; OUE uses p = 1/2, q = 1/(1+e^ε), which
// minimizes estimation variance at the same ε.
type Unary struct {
	name string
	n    int
	eps  float64
	p, q float64
}

// NewRAPPOR returns symmetric RAPPOR (basic one-hot variant) for any domain
// size — unlike baselines.RAPPOR, no strategy matrix is materialized.
func NewRAPPOR(n int, eps float64) (*Unary, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	e2 := math.Exp(eps / 2)
	p := e2 / (1 + e2)
	return &Unary{name: "RAPPOR", n: n, eps: eps, p: p, q: 1 - p}, nil
}

// NewOUE returns Optimized Unary Encoding (Wang et al.).
func NewOUE(n int, eps float64) (*Unary, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	return &Unary{name: "OUE", n: n, eps: eps, p: 0.5, q: 1 / (1 + math.Exp(eps))}, nil
}

func (u *Unary) Name() string { return u.name }

// Domain returns n.
func (u *Unary) Domain() int { return u.n }

// Epsilon returns ε.
func (u *Unary) Epsilon() float64 { return u.eps }

// Randomize returns the perturbed bit vector as []bool.
func (u *Unary) Randomize(v int, rng *rand.Rand) Report {
	if v < 0 || v >= u.n {
		panic(fmt.Sprintf("freqoracle: type %d out of domain %d", v, u.n))
	}
	bits := make([]bool, u.n)
	for i := range bits {
		if i == v {
			bits[i] = rng.Float64() < u.p
		} else {
			bits[i] = rng.Float64() < u.q
		}
	}
	return bits
}

// VariancePerUser returns q(1−q)/(p−q)² + [p(1−p) − q(1−q)]·f/(p−q)² with the
// frequency term dropped (the standard approximate variance; exact for f→0).
func (u *Unary) VariancePerUser() float64 {
	d := u.p - u.q
	return u.q * (1 - u.q) / (d * d)
}

// NewAggregate returns a bit-count accumulator.
func (u *Unary) NewAggregate() Aggregate {
	return &unaryAgg{oracle: u, ones: make([]float64, u.n)}
}

type unaryAgg struct {
	oracle *Unary
	ones   []float64
	count  int
}

func (a *unaryAgg) Add(r Report) error {
	bits, ok := r.([]bool)
	if !ok || len(bits) != a.oracle.n {
		return errors.New("freqoracle: malformed unary report")
	}
	for i, b := range bits {
		if b {
			a.ones[i]++
		}
	}
	a.count++
	return nil
}

func (a *unaryAgg) Count() int { return a.count }

// Estimate inverts the bit-flip channel: ĉ_v = (ones_v − q·N)/(p − q).
func (a *unaryAgg) Estimate() []float64 {
	o := a.oracle
	out := make([]float64, o.n)
	d := o.p - o.q
	for v := range out {
		out[v] = (a.ones[v] - o.q*float64(a.count)) / d
	}
	return out
}

// ---------------------------------------------------------------------------
// Optimized Local Hashing (OLH)
// ---------------------------------------------------------------------------

// OLH is Optimized Local Hashing (Wang et al.): each user hashes their type
// into a small range g = ⌈e^ε⌉ + 1 with a per-user hash seed, then applies
// randomized response over the hash range. Communication is O(log g) and no
// n-sized state is ever sent.
type OLH struct {
	n   int
	eps float64
	g   int
	p   float64 // Pr[report the true hash value]
}

// NewOLH returns the OLH oracle with the variance-optimal hash range.
func NewOLH(n int, eps float64) (*OLH, error) {
	if n < 1 {
		return nil, errors.New("freqoracle: domain must be positive")
	}
	g := int(math.Round(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	e := math.Exp(eps)
	return &OLH{n: n, eps: eps, g: g, p: e / (e + float64(g) - 1)}, nil
}

func (o *OLH) Name() string { return "OLH" }

// Domain returns n.
func (o *OLH) Domain() int { return o.n }

// Epsilon returns ε.
func (o *OLH) Epsilon() float64 { return o.eps }

// HashRange returns g.
func (o *OLH) HashRange() int { return o.g }

// olhReport is (seed, perturbed hash value).
type olhReport struct {
	Seed  uint64
	Value int
}

// hashTo hashes (seed, v) into [0, g). The value bytes are fed first so they
// mix through the seed bytes' multiplications (feeding them last makes FNV's
// output differ by a fixed additive offset between adjacent values — a real
// pitfall that destroys the 1/g collision property), and a splitmix64
// finalizer avalanches the result before reduction.
func (o *OLH) hashTo(seed uint64, v int) int {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(v) >> (8 * i))
		buf[8+i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	x := h.Sum64()
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(o.g))
}

// Randomize hashes the user's type with a fresh seed and perturbs the hash
// value with randomized response over [0, g).
func (o *OLH) Randomize(v int, rng *rand.Rand) Report {
	if v < 0 || v >= o.n {
		panic(fmt.Sprintf("freqoracle: type %d out of domain %d", v, o.n))
	}
	seed := rng.Uint64()
	true_ := o.hashTo(seed, v)
	if rng.Float64() < o.p {
		return olhReport{Seed: seed, Value: true_}
	}
	// Report one of the other g−1 values uniformly.
	alt := rng.Intn(o.g - 1)
	if alt >= true_ {
		alt++
	}
	return olhReport{Seed: seed, Value: alt}
}

// VariancePerUser returns the Wang et al. OLH variance constant
// e^ε·... expressed through p and g: q = [p + (1−p)/(g−1)]·(1/g) support
// probability; the standard form is (q'(1−q'))/(p'−q')² with p' = p and
// q' = 1/g.
func (o *OLH) VariancePerUser() float64 {
	pPrime := o.p
	qPrime := 1 / float64(o.g)
	d := pPrime - qPrime
	return qPrime * (1 - qPrime) / (d * d)
}

// NewAggregate returns an OLH support-count accumulator. Estimation must scan
// each report against each candidate type, so Estimate costs O(N·n) — the
// known trade-off of OLH (cheap communication, expensive aggregation).
func (o *OLH) NewAggregate() Aggregate {
	return &olhAgg{oracle: o, support: make([]float64, o.n)}
}

type olhAgg struct {
	oracle  *OLH
	support []float64
	count   int
}

func (a *olhAgg) Add(r Report) error {
	rep, ok := r.(olhReport)
	if !ok {
		return errors.New("freqoracle: malformed OLH report")
	}
	if rep.Value < 0 || rep.Value >= a.oracle.g {
		return errors.New("freqoracle: OLH report value out of range")
	}
	// A report supports type v when v hashes to the reported value.
	for v := 0; v < a.oracle.n; v++ {
		if a.oracle.hashTo(rep.Seed, v) == rep.Value {
			a.support[v]++
		}
	}
	a.count++
	return nil
}

func (a *olhAgg) Count() int { return a.count }

// Estimate inverts the support channel: a true v is supported with
// probability p, any other with 1/g; ĉ_v = (support_v − N/g)/(p − 1/g).
func (a *olhAgg) Estimate() []float64 {
	o := a.oracle
	out := make([]float64, o.n)
	q := 1 / float64(o.g)
	d := o.p - q
	for v := range out {
		out[v] = (a.support[v] - q*float64(a.count)) / d
	}
	return out
}

// Run executes a full protocol for integer data vector x and returns the
// estimated counts.
func Run(o Oracle, x []float64, seed int64) ([]float64, error) {
	if len(x) != o.Domain() {
		return nil, fmt.Errorf("freqoracle: data length %d, domain %d", len(x), o.Domain())
	}
	rng := rand.New(rand.NewSource(seed))
	agg := o.NewAggregate()
	for v, cnt := range x {
		c := int(cnt)
		if float64(c) != cnt || c < 0 {
			return nil, fmt.Errorf("freqoracle: count x[%d] = %g is not a non-negative integer", v, cnt)
		}
		for j := 0; j < c; j++ {
			if err := agg.Add(o.Randomize(v, rng)); err != nil {
				return nil, err
			}
		}
	}
	return agg.Estimate(), nil
}
