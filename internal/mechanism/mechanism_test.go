package mechanism

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func rrStrategy(n int, eps float64) *strategy.Strategy {
	e := math.Exp(eps)
	q := linalg.New(n, n)
	denom := e + float64(n) - 1
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u {
				q.Set(o, u, e/denom)
			} else {
				q.Set(o, u, 1/denom)
			}
		}
	}
	return strategy.New(q, eps)
}

func TestFactorizationCachesRecon(t *testing.T) {
	f := NewFactorization("rr", rrStrategy(6, 1))
	w1 := workload.NewHistogram(6)
	w2 := workload.NewPrefix(6)
	if _, err := f.Profile(w1); err != nil {
		t.Fatal(err)
	}
	r1 := f.recon
	if _, err := f.Profile(w2); err != nil {
		t.Fatal(err)
	}
	if f.recon != r1 {
		t.Fatal("reconstruction not cached across workloads")
	}
}

func TestFactorizationRejectsRankDeficientWorkloads(t *testing.T) {
	// A strategy whose rows only span a 1-dimensional space cannot answer
	// the Histogram workload; Profile must say so rather than fabricate
	// numbers.
	q := linalg.New(2, 3)
	for u := 0; u < 3; u++ {
		q.Set(0, u, 0.5)
		q.Set(1, u, 0.5)
	}
	f := NewFactorization("constant", strategy.New(q, 1))
	_, err := f.Profile(workload.NewHistogram(3))
	if err == nil {
		t.Fatal("expected unsupported-workload error")
	}
	if !errors.Is(err, strategy.ErrUnsupportedWorkload) {
		t.Fatalf("error %v does not wrap ErrUnsupportedWorkload", err)
	}
}

func TestFactorizationRankDeficientButSupported(t *testing.T) {
	// The same constant strategy CAN answer the total-count workload
	// (W = all-ones row), which lies in its row space.
	q := linalg.New(2, 3)
	for u := 0; u < 3; u++ {
		q.Set(0, u, 0.5)
		q.Set(1, u, 0.5)
	}
	f := NewFactorization("constant", strategy.New(q, 1))
	total := workload.NewExplicit("Total", linalg.NewFrom(1, 3, []float64{1, 1, 1}))
	vp, err := f.Profile(total)
	if err != nil {
		t.Fatalf("total-count workload should be supported: %v", err)
	}
	// Every user deterministically contributes 1 to the total: variance 0.
	for _, v := range vp.PerUser {
		if v > 1e-9 {
			t.Fatalf("total-count variance = %v, want ~0", v)
		}
	}
}

func TestAdditivePinvCached(t *testing.T) {
	a := NewAdditive("test", linalg.Identity(4), 1, 2)
	if _, err := a.Profile(workload.NewHistogram(4)); err != nil {
		t.Fatal(err)
	}
	p1 := a.pinvA
	if _, err := a.Profile(workload.NewPrefix(4)); err != nil {
		t.Fatal(err)
	}
	if a.pinvA != p1 {
		t.Fatal("pseudo-inverse not cached")
	}
}

func TestAdditiveRectangularStrategy(t *testing.T) {
	// A tall strategy (more rows than columns): A = [I; I] halves the
	// effective noise variance because A⁺ = [I/2, I/2].
	a := linalg.Stack(linalg.Identity(3), linalg.Identity(3))
	tall := NewAdditive("tall", a, 1, 4)
	flat := NewAdditive("flat", linalg.Identity(3), 1, 4)
	w := workload.NewHistogram(3)
	vt, err := tall.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := flat.Profile(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vt.PerUser[0]*2-vf.PerUser[0]) > 1e-9 {
		t.Fatalf("stacked strategy variance %v, want half of %v", vt.PerUser[0], vf.PerUser[0])
	}
}

func TestSampleComplexitiesMatrix(t *testing.T) {
	ms := []Mechanism{
		NewFactorization("rr", rrStrategy(4, 1)),
		NewAdditive("laplace", linalg.Identity(4), 1, 8),
		NewFactorization("wrong-domain", rrStrategy(5, 1)),
	}
	ws := []workload.Workload{workload.NewHistogram(4), workload.NewPrefix(4)}
	sc := SampleComplexities(ms, ws, 0.01)
	if len(sc) != 3 || len(sc[0]) != 2 {
		t.Fatal("result shape wrong")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !(sc[i][j] > 0) || math.IsInf(sc[i][j], 1) {
				t.Fatalf("sc[%d][%d] = %v", i, j, sc[i][j])
			}
		}
	}
	// The mismatched mechanism yields +Inf, not a panic.
	if !math.IsInf(sc[2][0], 1) {
		t.Fatalf("expected +Inf for domain mismatch, got %v", sc[2][0])
	}
}

func TestPairwiseColumnDiameterPanicsOnBadNorm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported norm")
		}
	}()
	PairwiseColumnDiameter(linalg.Identity(2), 3)
}
