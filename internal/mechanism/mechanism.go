// Package mechanism defines the common evaluation interface shared by the
// optimized factorization mechanism and every baseline in the paper's
// experiments: a mechanism must report its per-user-type variance profile on
// a workload, from which worst-case / average / data-dependent variance and
// sample complexity all follow (Corollaries 3.5, 3.6, 5.3, 5.4).
package mechanism

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Mechanism is an ε-LDP mechanism evaluated against linear-query workloads.
type Mechanism interface {
	// Name identifies the mechanism, e.g. "Randomized Response".
	Name() string
	// Domain returns the domain size n the mechanism was built for.
	Domain() int
	// Epsilon returns the privacy budget the mechanism satisfies.
	Epsilon() float64
	// Profile returns the per-user-type variance profile on the workload,
	// using the mechanism's estimator for the workload answers.
	Profile(w workload.Workload) (*strategy.VarianceProfile, error)
}

// Factorization adapts a strategy matrix to the Mechanism interface, using
// the variance-optimal reconstruction V = W·B of Theorem 3.10 ("for each
// mechanism we use the same Q across different workloads, but change V based
// on the workload", Section 6.1). The reconstruction factor B is computed
// once and shared across workloads.
type Factorization struct {
	name     string
	strategy *strategy.Strategy
	recon    *strategy.Recon // cached rank-aware reconstruction
}

// NewFactorization wraps a strategy as a Mechanism.
func NewFactorization(name string, s *strategy.Strategy) *Factorization {
	return &Factorization{name: name, strategy: s}
}

// NewFactorizationWithPrior wraps a strategy whose reconstruction is tuned to
// a prior distribution over user types (footnote 2 of the paper): V is
// variance-optimal under the prior-weighted loss rather than the uniform one.
// The reported variance profile still follows Theorem 3.4, which holds for
// any V with VQ = W, so worst-case and data-dependent metrics remain exact.
func NewFactorizationWithPrior(name string, s *strategy.Strategy, prior []float64) (*Factorization, error) {
	r, err := s.ReconstructionWithWeights(prior)
	if err != nil {
		return nil, fmt.Errorf("mechanism: %s: %w", name, err)
	}
	return &Factorization{name: name, strategy: s, recon: r}, nil
}

func (f *Factorization) Name() string { return f.name }

// Domain returns the strategy's domain size.
func (f *Factorization) Domain() int { return f.strategy.Domain() }

// Epsilon returns the strategy's privacy budget.
func (f *Factorization) Epsilon() float64 { return f.strategy.Eps }

// Strategy exposes the wrapped strategy (e.g. for simulation).
func (f *Factorization) Strategy() *strategy.Strategy { return f.strategy }

// Profile computes per-user variances with the cached reconstruction factor.
func (f *Factorization) Profile(w workload.Workload) (*strategy.VarianceProfile, error) {
	if w.Domain() != f.Domain() {
		return nil, fmt.Errorf("mechanism: %s built for n=%d, workload has n=%d", f.name, f.Domain(), w.Domain())
	}
	if f.recon == nil {
		r, err := f.strategy.Reconstruction()
		if err != nil {
			return nil, fmt.Errorf("mechanism: %s: %w", f.name, err)
		}
		f.recon = r
	}
	// A rank-deficient strategy can only answer workloads in its row space
	// (constraint W = WQ⁺Q); anything else must fail loudly rather than
	// silently report the variance of a biased estimator.
	if err := f.recon.SupportsGram(w.Gram()); err != nil {
		return nil, fmt.Errorf("mechanism: %s: %w", f.name, err)
	}
	return f.strategy.VariancesWithRecon(w.Gram(), w.Queries(), f.recon.B)
}

// Additive is a mechanism of the form "each user reports A·e_u + noise",
// covering the distributed Matrix Mechanism (L1/Laplace and L2/Gaussian) and
// the Gaussian mechanism of Bassily [4]. The workload estimate is
// V·Σ reports with V = W·A⁺, so the per-user variance is the same for every
// user type: noiseVar·‖WA⁺‖²_F, where noiseVar is the per-coordinate noise
// variance required for ε-LDP.
type Additive struct {
	name string
	eps  float64
	// A is the k×n query strategy.
	A *linalg.Matrix
	// NoiseVar is the per-coordinate variance of the per-user noise.
	NoiseVar float64
	pinvA    *linalg.Matrix // cached A⁺
}

// NewAdditive wraps an additive-noise strategy. noiseVar must already be
// calibrated to ε (see internal/baselines for the calibration rules).
func NewAdditive(name string, a *linalg.Matrix, eps, noiseVar float64) *Additive {
	return &Additive{name: name, eps: eps, A: a, NoiseVar: noiseVar}
}

func (ad *Additive) Name() string { return ad.name }

// Domain returns the number of columns of A.
func (ad *Additive) Domain() int { return ad.A.Cols() }

// Epsilon returns the privacy budget.
func (ad *Additive) Epsilon() float64 { return ad.eps }

// Profile returns the (uniform) per-user variance profile: every user
// contributes noiseVar·‖WA⁺‖²_F because the noise is data-independent.
func (ad *Additive) Profile(w workload.Workload) (*strategy.VarianceProfile, error) {
	n := ad.Domain()
	if w.Domain() != n {
		return nil, fmt.Errorf("mechanism: %s built for n=%d, workload has n=%d", ad.name, n, w.Domain())
	}
	if ad.pinvA == nil {
		p, err := pinv(ad.A)
		if err != nil {
			return nil, fmt.Errorf("mechanism: %s: %w", ad.name, err)
		}
		ad.pinvA = p
	}
	// ‖WA⁺‖²_F = tr(A⁺ᵀ · WᵀW · A⁺).
	gp := linalg.Mul(w.Gram(), ad.pinvA)
	total := 0.0
	for i := 0; i < ad.pinvA.Rows(); i++ {
		total += linalg.Dot(ad.pinvA.Row(i), gp.Row(i))
	}
	v := ad.NoiseVar * total
	return &strategy.VarianceProfile{
		PerUser: linalg.Constant(n, v),
		Queries: w.Queries(),
	}, nil
}

// pinv computes the Moore–Penrose pseudo-inverse of a general matrix a via
// the PSD pseudo-inverse of its Gram matrix: A⁺ = (AᵀA)⁺Aᵀ.
func pinv(a *linalg.Matrix) (*linalg.Matrix, error) {
	g := linalg.Gram(a)
	gp, err := linalg.PinvPSD(g, 1e-12)
	if err != nil {
		return nil, err
	}
	return linalg.MulABt(gp, a), nil
}

// PairwiseColumnDiameter returns max_{u,v} ‖a_u − a_v‖ over columns of a, in
// the given norm (1 or 2). This is the exact LDP sensitivity of the additive
// report A·e_u: neighboring "databases" in the local model are two user
// types.
func PairwiseColumnDiameter(a *linalg.Matrix, norm int) float64 {
	n := a.Cols()
	cols := make([][]float64, n)
	for u := 0; u < n; u++ {
		cols[u] = a.Col(u)
	}
	maxD := 0.0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := 0.0
			switch norm {
			case 1:
				for i := range cols[u] {
					d += math.Abs(cols[u][i] - cols[v][i])
				}
			case 2:
				for i := range cols[u] {
					t := cols[u][i] - cols[v][i]
					d += t * t
				}
				d = math.Sqrt(d)
			default:
				panic(fmt.Sprintf("mechanism: unsupported norm %d", norm))
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// SampleComplexities evaluates every mechanism on every workload and returns
// sample complexities indexed [mechanism][workload]. A mechanism that fails
// on a workload (e.g. Q too restrictive) yields +Inf rather than an error, so
// comparative tables stay complete.
func SampleComplexities(ms []Mechanism, ws []workload.Workload, alpha float64) [][]float64 {
	out := make([][]float64, len(ms))
	for i, m := range ms {
		out[i] = make([]float64, len(ws))
		for j, w := range ws {
			vp, err := m.Profile(w)
			if err != nil {
				out[i][j] = math.Inf(1)
				continue
			}
			out[i][j] = vp.SampleComplexity(alpha)
		}
	}
	return out
}
