// Package mechflag resolves the mechanism-selection flags shared by the
// collector-facing commands (ldpserve, ldpfed): exactly one of an in-place
// oracle spec, a strategy wire file, or an oracle wire file. Keeping the
// resolution in one place guarantees a fed pointed at a shard's own flags
// reconstructs under the shard's exact mechanism.
package mechflag

import (
	"errors"
	"os"
	"strings"

	ldp "repro"
)

// Build resolves the flag triple to the protocol's server side. mech names
// an oracle family built in place at (n, eps); stratPath/oraclePath load a
// persisted wire file. Exactly one selector must be set.
func Build(mech string, n int, eps float64, stratPath, oraclePath string) (ldp.Aggregator, error) {
	set := 0
	for _, s := range []string{mech, stratPath, oraclePath} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("exactly one of -mech, -strategy, -oracle must be given")
	}
	switch {
	case stratPath != "":
		f, err := os.Open(stratPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := ldp.LoadStrategy(f)
		if err != nil {
			return nil, err
		}
		return ldp.NewAggregator(s)
	case oraclePath != "":
		f, err := os.Open(oraclePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		o, err := ldp.LoadOracle(f)
		if err != nil {
			return nil, err
		}
		return o, nil
	default:
		o, err := ldp.OracleByName(strings.ToUpper(mech), n, eps)
		if err != nil {
			return nil, err
		}
		return o, nil
	}
}
