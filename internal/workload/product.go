package workload

import (
	"fmt"

	"repro/internal/linalg"
)

// Product is the Kronecker product of two workloads: over the product domain
// U₁ × U₂ (flattened row-major, u = u₁·n₂ + u₂), it asks every pairwise
// combination of a query from W₁ and a query from W₂ — the standard way to
// express multi-dimensional workloads (e.g. 2-D range queries are
// Product(AllRange, AllRange)).
//
// Product preserves the library's implicit-representation economics:
// Gram(W₁⊗W₂) = Gram(W₁) ⊗ Gram(W₂), and MatVec factors into the parts'
// operators applied along each axis, so a 2-D all-range workload over a
// 64×64 grid (4 160 000 queries) never materializes anything larger than
// its 4096×4096 Gram matrix.
type Product struct {
	a, b Workload
	gramCache
}

// NewProduct returns the Kronecker product workload a ⊗ b.
func NewProduct(a, b Workload) *Product {
	return &Product{a: a, b: b}
}

func (p *Product) Name() string { return fmt.Sprintf("%s⊗%s", p.a.Name(), p.b.Name()) }

// Domain returns n₁·n₂.
func (p *Product) Domain() int { return p.a.Domain() * p.b.Domain() }

// Queries returns p₁·p₂.
func (p *Product) Queries() int { return p.a.Queries() * p.b.Queries() }

// Gram returns Gram(a) ⊗ Gram(b): (A⊗B)ᵀ(A⊗B) = (AᵀA)⊗(BᵀB).
func (p *Product) Gram() *linalg.Matrix {
	return p.cached(func() *linalg.Matrix {
		return linalg.Kron(p.a.Gram(), p.b.Gram())
	})
}

// FrobNorm2 returns ‖A‖²_F · ‖B‖²_F.
func (p *Product) FrobNorm2() float64 { return p.a.FrobNorm2() * p.b.FrobNorm2() }

// MatVec computes (A⊗B)x by reshaping x into an n₁×n₂ matrix X and applying
// the parts along each axis: result = A·X·Bᵀ flattened, using only the
// parts' implicit operators.
func (p *Product) MatVec(x []float64) []float64 {
	n1, n2 := p.a.Domain(), p.b.Domain()
	p1, p2 := p.a.Queries(), p.b.Queries()
	checkLen(len(x), n1*n2)
	// Step 1: apply B to every row of X: T (n1 × p2).
	t := make([]float64, n1*p2)
	for i := 0; i < n1; i++ {
		row := p.b.MatVec(x[i*n2 : (i+1)*n2])
		copy(t[i*p2:(i+1)*p2], row)
	}
	// Step 2: apply A to every column of T: out (p1 × p2).
	out := make([]float64, p1*p2)
	col := make([]float64, n1)
	for j := 0; j < p2; j++ {
		for i := 0; i < n1; i++ {
			col[i] = t[i*p2+j]
		}
		res := p.a.MatVec(col)
		for i := 0; i < p1; i++ {
			out[i*p2+j] = res[i]
		}
	}
	return out
}

// TMatVec computes (A⊗B)ᵀy via the parts' transposed operators.
func (p *Product) TMatVec(y []float64) []float64 {
	n1, n2 := p.a.Domain(), p.b.Domain()
	p1, p2 := p.a.Queries(), p.b.Queries()
	checkLen(len(y), p1*p2)
	// Step 1: apply Bᵀ to every row of Y: T (p1 × n2).
	t := make([]float64, p1*n2)
	for i := 0; i < p1; i++ {
		row := p.b.TMatVec(y[i*p2 : (i+1)*p2])
		copy(t[i*n2:(i+1)*n2], row)
	}
	// Step 2: apply Aᵀ to every column of T: out (n1 × n2).
	out := make([]float64, n1*n2)
	col := make([]float64, p1)
	for j := 0; j < n2; j++ {
		for i := 0; i < p1; i++ {
			col[i] = t[i*n2+j]
		}
		res := p.a.TMatVec(col)
		for i := 0; i < n1; i++ {
			out[i*n2+j] = res[i]
		}
	}
	return out
}

// Matrix materializes A ⊗ B. Beware of the p₁p₂ × n₁n₂ size.
func (p *Product) Matrix() *linalg.Matrix {
	return linalg.Kron(p.a.Matrix(), p.b.Matrix())
}

// Parts returns the two factor workloads.
func (p *Product) Parts() (Workload, Workload) { return p.a, p.b }
