package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestDyadicShapes(t *testing.T) {
	d := NewDyadic(3)
	if d.Domain() != 8 || d.Queries() != 15 || d.Depth() != 3 {
		t.Fatalf("shape: n=%d p=%d k=%d", d.Domain(), d.Queries(), d.Depth())
	}
	// k = 0: single total-count query.
	d0 := NewDyadic(0)
	if d0.Domain() != 1 || d0.Queries() != 1 {
		t.Fatal("Dyadic(0) wrong")
	}
}

func TestDyadicGramMatchesExplicit(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 4} {
		d := NewDyadic(k)
		explicit := linalg.Gram(d.Matrix())
		if !linalg.ApproxEqual(d.Gram(), explicit, 1e-9) {
			t.Fatalf("k=%d: closed-form Gram != explicit", k)
		}
		if math.Abs(d.FrobNorm2()-d.Gram().Trace()) > 1e-9 {
			t.Fatalf("k=%d: FrobNorm2 mismatch", k)
		}
	}
}

func TestDyadicMatVecMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDyadic(4)
	x := randVec(rng, d.Domain())
	got := d.MatVec(x)
	want := d.Matrix().MulVec(x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	y := randVec(rng, d.Queries())
	gotT := d.TMatVec(y)
	wantT := d.Matrix().MulVecT(y)
	for i := range wantT {
		if math.Abs(gotT[i]-wantT[i]) > 1e-9 {
			t.Fatalf("TMatVec[%d] = %v, want %v", i, gotT[i], wantT[i])
		}
	}
}

func TestDyadicSemantics(t *testing.T) {
	d := NewDyadic(2) // domain 4, queries: [0,3], [0,1], [2,3], {0},{1},{2},{3}
	x := []float64{1, 2, 3, 4}
	got := d.MatVec(x)
	want := []float64{10, 3, 7, 1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dyadic sums = %v, want %v", got, want)
		}
	}
}

func TestDyadicRowsAreIndicators(t *testing.T) {
	w := NewDyadic(3).Matrix()
	for i := 0; i < w.Rows(); i++ {
		sum := 0.0
		for j := 0; j < w.Cols(); j++ {
			v := w.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("non-indicator value %v", v)
			}
			sum += v
		}
		// Every dyadic cell has power-of-two width.
		if sum == 0 || (int(sum)&(int(sum)-1)) != 0 {
			t.Fatalf("row %d covers %v cells (not a power of two)", i, sum)
		}
	}
}
