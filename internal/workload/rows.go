package workload

import (
	"fmt"
	"math/bits"

	"repro/internal/linalg"
)

// RowAccessor is the optional per-row view of a workload: QueryRow overwrites
// dst (length Domain()) with row i of W without materializing the matrix.
// Every built-in family implements it; the streaming read path uses it to
// answer workloads whose full W (or W·B) materialization would blow the
// in-memory bound, one row at a time. Rows are produced with exactly the
// arithmetic Matrix() would use for the same entries, so a computation folded
// over QueryRow is bit-identical to the same computation over Matrix().
type RowAccessor interface {
	QueryRow(i int, dst []float64)
}

// checkRow panics when query-row index i falls outside [0, p), matching the
// package's checkLen discipline for caller errors.
func checkRow(i, p int) {
	if i < 0 || i >= p {
		panic(fmt.Sprintf("workload: query row %d out of range [0,%d)", i, p))
	}
}

// QueryRow writes e_i (row i of the identity).
func (h *Histogram) QueryRow(i int, dst []float64) {
	checkRow(i, h.n)
	checkLen(len(dst), h.n)
	clear(dst)
	dst[i] = 1
}

// QueryRow writes the indicator of [0, i].
func (p *Prefix) QueryRow(i int, dst []float64) {
	checkRow(i, p.n)
	checkLen(len(dst), p.n)
	clear(dst)
	for j := 0; j <= i; j++ {
		dst[j] = 1
	}
}

// QueryRow writes the indicator of the r-th range under the row ordering
// (0,0),(0,1),…,(0,n−1),(1,1),…: block i holds the n−i ranges starting at i.
func (a *AllRange) QueryRow(r int, dst []float64) {
	checkRow(r, a.Queries())
	checkLen(len(dst), a.n)
	i := 0
	for r >= a.n-i {
		r -= a.n - i
		i++
	}
	clear(dst)
	for k := i; k <= i+r; k++ {
		dst[k] = 1
	}
}

// QueryRow writes the indicator of the r-th marginal cell: subsets in family
// order, then assignments t in compressed order within each subset.
func (m *Marginals) QueryRow(r int, dst []float64) {
	checkRow(r, m.Queries())
	n := m.Domain()
	checkLen(len(dst), n)
	s, t := 0, 0
	for _, sub := range m.subs {
		cells := 1 << bits.OnesCount(uint(sub))
		if r < cells {
			s, t = sub, r
			break
		}
		r -= cells
	}
	clear(dst)
	for u := 0; u < n; u++ {
		if compress(u, s, m.d) == t {
			dst[u] = 1
		}
	}
}

// QueryRow writes Hadamard row s: dst[u] = (−1)^{⟨s,u⟩}.
func (p *Parity) QueryRow(s int, dst []float64) {
	n := p.Domain()
	checkRow(s, n)
	checkLen(len(dst), n)
	for u := 0; u < n; u++ {
		if bits.OnesCount(uint(s&u))&1 == 1 {
			dst[u] = -1
		} else {
			dst[u] = 1
		}
	}
}

// QueryRow writes the indicator of window [i, i+w−1].
func (r *WidthRange) QueryRow(i int, dst []float64) {
	checkRow(i, r.Queries())
	checkLen(len(dst), r.n)
	clear(dst)
	for k := i; k < i+r.w; k++ {
		dst[k] = 1
	}
}

// QueryRow writes the indicator of the r-th dyadic interval: levels ℓ = 0..k
// in order, cells left to right within each level.
func (d *Dyadic) QueryRow(r int, dst []float64) {
	checkRow(r, d.Queries())
	n := d.Domain()
	checkLen(len(dst), n)
	ell := 0
	for r >= 1<<ell {
		r -= 1 << ell
		ell++
	}
	width := 1 << (d.k - ell)
	clear(dst)
	for u := r * width; u < (r+1)*width; u++ {
		dst[u] = 1
	}
}

// QueryRow copies row i of the wrapped matrix.
func (e *Explicit) QueryRow(i int, dst []float64) {
	checkRow(i, e.w.Rows())
	checkLen(len(dst), e.w.Cols())
	copy(dst, e.w.Row(i))
}

// QueryRow locates the part holding row i and writes its weighted row.
func (s *Stacked) QueryRow(i int, dst []float64) {
	checkRow(i, s.Queries())
	checkLen(len(dst), s.Domain())
	for pi, p := range s.parts {
		if i < p.Queries() {
			rowInto(p, i, dst)
			linalg.ScaleVec(s.weights[pi], dst)
			return
		}
		i -= p.Queries()
	}
}

// QueryRow writes the Kronecker product of the factor rows: for row
// r = i₁·p₂ + i₂, dst[u₁·n₂+u₂] = A[i₁,u₁]·B[i₂,u₂] — the entry order and
// products linalg.Kron would produce for the same row.
func (p *Product) QueryRow(r int, dst []float64) {
	checkRow(r, p.Queries())
	n1, n2 := p.a.Domain(), p.b.Domain()
	checkLen(len(dst), n1*n2)
	p2 := p.b.Queries()
	arow := make([]float64, n1)
	brow := make([]float64, n2)
	rowInto(p.a, r/p2, arow)
	rowInto(p.b, r%p2, brow)
	for u1 := 0; u1 < n1; u1++ {
		av := arow[u1]
		for u2 := 0; u2 < n2; u2++ {
			dst[u1*n2+u2] = av * brow[u2]
		}
	}
}

// rowInto fills dst with row i of w: through the workload's own QueryRow when
// it has one, otherwise via the generic identity row i of W = Wᵀe_i (O(p)
// scratch — only composite parts wrapping a foreign Workload pay it).
func rowInto(w Workload, i int, dst []float64) {
	if ra, ok := w.(RowAccessor); ok {
		ra.QueryRow(i, dst)
		return
	}
	y := make([]float64, w.Queries())
	y[i] = 1
	copy(dst, w.TMatVec(y))
}
