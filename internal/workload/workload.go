// Package workload defines linear-query workloads (Definition 2.3 of the
// paper): a workload is a p×n matrix W whose rows are linear counting queries
// over a data vector of length n.
//
// Every workload used in the paper's evaluation (Histogram, Prefix, AllRange,
// AllMarginals, 3-Way Marginals, Parity) is provided. Workloads expose their
// Gram matrix WᵀW through a closed form whenever one exists, because every
// variance/objective computation in the factorization mechanism depends on W
// only through WᵀW (Theorem 3.11 and the variance identities in
// internal/strategy). This lets us evaluate huge workloads — AllRange on
// n=1024 has 524 800 rows — without ever materializing W.
//
// Workloads also implement fast implicit MatVec (y = Wx) and TMatVec
// (z = Wᵀy) operators, used by the WNNLS post-processing step and by the
// end-to-end simulator.
package workload

import (
	"fmt"
	"math/bits"

	"repro/internal/hadamard"
	"repro/internal/linalg"
)

// Workload is a p×n matrix of linear counting queries, represented implicitly.
type Workload interface {
	// Name identifies the workload family, e.g. "Prefix".
	Name() string
	// Domain returns n, the number of user types (columns of W).
	Domain() int
	// Queries returns p, the number of workload queries (rows of W).
	Queries() int
	// Gram returns WᵀW as an n×n matrix. Implementations may cache; callers
	// must not mutate the result.
	Gram() *linalg.Matrix
	// FrobNorm2 returns ‖W‖²_F = tr(WᵀW).
	FrobNorm2() float64
	// MatVec returns W·x (the exact workload answers on data vector x).
	MatVec(x []float64) []float64
	// TMatVec returns Wᵀ·y.
	TMatVec(y []float64) []float64
	// Matrix materializes W explicitly. It may be expensive for large
	// workloads; prefer Gram/MatVec where possible.
	Matrix() *linalg.Matrix
}

// gramCache provides lazy caching of the Gram matrix for implementations.
type gramCache struct {
	gram *linalg.Matrix
}

func (g *gramCache) cached(build func() *linalg.Matrix) *linalg.Matrix {
	if g.gram == nil {
		g.gram = build()
	}
	return g.gram
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

// Histogram is the identity workload I_n: one point query per user type.
type Histogram struct {
	n int
	gramCache
}

// NewHistogram returns the Histogram workload on a domain of size n.
func NewHistogram(n int) *Histogram {
	mustPositive(n)
	return &Histogram{n: n}
}

func (h *Histogram) Name() string { return "Histogram" }

// Domain returns the domain size n.
func (h *Histogram) Domain() int { return h.n }

// Queries returns the number of queries, n.
func (h *Histogram) Queries() int { return h.n }

// Gram returns the identity matrix.
func (h *Histogram) Gram() *linalg.Matrix {
	return h.cached(func() *linalg.Matrix { return linalg.Identity(h.n) })
}

// FrobNorm2 returns n.
func (h *Histogram) FrobNorm2() float64 { return float64(h.n) }

// MatVec returns a copy of x.
func (h *Histogram) MatVec(x []float64) []float64 {
	checkLen(len(x), h.n)
	return linalg.CloneVec(x)
}

// TMatVec returns a copy of y.
func (h *Histogram) TMatVec(y []float64) []float64 {
	checkLen(len(y), h.n)
	return linalg.CloneVec(y)
}

// Matrix returns the n×n identity.
func (h *Histogram) Matrix() *linalg.Matrix { return linalg.Identity(h.n) }

// ---------------------------------------------------------------------------
// Prefix
// ---------------------------------------------------------------------------

// Prefix is the workload of all prefix-range queries [0, k], k = 0..n-1
// (Example 2.4): W is the lower-triangular all-ones matrix. Answering Prefix
// yields the unnormalized empirical CDF.
type Prefix struct {
	n int
	gramCache
}

// NewPrefix returns the Prefix workload on a domain of size n.
func NewPrefix(n int) *Prefix {
	mustPositive(n)
	return &Prefix{n: n}
}

func (p *Prefix) Name() string { return "Prefix" }

// Domain returns the domain size n.
func (p *Prefix) Domain() int { return p.n }

// Queries returns the number of queries, n.
func (p *Prefix) Queries() int { return p.n }

// Gram returns WᵀW with the closed form (WᵀW)_{ij} = n − max(i, j): entry
// (i, j) counts prefixes [0,k] that contain both i and j, i.e. k ≥ max(i,j).
func (p *Prefix) Gram() *linalg.Matrix {
	return p.cached(func() *linalg.Matrix {
		g := linalg.New(p.n, p.n)
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				g.Set(i, j, float64(p.n-max(i, j)))
			}
		}
		return g
	})
}

// FrobNorm2 returns Σ_{k=1..n} k = n(n+1)/2.
func (p *Prefix) FrobNorm2() float64 { return float64(p.n) * float64(p.n+1) / 2 }

// MatVec returns the prefix sums of x in O(n).
func (p *Prefix) MatVec(x []float64) []float64 {
	checkLen(len(x), p.n)
	out := make([]float64, p.n)
	run := 0.0
	for i, v := range x {
		run += v
		out[i] = run
	}
	return out
}

// TMatVec returns Wᵀy: (Wᵀy)_u = Σ_{k ≥ u} y_k, a suffix sum in O(n).
func (p *Prefix) TMatVec(y []float64) []float64 {
	checkLen(len(y), p.n)
	out := make([]float64, p.n)
	run := 0.0
	for i := p.n - 1; i >= 0; i-- {
		run += y[i]
		out[i] = run
	}
	return out
}

// Matrix returns the lower-triangular all-ones matrix.
func (p *Prefix) Matrix() *linalg.Matrix {
	w := linalg.New(p.n, p.n)
	for i := 0; i < p.n; i++ {
		row := w.Row(i)
		for j := 0; j <= i; j++ {
			row[j] = 1
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// AllRange
// ---------------------------------------------------------------------------

// AllRange is the workload of all contiguous range queries [i, j] with
// 0 ≤ i ≤ j < n; it has n(n+1)/2 queries. Query rows are ordered
// (0,0),(0,1),...,(0,n-1),(1,1),...,(n-1,n-1).
type AllRange struct {
	n int
	gramCache
}

// NewAllRange returns the AllRange workload on a domain of size n.
func NewAllRange(n int) *AllRange {
	mustPositive(n)
	return &AllRange{n: n}
}

func (a *AllRange) Name() string { return "AllRange" }

// Domain returns the domain size n.
func (a *AllRange) Domain() int { return a.n }

// Queries returns n(n+1)/2.
func (a *AllRange) Queries() int { return a.n * (a.n + 1) / 2 }

// Gram returns WᵀW with the closed form (WᵀW)_{uv} = (min(u,v)+1)(n−max(u,v)):
// a range [i, j] contains both u and v iff i ≤ min(u,v) and j ≥ max(u,v).
func (a *AllRange) Gram() *linalg.Matrix {
	return a.cached(func() *linalg.Matrix {
		g := linalg.New(a.n, a.n)
		for u := 0; u < a.n; u++ {
			for v := 0; v < a.n; v++ {
				g.Set(u, v, float64((min(u, v)+1)*(a.n-max(u, v))))
			}
		}
		return g
	})
}

// FrobNorm2 returns Σ_u (u+1)(n−u), the total number of (range, point)
// incidences.
func (a *AllRange) FrobNorm2() float64 {
	s := 0.0
	for u := 0; u < a.n; u++ {
		s += float64((u + 1) * (a.n - u))
	}
	return s
}

// rangeIndex returns the row index of range [i, j] under the row ordering.
func (a *AllRange) rangeIndex(i, j int) int {
	// Ranges starting at i occupy a block of (n - i) rows.
	// Offset of block i: Σ_{t<i} (n−t) = i*n − i(i−1)/2.
	return i*a.n - i*(i-1)/2 + (j - i)
}

// MatVec computes all range sums from the prefix sums of x in O(p).
func (a *AllRange) MatVec(x []float64) []float64 {
	checkLen(len(x), a.n)
	prefix := make([]float64, a.n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	out := make([]float64, a.Queries())
	at := 0
	for i := 0; i < a.n; i++ {
		for j := i; j < a.n; j++ {
			out[at] = prefix[j+1] - prefix[i]
			at++
		}
	}
	return out
}

// TMatVec computes (Wᵀy)_u = Σ_{[i,j] ∋ u} y_{ij} in O(p) using running sums.
func (a *AllRange) TMatVec(y []float64) []float64 {
	checkLen(len(y), a.Queries())
	// (Wᵀy)_u = Σ_{i ≤ u} Σ_{j ≥ u} y[i,j]. Let S(i, u) = Σ_{j ≥ u} y[i, j]
	// (a suffix sum within block i). Then (Wᵀy)_u = Σ_{i ≤ u} S(i, u).
	// We sweep u from n−1 down to 0 maintaining S(i, u) incrementally.
	out := make([]float64, a.n)
	s := make([]float64, a.n) // s[i] = S(i, u+1), updated to S(i, u)
	for u := a.n - 1; u >= 0; u-- {
		tot := 0.0
		for i := 0; i <= u; i++ {
			s[i] += y[a.rangeIndex(i, u)]
			tot += s[i]
		}
		out[u] = tot
	}
	return out
}

// Matrix materializes the full n(n+1)/2 × n range workload.
func (a *AllRange) Matrix() *linalg.Matrix {
	w := linalg.New(a.Queries(), a.n)
	at := 0
	for i := 0; i < a.n; i++ {
		for j := i; j < a.n; j++ {
			row := w.Row(at)
			for k := i; k <= j; k++ {
				row[k] = 1
			}
			at++
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// Marginals over a binary domain
// ---------------------------------------------------------------------------

// Marginals is the workload of marginal queries over the binary domain
// {0,1}^d (n = 2^d). For every attribute subset S in the chosen family and
// every assignment t ∈ {0,1}^|S|, it contains the query counting users u with
// u_S = t.
//
// Two families are provided: All (every S ⊆ [d]; p = 3^d queries, the paper's
// "All Marginals") and exactly-k (every S with |S| = k; the paper's "3-Way
// Marginals" with k = 3).
type Marginals struct {
	d    int
	k    int // -1 means all subsets; otherwise exactly-k subsets
	name string
	subs []int // subset bitmasks in family order, built at construction so
	// concurrent per-row reads (QueryRow) share it without a lazy-init race
	gramCache
}

// NewAllMarginals returns the All Marginals workload over {0,1}^d.
func NewAllMarginals(d int) *Marginals {
	mustPositive(d)
	m := &Marginals{d: d, k: -1, name: "AllMarginals"}
	m.subs = m.subsets()
	return m
}

// NewKWayMarginals returns the workload of all k-way marginals (subsets of
// exactly k attributes) over {0,1}^d.
func NewKWayMarginals(d, k int) *Marginals {
	mustPositive(d)
	if k < 0 || k > d {
		panic(fmt.Sprintf("workload: k = %d out of range for d = %d", k, d))
	}
	m := &Marginals{d: d, k: k, name: fmt.Sprintf("%d-WayMarginals", k)}
	m.subs = m.subsets()
	return m
}

func (m *Marginals) Name() string { return m.name }

// Dims returns the number of binary attributes d.
func (m *Marginals) Dims() int { return m.d }

// Domain returns 2^d.
func (m *Marginals) Domain() int { return 1 << m.d }

// Queries returns 3^d for All Marginals and C(d,k)·2^k for k-way marginals.
func (m *Marginals) Queries() int {
	if m.k < 0 {
		p := 1
		for i := 0; i < m.d; i++ {
			p *= 3
		}
		return p
	}
	return binom(m.d, m.k) * (1 << m.k)
}

// subsets returns the attribute subsets in the family as bitmasks.
func (m *Marginals) subsets() []int {
	var out []int
	for s := 0; s < 1<<m.d; s++ {
		if m.k < 0 || bits.OnesCount(uint(s)) == m.k {
			out = append(out, s)
		}
	}
	return out
}

// Gram returns WᵀW using the closed form: for user types u, v with
// a = d − Hamming(u, v) agreeing attributes, the number of (S, t) queries
// containing both is the number of subsets S in the family with S a subset of
// the agreeing attributes: 2^a for All Marginals, C(a, k) for k-way.
func (m *Marginals) Gram() *linalg.Matrix {
	return m.cached(func() *linalg.Matrix {
		n := m.Domain()
		g := linalg.New(n, n)
		// Precompute value per agreement count.
		byAgree := make([]float64, m.d+1)
		for a := 0; a <= m.d; a++ {
			if m.k < 0 {
				byAgree[a] = float64(int(1) << a)
			} else {
				byAgree[a] = float64(binom(a, m.k))
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				a := m.d - bits.OnesCount(uint(u^v))
				g.Set(u, v, byAgree[a])
			}
		}
		return g
	})
}

// FrobNorm2 returns n · (#subsets counted per element): every user type lies
// in exactly one cell of each marginal, so the diagonal of WᵀW is constant.
func (m *Marginals) FrobNorm2() float64 {
	n := float64(m.Domain())
	if m.k < 0 {
		return n * float64(int(1)<<m.d)
	}
	return n * float64(binom(m.d, m.k))
}

// MatVec computes the marginal tables of x: for each subset S and assignment
// t, the count of u with u_S = t.
func (m *Marginals) MatVec(x []float64) []float64 {
	n := m.Domain()
	checkLen(len(x), n)
	out := make([]float64, 0, m.Queries())
	for _, s := range m.subsets() {
		table := marginalize(x, m.d, s)
		out = append(out, table...)
	}
	return out
}

// TMatVec computes Wᵀy: each query (S, t) contributes y_{S,t} to every u with
// u_S = t.
func (m *Marginals) TMatVec(y []float64) []float64 {
	n := m.Domain()
	checkLen(len(y), m.Queries())
	out := make([]float64, n)
	at := 0
	for _, s := range m.subsets() {
		cells := 1 << bits.OnesCount(uint(s))
		for u := 0; u < n; u++ {
			out[u] += y[at+compress(u, s, m.d)]
		}
		at += cells
	}
	return out
}

// Matrix materializes the marginals workload (p × 2^d).
func (m *Marginals) Matrix() *linalg.Matrix {
	n := m.Domain()
	w := linalg.New(m.Queries(), n)
	at := 0
	for _, s := range m.subsets() {
		cells := 1 << bits.OnesCount(uint(s))
		for u := 0; u < n; u++ {
			w.Set(at+compress(u, s, m.d), u, 1)
		}
		at += cells
	}
	return w
}

// marginalize sums x over the attributes not in subset s, returning the
// marginal table indexed by the compressed assignment of s's attributes.
func marginalize(x []float64, d, s int) []float64 {
	cells := 1 << bits.OnesCount(uint(s))
	table := make([]float64, cells)
	for u := range x {
		table[compress(u, s, d)] += x[u]
	}
	return table
}

// compress extracts the bits of u at the positions set in s, packing them into
// consecutive low bits (attribute order preserved).
func compress(u, s, d int) int {
	out, at := 0, 0
	for b := 0; b < d; b++ {
		if s&(1<<b) != 0 {
			if u&(1<<b) != 0 {
				out |= 1 << at
			}
			at++
		}
	}
	return out
}

// binom returns C(n, k) (0 when k > n or k < 0).
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

// ---------------------------------------------------------------------------
// Parity
// ---------------------------------------------------------------------------

// Parity is the workload of all parity (character) queries over {0,1}^d:
// for every S ⊆ [d], the query w_S(u) = (−1)^{⟨u,S⟩}. W equals the ±1
// Sylvester–Hadamard matrix H_n, so WᵀW = n·I. This is the hardest workload in
// the paper's evaluation (largest nuclear norm relative to its size).
type Parity struct {
	d int
	gramCache
}

// NewParity returns the Parity workload over {0,1}^d.
func NewParity(d int) *Parity {
	mustPositive(d)
	return &Parity{d: d}
}

func (p *Parity) Name() string { return "Parity" }

// Dims returns d.
func (p *Parity) Dims() int { return p.d }

// Domain returns 2^d.
func (p *Parity) Domain() int { return 1 << p.d }

// Queries returns 2^d (one query per subset S).
func (p *Parity) Queries() int { return 1 << p.d }

// Gram returns n·I (Hadamard rows are orthogonal with norm √n).
func (p *Parity) Gram() *linalg.Matrix {
	return p.cached(func() *linalg.Matrix {
		n := p.Domain()
		g := linalg.New(n, n)
		for i := 0; i < n; i++ {
			g.Set(i, i, float64(n))
		}
		return g
	})
}

// FrobNorm2 returns n².
func (p *Parity) FrobNorm2() float64 {
	n := float64(p.Domain())
	return n * n
}

// MatVec applies the fast Walsh–Hadamard transform in O(n log n).
func (p *Parity) MatVec(x []float64) []float64 {
	n := p.Domain()
	checkLen(len(x), n)
	out := linalg.CloneVec(x)
	if err := hadamard.FWHT(out); err != nil {
		panic(err) // unreachable: the domain is a power of two by construction
	}
	return out
}

// TMatVec equals MatVec because H is symmetric.
func (p *Parity) TMatVec(y []float64) []float64 { return p.MatVec(y) }

// Matrix returns the ±1 Hadamard matrix H_{2^d} with H_{s,u} = (−1)^{⟨s,u⟩}.
func (p *Parity) Matrix() *linalg.Matrix {
	m, err := hadamard.Matrix(p.Domain())
	if err != nil {
		panic(err) // unreachable: the domain is a power of two by construction
	}
	return m
}

// ---------------------------------------------------------------------------
// Width-w ranges (extension workload used in examples/ablation)
// ---------------------------------------------------------------------------

// WidthRange is the workload of all contiguous ranges of a fixed width w:
// queries [i, i+w-1] for i = 0..n-w. A sliding-window / moving-count workload.
type WidthRange struct {
	n, w int
	gramCache
}

// NewWidthRange returns the workload of all width-w ranges over domain n.
func NewWidthRange(n, w int) *WidthRange {
	mustPositive(n)
	if w < 1 || w > n {
		panic(fmt.Sprintf("workload: width %d out of range for n = %d", w, n))
	}
	return &WidthRange{n: n, w: w}
}

func (r *WidthRange) Name() string { return fmt.Sprintf("Width%dRange", r.w) }

// Domain returns n.
func (r *WidthRange) Domain() int { return r.n }

// Queries returns n − w + 1.
func (r *WidthRange) Queries() int { return r.n - r.w + 1 }

// Gram returns WᵀW: entry (u,v) counts windows covering both u and v, which is
// max(0, min(u,v) − max(u,v) + w) intersected with valid window starts.
func (r *WidthRange) Gram() *linalg.Matrix {
	return r.cached(func() *linalg.Matrix {
		g := linalg.New(r.n, r.n)
		for u := 0; u < r.n; u++ {
			for v := 0; v < r.n; v++ {
				lo := max(0, max(u, v)-r.w+1)
				hi := min(r.n-r.w, min(u, v))
				if hi >= lo {
					g.Set(u, v, float64(hi-lo+1))
				}
			}
		}
		return g
	})
}

// FrobNorm2 returns tr(WᵀW).
func (r *WidthRange) FrobNorm2() float64 { return r.Gram().Trace() }

// MatVec returns the sliding-window sums in O(n).
func (r *WidthRange) MatVec(x []float64) []float64 {
	checkLen(len(x), r.n)
	out := make([]float64, r.Queries())
	run := 0.0
	for i := 0; i < r.w; i++ {
		run += x[i]
	}
	out[0] = run
	for i := 1; i < len(out); i++ {
		run += x[i+r.w-1] - x[i-1]
		out[i] = run
	}
	return out
}

// TMatVec returns Wᵀy in O(n) via a difference array.
func (r *WidthRange) TMatVec(y []float64) []float64 {
	checkLen(len(y), r.Queries())
	diff := make([]float64, r.n+1)
	for i, v := range y {
		diff[i] += v
		diff[i+r.w] -= v
	}
	out := make([]float64, r.n)
	run := 0.0
	for i := 0; i < r.n; i++ {
		run += diff[i]
		out[i] = run
	}
	return out
}

// Matrix materializes the width-w range workload.
func (r *WidthRange) Matrix() *linalg.Matrix {
	w := linalg.New(r.Queries(), r.n)
	for i := 0; i < r.Queries(); i++ {
		row := w.Row(i)
		for k := i; k < i+r.w; k++ {
			row[k] = 1
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// Explicit
// ---------------------------------------------------------------------------

// Explicit wraps an arbitrary materialized workload matrix. The paper allows W
// to be completely arbitrary, including repeated or linearly dependent rows.
type Explicit struct {
	name string
	w    *linalg.Matrix
	gramCache
}

// NewExplicit wraps matrix w as a workload. The matrix is used directly, not
// copied.
func NewExplicit(name string, w *linalg.Matrix) *Explicit {
	return &Explicit{name: name, w: w}
}

func (e *Explicit) Name() string { return e.name }

// Domain returns the number of columns of W.
func (e *Explicit) Domain() int { return e.w.Cols() }

// Queries returns the number of rows of W.
func (e *Explicit) Queries() int { return e.w.Rows() }

// Gram computes and caches WᵀW.
func (e *Explicit) Gram() *linalg.Matrix {
	return e.cached(func() *linalg.Matrix { return linalg.Gram(e.w) })
}

// FrobNorm2 returns ‖W‖²_F.
func (e *Explicit) FrobNorm2() float64 { return e.w.FrobNorm2() }

// MatVec returns W·x.
func (e *Explicit) MatVec(x []float64) []float64 { return e.w.MulVec(x) }

// TMatVec returns Wᵀ·y.
func (e *Explicit) TMatVec(y []float64) []float64 { return e.w.MulVecT(y) }

// Matrix returns the wrapped matrix (not a copy).
func (e *Explicit) Matrix() *linalg.Matrix { return e.w }

// ---------------------------------------------------------------------------
// Stacked (weighted union)
// ---------------------------------------------------------------------------

// Stacked concatenates several workloads over the same domain, each scaled by
// a weight expressing its relative importance (the workload semantics of
// Section 1: "the exact queries they care about most, and their relative
// importance").
type Stacked struct {
	name    string
	parts   []Workload
	weights []float64
	gramCache
}

// NewStacked concatenates the given workloads with the given weights. All
// parts must share a domain; weights must be positive and match parts in
// length.
func NewStacked(name string, parts []Workload, weights []float64) *Stacked {
	if len(parts) == 0 {
		panic("workload: Stacked needs at least one part")
	}
	if len(weights) != len(parts) {
		panic("workload: Stacked weights/parts length mismatch")
	}
	n := parts[0].Domain()
	for _, p := range parts {
		if p.Domain() != n {
			panic("workload: Stacked domain mismatch")
		}
	}
	for _, w := range weights {
		if w <= 0 {
			panic("workload: Stacked weights must be positive")
		}
	}
	return &Stacked{name: name, parts: parts, weights: weights}
}

func (s *Stacked) Name() string { return s.name }

// Domain returns the shared domain size.
func (s *Stacked) Domain() int { return s.parts[0].Domain() }

// Queries returns the total number of queries across parts.
func (s *Stacked) Queries() int {
	p := 0
	for _, w := range s.parts {
		p += w.Queries()
	}
	return p
}

// Gram returns Σ_i w_i² · Gram_i.
func (s *Stacked) Gram() *linalg.Matrix {
	return s.cached(func() *linalg.Matrix {
		n := s.Domain()
		g := linalg.New(n, n)
		for i, p := range s.parts {
			g.AddScaled(s.weights[i]*s.weights[i], p.Gram())
		}
		return g
	})
}

// FrobNorm2 returns Σ_i w_i² ‖W_i‖²_F.
func (s *Stacked) FrobNorm2() float64 {
	t := 0.0
	for i, p := range s.parts {
		t += s.weights[i] * s.weights[i] * p.FrobNorm2()
	}
	return t
}

// MatVec concatenates the weighted part answers.
func (s *Stacked) MatVec(x []float64) []float64 {
	out := make([]float64, 0, s.Queries())
	for i, p := range s.parts {
		part := p.MatVec(x)
		linalg.ScaleVec(s.weights[i], part)
		out = append(out, part...)
	}
	return out
}

// TMatVec sums the weighted transposed part products.
func (s *Stacked) TMatVec(y []float64) []float64 {
	out := make([]float64, s.Domain())
	at := 0
	for i, p := range s.parts {
		part := p.TMatVec(y[at : at+p.Queries()])
		linalg.AxpyVec(s.weights[i], part, out)
		at += p.Queries()
	}
	return out
}

// Matrix materializes the stacked workload.
func (s *Stacked) Matrix() *linalg.Matrix {
	blocks := make([]*linalg.Matrix, len(s.parts))
	for i, p := range s.parts {
		blocks[i] = p.Matrix().Clone().Scale(s.weights[i])
	}
	return linalg.Stack(blocks...)
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func mustPositive(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("workload: domain parameter must be positive, got %d", n))
	}
}

func checkLen(got, want int) {
	if got != want {
		panic(fmt.Sprintf("workload: vector length %d, want %d", got, want))
	}
}

// ByName constructs one of the paper's six evaluation workloads by name for a
// given domain size. Marginals/Parity require n to be a power of two.
func ByName(name string, n int) (Workload, error) {
	switch name {
	case "Histogram":
		return NewHistogram(n), nil
	case "Prefix":
		return NewPrefix(n), nil
	case "AllRange":
		return NewAllRange(n), nil
	case "AllMarginals":
		d, err := log2Exact(n)
		if err != nil {
			return nil, err
		}
		return NewAllMarginals(d), nil
	case "3-WayMarginals":
		d, err := log2Exact(n)
		if err != nil {
			return nil, err
		}
		k := 3
		if d < 3 {
			k = d
		}
		return NewKWayMarginals(d, k), nil
	case "Parity":
		d, err := log2Exact(n)
		if err != nil {
			return nil, err
		}
		return NewParity(d), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// PaperWorkloads lists the six evaluation workloads in the paper's order.
var PaperWorkloads = []string{"Histogram", "Prefix", "AllRange", "AllMarginals", "3-WayMarginals", "Parity"}

func log2Exact(n int) (int, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("workload: domain size %d is not a power of two", n)
	}
	return bits.TrailingZeros(uint(n)), nil
}

// NuclearNorm returns Σ singular values of W, computed from the Gram matrix.
// It characterizes workload hardness via the lower bound of Theorem 5.6.
func NuclearNorm(w Workload) (float64, error) {
	var err error
	nn, err := linalg.NuclearNormFromGram(w.Gram())
	if err != nil {
		return 0, err
	}
	return nn, nil
}

// Answer evaluates the workload on a data vector; a convenience alias for
// MatVec matching the paper's Wx notation.
func Answer(w Workload, x []float64) []float64 { return w.MatVec(x) }
