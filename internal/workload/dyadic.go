package workload

import (
	"fmt"
	"math/bits"

	"repro/internal/linalg"
)

// Dyadic is the workload of all dyadic-interval queries over a domain of size
// n = 2^k: for every level ℓ = 0..k and every aligned cell of width 2^{k−ℓ},
// the count of users in that cell — the classical B-tree / hierarchical
// decomposition (2n − 1 queries). It is both a useful workload in its own
// right (streaming quantile sketches, hierarchical dashboards) and the
// query set the Hierarchical baseline implicitly targets.
type Dyadic struct {
	k int
	gramCache
}

// NewDyadic returns the dyadic-interval workload over a domain of size 2^k.
func NewDyadic(k int) *Dyadic {
	if k < 0 {
		panic(fmt.Sprintf("workload: Dyadic depth %d must be non-negative", k))
	}
	return &Dyadic{k: k}
}

func (d *Dyadic) Name() string { return "Dyadic" }

// Depth returns k (the tree depth).
func (d *Dyadic) Depth() int { return d.k }

// Domain returns 2^k.
func (d *Dyadic) Domain() int { return 1 << d.k }

// Queries returns 2^{k+1} − 1 (a complete binary tree of cells).
func (d *Dyadic) Queries() int { return 2*d.Domain() - 1 }

// Gram returns WᵀW with the closed form (WᵀW)_{uv} = k + 1 − bitlen(u⊕v):
// u and v share a level-ℓ cell iff u⊕v < 2^{k−ℓ}, so the number of dyadic
// intervals containing both is the number of common ancestors in the tree.
func (d *Dyadic) Gram() *linalg.Matrix {
	return d.cached(func() *linalg.Matrix {
		n := d.Domain()
		g := linalg.New(n, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				g.Set(u, v, float64(d.k+1-bits.Len(uint(u^v))))
			}
		}
		return g
	})
}

// FrobNorm2 returns n·(k+1): every point lies in exactly one cell per level.
func (d *Dyadic) FrobNorm2() float64 { return float64(d.Domain() * (d.k + 1)) }

// MatVec computes all 2n−1 cell sums bottom-up in O(n). Rows are ordered
// level 0 (the whole domain) to level k (singletons), cells left to right.
func (d *Dyadic) MatVec(x []float64) []float64 {
	n := d.Domain()
	checkLen(len(x), n)
	out := make([]float64, d.Queries())
	// Level k occupies the trailing n slots.
	copy(out[d.Queries()-n:], x)
	// Each coarser level sums pairs of the finer one.
	fineStart := d.Queries() - n
	for ell := d.k - 1; ell >= 0; ell-- {
		cells := 1 << ell
		start := fineStart - cells
		for c := 0; c < cells; c++ {
			out[start+c] = out[fineStart+2*c] + out[fineStart+2*c+1]
		}
		fineStart = start
	}
	return out
}

// TMatVec computes Wᵀy in O(n log n): each point accumulates the y-values of
// its ancestors.
func (d *Dyadic) TMatVec(y []float64) []float64 {
	n := d.Domain()
	checkLen(len(y), d.Queries())
	out := make([]float64, n)
	start := 0
	for ell := 0; ell <= d.k; ell++ {
		width := 1 << (d.k - ell)
		cells := 1 << ell
		for c := 0; c < cells; c++ {
			v := y[start+c]
			if v == 0 {
				continue
			}
			for u := c * width; u < (c+1)*width; u++ {
				out[u] += v
			}
		}
		start += cells
	}
	return out
}

// Matrix materializes the 2n−1 × n indicator matrix.
func (d *Dyadic) Matrix() *linalg.Matrix {
	n := d.Domain()
	w := linalg.New(d.Queries(), n)
	start := 0
	for ell := 0; ell <= d.k; ell++ {
		width := 1 << (d.k - ell)
		cells := 1 << ell
		for c := 0; c < cells; c++ {
			row := w.Row(start + c)
			for u := c * width; u < (c+1)*width; u++ {
				row[u] = 1
			}
		}
		start += cells
	}
	return w
}
