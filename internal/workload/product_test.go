package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestProductShapes(t *testing.T) {
	p := NewProduct(NewAllRange(4), NewPrefix(3))
	if p.Domain() != 12 {
		t.Fatalf("domain = %d, want 12", p.Domain())
	}
	if p.Queries() != 10*3 {
		t.Fatalf("queries = %d, want 30", p.Queries())
	}
	if p.Name() != "AllRange⊗Prefix" {
		t.Fatalf("name = %q", p.Name())
	}
	a, b := p.Parts()
	if a.Name() != "AllRange" || b.Name() != "Prefix" {
		t.Fatal("Parts wrong")
	}
}

func TestProductGramMatchesExplicit(t *testing.T) {
	p := NewProduct(NewPrefix(3), NewHistogram(4))
	explicit := linalg.Gram(p.Matrix())
	if !linalg.ApproxEqual(p.Gram(), explicit, 1e-9) {
		t.Fatal("Kronecker Gram != explicit WᵀW")
	}
	if math.Abs(p.FrobNorm2()-p.Gram().Trace()) > 1e-9 {
		t.Fatalf("FrobNorm2 %v != tr(Gram) %v", p.FrobNorm2(), p.Gram().Trace())
	}
}

func TestProductMatVecMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	combos := []*Product{
		NewProduct(NewPrefix(3), NewPrefix(4)),
		NewProduct(NewAllRange(3), NewHistogram(3)),
		NewProduct(NewHistogram(2), NewAllRange(4)),
		NewProduct(NewWidthRange(5, 2), NewPrefix(2)),
	}
	for _, p := range combos {
		x := randVec(rng, p.Domain())
		got := p.MatVec(x)
		want := p.Matrix().MulVec(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: MatVec[%d] = %v, want %v", p.Name(), i, got[i], want[i])
			}
		}
		y := randVec(rng, p.Queries())
		gotT := p.TMatVec(y)
		wantT := p.Matrix().MulVecT(y)
		for i := range wantT {
			if math.Abs(gotT[i]-wantT[i]) > 1e-9*(1+math.Abs(wantT[i])) {
				t.Fatalf("%s: TMatVec[%d] = %v, want %v", p.Name(), i, gotT[i], wantT[i])
			}
		}
	}
}

// Property: adjoint identity for random product workloads.
func TestProductAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProduct(NewPrefix(1+rng.Intn(4)), NewAllRange(1+rng.Intn(4)))
		x := randVec(rng, p.Domain())
		y := randVec(rng, p.Queries())
		lhs := linalg.Dot(p.MatVec(x), y)
		rhs := linalg.Dot(x, p.TMatVec(y))
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// 2-D range queries: semantic check that the flattened query set answers a
// rectangle sum correctly.
func TestProduct2DRangeSemantics(t *testing.T) {
	n := 4
	p := NewProduct(NewAllRange(n), NewAllRange(n))
	// Data: a single user at grid cell (1, 2) → flattened index 1*4+2.
	x := make([]float64, n*n)
	x[1*n+2] = 1
	ans := p.MatVec(x)
	a := NewAllRange(n)
	// Query (rows [r1,r2]) × (cols [c1,c2]) counts the cell iff the rectangle
	// contains (1,2).
	idx := func(i, j int) int { return i*n - i*(i-1)/2 + (j - i) }
	for r1 := 0; r1 < n; r1++ {
		for r2 := r1; r2 < n; r2++ {
			for c1 := 0; c1 < n; c1++ {
				for c2 := c1; c2 < n; c2++ {
					q := idx(r1, r2)*a.Queries() + idx(c1, c2)
					want := 0.0
					if r1 <= 1 && 1 <= r2 && c1 <= 2 && 2 <= c2 {
						want = 1
					}
					if math.Abs(ans[q]-want) > 1e-12 {
						t.Fatalf("rectangle [%d,%d]x[%d,%d]: got %v, want %v", r1, r2, c1, c2, ans[q], want)
					}
				}
			}
		}
	}
}

// Nuclear norm multiplicativity: σ(A⊗B) = σ(A)·σ(B) pairwise, so the SVD
// lower bound of a product workload is the product of the parts' bounds
// (up to the e^ε factor).
func TestProductNuclearNorm(t *testing.T) {
	a, b := NewPrefix(3), NewHistogram(4)
	p := NewProduct(a, b)
	na, err := NuclearNorm(a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NuclearNorm(b)
	if err != nil {
		t.Fatal(err)
	}
	np, err := NuclearNorm(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(np-na*nb) > 1e-6*(1+na*nb) {
		t.Fatalf("nuclear norm %v, want product %v", np, na*nb)
	}
}
