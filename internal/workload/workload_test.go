package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// allWorkloads returns instances of every workload family at small sizes.
func allWorkloads() []Workload {
	return []Workload{
		NewHistogram(7),
		NewPrefix(6),
		NewAllRange(5),
		NewAllMarginals(3),
		NewKWayMarginals(4, 2),
		NewKWayMarginals(4, 3),
		NewParity(3),
		NewWidthRange(8, 3),
		NewStacked("Mix", []Workload{NewHistogram(6), NewPrefix(6)}, []float64{1, 2}),
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestGramMatchesExplicit is the central consistency test: every closed-form
// Gram matrix must equal WᵀW of the materialized workload.
func TestGramMatchesExplicit(t *testing.T) {
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			explicit := w.Matrix()
			if explicit.Rows() != w.Queries() || explicit.Cols() != w.Domain() {
				t.Fatalf("Matrix() shape %dx%d, want %dx%d",
					explicit.Rows(), explicit.Cols(), w.Queries(), w.Domain())
			}
			gram := linalg.Gram(explicit)
			if !linalg.ApproxEqual(gram, w.Gram(), 1e-9) {
				t.Fatalf("closed-form Gram != WᵀW\nclosed:%v\nexplicit:%v", w.Gram(), gram)
			}
		})
	}
}

func TestFrobNorm2MatchesExplicit(t *testing.T) {
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			want := w.Matrix().FrobNorm2()
			if math.Abs(w.FrobNorm2()-want) > 1e-9*(1+want) {
				t.Fatalf("FrobNorm2 = %v, want %v", w.FrobNorm2(), want)
			}
			// FrobNorm2 must equal tr(Gram).
			if math.Abs(w.FrobNorm2()-w.Gram().Trace()) > 1e-9*(1+want) {
				t.Fatalf("FrobNorm2 = %v != tr(Gram) = %v", w.FrobNorm2(), w.Gram().Trace())
			}
		})
	}
}

func TestMatVecMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			x := randVec(rng, w.Domain())
			got := w.MatVec(x)
			want := w.Matrix().MulVec(x)
			if len(got) != w.Queries() {
				t.Fatalf("MatVec length %d, want %d", len(got), w.Queries())
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestTMatVecMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			y := randVec(rng, w.Queries())
			got := w.TMatVec(y)
			want := w.Matrix().MulVecT(y)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("TMatVec[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// Property: ⟨Wx, y⟩ = ⟨x, Wᵀy⟩ (adjoint identity) for all workloads.
func TestAdjointProperty(t *testing.T) {
	ws := allWorkloads()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := ws[rng.Intn(len(ws))]
		x := randVec(rng, w.Domain())
		y := randVec(rng, w.Queries())
		lhs := linalg.Dot(w.MatVec(x), y)
		rhs := linalg.Dot(x, w.TMatVec(y))
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixExample(t *testing.T) {
	// Example 2.2/2.4 of the paper: student grades.
	x := []float64{10, 20, 5, 0, 0}
	p := NewPrefix(5)
	got := p.MatVec(x)
	want := []float64{10, 30, 35, 35, 35}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix answers = %v, want %v", got, want)
		}
	}
}

func TestAllRangeQueries(t *testing.T) {
	a := NewAllRange(4)
	if a.Queries() != 10 {
		t.Fatalf("AllRange(4) queries = %d, want 10", a.Queries())
	}
	// Check rangeIndex covers 0..p-1 bijectively.
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			idx := a.rangeIndex(i, j)
			if idx < 0 || idx >= 10 || seen[idx] {
				t.Fatalf("rangeIndex(%d,%d) = %d invalid or duplicate", i, j, idx)
			}
			seen[idx] = true
		}
	}
}

func TestMarginalsCounts(t *testing.T) {
	m := NewAllMarginals(3)
	if m.Domain() != 8 {
		t.Fatalf("domain = %d, want 8", m.Domain())
	}
	if m.Queries() != 27 {
		t.Fatalf("AllMarginals(3) queries = %d, want 3^3 = 27", m.Queries())
	}
	k := NewKWayMarginals(4, 2)
	if k.Queries() != 6*4 {
		t.Fatalf("2-way marginals over d=4: queries = %d, want 24", k.Queries())
	}
}

func TestMarginalsRowsAreIndicators(t *testing.T) {
	m := NewAllMarginals(3)
	w := m.Matrix()
	// Every row must be 0/1 valued, and the rows for each subset must
	// partition the domain (column sums within a subset block = 1).
	for i := 0; i < w.Rows(); i++ {
		for j := 0; j < w.Cols(); j++ {
			v := w.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("marginal row %d has non-indicator value %v", i, v)
			}
		}
	}
	// Total of all entries: each of the 2^d subsets covers every user once.
	total := 0.0
	for _, v := range w.Data() {
		total += v
	}
	if total != float64(8*8) {
		t.Fatalf("total incidences = %v, want 64", total)
	}
}

func TestParityIsHadamard(t *testing.T) {
	p := NewParity(3)
	w := p.Matrix()
	// Rows orthogonal: WᵀW = n·I.
	gram := linalg.Gram(w)
	if !linalg.ApproxEqual(gram, linalg.Identity(8).Scale(8), 1e-9) {
		t.Fatal("Parity workload is not a Hadamard matrix")
	}
	// First row (S=0) is all ones.
	for j := 0; j < 8; j++ {
		if w.At(0, j) != 1 {
			t.Fatal("Parity row for S=∅ should be all ones")
		}
	}
}

func TestFWHTMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParity(4)
	x := randVec(rng, 16)
	got := p.MatVec(x)
	want := p.Matrix().MulVec(x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("FWHT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWidthRange(t *testing.T) {
	r := NewWidthRange(5, 2)
	if r.Queries() != 4 {
		t.Fatalf("queries = %d, want 4", r.Queries())
	}
	x := []float64{1, 2, 3, 4, 5}
	got := r.MatVec(x)
	want := []float64{3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window sums = %v, want %v", got, want)
		}
	}
}

func TestStackedWeights(t *testing.T) {
	s := NewStacked("Mix", []Workload{NewHistogram(3), NewHistogram(3)}, []float64{1, 3})
	x := []float64{1, 2, 3}
	got := s.MatVec(x)
	want := []float64{1, 2, 3, 3, 6, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stacked answers = %v, want %v", got, want)
		}
	}
	// Gram = (1 + 9) I.
	if !linalg.ApproxEqual(s.Gram(), linalg.Identity(3).Scale(10), 1e-12) {
		t.Fatal("stacked Gram wrong")
	}
}

func TestExplicitWorkload(t *testing.T) {
	m := linalg.NewFrom(2, 3, []float64{1, 0, 1, 0, 1, 0})
	e := NewExplicit("custom", m)
	if e.Queries() != 2 || e.Domain() != 3 {
		t.Fatal("explicit shape wrong")
	}
	if e.FrobNorm2() != 3 {
		t.Fatalf("FrobNorm2 = %v, want 3", e.FrobNorm2())
	}
	got := e.MatVec([]float64{1, 2, 3})
	if got[0] != 4 || got[1] != 2 {
		t.Fatalf("MatVec = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range PaperWorkloads {
		w, err := ByName(name, 8)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Domain() != 8 {
			t.Fatalf("ByName(%q) domain = %d", name, w.Domain())
		}
		if w.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, w.Name())
		}
	}
	if _, err := ByName("AllMarginals", 10); err == nil {
		t.Fatal("expected error for non-power-of-two marginals domain")
	}
	if _, err := ByName("nope", 8); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestByNameSmallDomain3Way(t *testing.T) {
	// 3-way marginals over d=2 should degrade to k=d.
	w, err := ByName("3-WayMarginals", 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Queries() != 4 { // C(2,2)·2² = 4
		t.Fatalf("queries = %d, want 4", w.Queries())
	}
}

func TestNuclearNorm(t *testing.T) {
	// Histogram: all singular values are 1 → nuclear norm = n.
	nn, err := NuclearNorm(NewHistogram(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nn-6) > 1e-9 {
		t.Fatalf("nuclear norm = %v, want 6", nn)
	}
	// Parity over d bits: n singular values of √n → nuclear norm = n^1.5.
	nn, err = NuclearNorm(NewParity(3))
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * math.Sqrt(8)
	if math.Abs(nn-want) > 1e-8 {
		t.Fatalf("Parity nuclear norm = %v, want %v", nn, want)
	}
}

// The hardness ordering implied by Theorem 5.6: Parity has larger nuclear
// norm than Histogram at the same domain size (paper's "hardest workload").
func TestHardnessOrdering(t *testing.T) {
	h, _ := NuclearNorm(NewHistogram(8))
	p, _ := NuclearNorm(NewParity(3))
	if p <= h {
		t.Fatalf("expected Parity (%v) harder than Histogram (%v)", p, h)
	}
}

func TestGramCached(t *testing.T) {
	w := NewPrefix(5)
	g1 := w.Gram()
	g2 := w.Gram()
	if g1 != g2 {
		t.Fatal("Gram not cached (different pointers)")
	}
}

func TestCompress(t *testing.T) {
	// u = 0b1011, s = 0b1010 selects bits 1 and 3 → values 1 and 1 → 0b11.
	if got := compress(0b1011, 0b1010, 4); got != 0b11 {
		t.Fatalf("compress = %b, want 11", got)
	}
	if got := compress(0b0001, 0b1010, 4); got != 0 {
		t.Fatalf("compress = %b, want 0", got)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {9, 3, 84}, {3, 4, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Fatalf("binom(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestAnswerAlias(t *testing.T) {
	w := NewHistogram(3)
	x := []float64{1, 2, 3}
	got := Answer(w, x)
	for i := range x {
		if got[i] != x[i] {
			t.Fatal("Answer != MatVec for histogram")
		}
	}
}
