package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/workload"
)

func randPositive(rng *rand.Rand, m, n int) *linalg.Matrix {
	q := linalg.New(m, n)
	for i := range q.Data() {
		q.Data()[i] = 0.05 + rng.Float64()
	}
	return q
}

func TestMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randPositive(rng, 3, 4)
	b := randPositive(rng, 4, 3)
	tape := NewTape()
	va := tape.Input(a)
	vb := tape.Input(b)
	out := tape.TraceMul(tape.Mul(va, vb), linalg.Identity(3))
	tape.Backward(out)
	// d tr(AB)/dA = Bᵀ, /dB = Aᵀ.
	if !linalg.ApproxEqual(va.Grad(), b.T(), 1e-10) {
		t.Fatal("Mul gradient wrt A wrong")
	}
	if !linalg.ApproxEqual(vb.Grad(), a.T(), 1e-10) {
		t.Fatal("Mul gradient wrt B wrong")
	}
}

func TestInverseGradientFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 4
	a := randPositive(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+2) // well-conditioned
	}
	c := randPositive(rng, n, n)

	eval := func(m *linalg.Matrix) float64 {
		tape := NewTape()
		v := tape.Input(m)
		out := tape.TraceMul(tape.Inverse(v), c)
		return out.Value().At(0, 0)
	}
	tape := NewTape()
	v := tape.Input(a)
	out := tape.TraceMul(tape.Inverse(v), c)
	tape.Backward(out)
	g := v.Grad()

	const h = 1e-6
	for trial := 0; trial < 10; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		ap := a.Clone()
		ap.Set(i, j, ap.At(i, j)+h)
		am := a.Clone()
		am.Set(i, j, am.At(i, j)-h)
		fd := (eval(ap) - eval(am)) / (2 * h)
		if math.Abs(fd-g.At(i, j)) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("inverse grad (%d,%d): %v vs fd %v", i, j, g.At(i, j), fd)
		}
	}
}

func TestRowNormalizeGradientFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 5, 3
	a := randPositive(rng, m, n)
	c := randPositive(rng, n, m)

	eval := func(mt *linalg.Matrix) float64 {
		tape := NewTape()
		v := tape.Input(mt)
		out := tape.TraceMul(tape.RowNormalize(v), c)
		return out.Value().At(0, 0)
	}
	tape := NewTape()
	v := tape.Input(a)
	out := tape.TraceMul(tape.RowNormalize(v), c)
	tape.Backward(out)
	g := v.Grad()

	const h = 1e-7
	for trial := 0; trial < 15; trial++ {
		i, j := rng.Intn(m), rng.Intn(n)
		ap := a.Clone()
		ap.Set(i, j, ap.At(i, j)+h)
		am := a.Clone()
		am.Set(i, j, am.At(i, j)-h)
		fd := (eval(ap) - eval(am)) / (2 * h)
		if math.Abs(fd-g.At(i, j)) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("RowNormalize grad (%d,%d): %v vs fd %v", i, j, g.At(i, j), fd)
		}
	}
}

// The decisive test promised in DESIGN.md: the autodiff gradient of the full
// factorization objective equals internal/core's hand-derived gradient.
func TestObjectiveGradientMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, wk := range []workload.Workload{
		workload.NewHistogram(5),
		workload.NewPrefix(5),
		workload.NewAllRange(5),
	} {
		gram := wk.Gram()
		q := randPositive(rng, 11, 5)
		// Normalize columns to resemble a strategy (not required, but keeps
		// the matrices in the regime the optimizer visits).
		for u := 0; u < 5; u++ {
			col := q.Col(u)
			s := linalg.Sum(col)
			for o := 0; o < 11; o++ {
				q.Set(o, u, col[o]/s)
			}
		}

		tape := NewTape()
		v := tape.Input(q)
		out := FactorizationObjective(tape, v, gram)
		tape.Backward(out)
		adGrad := v.Grad()
		adObj := out.Value().At(0, 0)

		coreObj, coreGrad, err := core.ObjectiveGrad(q, gram)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(adObj-coreObj) > 1e-8*(1+math.Abs(coreObj)) {
			t.Fatalf("%s: objective %v (autodiff) vs %v (core)", wk.Name(), adObj, coreObj)
		}
		if !linalg.ApproxEqual(adGrad, coreGrad, 1e-6*(1+coreGrad.MaxAbs())) {
			t.Fatalf("%s: autodiff and analytic gradients disagree", wk.Name())
		}
	}
}

func TestAddAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randPositive(rng, 2, 2)
	b := randPositive(rng, 2, 2)
	tape := NewTape()
	va, vb := tape.Input(a), tape.Input(b)
	sum := tape.Add(va, tape.Scale(vb, 3))
	out := tape.TraceMul(sum, linalg.Identity(2))
	tape.Backward(out)
	if !linalg.ApproxEqual(va.Grad(), linalg.Identity(2), 1e-12) {
		t.Fatal("Add gradient wrong")
	}
	if !linalg.ApproxEqual(vb.Grad(), linalg.Identity(2).Scale(3), 1e-12) {
		t.Fatal("Scale gradient wrong")
	}
}

func TestGradReusedInput(t *testing.T) {
	// Gradient accumulation: f(A) = tr(A·A) ⇒ ∇ = 2Aᵀ.
	rng := rand.New(rand.NewSource(6))
	a := randPositive(rng, 3, 3)
	tape := NewTape()
	v := tape.Input(a)
	out := tape.TraceMul(tape.Mul(v, v), linalg.Identity(3))
	tape.Backward(out)
	want := a.T().Scale(2)
	if !linalg.ApproxEqual(v.Grad(), want, 1e-10) {
		t.Fatalf("reused-input gradient wrong:\n%v\nwant\n%v", v.Grad(), want)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	tape := NewTape()
	v := tape.Input(linalg.Identity(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tape.Backward(v)
}
