// Package autodiff implements a small reverse-mode automatic differentiation
// tape over dense matrices. The paper computes the gradients of its
// optimization objective with autograd (Section 4: "it can be easily
// accomplished with automatic differentiation tools"); this package is the Go
// equivalent, and internal/core's hand-derived analytic gradients are
// verified against it in tests.
//
// Supported operations cover exactly what the objective
// L(Q) = tr[(QᵀD⁻¹Q)⁻¹ G] needs: matrix multiplication (including the AᵀB
// form), matrix inverse, trace against a constant, row normalization by row
// sums, addition, and scaling.
package autodiff

import (
	"fmt"

	"repro/internal/linalg"
)

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*node
}

// Var is a handle to a matrix-valued node on a tape.
type Var struct {
	tape *Tape
	idx  int
}

type node struct {
	value    *linalg.Matrix
	grad     *linalg.Matrix
	backward func() // accumulates into parents' grads; nil for leaves
	parents  []int
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

func (t *Tape) push(v *linalg.Matrix, parents []int, backward func()) Var {
	t.nodes = append(t.nodes, &node{value: v, parents: parents, backward: backward})
	return Var{tape: t, idx: len(t.nodes) - 1}
}

// Input registers a differentiable leaf with the given value (not copied).
func (t *Tape) Input(m *linalg.Matrix) Var { return t.push(m, nil, nil) }

// Constant registers a non-differentiable leaf.
func (t *Tape) Constant(m *linalg.Matrix) Var { return t.push(m, nil, nil) }

// Value returns the matrix held by v.
func (v Var) Value() *linalg.Matrix { return v.tape.nodes[v.idx].value }

// Grad returns the accumulated gradient of the output with respect to v
// (valid after Backward). It may be nil if v does not influence the output.
func (v Var) Grad() *linalg.Matrix { return v.tape.nodes[v.idx].grad }

func (t *Tape) accum(idx int, g *linalg.Matrix) {
	n := t.nodes[idx]
	if n.grad == nil {
		n.grad = g.Clone()
		return
	}
	n.grad.AddScaled(1, g)
}

// Mul records c = a·b.
func (t *Tape) Mul(a, b Var) Var {
	av, bv := a.Value(), b.Value()
	c := linalg.Mul(av, bv)
	var out Var
	out = t.push(c, []int{a.idx, b.idx}, func() {
		g := out.Grad()
		t.accum(a.idx, linalg.MulABt(g, bv)) // ā += Ḡ bᵀ
		t.accum(b.idx, linalg.MulAtB(av, g)) // b̄ += aᵀ Ḡ
	})
	return out
}

// MulAtB records c = aᵀ·b.
func (t *Tape) MulAtB(a, b Var) Var {
	av, bv := a.Value(), b.Value()
	c := linalg.MulAtB(av, bv)
	var out Var
	out = t.push(c, []int{a.idx, b.idx}, func() {
		g := out.Grad()
		t.accum(a.idx, linalg.MulABt(bv, g)) // ā += b Ḡᵀ
		t.accum(b.idx, linalg.Mul(av, g))    // b̄ += a Ḡ
	})
	return out
}

// Add records c = a + b.
func (t *Tape) Add(a, b Var) Var {
	c := linalg.Add(a.Value(), b.Value())
	var out Var
	out = t.push(c, []int{a.idx, b.idx}, func() {
		g := out.Grad()
		t.accum(a.idx, g)
		t.accum(b.idx, g)
	})
	return out
}

// Scale records c = s·a for a fixed scalar s.
func (t *Tape) Scale(a Var, s float64) Var {
	c := a.Value().Clone().Scale(s)
	var out Var
	out = t.push(c, []int{a.idx}, func() {
		t.accum(a.idx, out.Grad().Clone().Scale(s))
	})
	return out
}

// Inverse records c = a⁻¹ (square, nonsingular).
func (t *Tape) Inverse(a Var) Var {
	inv, err := linalg.Inverse(a.Value())
	if err != nil {
		panic(fmt.Sprintf("autodiff: Inverse: %v", err))
	}
	var out Var
	out = t.push(inv, []int{a.idx}, func() {
		// ā = −Yᵀ Ḡ Yᵀ with Y = a⁻¹.
		g := out.Grad()
		yt := inv.T()
		t.accum(a.idx, linalg.Mul(linalg.Mul(yt, g), yt).Scale(-1))
	})
	return out
}

// RowNormalize records c = Diag(1/rowsum(a))·a: each row divided by its sum.
// This is the D⁻¹Q building block of the factorization objective.
func (t *Tape) RowNormalize(a Var) Var {
	av := a.Value()
	d := av.RowSums()
	dinv := make([]float64, len(d))
	for i, v := range d {
		dinv[i] = 1 / v
	}
	c := av.Clone().ScaleRows(dinv)
	var out Var
	out = t.push(c, []int{a.idx}, func() {
		// Y_{ou} = Q_{ou}/d_o ⇒
		// Q̄_{ou} = Ȳ_{ou}/d_o − (Σ_v Ȳ_{ov} Q_{ov})/d_o².
		g := out.Grad()
		back := linalg.New(av.Rows(), av.Cols())
		for o := 0; o < av.Rows(); o++ {
			grow := g.Row(o)
			arow := av.Row(o)
			brow := back.Row(o)
			dot := linalg.Dot(grow, arow)
			inv := dinv[o]
			corr := dot * inv * inv
			for u := range brow {
				brow[u] = grow[u]*inv - corr
			}
		}
		t.accum(a.idx, back)
	})
	return out
}

// TraceMul records the scalar tr(a·c) for constant matrix c, returned as a
// 1×1 node.
func (t *Tape) TraceMul(a Var, c *linalg.Matrix) Var {
	av := a.Value()
	if av.Rows() != c.Cols() || av.Cols() != c.Rows() {
		panic("autodiff: TraceMul shape mismatch")
	}
	// tr(AC) = Σ_{ij} A_{ij} C_{ji}.
	s := 0.0
	for i := 0; i < av.Rows(); i++ {
		arow := av.Row(i)
		for j, v := range arow {
			s += v * c.At(j, i)
		}
	}
	val := linalg.NewFrom(1, 1, []float64{s})
	var out Var
	out = t.push(val, []int{a.idx}, func() {
		scale := out.Grad().At(0, 0)
		t.accum(a.idx, c.T().Scale(scale)) // d tr(AC)/dA = Cᵀ
	})
	return out
}

// Backward runs reverse-mode accumulation from the scalar output node (which
// must be 1×1), seeding its gradient with 1.
func (t *Tape) Backward(output Var) {
	n := t.nodes[output.idx]
	if n.value.Rows() != 1 || n.value.Cols() != 1 {
		panic("autodiff: Backward output must be a 1×1 scalar node")
	}
	for _, nd := range t.nodes {
		nd.grad = nil
	}
	n.grad = linalg.NewFrom(1, 1, []float64{1})
	// Nodes were pushed in topological order; traverse in reverse.
	for i := output.idx; i >= 0; i-- {
		nd := t.nodes[i]
		if nd.grad == nil || nd.backward == nil {
			continue
		}
		nd.backward()
	}
}

// FactorizationObjective builds the tape program for
// L(Q) = tr[(QᵀD⁻¹Q)⁻¹ G] and returns the scalar output node. Callers run
// tape.Backward(out) and read q.Grad().
func FactorizationObjective(t *Tape, q Var, gram *linalg.Matrix) Var {
	qs := t.RowNormalize(q)       // D⁻¹Q
	m := t.MulAtB(q, qs)          // QᵀD⁻¹Q
	minv := t.Inverse(m)          // (QᵀD⁻¹Q)⁻¹
	return t.TraceMul(minv, gram) // tr(M⁻¹G)
}
