package lowerbound

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestObjectiveHistogram(t *testing.T) {
	// Histogram: Σλ = n, so bound = n²/e^ε.
	n, eps := 16, 1.0
	got, err := Objective(workload.NewHistogram(n), eps)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n*n) / math.E
	if math.Abs(got-want) > 1e-8*want {
		t.Fatalf("objective bound = %v, want %v", got, want)
	}
}

func TestObjectiveParityHarderThanHistogram(t *testing.T) {
	// Parity: Σλ = n^{3/2} so its bound is n× the Histogram bound — the
	// paper's hardness ordering (Section 6.2).
	eps := 1.0
	h, err := Objective(workload.NewHistogram(8), eps)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Objective(workload.NewParity(3), eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-8*h) > 1e-6*p {
		t.Fatalf("Parity bound %v should be 8× Histogram bound %v", p, h)
	}
}

func TestHistogramSampleComplexityClosedForm(t *testing.T) {
	// Example 5.8 must agree with the generic bound for the Histogram
	// workload: generic = (n²/e^ε − n)/(n·n·α) = (1/e^ε − 1/n)/α.
	n, eps, alpha := 32, 1.0, 0.01
	generic, err := SampleComplexity(workload.NewHistogram(n), eps, alpha)
	if err != nil {
		t.Fatal(err)
	}
	closed := HistogramSampleComplexity(n, eps, alpha)
	if math.Abs(generic-closed) > 1e-8*(1+closed) {
		t.Fatalf("generic bound %v != closed form %v", generic, closed)
	}
	// Very weak dependence on n (the paper's observation): doubling n must
	// change the bound by less than 5% at these parameters.
	closed2 := HistogramSampleComplexity(2*n, eps, alpha)
	if math.Abs(closed2-closed)/closed > 0.05 {
		t.Fatalf("histogram bound should be nearly n-independent: %v vs %v", closed, closed2)
	}
}

func TestWorstCaseVarianceNonNegative(t *testing.T) {
	// At huge ε the raw bound goes negative and must be clamped to 0.
	lb, err := WorstCaseVariance(workload.NewHistogram(4), 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Fatalf("bound should clamp to 0, got %v", lb)
	}
	// At small ε it is positive and scales linearly in N.
	lb1, err := WorstCaseVariance(workload.NewPrefix(16), 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := WorstCaseVariance(workload.NewPrefix(16), 0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if lb1 <= 0 {
		t.Fatalf("expected positive bound, got %v", lb1)
	}
	if math.Abs(lb2-2*lb1) > 1e-9*lb2 {
		t.Fatalf("bound should be linear in N: %v vs %v", lb1, lb2)
	}
}

func TestBoundDecreasesWithEpsilon(t *testing.T) {
	w := workload.NewAllRange(12)
	prev := math.Inf(1)
	for _, eps := range []float64{0.5, 1, 2, 4} {
		lb, err := Objective(w, eps)
		if err != nil {
			t.Fatal(err)
		}
		if lb >= prev {
			t.Fatalf("bound should strictly decrease with ε: %v then %v", prev, lb)
		}
		prev = lb
	}
}
