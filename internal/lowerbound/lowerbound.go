// Package lowerbound implements the paper's error lower bounds (Section 5.3):
// the SVD bound on the optimization objective (Theorem 5.6), the resulting
// bound on worst-case variance (Corollary 5.7), and the sample-complexity
// bound it implies. These characterize the inherent hardness of a workload
// through its singular values and let callers check how close an optimized
// strategy is to optimal.
package lowerbound

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/workload"
)

// Objective returns the Theorem 5.6 lower bound on L(Q) for any ε-LDP
// strategy: (λ₁ + … + λ_n)² / e^ε, with λᵢ the singular values of W.
func Objective(w workload.Workload, eps float64) (float64, error) {
	nuc, err := linalg.NuclearNormFromGram(w.Gram())
	if err != nil {
		return 0, err
	}
	return nuc * nuc / math.Exp(eps), nil
}

// WorstCaseVariance returns the Corollary 5.7 lower bound on L_worst for any
// factorization mechanism with N users:
// (N/n)·[(Σλ)²/e^ε − ‖W‖²_F].
func WorstCaseVariance(w workload.Workload, eps float64, numUsers float64) (float64, error) {
	obj, err := Objective(w, eps)
	if err != nil {
		return 0, err
	}
	n := float64(w.Domain())
	lb := numUsers / n * (obj - w.FrobNorm2())
	if lb < 0 {
		lb = 0 // the bound can go vacuous (negative) for easy workloads
	}
	return lb, nil
}

// SampleComplexity returns the implied lower bound on the number of samples
// needed for normalized variance α (combining Corollary 5.7 with
// Corollary 5.4): N ≥ [(Σλ)²/e^ε − ‖W‖²_F] / (n·p·α).
func SampleComplexity(w workload.Workload, eps, alpha float64) (float64, error) {
	obj, err := Objective(w, eps)
	if err != nil {
		return 0, err
	}
	n := float64(w.Domain())
	p := float64(w.Queries())
	lb := (obj - w.FrobNorm2()) / (n * p * alpha)
	if lb < 0 {
		lb = 0
	}
	return lb, nil
}

// HistogramSampleComplexity returns the closed-form Example 5.8 bound for the
// Histogram workload: N ≥ (1/α)(1/e^ε − 1/n).
func HistogramSampleComplexity(n int, eps, alpha float64) float64 {
	lb := (1/math.Exp(eps) - 1/float64(n)) / alpha
	if lb < 0 {
		lb = 0
	}
	return lb
}
