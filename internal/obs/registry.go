// Package obs is the system's one telemetry plane: a dependency-free metrics
// registry (atomic counters, gauges, and log-bucketed histograms) with
// Prometheus text-format exposition, plus the request-tracing helpers every
// HTTP hop shares (the Ldp-Request-Id header, its context plumbing, and the
// instrumenting middleware that emits structured slog lines).
//
// Design constraints, in order:
//
//   - Hot-path increments are 0 allocs/op. Handles (*Counter, *Gauge,
//     *Histogram) are resolved once at wiring time; Inc/Add/Set/Observe touch
//     only pre-allocated atomics. The per-request label fan-out (status
//     codes) is a fixed array lookup, never a map with a built key.
//   - No dependencies beyond the standard library — the package sits below
//     transport, durable, and the fleet, so it must import none of them.
//   - Exposition is deterministic: families sort by name, series by label
//     values, so goldens can pin the format byte-for-byte.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's Prometheus type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64. The zero value is unusable;
// obtain one from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; a counter never goes down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bound cumulative histogram in the loadgen mold: the
// bounds form a log ladder, observation finds its bucket by binary search
// over ≤ a few dozen floats, and every update is a plain atomic add — no
// locks, no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; counts has len(bounds)+1 (+Inf)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBounds is the shared log₂ latency ladder, in seconds: 1 µs up to
// ~67 s doubling each step (the loadgen histogram's bucketing, re-based to
// Prometheus seconds). Everything measuring a duration uses it, so latency
// series are comparable across subsystems.
func LatencyBounds() []float64 {
	out := make([]float64, 27)
	for i := range out {
		out[i] = 1e-6 * float64(uint64(1)<<i)
	}
	return out
}

// SizeBounds is a power-of-two ladder from 1 to 2^maxExp, for byte and batch
// size histograms.
func SizeBounds(maxExp int) []float64 {
	out := make([]float64, maxExp+1)
	for i := range out {
		out[i] = float64(uint64(1) << i)
	}
	return out
}

// family is one named metric: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

// series is one (labelValues → value) cell of a family.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	fn        func() float64 // read-at-scrape counters/gauges
}

// Registry holds metric families and renders them in Prometheus text format.
// All registration methods are idempotent on (name, kind, labels): asking for
// an existing family returns it; a conflicting re-registration panics, since
// it is always a wiring bug.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels, was %s/%d labels",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// seriesFor resolves (or creates) the series cell for the given label values.
func (f *family) seriesFor(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.series[key] = s
	return s
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).seriesFor(nil).c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).seriesFor(nil).g
}

// Histogram registers (or returns) an unlabeled histogram with the given
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, KindHistogram, nil, bounds).seriesFor(nil).h
}

// CounterFunc registers a counter whose value is read at scrape time —
// for subsystems that already maintain their own atomic totals (PoolStats,
// the collector's ingest counts). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindCounter, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[""] = &series{fn: fn}
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[""] = &series{fn: fn}
}

// CounterVec is a counter family with labels; resolve hot-path handles once
// with With.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labels, nil)}
}

// With returns the counter cell for the given label values, creating it on
// first use. Resolve outside the hot path.
func (v *CounterVec) With(vals ...string) *Counter { return v.f.seriesFor(vals).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labels, nil)}
}

// With returns the gauge cell for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.f.seriesFor(vals).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, labels, bounds)}
}

// With returns the histogram cell for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.f.seriesFor(vals).h }

// Value returns the current value of one series for tests: counters and
// gauges only (histograms expose Count/Sum on the handle). Label values must
// match a series created earlier; a missing series reads 0, so asserting a
// non-zero value proves both existence and movement.
func (r *Registry) Value(name string, labelVals ...string) float64 {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return 0
	}
	switch {
	case s.fn != nil:
		return s.fn()
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return s.g.Value()
	}
	return 0
}

// Handler returns the GET /metrics handler: Prometheus text format, version
// 0.0.4 content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		r.WriteText(&sb)
		_, _ = w.Write([]byte(sb.String()))
	})
}

// formatValue renders a sample value the way Prometheus text format expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
