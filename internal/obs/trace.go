package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the per-request trace id across every hop:
// minted at the edge (the transport client, or the first server to see a
// request without one), echoed in the response, and forwarded verbatim on
// every downstream call — so one ingest shows up under one id in the
// client's, the router's, and the shard's logs.
const RequestIDHeader = "Ldp-Request-Id"

type requestIDKey struct{}

// WithRequestID returns a context carrying the trace id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's trace id ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID mints a 16-hex-char random id. Collision risk over a log
// retention window is negligible (64 random bits) and the short form keeps
// log lines readable.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; degrade to a counter
		// rather than panicking inside request handling.
		return "fallback-" + hex.EncodeToString(fallbackID())
	}
	return hex.EncodeToString(b[:])
}

var fallbackCounter atomic.Uint64

func fallbackID() []byte {
	var b [8]byte
	n := fallbackCounter.Add(1)
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	return b[:]
}

// DefaultSlowRequest is the slow-request log threshold when the wiring
// doesn't choose one.
const DefaultSlowRequest = time.Second

// HTTPMetrics instruments a server's routes: per-endpoint request counters
// (by status code), per-endpoint latency histograms, trace-id propagation,
// and structured request logs with a slow-request threshold.
type HTTPMetrics struct {
	requests *CounterVec   // ldp_http_requests_total{endpoint,code}
	duration *HistogramVec // ldp_http_request_duration_seconds{endpoint}
	logger   *slog.Logger
	slow     time.Duration
	comp     string
}

// NewHTTPMetrics registers the shared HTTP families on reg. logger may be
// nil (slog.Default()); slow <= 0 uses DefaultSlowRequest. component names
// the serving tier in log lines ("collector", "router").
func NewHTTPMetrics(reg *Registry, component string, logger *slog.Logger, slow time.Duration) *HTTPMetrics {
	if logger == nil {
		logger = slog.Default()
	}
	if slow <= 0 {
		slow = DefaultSlowRequest
	}
	return &HTTPMetrics{
		requests: reg.CounterVec("ldp_http_requests_total",
			"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		duration: reg.HistogramVec("ldp_http_request_duration_seconds",
			"HTTP request latency in seconds, by endpoint.", LatencyBounds(), "endpoint"),
		logger: logger,
		slow:   slow,
		comp:   component,
	}
}

// Logger returns the structured logger the middleware emits through.
func (m *HTTPMetrics) Logger() *slog.Logger { return m.logger }

// Wrap instruments one route. The returned handler:
//
//   - extracts the incoming Ldp-Request-Id (minting one when absent), puts
//     it in the request context for downstream propagation, and echoes it in
//     the response headers;
//   - counts the request under its final status code and observes its
//     latency in the endpoint's histogram — both 0 allocs/op on the steady
//     path (code cells resolve through a fixed array);
//   - logs a structured line: Debug normally, Warn at or above the
//     slow-request threshold or on 5xx.
func (m *HTTPMetrics) Wrap(endpoint string, next http.Handler) http.Handler {
	hist := m.duration.With(endpoint)
	var codes [600]atomic.Pointer[Counter]
	counterFor := func(code int) *Counter {
		if code < 100 || code >= 700 {
			code = 699
		}
		idx := code - 100
		if c := codes[idx].Load(); c != nil {
			return c
		}
		c := m.requests.With(endpoint, itoa3(code))
		codes[idx].CompareAndSwap(nil, c)
		return codes[idx].Load()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		ctx := WithRequestID(r.Context(), id)
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		d := time.Since(start)
		counterFor(sw.status).Inc()
		hist.ObserveDuration(d)
		level := slog.LevelDebug
		if d >= m.slow || sw.status >= 500 {
			level = slog.LevelWarn
		}
		if m.logger.Enabled(ctx, level) {
			m.logger.LogAttrs(ctx, level, "http request",
				slog.String("component", m.comp),
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.Int("status", sw.status),
				slog.Duration("duration", d),
				slog.Bool("slow", d >= m.slow),
				slog.String("request_id", id),
			)
		}
	})
}

// itoa3 renders a 3-digit status code without fmt (keeps the first-hit label
// resolution cheap; steady-state hits never reach it).
func itoa3(code int) string {
	buf := [3]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)}
	return string(buf[:])
}

// statusWriter records the final status code. It forwards Flush (the
// streaming /query path uses it) and exposes Unwrap for
// http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
