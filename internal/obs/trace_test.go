package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWrapMintsAndPropagatesRequestID(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	m := NewHTTPMetrics(reg, "test", logger, time.Second)

	var seenCtxID string
	h := m.Wrap("echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtxID = RequestID(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}))

	// No incoming id: one is minted, placed in ctx, echoed in the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/echo", nil))
	minted := rec.Header().Get(RequestIDHeader)
	if minted == "" || seenCtxID != minted {
		t.Fatalf("minted id %q, ctx saw %q", minted, seenCtxID)
	}

	// Incoming id: propagated verbatim.
	req := httptest.NewRequest(http.MethodGet, "/echo", nil)
	req.Header.Set(RequestIDHeader, "deadbeef00000001")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenCtxID != "deadbeef00000001" || rec.Header().Get(RequestIDHeader) != "deadbeef00000001" {
		t.Fatalf("incoming id not propagated: ctx %q, echo %q", seenCtxID, rec.Header().Get(RequestIDHeader))
	}

	// The log line carries the id and the endpoint.
	dec := json.NewDecoder(&buf)
	found := false
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line["request_id"] == "deadbeef00000001" && line["endpoint"] == "echo" {
			found = true
		}
	}
	if !found {
		t.Fatal("no structured log line with the propagated request id")
	}

	// Metrics moved: two requests, both 204.
	if got := reg.Value("ldp_http_requests_total", "echo", "204"); got != 2 {
		t.Fatalf("ldp_http_requests_total{echo,204} = %v, want 2", got)
	}
}

func TestWrapSlowAndErrorLogLevels(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	m := NewHTTPMetrics(reg, "test", logger, time.Nanosecond) // everything is slow

	h := m.Wrap("slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Microsecond)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slow", nil))
	if !strings.Contains(buf.String(), `"slow":true`) {
		t.Fatalf("slow request not logged at Warn: %s", buf.String())
	}
	if got := reg.Value("ldp_http_requests_total", "slow", "500"); got != 1 {
		t.Fatalf("500 not counted: %v", got)
	}
}

func TestNewRequestIDShape(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q %q", a, b)
	}
}
