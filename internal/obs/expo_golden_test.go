package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata goldens")

// TestExpositionGolden pins the text format byte-for-byte: family ordering,
// HELP/TYPE lines, label rendering and escaping, histogram
// bucket/sum/count shape, and value formatting. Any format drift — which
// would silently break every scraper — must show up as a golden diff.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ldp_zeta_total", "Sorted last by name.").Add(3)
	v := r.CounterVec("ldp_requests_total", "Requests by endpoint and code.", "endpoint", "code")
	v.With("reports", "200").Add(12)
	v.With("reports", "503").Inc()
	v.With("query", "200").Add(2)
	r.Gauge("ldp_level", "A gauge with a fractional value.").Set(0.375)
	r.GaugeFunc("ldp_func_gauge", "A gauge read at scrape time.", func() float64 { return 42 })
	r.GaugeVec("ldp_escaped", "Label escaping: backslash, quote, newline.", "v").
		With("a\\b\"c\nd").Set(1)
	h := r.Histogram("ldp_commit_bytes", "Group commit size in bytes.", SizeBounds(4))
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	hv := r.HistogramVec("ldp_op_duration_seconds", "Operation latency in seconds.",
		[]float64{0.001, 0.1}, "op")
	hv.With("append").Observe(0.0005)
	hv.With("append").Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}

	// The golden output must also parse back and survive the lint rules —
	// except the deliberately-bad names used above, so lint only the
	// well-formed subset via a second registry in TestLintRules.
	if _, err := ParseText(strings.NewReader(got)); err != nil {
		t.Fatalf("own golden does not parse: %v", err)
	}
}
