package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label values,
// histograms as cumulative _bucket/_sum/_count triples. Deterministic given
// deterministic values, so goldens can pin it.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		cells := make([]*series, 0, len(keys))
		for _, k := range keys {
			cells = append(cells, f.series[k])
		}
		f.mu.Unlock()
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range cells {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch {
	case s.h != nil:
		writeHistogram(w, f, s)
	case s.fn != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(f.labels, s.labelVals, "", ""), formatValue(s.fn()))
	case s.c != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(f.labels, s.labelVals, "", ""), formatValue(float64(s.c.Value())))
	case s.g != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(f.labels, s.labelVals, "", ""), formatValue(s.g.Value()))
	}
}

// writeHistogram renders one histogram series: cumulative buckets with `le`
// upper bounds, then the +Inf bucket, _sum, and _count. The per-bucket counts
// are loaded once each; a scrape racing observations stays internally
// consistent enough for monitoring (Prometheus itself makes no stronger
// promise for concurrent collectors).
func writeHistogram(w io.Writer, f *family, s *series) {
	h := s.h
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelBlock(f.labels, s.labelVals, "le", formatValue(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelBlock(f.labels, s.labelVals, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelBlock(f.labels, s.labelVals, "", ""), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelBlock(f.labels, s.labelVals, "", ""), h.Count())
}

// labelBlock renders {k="v",...} (empty string for no labels), appending the
// extra pair (for histogram `le`) when extraKey is non-empty.
func labelBlock(labels, vals []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(extraVal)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Sample is one parsed exposition line: a series name, its sorted label
// block as rendered, and the value.
type Sample struct {
	Name   string // metric name without the label block
	Labels string // the raw {...} block, "" when unlabeled
	Value  float64
}

// ParseText parses Prometheus text exposition into samples, keeping every
// series line (including _bucket/_sum/_count) and skipping comments. It is
// the scrape half the ldpload scorer and the e2e tests share; it handles the
// subset of the format WriteText emits plus anything with simple quoted
// labels (no escaped quotes inside values are needed by our own output, but
// they are handled).
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Sample
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, valStr, err := splitSampleLine(line)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad sample value in %q: %w", line, err)
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}
	return out, nil
}

func splitSampleLine(line string) (name, labels, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		// Find the closing brace respecting quoted label values.
		j := i + 1
		inQuote := false
		for ; j < len(line); j++ {
			switch line[j] {
			case '\\':
				if inQuote {
					j++ // skip the escaped byte
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					goto done
				}
			}
		}
	done:
		if j >= len(line) {
			return "", "", "", fmt.Errorf("obs: unterminated label block in %q", line)
		}
		return line[:i], line[i : j+1], strings.TrimSpace(line[j+1:]), nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", "", fmt.Errorf("obs: malformed sample line %q", line)
	}
	return fields[0], "", fields[1], nil
}

// SampleValue sums every parsed sample whose name matches exactly and whose
// label block contains the given substring (pass "" to match all series of
// the family). Summing makes per-shard or per-endpoint fan-outs easy to
// fold: SampleValue(samples, "ldp_http_requests_total", `endpoint="reports"`).
func SampleValue(samples []Sample, name, labelSubstr string) (sum float64, found bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		if labelSubstr != "" && !strings.Contains(s.Labels, labelSubstr) {
			continue
		}
		sum += s.Value
		found = true
	}
	return sum, found
}

// Lint checks a rendered exposition against the naming rules this repo pins:
// every family is ldp_-prefixed, counters end in _total, histograms measuring
// seconds end in _seconds, and no two families share a help string (copy-paste
// help is how catalogs rot). It returns one message per violation.
func Lint(text string) []string {
	var problems []string
	type meta struct{ help, kind string }
	families := map[string]meta{}
	var order []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			m := families[name]
			m.help = help
			if _, seen := families[name]; !seen {
				order = append(order, name)
			}
			families[name] = m
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, _ := strings.Cut(rest, " ")
			m := families[name]
			m.kind = kind
			if m.help == "" {
				if _, seen := families[name]; !seen {
					order = append(order, name)
				}
			}
			families[name] = m
		}
	}
	helps := map[string]string{}
	for _, name := range order {
		m := families[name]
		if !strings.HasPrefix(name, "ldp_") {
			problems = append(problems, fmt.Sprintf("%s: missing ldp_ prefix", name))
		}
		if m.help == "" {
			problems = append(problems, fmt.Sprintf("%s: missing HELP", name))
		}
		if m.kind == "counter" && !strings.HasSuffix(name, "_total") {
			problems = append(problems, fmt.Sprintf("%s: counter without _total suffix", name))
		}
		if m.kind != "counter" && strings.HasSuffix(name, "_total") {
			problems = append(problems, fmt.Sprintf("%s: _total suffix on a %s", name, m.kind))
		}
		if m.kind == "histogram" && strings.Contains(m.help, "seconds") && !strings.HasSuffix(name, "_seconds") {
			problems = append(problems, fmt.Sprintf("%s: duration histogram without _seconds suffix", name))
		}
		if prev, dup := helps[m.help]; dup && m.help != "" {
			problems = append(problems, fmt.Sprintf("%s: help string duplicates %s", name, prev))
		} else {
			helps[m.help] = name
		}
	}
	return problems
}
