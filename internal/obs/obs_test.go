package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ldp_things_total", "Things.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Value("ldp_things_total"); got != 5 {
		t.Fatalf("registry value = %v, want 5", got)
	}

	g := r.Gauge("ldp_level", "Level.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("ldp_latency_seconds", "Latency in seconds.", LatencyBounds())
	h.ObserveDuration(3 * time.Microsecond) // bucket le=4e-06
	h.Observe(100)                          // +Inf overflow
	if h.Count() != 2 {
		t.Fatalf("hist count = %d, want 2", h.Count())
	}
	if h.Sum() < 100 || h.Sum() > 100.001 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
}

func TestVecHandlesAndIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ldp_ops_total", "Ops.", "kind")
	a := v.With("read")
	b := v.With("read")
	if a != b {
		t.Fatal("same label values resolved different cells")
	}
	v.With("write").Add(3)
	a.Inc()
	if got := r.Value("ldp_ops_total", "read"); got != 1 {
		t.Fatalf("read = %v, want 1", got)
	}
	if got := r.Value("ldp_ops_total", "write"); got != 3 {
		t.Fatalf("write = %v, want 3", got)
	}
	// Re-registering the same family returns it.
	v2 := r.CounterVec("ldp_ops_total", "Ops.", "kind")
	if v2.With("read") != a {
		t.Fatal("re-registration did not return the existing family")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ldp_x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("ldp_x_total", "X.")
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ldp_hits_total", "Hits.")
	h := r.Histogram("ldp_obs_seconds", "Obs in seconds.", LatencyBounds())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ldp_served_total", "Served.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := SampleValue(samples, "ldp_served_total", ""); !ok || v != 1 {
		t.Fatalf("ldp_served_total = %v (found %v), want 1", v, ok)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("ldp_rt_total", "RT.", "endpoint", "code").With("reports", "200").Add(7)
	h := r.Histogram("ldp_rt_seconds", "RT latency in seconds.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse own output: %v\n%s", err, sb.String())
	}
	if v, _ := SampleValue(samples, "ldp_rt_total", `endpoint="reports"`); v != 7 {
		t.Fatalf("labeled counter = %v, want 7", v)
	}
	if v, _ := SampleValue(samples, "ldp_rt_seconds_count", ""); v != 2 {
		t.Fatalf("hist count = %v, want 2", v)
	}
	if v, _ := SampleValue(samples, "ldp_rt_seconds_bucket", `le="+Inf"`); v != 2 {
		t.Fatalf("+Inf bucket = %v, want 2", v)
	}
	if v, _ := SampleValue(samples, "ldp_rt_seconds_bucket", `le="0.001"`); v != 1 {
		t.Fatalf("le=0.001 bucket = %v, want 1", v)
	}
}

func TestLintRules(t *testing.T) {
	bad := strings.Join([]string{
		"# HELP requests_total Requests.",
		"# TYPE requests_total counter",
		"requests_total 1",
		"# HELP ldp_stuff Stuff count.",
		"# TYPE ldp_stuff counter",
		"ldp_stuff 1",
		"# HELP ldp_other_total Stuff count.",
		"# TYPE ldp_other_total counter",
		"ldp_other_total 1",
		"# HELP ldp_lat Histogram of latency in seconds.",
		"# TYPE ldp_lat histogram",
	}, "\n")
	problems := Lint(bad)
	wantSubstrings := []string{
		"missing ldp_ prefix",
		"counter without _total suffix",
		"help string duplicates",
		"duration histogram without _seconds suffix",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lint missed %q in %v", want, problems)
		}
	}

	r := NewRegistry()
	NewHTTPMetrics(r, "test", nil, 0)
	r.Counter("ldp_good_total", "A well-named counter.").Inc()
	var sb strings.Builder
	r.WriteText(&sb)
	if problems := Lint(sb.String()); len(problems) != 0 {
		t.Fatalf("clean registry flagged: %v", problems)
	}
}
