package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix // packed L (unit lower) and U
	piv  []int   // row permutation
	sign int
}

// FactorLU computes the LU factorization of a square matrix.
func FactorLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest |entry| in column k at or below row k.
		p := k
		pmax := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > pmax {
				pmax, p = a, i
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic("linalg: LU SolveVec length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x
}

// Solve solves A X = B for a matrix right-hand side.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n {
		panic("linalg: LU Solve shape mismatch")
	}
	out := New(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := f.SolveVec(col)
		out.SetCol(j, x)
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A X = B using LU with partial pivoting.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A⁻¹ using LU with partial pivoting.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// Cholesky holds the lower-triangular factor L with A = L Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix. It returns ErrSingular if a non-positive pivot is
// encountered (the matrix is not numerically positive definite).
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	c := new(Cholesky)
	if err := c.Factor(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factor computes the Cholesky factorization of a into c, reusing c's storage
// when the shape matches (so repeated factorizations at a fixed size
// allocate nothing). See FactorCholesky for the error contract.
func (c *Cholesky) Factor(a *Matrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	l := c.l
	if l == nil || l.rows != n || l.cols != n {
		l = New(n, n)
		c.l = l
	} else {
		clear(l.data)
	}
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/ljj)
		}
	}
	return nil
}

// L returns the lower-triangular factor (aliasing internal storage).
func (c *Cholesky) L() *Matrix { return c.l }

// SolveVec solves A x = b given A = L Lᵀ.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic("linalg: Cholesky SolveVec length mismatch")
	}
	// Forward: L y = b.
	y := CloneVec(b)
	for i := 0; i < n; i++ {
		ri := c.l.Row(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	// Back: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	return y
}

// Solve solves A X = B given A = L Lᵀ.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	out := New(c.l.rows, b.cols)
	c.SolveTo(out, b)
	return out
}

// SolveTo solves A X = B into dst given A = L Lᵀ, reusing dst's storage. dst
// must have b's shape and must not alias b or the factor. Columns are
// independent triangular solves, processed in blocks that fan out across
// GOMAXPROCS goroutines for large right-hand sides; each element accumulates
// in the same order as SolveVec, so results are bit-identical to the serial
// column-at-a-time solve at any worker count.
func (c *Cholesky) SolveTo(dst, b *Matrix) {
	n := c.l.rows
	if b.rows != n {
		panic("linalg: Cholesky SolveTo shape mismatch")
	}
	if dst.rows != n || dst.cols != b.cols {
		panic("linalg: Cholesky SolveTo dst shape mismatch")
	}
	w := b.cols
	if !ShouldParallel(w, 2*n*n*w) {
		c.solveToCols(dst, b, 0, w)
		return
	}
	ParallelRange(w, 2*n*n*w, func(_, lo, hi int) {
		c.solveToCols(dst, b, lo, hi)
	})
}

// solveToCols solves the column block [lo, hi) of A X = B into dst in place:
// copy B in, then run the forward and back substitutions row-wise so L
// streams row-major once per block.
func (c *Cholesky) solveToCols(dst, b *Matrix, lo, hi int) {
	n := c.l.rows
	w := b.cols
	for i := 0; i < n; i++ {
		copy(dst.data[i*w+lo:i*w+hi], b.data[i*w+lo:i*w+hi])
	}
	// Forward: L Y = B.
	for i := 0; i < n; i++ {
		ri := c.l.Row(i)
		drow := dst.data[i*w : (i+1)*w]
		for k := 0; k < i; k++ {
			lik := ri[k]
			if lik == 0 {
				continue
			}
			krow := dst.data[k*w : (k+1)*w]
			for j := lo; j < hi; j++ {
				drow[j] -= lik * krow[j]
			}
		}
		lii := ri[i]
		for j := lo; j < hi; j++ {
			drow[j] /= lii
		}
	}
	// Back: Lᵀ X = Y.
	for i := n - 1; i >= 0; i-- {
		drow := dst.data[i*w : (i+1)*w]
		for k := i + 1; k < n; k++ {
			lki := c.l.At(k, i)
			if lki == 0 {
				continue
			}
			krow := dst.data[k*w : (k+1)*w]
			for j := lo; j < hi; j++ {
				drow[j] -= lki * krow[j]
			}
		}
		lii := c.l.At(i, i)
		for j := lo; j < hi; j++ {
			drow[j] /= lii
		}
	}
}

// LogDet returns log det(A) = 2 Σ log L_ii for the factored matrix.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.l.rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}
