package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	if got := m.Data()[5]; got != 5 {
		t.Fatalf("Data()[5] = %v, want 5 (row-major layout)", got)
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewFrom(2, 2, []float64{1, 2, 3})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !ApproxEqual(id, d, 0) {
		t.Fatal("Identity(3) != Diag(ones)")
	}
	if id.Trace() != 3 {
		t.Fatalf("trace = %v, want 3", id.Trace())
	}
}

func TestTranspose(t *testing.T) {
	m := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !ApproxEqual(mt.T(), m, 0) {
		t.Fatal("double transpose != original")
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewFrom(2, 2, []float64{58, 64, 139, 154})
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 5, 7)
	if !ApproxEqual(Mul(Identity(5), a), a, 1e-12) {
		t.Fatal("I*A != A")
	}
	if !ApproxEqual(Mul(a, Identity(7)), a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMulAtBAndABt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 6, 4)
	b := randMatrix(rng, 6, 3)
	want := Mul(a.T(), b)
	if got := MulAtB(a, b); !ApproxEqual(got, want, 1e-10) {
		t.Fatal("MulAtB != AᵀB")
	}
	c := randMatrix(rng, 5, 4)
	d := randMatrix(rng, 7, 4)
	want2 := Mul(c, d.T())
	if got := MulABt(c, d); !ApproxEqual(got, want2, 1e-10) {
		t.Fatal("MulABt != ABᵀ")
	}
}

func TestGram(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 8, 5)
	g := Gram(a)
	if !g.IsSymmetric(1e-12) {
		t.Fatal("Gram matrix not symmetric")
	}
	if !ApproxEqual(g, Mul(a.T(), a), 1e-10) {
		t.Fatal("Gram != AᵀA")
	}
}

func TestMulVecAndMulVecT(t *testing.T) {
	a := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	got := a.MulVec(x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
	y := []float64{1, 2}
	gt := a.MulVecT(y)
	want := []float64{9, 12, 15}
	for i := range want {
		if math.Abs(gt[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT = %v, want %v", gt, want)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewFrom(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); got.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a); got.At(0, 0) != 4 {
		t.Fatalf("Sub wrong: %v", got)
	}
	c := a.Clone().Scale(2)
	if c.At(1, 0) != 6 {
		t.Fatalf("Scale wrong: %v", c)
	}
	// a must be unchanged by Clone+Scale.
	if a.At(1, 0) != 3 {
		t.Fatal("Clone did not isolate storage")
	}
}

func TestRowColOps(t *testing.T) {
	a := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	rs := a.RowSums()
	if rs[0] != 6 || rs[1] != 15 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := a.ColSums()
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 {
		t.Fatalf("ColSums = %v", cs)
	}
	b := a.Clone().ScaleRows([]float64{2, 0.5})
	if b.At(0, 0) != 2 || b.At(1, 2) != 3 {
		t.Fatalf("ScaleRows wrong: %v", b)
	}
	c := a.Clone().ScaleCols([]float64{1, 0, -1})
	if c.At(0, 1) != 0 || c.At(1, 2) != -6 {
		t.Fatalf("ScaleCols wrong: %v", c)
	}
	col := a.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Fatalf("Col = %v", col)
	}
	a.SetCol(1, []float64{9, 9})
	if a.At(0, 1) != 9 || a.At(1, 1) != 9 {
		t.Fatal("SetCol failed")
	}
	a.SetRow(0, []float64{7, 7, 7})
	if a.At(0, 2) != 7 {
		t.Fatal("SetRow failed")
	}
}

func TestFrobAndMaxAbs(t *testing.T) {
	a := NewFrom(2, 2, []float64{3, 0, 0, -4})
	if a.FrobNorm2() != 25 {
		t.Fatalf("FrobNorm2 = %v, want 25", a.FrobNorm2())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v, want 4", a.MaxAbs())
	}
}

func TestSymmetrize(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 4, 3})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %v", a)
	}
	if !a.IsSymmetric(0) {
		t.Fatal("not symmetric after Symmetrize")
	}
}

func TestStack(t *testing.T) {
	a := NewFrom(1, 2, []float64{1, 2})
	b := NewFrom(2, 2, []float64{3, 4, 5, 6})
	s := Stack(a, b)
	if s.Rows() != 3 || s.Cols() != 2 {
		t.Fatalf("Stack shape %dx%d", s.Rows(), s.Cols())
	}
	if s.At(2, 1) != 6 || s.At(0, 0) != 1 {
		t.Fatalf("Stack contents wrong: %v", s)
	}
}

func TestKron(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	id := Identity(2)
	k := Kron(a, id)
	if k.Rows() != 4 || k.Cols() != 4 {
		t.Fatalf("Kron shape %dx%d", k.Rows(), k.Cols())
	}
	if k.At(0, 0) != 1 || k.At(1, 1) != 1 || k.At(0, 2) != 2 || k.At(3, 3) != 4 || k.At(0, 1) != 0 {
		t.Fatalf("Kron contents wrong: %v", k)
	}
}

func TestHasNaN(t *testing.T) {
	a := New(2, 2)
	if a.HasNaN() {
		t.Fatal("zero matrix should not report NaN")
	}
	a.Set(0, 1, math.NaN())
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
	a.Set(0, 1, math.Inf(1))
	if !a.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(rng, p, q)
		b := randMatrix(rng, q, s)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return ApproxEqual(left, right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: trace(AB) = trace(BA).
func TestTraceCyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(r, p, q)
		b := randMatrix(r, q, p)
		return math.Abs(Mul(a, b).Trace()-Mul(b, a).Trace()) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, -2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 12 {
		t.Fatalf("Dot = %v, want 12", Dot(x, y))
	}
	if Sum(x) != 2 {
		t.Fatalf("Sum = %v", Sum(x))
	}
	if Norm1(x) != 6 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if NormInf(x) != 3 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if math.Abs(Norm2(x)-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	z := CloneVec(x)
	AxpyVec(2, y, z)
	if z[0] != 9 || z[1] != 8 || z[2] != 15 {
		t.Fatalf("AxpyVec = %v", z)
	}
	ScaleVec(0.5, z)
	if z[0] != 4.5 {
		t.Fatalf("ScaleVec = %v", z)
	}
	if MaxVec(x) != 3 || MinVec(x) != -2 || ArgMax(x) != 2 {
		t.Fatal("Max/Min/ArgMax wrong")
	}
	c := []float64{-1, 0.5, 2}
	ClipScalar(c, 0, 1)
	if c[0] != 0 || c[1] != 0.5 || c[2] != 1 {
		t.Fatalf("ClipScalar = %v", c)
	}
	lo := []float64{0, 0, 0}
	hi := []float64{1, 0.25, 1}
	d := []float64{-5, 0.5, 0.75}
	ClipVec(d, lo, hi)
	if d[0] != 0 || d[1] != 0.25 || d[2] != 0.75 {
		t.Fatalf("ClipVec = %v", d)
	}
	if o := Ones(3); o[0] != 1 || o[2] != 1 {
		t.Fatal("Ones wrong")
	}
	if cst := Constant(2, 7); cst[1] != 7 {
		t.Fatal("Constant wrong")
	}
}
