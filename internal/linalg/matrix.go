// Package linalg provides the dense linear-algebra substrate used throughout
// the repository: matrices, factorizations (LU, Cholesky), a symmetric Jacobi
// eigendecomposition, pseudo-inverses of PSD matrices, and singular values.
//
// Everything is implemented on top of the standard library only. Matrices are
// dense, row-major, and sized for the problem scales of the paper (domains up
// to a few thousand). The package favors clarity and numerical robustness over
// squeezing the last constant factor: the optimization loop in internal/core
// is the only hot path, and it is dominated by O(n^2 m) matrix products that
// use cache-friendly ikj loops below.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
//
// The zero value is an empty matrix. Use New, NewFrom or Identity to create
// matrices with a shape.
type Matrix struct {
	// RowsN and ColsN give the shape. They are exported via Rows/Cols
	// accessors; direct field access is internal to the package.
	rows, cols int
	data       []float64
}

// New returns a rows x cols matrix of zeros.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFrom wraps data (row-major, length rows*cols) in a Matrix. The slice is
// used directly, not copied.
func NewFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns the square diagonal matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Data exposes the backing row-major slice. Mutating it mutates the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic("linalg: SetRow length mismatch")
	}
	copy(m.Row(i), v)
}

// SetCol copies v into column j.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic("linalg: SetCol length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.data, src.data)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddScaled adds s*b to m in place and returns m. Shapes must match.
func (m *Matrix) AddScaled(s float64, b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("linalg: AddScaled shape mismatch")
	}
	for i, v := range b.data {
		m.data[i] += s * v
	}
	return m
}

// Add returns m + b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: Add shape mismatch")
	}
	out := a.Clone()
	return out.AddScaled(1, b)
}

// Sub returns a - b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: Sub shape mismatch")
	}
	out := a.Clone()
	return out.AddScaled(-1, b)
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b, reusing dst's storage. dst must have shape
// a.Rows x b.Cols and must not alias a or b.
func MulTo(dst, a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic("linalg: MulTo shape mismatch")
	}
	n := b.cols
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulAtB returns aᵀ*b without materializing the transpose.
func MulAtB(a, b *Matrix) *Matrix {
	if a.rows != b.rows {
		panic("linalg: MulAtB shape mismatch")
	}
	out := New(a.cols, b.cols)
	n := b.cols
	for k := 0; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

// MulABt returns a*bᵀ without materializing the transpose.
func MulABt(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic("linalg: MulABt shape mismatch")
	}
	out := New(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := out.Row(i)
		for j := 0; j < b.rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// Gram returns aᵀ*a (the Gram matrix of a's columns).
func Gram(a *Matrix) *Matrix { return MulAtB(a, a) }

// MulVec returns m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("linalg: MulVec length mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// MulVecT returns mᵀ*x.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic("linalg: MulVecT length mismatch")
	}
	out := make([]float64, m.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic("linalg: Trace of non-square matrix")
	}
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// FrobNorm2 returns the squared Frobenius norm (sum of squared entries).
func (m *Matrix) FrobNorm2() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ScaleRows multiplies row i by s[i] in place and returns m.
func (m *Matrix) ScaleRows(s []float64) *Matrix {
	if len(s) != m.rows {
		panic("linalg: ScaleRows length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		si := s[i]
		for j := range row {
			row[j] *= si
		}
	}
	return m
}

// ScaleCols multiplies column j by s[j] in place and returns m.
func (m *Matrix) ScaleCols(s []float64) *Matrix {
	if len(s) != m.cols {
		panic("linalg: ScaleCols length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
	return m
}

// RowSums returns the vector of row sums (m * 1).
func (m *Matrix) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Sum(m.Row(i))
	}
	return out
}

// ColSums returns the vector of column sums (mᵀ * 1).
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// DiagOf returns the diagonal of a square matrix as a new slice.
func (m *Matrix) DiagOf() []float64 {
	if m.rows != m.cols {
		panic("linalg: DiagOf non-square matrix")
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+i]
	}
	return out
}

// IsSymmetric reports whether the matrix is symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m + mᵀ)/2 in place and returns m.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic("linalg: Symmetrize non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// ApproxEqual reports whether a and b have the same shape and all entries
// differ by at most tol.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Matrix(%dx%d)[\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		sb.WriteString("  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&sb, "% .4g ", m.At(i, j))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("]")
	return sb.String()
}

// HasNaN reports whether any entry is NaN or Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Stack vertically concatenates the given matrices (which must share a column
// count) into a single matrix.
func Stack(blocks ...*Matrix) *Matrix {
	if len(blocks) == 0 {
		return New(0, 0)
	}
	cols := blocks[0].cols
	rows := 0
	for _, b := range blocks {
		if b.cols != cols {
			panic("linalg: Stack column mismatch")
		}
		rows += b.rows
	}
	out := New(rows, cols)
	at := 0
	for _, b := range blocks {
		copy(out.data[at*cols:], b.data)
		at += b.rows
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for p := 0; p < b.rows; p++ {
				for q := 0; q < b.cols; q++ {
					out.Set(i*b.rows+p, j*b.cols+q, av*b.At(p, q))
				}
			}
		}
	}
	return out
}
