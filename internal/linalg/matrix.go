// Package linalg provides the dense linear-algebra substrate used throughout
// the repository: matrices, factorizations (LU, Cholesky), a symmetric Jacobi
// eigendecomposition, pseudo-inverses of PSD matrices, and singular values.
//
// Everything is implemented on top of the standard library only. Matrices are
// dense, row-major, and sized for the problem scales of the paper (domains up
// to a few thousand).
//
// # Destination-passing (*To) variants and aliasing rules
//
// The hot path in internal/core runs thousands of iterations at a fixed
// shape, so every allocating operation used there has a destination-passing
// variant (MulTo, MulAtBTo, MulABtTo, MulVecTo, RowSumsTo, ScaleRowsTo,
// TransposeTo, Cholesky.Factor, Cholesky.SolveTo) that writes into
// caller-owned storage and allocates nothing in steady state. Unless a
// variant documents otherwise, dst must not alias any input: results are
// written incrementally, so an aliased destination would be read after being
// partially overwritten.
//
// # Parallelism and reproducibility
//
// Matrix products and multi-column triangular solves above a flop threshold
// fan out over contiguous row (or column) blocks across GOMAXPROCS
// goroutines (ParallelRange). Every kernel accumulates each output element
// in a fixed order independent of the block split, so results are
// bit-identical to the serial kernel at any GOMAXPROCS — experiment outputs
// stay reproducible across machines and worker counts.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
//
// The zero value is an empty matrix. Use New, NewFrom or Identity to create
// matrices with a shape.
type Matrix struct {
	// RowsN and ColsN give the shape. They are exported via Rows/Cols
	// accessors; direct field access is internal to the package.
	rows, cols int
	data       []float64
}

// New returns a rows x cols matrix of zeros.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFrom wraps data (row-major, length rows*cols) in a Matrix. The slice is
// used directly, not copied.
func NewFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns the square diagonal matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Data exposes the backing row-major slice. Mutating it mutates the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic("linalg: SetRow length mismatch")
	}
	copy(m.Row(i), v)
}

// SetCol copies v into column j.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic("linalg: SetCol length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.data, src.data)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	m.TransposeTo(out)
	return out
}

// TransposeTo computes dst = mᵀ into dst, which must have shape
// m.Cols x m.Rows and must not alias m.
func (m *Matrix) TransposeTo(dst *Matrix) {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic("linalg: TransposeTo shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.data[j*m.rows+i] = v
		}
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddScaled adds s*b to m in place and returns m. Shapes must match.
func (m *Matrix) AddScaled(s float64, b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("linalg: AddScaled shape mismatch")
	}
	for i, v := range b.data {
		m.data[i] += s * v
	}
	return m
}

// Add returns m + b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: Add shape mismatch")
	}
	out := a.Clone()
	return out.AddScaled(1, b)
}

// Sub returns a - b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: Sub shape mismatch")
	}
	out := a.Clone()
	return out.AddScaled(-1, b)
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b, reusing dst's storage. dst must have shape
// a.Rows x b.Cols and must not alias a or b. Large products fan out over row
// blocks across GOMAXPROCS goroutines; results are bit-identical at any
// worker count (each element accumulates in a fixed order).
func MulTo(dst, a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic("linalg: MulTo shape mismatch")
	}
	if !ShouldParallel(a.rows, a.rows*a.cols*b.cols) {
		mulToRows(dst, a, b, 0, a.rows)
		return
	}
	ParallelRange(a.rows, a.rows*a.cols*b.cols, func(_, lo, hi int) {
		mulToRows(dst, a, b, lo, hi)
	})
}

// MulAtB returns aᵀ*b without materializing the transpose.
func MulAtB(a, b *Matrix) *Matrix {
	out := New(a.cols, b.cols)
	MulAtBTo(out, a, b)
	return out
}

// MulAtBTo computes dst = aᵀ*b without materializing the transpose, reusing
// dst's storage. dst must have shape a.Cols x b.Cols and must not alias a or
// b. Parallel and bit-reproducible like MulTo.
func MulAtBTo(dst, a, b *Matrix) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic("linalg: MulAtBTo shape mismatch")
	}
	if !ShouldParallel(a.cols, a.rows*a.cols*b.cols) {
		mulAtBToRows(dst, a, b, 0, a.cols)
		return
	}
	ParallelRange(a.cols, a.rows*a.cols*b.cols, func(_, lo, hi int) {
		mulAtBToRows(dst, a, b, lo, hi)
	})
}

// MulABt returns a*bᵀ without materializing the transpose.
func MulABt(a, b *Matrix) *Matrix {
	out := New(a.rows, b.rows)
	MulABtTo(out, a, b)
	return out
}

// MulABtTo computes dst = a*bᵀ without materializing the transpose, reusing
// dst's storage. dst must have shape a.Rows x b.Rows and must not alias a or
// b. Parallel and bit-reproducible like MulTo.
func MulABtTo(dst, a, b *Matrix) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic("linalg: MulABtTo shape mismatch")
	}
	if !ShouldParallel(a.rows, a.rows*a.cols*b.rows) {
		mulABtToRows(dst, a, b, 0, a.rows)
		return
	}
	ParallelRange(a.rows, a.rows*a.cols*b.rows, func(_, lo, hi int) {
		mulABtToRows(dst, a, b, lo, hi)
	})
}

// Gram returns aᵀ*a (the Gram matrix of a's columns).
func Gram(a *Matrix) *Matrix { return MulAtB(a, a) }

// MulVec returns m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes dst = m*x, reusing dst (length m.Rows). dst must not
// alias x.
func (m *Matrix) MulVecTo(dst, x []float64) {
	if len(x) != m.cols {
		panic("linalg: MulVecTo length mismatch")
	}
	if len(dst) != m.rows {
		panic("linalg: MulVecTo dst length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulVecT returns mᵀ*x.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic("linalg: MulVecT length mismatch")
	}
	out := make([]float64, m.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic("linalg: Trace of non-square matrix")
	}
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// FrobNorm2 returns the squared Frobenius norm (sum of squared entries).
func (m *Matrix) FrobNorm2() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ScaleRows multiplies row i by s[i] in place and returns m.
func (m *Matrix) ScaleRows(s []float64) *Matrix {
	if len(s) != m.rows {
		panic("linalg: ScaleRows length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		si := s[i]
		for j := range row {
			row[j] *= si
		}
	}
	return m
}

// ScaleRowsTo computes dst = Diag(s)·m (row i of m scaled by s[i]) into dst,
// which must share m's shape. dst may alias m (the operation is element-wise).
func (m *Matrix) ScaleRowsTo(dst *Matrix, s []float64) *Matrix {
	if len(s) != m.rows {
		panic("linalg: ScaleRowsTo length mismatch")
	}
	if dst.rows != m.rows || dst.cols != m.cols {
		panic("linalg: ScaleRowsTo shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		si := s[i]
		for j, v := range src {
			out[j] = v * si
		}
	}
	return dst
}

// ScaleCols multiplies column j by s[j] in place and returns m.
func (m *Matrix) ScaleCols(s []float64) *Matrix {
	if len(s) != m.cols {
		panic("linalg: ScaleCols length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
	return m
}

// RowSums returns the vector of row sums (m * 1).
func (m *Matrix) RowSums() []float64 {
	out := make([]float64, m.rows)
	m.RowSumsTo(out)
	return out
}

// RowSumsTo computes the row sums into dst (length m.Rows).
func (m *Matrix) RowSumsTo(dst []float64) {
	if len(dst) != m.rows {
		panic("linalg: RowSumsTo length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Sum(m.Row(i))
	}
}

// ColSums returns the vector of column sums (mᵀ * 1).
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// DiagOf returns the diagonal of a square matrix as a new slice.
func (m *Matrix) DiagOf() []float64 {
	if m.rows != m.cols {
		panic("linalg: DiagOf non-square matrix")
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+i]
	}
	return out
}

// IsSymmetric reports whether the matrix is symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m + mᵀ)/2 in place and returns m.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic("linalg: Symmetrize non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// ApproxEqual reports whether a and b have the same shape and all entries
// differ by at most tol.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Matrix(%dx%d)[\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		sb.WriteString("  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&sb, "% .4g ", m.At(i, j))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("]")
	return sb.String()
}

// HasNaN reports whether any entry is NaN or Inf.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Stack vertically concatenates the given matrices (which must share a column
// count) into a single matrix.
func Stack(blocks ...*Matrix) *Matrix {
	if len(blocks) == 0 {
		return New(0, 0)
	}
	cols := blocks[0].cols
	rows := 0
	for _, b := range blocks {
		if b.cols != cols {
			panic("linalg: Stack column mismatch")
		}
		rows += b.rows
	}
	out := New(rows, cols)
	at := 0
	for _, b := range blocks {
		copy(out.data[at*cols:], b.data)
		at += b.rows
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for p := 0; p < b.rows; p++ {
				for q := 0; q < b.cols; q++ {
					out.Set(i*b.rows+p, j*b.cols+q, av*b.At(p, q))
				}
			}
		}
	}
	return out
}
