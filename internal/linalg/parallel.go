package linalg

import (
	"runtime"
	"sync"
)

// parallelMinFlops is the approximate work (floating-point operations) below
// which a kernel runs serially: fanning goroutines out costs a few
// microseconds, so small products are faster single-threaded.
const parallelMinFlops = 1 << 17

// MaxWorkers returns the fan-out width parallel kernels use: one worker per
// available CPU (runtime.GOMAXPROCS). Callers that keep per-worker scratch
// (e.g. opt.Scratch) size it with this.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// ShouldParallel reports whether a kernel over n independent units of the
// given total cost will fan out. Callers with allocation-free serial paths
// check it first and only build the fan-out closure when it returns true
// (constructing a capturing closure heap-allocates, which the serial hot
// path must avoid).
func ShouldParallel(n, cost int) bool {
	return n > 1 && cost >= parallelMinFlops && MaxWorkers() > 1
}

// ParallelRange splits [0, n) into at most MaxWorkers contiguous blocks and
// invokes fn(worker, lo, hi) for each, concurrently when cost (an approximate
// flop count for the whole range) is large enough to amortize the fan-out.
// Worker indices are dense in [0, MaxWorkers()), so fn may index per-worker
// scratch with them; each index is in flight at most once per call.
//
// fn must only write state disjoint across blocks. Block boundaries depend on
// GOMAXPROCS, so bit-reproducible callers must make each element's result
// independent of the split (all kernels in this package accumulate each
// output element in a fixed order, making them bit-identical to their serial
// counterparts at any worker count).
func ParallelRange(n, cost int, fn func(worker, lo, hi int)) {
	if !ShouldParallel(n, cost) {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// mulToRows computes rows [lo, hi) of dst = a*b with the cache-friendly ikj
// loop. Each dst element accumulates over k in ascending order, so any row
// partition yields bit-identical results.
func mulToRows(dst, a, b *Matrix, lo, hi int) {
	n := b.cols
	clear(dst.data[lo*n : hi*n])
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulAtBToRows computes rows [lo, hi) of dst = aᵀ*b (row i of dst is column i
// of a against b). The k loop is outermost so a and b stream row-major; each
// dst element still accumulates over k in ascending order.
func mulAtBToRows(dst, a, b *Matrix, lo, hi int) {
	n := b.cols
	clear(dst.data[lo*n : hi*n])
	for k := 0; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulABtToRows computes rows [lo, hi) of dst = a*bᵀ.
func mulABtToRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}
