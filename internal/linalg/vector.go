package linalg

import "math"

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-abs norm of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AxpyVec computes y += a*x in place.
func AxpyVec(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AxpyVec length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Ones returns a vector of n ones.
func Ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Constant returns a vector of n copies of v.
func Constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// ClipVec clips each x[i] into [lo[i], hi[i]] in place.
func ClipVec(x, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		} else if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// ClipScalar clips each x[i] into [lo, hi] in place.
func ClipScalar(x []float64, lo, hi float64) {
	for i := range x {
		if x[i] < lo {
			x[i] = lo
		} else if x[i] > hi {
			x[i] = hi
		}
	}
}

// MaxVec returns the maximum element of a non-empty vector.
func MaxVec(x []float64) float64 {
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinVec returns the minimum element of a non-empty vector.
func MinVec(x []float64) float64 {
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of a non-empty vector.
func ArgMax(x []float64) int {
	idx := 0
	for i, v := range x {
		if v > x[idx] {
			idx = i
		}
	}
	return idx
}
