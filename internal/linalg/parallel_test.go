package linalg

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// serialMul is a reference a*b that accumulates each element over k in
// ascending order with the same zero-skip as the production kernel — the
// order the parallel kernels promise to preserve.
func serialMul(a, b *Matrix) *Matrix {
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			s := 0.0
			for k := 0; k < a.cols; k++ {
				if av := a.At(i, k); av != 0 {
					s += av * b.At(k, j)
				}
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	// Sprinkle exact zeros so the skip-zero fast paths are exercised.
	for k := 0; k < rows*cols/10; k++ {
		m.data[rng.Intn(len(m.data))] = 0
	}
	return m
}

// withGOMAXPROCS runs fn at the given GOMAXPROCS so the fan-out path is
// exercised even on single-core machines.
func withGOMAXPROCS(t *testing.T, procs int, fn func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// bitEqual reports exact (bit-for-bit) equality of two matrices.
func bitEqual(a, b *Matrix) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// TestParallelMulBitIdentical checks the paper-critical reproducibility
// property: parallel products match the serial reference bit-for-bit on
// random shapes, at several worker counts, including shapes big enough to
// cross the fan-out threshold.
func TestParallelMulBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {17, 9, 23}, {64, 64, 64}, {130, 70, 90}, {256, 64, 64},
	}
	for _, procs := range []int{1, 2, 4, 7} {
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := randomMatrix(rng, m, k)
			b := randomMatrix(rng, k, n)
			want := serialMul(a, b)
			withGOMAXPROCS(t, procs, func() {
				if got := Mul(a, b); !bitEqual(got, want) {
					t.Errorf("procs=%d %dx%dx%d: Mul differs from serial reference", procs, m, k, n)
				}
				dst := New(m, n)
				dst.data[0] = 99 // stale garbage must be overwritten
				MulTo(dst, a, b)
				if !bitEqual(dst, want) {
					t.Errorf("procs=%d %dx%dx%d: MulTo differs from serial reference", procs, m, k, n)
				}
			})
		}
	}
}

func TestParallelMulAtBBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shapes := [][3]int{{1, 1, 1}, {9, 4, 6}, {40, 30, 20}, {256, 64, 64}, {300, 80, 80}}
	for _, procs := range []int{1, 3, 5} {
		for _, sh := range shapes {
			k, m, n := sh[0], sh[1], sh[2] // a is k×m, b is k×n
			a := randomMatrix(rng, k, m)
			b := randomMatrix(rng, k, n)
			want := serialMul(a.T(), b)
			withGOMAXPROCS(t, procs, func() {
				if got := MulAtB(a, b); !bitEqual(got, want) {
					t.Errorf("procs=%d %dx%dx%d: MulAtB differs from serial reference", procs, k, m, n)
				}
				dst := randomMatrix(rng, m, n) // stale garbage must be overwritten
				MulAtBTo(dst, a, b)
				if !bitEqual(dst, want) {
					t.Errorf("procs=%d %dx%dx%d: MulAtBTo differs from serial reference", procs, k, m, n)
				}
			})
		}
	}
}

func TestParallelMulABtBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	shapes := [][3]int{{1, 1, 1}, {7, 5, 9}, {50, 40, 30}, {128, 128, 64}}
	for _, procs := range []int{1, 4} {
		for _, sh := range shapes {
			m, n, k := sh[0], sh[1], sh[2] // a is m×k, b is n×k
			a := randomMatrix(rng, m, k)
			b := randomMatrix(rng, n, k)
			want := Mul(a, b.T())
			withGOMAXPROCS(t, procs, func() {
				if got := MulABt(a, b); !bitEqual(got, want) {
					t.Errorf("procs=%d %dx%dx%d: MulABt differs", procs, m, n, k)
				}
				dst := New(m, n)
				MulABtTo(dst, a, b)
				if !bitEqual(dst, want) {
					t.Errorf("procs=%d %dx%dx%d: MulABtTo differs", procs, m, n, k)
				}
			})
		}
	}
}

// TestCholeskySolveToBitIdentical checks the blocked, parallel multi-RHS
// solve against the column-at-a-time SolveVec it replaces.
func TestCholeskySolveToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, procs := range []int{1, 4} {
		for _, n := range []int{1, 5, 33, 96} {
			// SPD matrix: AᵀA + n·I.
			a := randomMatrix(rng, n, n)
			spd := MulAtB(a, a)
			for i := 0; i < n; i++ {
				spd.Set(i, i, spd.At(i, i)+float64(n))
			}
			ch, err := FactorCholesky(spd)
			if err != nil {
				t.Fatal(err)
			}
			b := randomMatrix(rng, n, 2*n+1)
			want := New(n, b.cols)
			col := make([]float64, n)
			for j := 0; j < b.cols; j++ {
				for i := 0; i < n; i++ {
					col[i] = b.At(i, j)
				}
				want.SetCol(j, ch.SolveVec(col))
			}
			withGOMAXPROCS(t, procs, func() {
				got := New(n, b.cols)
				ch.SolveTo(got, b)
				if !bitEqual(got, want) {
					t.Errorf("procs=%d n=%d: SolveTo differs from SolveVec columns", procs, n)
				}
				if got2 := ch.Solve(b); !bitEqual(got2, want) {
					t.Errorf("procs=%d n=%d: Solve differs from SolveVec columns", procs, n)
				}
			})
		}
	}
}

// TestCholeskyFactorReuse checks that refactoring into the same Cholesky
// reuses storage and clears stale state from a previous, larger problem.
func TestCholeskyFactorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	var c Cholesky
	for _, n := range []int{8, 8, 4, 8} {
		a := randomMatrix(rng, n, n)
		spd := MulAtB(a, a)
		for i := 0; i < n; i++ {
			spd.Set(i, i, spd.At(i, i)+float64(n))
		}
		if err := c.Factor(spd); err != nil {
			t.Fatal(err)
		}
		fresh, err := FactorCholesky(spd)
		if err != nil {
			t.Fatal(err)
		}
		if !bitEqual(c.L(), fresh.L()) {
			t.Fatalf("n=%d: reused factor differs from fresh factor", n)
		}
	}
}

func TestParallelRangeCoversOnce(t *testing.T) {
	withGOMAXPROCS(t, 4, func() {
		for _, n := range []int{0, 1, 3, 7, 64} {
			hits := make([]int32, n)
			// Large cost forces fan-out regardless of n.
			ParallelRange(n, 1<<30, func(w, lo, hi int) {
				if w < 0 || w >= MaxWorkers() {
					t.Errorf("worker index %d out of range", w)
				}
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d: index %d covered %d times", n, i, h)
				}
			}
		}
	})
}

// TestMulToMatchesKnownProduct pins a tiny hand-checked product so the kernel
// rewiring cannot silently change semantics.
func TestMulToMatchesKnownProduct(t *testing.T) {
	a := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := NewFrom(2, 2, []float64{58, 64, 139, 154})
	if got := Mul(a, b); !bitEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestToVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := randomMatrix(rng, 12, 8)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 12)
	m.MulVecTo(dst, x)
	for i, v := range m.MulVec(x) {
		if dst[i] != v {
			t.Fatalf("MulVecTo[%d] = %v, want %v", i, dst[i], v)
		}
	}
	sums := make([]float64, 12)
	m.RowSumsTo(sums)
	for i, v := range m.RowSums() {
		if sums[i] != v {
			t.Fatalf("RowSumsTo[%d] = %v, want %v", i, sums[i], v)
		}
	}
	s := make([]float64, 12)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	scaled := New(12, 8)
	m.ScaleRowsTo(scaled, s)
	ref := m.Clone().ScaleRows(s)
	if !bitEqual(scaled, ref) {
		t.Fatal("ScaleRowsTo differs from Clone+ScaleRows")
	}
	tr := New(8, 12)
	m.TransposeTo(tr)
	if !bitEqual(tr, m.T()) {
		t.Fatal("TransposeTo differs from T")
	}
}

func ExampleParallelRange() {
	sum := make([]int, 8)
	ParallelRange(8, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum[i] = i * i
		}
	})
	fmt.Println(sum)
	// Output: [0 1 4 9 16 25 36 49]
}
