package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneByOneEverything(t *testing.T) {
	a := NewFrom(1, 1, []float64{4})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if x := f.SolveVec([]float64{8}); x[0] != 2 {
		t.Fatalf("1x1 LU solve = %v", x)
	}
	if f.Det() != 4 {
		t.Fatalf("det = %v", f.Det())
	}
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if l := ch.L().At(0, 0); l != 2 {
		t.Fatalf("chol = %v", l)
	}
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 4 || math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-12 {
		t.Fatalf("1x1 eigen = %v %v", vals, vecs)
	}
}

func TestMulToRejectsBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulTo(New(2, 2), New(2, 3), New(3, 3))
}

func TestMulToMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randMatrix(rng, 4, 6)
	b := randMatrix(rng, 6, 3)
	dst := New(4, 3)
	// Pre-fill with garbage: MulTo must overwrite.
	for i := range dst.Data() {
		dst.Data()[i] = 99
	}
	MulTo(dst, a, b)
	if !ApproxEqual(dst, Mul(a, b), 1e-12) {
		t.Fatal("MulTo != Mul")
	}
}

func TestKronIdentityProperty(t *testing.T) {
	// I_a ⊗ I_b = I_{ab}.
	k := Kron(Identity(3), Identity(4))
	if !ApproxEqual(k, Identity(12), 0) {
		t.Fatal("Kron of identities wrong")
	}
}

// Property: Kron is bilinear w.r.t. scaling.
func TestKronScaleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 1+rng.Intn(3), 1+rng.Intn(3))
		b := randMatrix(rng, 1+rng.Intn(3), 1+rng.Intn(3))
		s := rng.NormFloat64()
		left := Kron(a.Clone().Scale(s), b)
		right := Kron(a, b).Scale(s)
		return ApproxEqual(left, right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A⊗B)(x⊗y) = (Ax)⊗(By) for vectors via MulVec.
func TestKronMulVecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 3, 2)
	b := randMatrix(rng, 2, 4)
	x := []float64{1.5, -0.5}
	y := []float64{2, 0, -1, 3}
	xy := make([]float64, 8)
	for i := range x {
		for j := range y {
			xy[i*4+j] = x[i] * y[j]
		}
	}
	got := Kron(a, b).MulVec(xy)
	ax := a.MulVec(x)
	by := b.MulVec(y)
	for i := range ax {
		for j := range by {
			if math.Abs(got[i*2+j]-ax[i]*by[j]) > 1e-10 {
				t.Fatalf("Kron MulVec mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymEigenHandlesNegativeEigenvalues(t *testing.T) {
	// Indefinite symmetric matrix: eigenvalues 3 and -1.
	a := NewFrom(2, 2, []float64{1, 2, 2, 1})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]+1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 -1]", vals)
	}
	recon := Mul(vecs.Clone().ScaleCols(vals), vecs.T())
	if !ApproxEqual(recon, a, 1e-9) {
		t.Fatal("indefinite reconstruction failed")
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	vals, vecs, err := SymEigen(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != 0 {
			t.Fatalf("eigenvalues of zero matrix = %v", vals)
		}
	}
	if !ApproxEqual(MulAtB(vecs, vecs), Identity(3), 1e-10) {
		t.Fatal("eigenvectors of zero matrix not orthonormal")
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestLargeConditionNumberSolve(t *testing.T) {
	// Hilbert-like ill-conditioned SPD matrix at small n still solves
	// accurately enough for our tolerances.
	n := 6
	h := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	xTrue := Ones(n)
	b := h.MulVec(xTrue)
	ch, err := FactorCholesky(h)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveVec(b)
	// Hilbert(6) has condition ~1e7; expect ~9 digits to survive.
	for i := range x {
		if math.Abs(x[i]-1) > 1e-5 {
			t.Fatalf("Hilbert solve x[%d] = %v", i, x[i])
		}
	}
}

func TestStackEmptyAndSingle(t *testing.T) {
	if s := Stack(); s.Rows() != 0 || s.Cols() != 0 {
		t.Fatal("empty Stack should be 0x0")
	}
	a := Identity(2)
	if !ApproxEqual(Stack(a), a, 0) {
		t.Fatal("single Stack should copy")
	}
}

func TestDiagOfPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).DiagOf()
}

func TestScaleRowsColsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(2, 2).ScaleRows([]float64{1}) },
		func() { New(2, 2).ScaleCols([]float64{1}) },
		func() { New(2, 2).SetRow(0, []float64{1}) },
		func() { New(2, 2).SetCol(0, []float64{1}) },
		func() { New(2, 2).AddScaled(1, New(3, 3)) },
		func() { New(2, 2).CopyFrom(New(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPinvPSDZeroMatrix(t *testing.T) {
	p, err := PinvPSD(New(3, 3), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if p.FrobNorm2() != 0 {
		t.Fatal("pinv of zero should be zero")
	}
}

func TestStringRendering(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := New(100, 100)
	if s := big.String(); s != "Matrix(100x100)" {
		t.Fatalf("large matrix should summarize, got %q", s)
	}
}
