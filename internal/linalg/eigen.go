package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and a
// matrix whose columns are the corresponding orthonormal eigenvectors, so that
// A = V Diag(vals) Vᵀ.
//
// Jacobi is O(n^3) per sweep and typically converges in 6–12 sweeps; it is
// slower than tridiagonalization+QL but unconditionally robust, backward
// stable, and simple — appropriate for the n ≤ a-few-thousand problems here.
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("linalg: SymEigen of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	w := a.Clone().Symmetrize()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		scale := w.MaxAbs()
		if scale == 0 || math.Sqrt(off) <= 1e-14*float64(n)*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Threshold: skip negligible rotations.
				if math.Abs(apq) <= 1e-18*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				tau := s / (1 + c)

				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for k := 0; k < n; k++ {
					if k != p && k != q {
						akp := w.At(k, p)
						akq := w.At(k, q)
						w.Set(k, p, akp-s*(akq+tau*akp))
						w.Set(p, k, w.At(k, p))
						w.Set(k, q, akq+s*(akp-tau*akq))
						w.Set(q, k, w.At(k, q))
					}
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, vkp-s*(vkq+tau*vkp))
					v.Set(k, q, vkq+s*(vkp-tau*vkq))
				}
			}
		}
	}

	vals = w.DiagOf()
	// Sort eigenpairs in descending eigenvalue order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sorted := make([]float64, n)
	vecs = New(n, n)
	for newj, oldj := range idx {
		sorted[newj] = vals[oldj]
		for i := 0; i < n; i++ {
			vecs.Set(i, newj, v.At(i, oldj))
		}
	}
	return sorted, vecs, nil
}

// PinvPSD returns the Moore–Penrose pseudo-inverse of a symmetric positive
// semidefinite matrix, computed from its eigendecomposition. Eigenvalues below
// rcond * max eigenvalue are treated as zero.
func PinvPSD(a *Matrix, rcond float64) (*Matrix, error) {
	vals, vecs, err := SymEigen(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	maxEig := 0.0
	for _, v := range vals {
		if v > maxEig {
			maxEig = v
		}
	}
	tol := rcond * maxEig
	inv := make([]float64, n)
	for i, v := range vals {
		if v > tol {
			inv[i] = 1 / v
		}
	}
	// pinv = V Diag(inv) Vᵀ
	scaled := vecs.Clone().ScaleCols(inv)
	return MulABt(scaled, vecs), nil
}

// SingularValues returns the singular values of a general matrix in descending
// order, computed as square roots of the eigenvalues of the smaller Gram
// matrix (WᵀW or WWᵀ). Negative round-off eigenvalues are clamped to zero.
func SingularValues(w *Matrix) ([]float64, error) {
	var gram *Matrix
	if w.rows >= w.cols {
		gram = MulAtB(w, w)
	} else {
		gram = MulABt(w, w)
	}
	return SingularValuesFromGram(gram)
}

// SingularValuesFromGram returns singular values given a precomputed Gram
// matrix WᵀW (or WWᵀ). This supports implicit workloads whose Gram matrix has
// a closed form but whose explicit form is huge.
func SingularValuesFromGram(gram *Matrix) ([]float64, error) {
	vals, _, err := SymEigen(gram)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		out[i] = math.Sqrt(v)
	}
	return out, nil
}

// NuclearNormFromGram returns Σ singular values given the Gram matrix.
func NuclearNormFromGram(gram *Matrix) (float64, error) {
	sv, err := SingularValuesFromGram(gram)
	if err != nil {
		return 0, err
	}
	return Sum(sv), nil
}

// SolvePSD solves A X = B for symmetric positive (semi)definite A. It first
// attempts Cholesky; if A is numerically singular it falls back to the
// eigen-based pseudo-inverse. The returned matrix is the minimum-norm solution
// in the singular case.
func SolvePSD(a, b *Matrix) (*Matrix, error) {
	if ch, err := FactorCholesky(a); err == nil {
		return ch.Solve(b), nil
	}
	pinv, err := PinvPSD(a, 1e-12)
	if err != nil {
		return nil, err
	}
	return Mul(pinv, b), nil
}
