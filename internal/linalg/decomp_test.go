package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSPD(rng *rand.Rand, n int) *Matrix {
	a := randMatrix(rng, n+3, n)
	g := Gram(a)
	// Regularize slightly to ensure strict positive definiteness.
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+0.1)
	}
	return g
}

func TestLUSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		f, err := FactorLU(a)
		if err != nil {
			t.Fatalf("FactorLU: %v", err)
		}
		x := f.SolveVec(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(rng, 6, 6)
	b := randMatrix(rng, 6, 4)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(Mul(a, x), b, 1e-8) {
		t.Fatal("AX != B")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 8, 8)
	ai, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(Mul(a, ai), Identity(8), 1e-8) {
		t.Fatal("A A⁻¹ != I")
	}
	if !ApproxEqual(Mul(ai, a), Identity(8), 1e-8) {
		t.Fatal("A⁻¹ A != I")
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := FactorLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-2)) > 1e-12 {
		t.Fatalf("det = %v, want -2", f.Det())
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(10)
		a := randSPD(rng, n)
		ch, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("FactorCholesky: %v", err)
		}
		l := ch.L()
		if !ApproxEqual(MulABt(l, l), a, 1e-8) {
			t.Fatal("L Lᵀ != A")
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := ch.SolveVec(b)
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("Ax != b at %d: %v vs %v", i, ax[i], b[i])
			}
		}
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, 7)
	b := randMatrix(rng, 7, 3)
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve(b)
	if !ApproxEqual(Mul(a, x), b, 1e-8) {
		t.Fatal("AX != B")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular for indefinite matrix, got %v", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := Diag([]float64{2, 3, 4})
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(24)
	if math.Abs(ch.LogDet()-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", ch.LogDet(), want)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := Diag([]float64{3, 1, 2})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Reconstruction check.
	recon := Mul(vecs.Clone().ScaleCols(vals), vecs.T())
	if !ApproxEqual(recon, a, 1e-10) {
		t.Fatal("V Λ Vᵀ != A")
	}
}

func TestSymEigenRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a := randSPD(rng, n)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// Orthonormality.
		if !ApproxEqual(MulAtB(vecs, vecs), Identity(n), 1e-8) {
			t.Fatal("eigenvectors not orthonormal")
		}
		// Reconstruction.
		recon := Mul(vecs.Clone().ScaleCols(vals), vecs.T())
		if !ApproxEqual(recon, a, 1e-7*(1+a.MaxAbs())) {
			t.Fatal("V Λ Vᵀ != A")
		}
		// Trace preservation.
		if math.Abs(Sum(vals)-a.Trace()) > 1e-7*(1+math.Abs(a.Trace())) {
			t.Fatalf("Σλ=%v != trace=%v", Sum(vals), a.Trace())
		}
	}
}

func TestPinvPSDFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSPD(rng, 6)
	p, err := PinvPSD(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(Mul(a, p), Identity(6), 1e-7) {
		t.Fatal("A A⁺ != I for full-rank PSD matrix")
	}
}

func TestPinvPSDRankDeficient(t *testing.T) {
	// A = v vᵀ has rank 1; pinv = v vᵀ / ||v||⁴.
	v := []float64{1, 2, 2}
	n := len(v)
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, v[i]*v[j])
		}
	}
	p, err := PinvPSD(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// Penrose conditions: A P A = A, P A P = P, (AP)ᵀ=AP, (PA)ᵀ=PA.
	ap := Mul(a, p)
	if !ApproxEqual(Mul(ap, a), a, 1e-8) {
		t.Fatal("A P A != A")
	}
	if !ApproxEqual(Mul(Mul(p, a), p), p, 1e-8) {
		t.Fatal("P A P != P")
	}
	if !ap.IsSymmetric(1e-8) {
		t.Fatal("(AP) not symmetric")
	}
}

func TestSingularValues(t *testing.T) {
	// For a diagonal-ish rectangular matrix the singular values are known.
	w := New(3, 2)
	w.Set(0, 0, 3)
	w.Set(1, 1, 4)
	sv, err := SingularValues(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sv[0]-4) > 1e-9 || math.Abs(sv[1]-3) > 1e-9 {
		t.Fatalf("singular values = %v, want [4 3]", sv)
	}
}

func TestSingularValuesWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	w := randMatrix(rng, 3, 8)
	sv1, err := SingularValues(w)
	if err != nil {
		t.Fatal(err)
	}
	sv2, err := SingularValues(w.T())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(sv1[i]-sv2[i]) > 1e-8 {
			t.Fatalf("singular values differ between W and Wᵀ: %v vs %v", sv1, sv2)
		}
	}
}

func TestSolvePSDFallsBackToPinv(t *testing.T) {
	// Rank-deficient PSD system: minimum-norm solution expected.
	a := NewFrom(2, 2, []float64{1, 1, 1, 1})
	b := NewFrom(2, 1, []float64{2, 2})
	x, err := SolvePSD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(Mul(a, x), b, 1e-8) {
		t.Fatal("AX != B in rank-deficient solve")
	}
	// Minimum-norm solution is [1, 1].
	if math.Abs(x.At(0, 0)-1) > 1e-8 || math.Abs(x.At(1, 0)-1) > 1e-8 {
		t.Fatalf("not minimum-norm: %v", x)
	}
}

// Property: Cholesky solve and LU solve agree on SPD systems.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		b := randMatrix(rng, n, 2)
		ch, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		x1 := ch.Solve(b)
		x2, err := Solve(a, b)
		if err != nil {
			return false
		}
		return ApproxEqual(x1, x2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: singular values of A match sqrt of eigenvalues of Gram(A).
func TestSingularValuesGramProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 2+rng.Intn(6), 2+rng.Intn(6)
		a := randMatrix(rng, r, c)
		sv, err := SingularValues(a)
		if err != nil {
			return false
		}
		sv2, err := SingularValuesFromGram(Gram(a))
		if err != nil {
			return false
		}
		k := len(sv)
		if len(sv2) < k {
			k = len(sv2)
		}
		for i := 0; i < k; i++ {
			if math.Abs(sv[i]-sv2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNuclearNormFromGram(t *testing.T) {
	// Identity: all singular values 1, nuclear norm = n.
	nn, err := NuclearNormFromGram(Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nn-5) > 1e-9 {
		t.Fatalf("nuclear norm = %v, want 5", nn)
	}
}
