package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestParallelSweepByteIdentical is the harness's reproducibility contract:
// a sweep fanned out over many workers renders byte-identically to the same
// sweep run serially, because every cell's seed comes from its coordinates.
func TestParallelSweepByteIdentical(t *testing.T) {
	cfg := Config{Alpha: 0.01, Seed: 1, Iters: 30}

	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 4

	s1, err := FigureEpsilon(serial)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FigureEpsilon(parallel)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	WriteSweeps(&b1, s1, "epsilon")
	WriteSweeps(&b2, s2, "epsilon")
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("FigureEpsilon renders differently under Workers=1 and Workers=4")
	}

	w1, err := FigureWNNLS(serial)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := FigureWNNLS(parallel)
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 bytes.Buffer
	WriteWNNLS(&c1, w1)
	WriteWNNLS(&c2, w2)
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("FigureWNNLS renders differently under Workers=1 and Workers=4")
	}
}

func TestForEachCellCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const total = 57
		var hits [total]atomic.Int32
		if err := forEachCell(total, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForEachCellFirstErrorByIndex checks that the error returned is the
// lowest-index cell's error regardless of scheduling, so error reporting is
// deterministic too.
func TestForEachCellFirstErrorByIndex(t *testing.T) {
	sentinel3 := errors.New("cell 3")
	for _, workers := range []int{1, 4} {
		err := forEachCell(10, workers, func(i int) error {
			if i == 7 {
				return fmt.Errorf("cell 7")
			}
			if i == 3 {
				return sentinel3
			}
			return nil
		})
		if !errors.Is(err, sentinel3) {
			t.Fatalf("workers=%d: got %v, want cell 3's error", workers, err)
		}
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	a := cellSeed(1, 2, 3, 4)
	if b := cellSeed(1, 2, 3, 4); a != b {
		t.Fatal("cellSeed is not deterministic")
	}
	seen := map[int64][]int{}
	for wi := 0; wi < 8; wi++ {
		for pi := 0; pi < 8; pi++ {
			for tag := 1; tag <= 4; tag++ {
				s := cellSeed(1, tag, wi, pi)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %v and %v", prev, []int{tag, wi, pi})
				}
				seen[s] = []int{tag, wi, pi}
			}
		}
	}
	if cellSeed(1, 1, 0) == cellSeed(2, 1, 0) {
		t.Fatal("base seed ignored")
	}
	if cellSeed(1, 1, 0) < 0 {
		t.Fatal("cellSeed must be non-negative for rand.NewSource")
	}
}
