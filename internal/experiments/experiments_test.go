package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyConfig keeps unit-test runtime low; the real scales run via
// cmd/ldpbench and the benchmark suite.
func tinyConfig() Config {
	return Config{Alpha: 0.01, Seed: 1, Iters: 60}
}

func TestFigureEpsilonShape(t *testing.T) {
	sweeps, err := FigureEpsilon(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 6 {
		t.Fatalf("got %d workload panels, want 6", len(sweeps))
	}
	for _, sw := range sweeps {
		if len(sw.Series) != len(MechanismNames) {
			t.Fatalf("%s: %d series, want %d", sw.Workload, len(sw.Series), len(MechanismNames))
		}
		for _, se := range sw.Series {
			if len(se.Values) != len(sw.Points) {
				t.Fatalf("%s/%s: %d values for %d points", sw.Workload, se.Mechanism, len(se.Values), len(sw.Points))
			}
		}
		// Sample complexity must decrease with ε for the Optimized series.
		for _, se := range sw.Series {
			if se.Mechanism != "Optimized" {
				continue
			}
			for i := 1; i < len(se.Values); i++ {
				if se.Values[i] > se.Values[i-1]*1.05 {
					t.Errorf("%s: Optimized sample complexity rose with ε: %v", sw.Workload, se.Values)
				}
			}
		}
	}
	// Headline property: Optimized never loses by more than the tolerance.
	sum := Improvements(sweeps)
	if sum.Losses > 2 {
		t.Fatalf("Optimized lost %d configurations (ratios %v–%v)", sum.Losses, sum.MinRatio, sum.MaxRatio)
	}
	if sum.MaxRatio < 1 {
		t.Fatalf("expected Optimized to win somewhere; max ratio %v", sum.MaxRatio)
	}

	var buf bytes.Buffer
	WriteSweeps(&buf, sweeps, "epsilon")
	if !strings.Contains(buf.String(), "Workload=Histogram") {
		t.Fatal("rendering missing workload header")
	}
}

func TestFigureDomainShape(t *testing.T) {
	cfg := tinyConfig()
	sweeps, err := FigureDomain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 6 {
		t.Fatalf("got %d panels", len(sweeps))
	}
	// Histogram: RR grows ~linearly in n while Optimized grows much slower
	// (the paper's Section 6.3 finding). Compare growth factors over the
	// sweep.
	for _, sw := range sweeps {
		if sw.Workload != "Histogram" {
			continue
		}
		var rr, opt []float64
		for _, se := range sw.Series {
			switch se.Mechanism {
			case "Randomized Response":
				rr = se.Values
			case "Optimized":
				opt = se.Values
			}
		}
		last := len(rr) - 1
		rrGrowth := rr[last] / rr[0]
		optGrowth := opt[last] / opt[0]
		if optGrowth > rrGrowth*0.75 {
			t.Errorf("Optimized growth %v not clearly below RR growth %v on Histogram", optGrowth, rrGrowth)
		}
	}
}

func TestFigureDatasetsCloseToWorstCase(t *testing.T) {
	rows, err := FigureDatasets(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // three datasets + worst case
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	worst := rows[len(rows)-1]
	if worst.Dataset != "Worst-case" {
		t.Fatalf("last row = %q", worst.Dataset)
	}
	// Section 6.4: data-dependent sample complexity for Optimized deviates
	// from worst case by ≈1% in the paper; allow 25% at reduced scale.
	for _, r := range rows[:3] {
		got := r.Values["Optimized"]
		ref := worst.Values["Optimized"]
		if math.IsInf(got, 1) || math.IsInf(ref, 1) {
			t.Fatalf("missing Optimized values")
		}
		if got > ref*1.001 {
			t.Errorf("%s: data-dependent complexity %v exceeds worst case %v", r.Dataset, got, ref)
		}
		if got < ref*0.5 {
			t.Errorf("%s: data-dependent complexity %v implausibly far below worst case %v", r.Dataset, got, ref)
		}
	}
	var buf bytes.Buffer
	WriteDatasets(&buf, rows)
	if !strings.Contains(buf.String(), "HEPTH") {
		t.Fatal("rendering missing dataset")
	}
}

func TestFigureInitRatios(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iters = 40
	pts, err := FigureInit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.Min < 1-1e-9 {
			t.Fatalf("%s m=%dn: ratio-to-best %v below 1 — impossible", p.Workload, p.MFactor, p.Min)
		}
		if p.Min > p.Median+1e-9 || p.Median > p.Max+1e-9 {
			t.Fatalf("%s m=%dn: min/median/max out of order: %v %v %v", p.Workload, p.MFactor, p.Min, p.Median, p.Max)
		}
	}
	var buf bytes.Buffer
	WriteInit(&buf, pts)
	if !strings.Contains(buf.String(), "median") {
		t.Fatal("rendering missing header")
	}
}

func TestFigureScalabilityGrows(t *testing.T) {
	pts, err := FigureScalability(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatal("too few scale points")
	}
	// Per-iteration time must grow with n (roughly cubically; just check
	// monotone growth between the endpoints to keep the test robust).
	if pts[len(pts)-1].PerIteration <= pts[0].PerIteration {
		t.Fatalf("per-iteration time did not grow: %v vs %v", pts[0].PerIteration, pts[len(pts)-1].PerIteration)
	}
	var buf bytes.Buffer
	WriteScalability(&buf, pts)
	if !strings.Contains(buf.String(), "per-iteration") {
		t.Fatal("rendering missing header")
	}
}

func TestFigureWNNLSImproves(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iters = 40
	rows, err := FigureWNNLS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.WNNLS <= r.Default {
			improved++
		}
	}
	// Figure 4: WNNLS improves on every workload; tolerate one Monte-Carlo
	// anomaly at the reduced trial count.
	if improved < len(rows)-1 {
		t.Fatalf("WNNLS improved only %d/%d workloads", improved, len(rows))
	}
	var buf bytes.Buffer
	WriteWNNLS(&buf, rows)
	if !strings.Contains(buf.String(), "improvement") {
		t.Fatal("rendering missing header")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	wantOutputs := map[string]int{
		"Randomized Response": 8,
		"Hadamard":            16,
		"RAPPOR":              256,
		"Subset Selection":    28,
	}
	for _, r := range rows {
		if !r.LDPValid {
			t.Errorf("%s fails LDP validation", r.Mechanism)
		}
		if want := wantOutputs[r.Mechanism]; r.Outputs != want {
			t.Errorf("%s outputs = %d, want %d", r.Mechanism, r.Outputs, want)
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "RAPPOR") {
		t.Fatal("rendering missing mechanism")
	}
}

func TestMinMedianMax(t *testing.T) {
	mn, md, mx := minMedianMax([]float64{3, 1, 2})
	if mn != 1 || md != 2 || mx != 3 {
		t.Fatalf("got %v %v %v", mn, md, mx)
	}
}
