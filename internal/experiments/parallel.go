package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep grids of Figures 1–4 are embarrassingly parallel: every
// (workload, sweep-point) cell is an independent optimization + evaluation.
// forEachCell fans the cells out across a bounded worker pool; cellSeed gives
// every cell a seed derived from its grid coordinates, not from iteration
// order, so a parallel sweep produces byte-identical figures to a serial one
// (and to any other worker count or scheduling).

// forEachCell runs fn(i) for every i in [0, total) on a pool of the given
// number of workers (0 or less means one per CPU). fn must only write state
// owned by cell i. On failure the pool stops dispatching further cells and
// the first error by cell index is returned — deterministically, regardless
// of completion order (cells are dispatched in index order, so the
// lowest-index failure is always among the dispatched cells).
func forEachCell(total, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, total)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop picking up new cells once any cell has failed —
				// sweep cells cost seconds each, and the caller only wants
				// the (deterministic, lowest-index) error. In-flight cells
				// finish; their results are simply discarded by the caller.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellSeed derives a decorrelated per-cell seed from the base seed and the
// cell's grid coordinates using splitmix64 steps. Equal coordinates always
// give equal seeds, so figures are reproducible cell-by-cell no matter how
// the grid is ordered or scheduled.
func cellSeed(base int64, coords ...int) int64 {
	h := uint64(base) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h += v + 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	for _, c := range coords {
		mix(uint64(c) + 1)
	}
	return int64(h & 0x7fffffffffffffff)
}
