// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each FigureX function produces the same rows/series
// the paper plots; the harness is shared by cmd/ldpbench and the repository's
// benchmark suite.
//
// Default configurations are scaled down (smaller domains, fewer points,
// fewer restarts) so the full suite runs in minutes on one CPU; Config.Full
// requests paper-scale parameters. The paper's qualitative findings — which
// mechanism wins, the slopes in log-log space, the crossovers — hold at both
// scales; EXPERIMENTS.md records the comparison.
//
// Sweep grids fan out across a bounded worker pool (Config.Workers; default
// one worker per CPU). Every cell of a grid derives its random seed from the
// base seed and the cell's coordinates rather than from iteration order, so
// parallel and serial sweeps — and any two worker counts — produce
// byte-identical figures.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/mechanism"
	"repro/internal/simulate"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Alpha is the target normalized variance for sample complexity
	// (the paper uses 0.01).
	Alpha float64
	// Full requests paper-scale parameters (n = 512 etc.); default is a
	// reduced scale that completes in minutes.
	Full bool
	// Seed drives all randomness. Every sweep cell derives its own seed from
	// Seed and the cell's grid coordinates (cellSeed), so results are
	// reproducible cell-by-cell at any Workers setting.
	Seed int64
	// Iters overrides the optimizer iteration budget (0 = default).
	Iters int
	// Workers bounds the sweep worker pool: sweep cells fan out across this
	// many goroutines (0 = one per CPU, 1 = serial). Figure outputs are
	// byte-identical at every setting.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 0.01
	}
	if c.Iters <= 0 {
		if c.Full {
			c.Iters = 500
		} else {
			c.Iters = 250
		}
	}
	return c
}

// MechanismNames is the legend of Figures 1 and 2, in the paper's order.
var MechanismNames = []string{
	"Randomized Response", "Hadamard", "Hierarchical", "Fourier",
	"Matrix Mechanism (L1)", "Matrix Mechanism (L2)", "Optimized",
}

// Series is one mechanism's curve across the sweep points of a figure.
type Series struct {
	Mechanism string
	// Values[i] is the sample complexity at sweep point i (+Inf when the
	// mechanism is inapplicable at that point).
	Values []float64
}

// Sweep is one panel of Figure 1 or Figure 2: a workload with the sweep
// coordinates and one series per mechanism.
type Sweep struct {
	Workload string
	// Points holds the x-coordinates (ε values or domain sizes).
	Points []float64
	Series []Series
}

// mechanismsFor builds the paper's seven mechanisms for one (workload, ε)
// configuration: the six competitors plus Optimized. The optimizer considers
// the competitors' strategy matrices as warm-start candidates
// (core.OptimizeBest), so the optimized mechanism dominates every
// factorization baseline even at reduced iteration budgets.
func mechanismsFor(w workload.Workload, eps float64, cfg Config) ([]mechanism.Mechanism, error) {
	ms, err := baselines.Competitors(w, eps)
	if err != nil {
		return nil, err
	}
	var candidates []*strategy.Strategy
	for _, m := range ms {
		if f, ok := m.(*mechanism.Factorization); ok {
			candidates = append(candidates, f.Strategy())
		}
	}
	res, err := core.OptimizeBest(w, eps, core.Options{Iters: cfg.Iters, Seed: cfg.Seed}, candidates...)
	if err != nil {
		return nil, err
	}
	return append(ms, mechanism.NewFactorization("Optimized", res.Strategy)), nil
}

// sampleComplexityRow evaluates each mechanism on w, returning the map
// mechanism name → sample complexity.
func sampleComplexityRow(ms []mechanism.Mechanism, w workload.Workload, alpha float64) map[string]float64 {
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		vp, err := m.Profile(w)
		if err != nil {
			out[m.Name()] = math.Inf(1)
			continue
		}
		out[m.Name()] = vp.SampleComplexity(alpha)
	}
	return out
}

// figureTag namespaces cellSeed coordinates so different figures never share
// per-cell seeds.
const (
	tagEpsilon = 1
	tagDomain  = 2
	tagInit    = 3
	tagWNNLS   = 4
)

// sweepGrid runs the (workload × point) grid shared by Figures 1 and 2:
// every cell builds its workload, optimizes at its derived seed, and
// evaluates sample complexity; cells fan out across cfg.Workers goroutines
// and are assembled in grid order, so the result is identical at any worker
// count.
func sweepGrid(cfg Config, tag int, points []float64, domainFor func(p float64) int, epsFor func(p float64) float64) ([]Sweep, error) {
	names := workload.PaperWorkloads
	rows := make([]map[string]float64, len(names)*len(points))
	err := forEachCell(len(rows), cfg.Workers, func(i int) error {
		wi, pi := i/len(points), i%len(points)
		w, err := workload.ByName(names[wi], domainFor(points[pi]))
		if err != nil {
			return err
		}
		cell := cfg
		cell.Seed = cellSeed(cfg.Seed, tag, wi, pi)
		ms, err := mechanismsFor(w, epsFor(points[pi]), cell)
		if err != nil {
			return err
		}
		rows[i] = sampleComplexityRow(ms, w, cfg.Alpha)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Sweep, 0, len(names))
	for wi, name := range names {
		sweep := Sweep{Workload: name, Points: points}
		for _, mn := range MechanismNames {
			values := make([]float64, len(points))
			for pi := range points {
				v, ok := rows[wi*len(points)+pi][mn]
				if !ok {
					v = math.Inf(1)
				}
				values[pi] = v
			}
			sweep.Series = append(sweep.Series, Series{Mechanism: mn, Values: values})
		}
		out = append(out, sweep)
	}
	return out, nil
}

// FigureEpsilon reproduces Figure 1: sample complexity of the seven
// mechanisms on the six workloads as ε varies, at a fixed domain size
// (512 at paper scale, 32 reduced).
func FigureEpsilon(cfg Config) ([]Sweep, error) {
	cfg = cfg.withDefaults()
	n := 32
	epsilons := []float64{0.5, 1.0, 2.0, 4.0}
	if cfg.Full {
		n = 512
		epsilons = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	}
	return sweepGrid(cfg, tagEpsilon, epsilons,
		func(float64) int { return n },
		func(p float64) float64 { return p })
}

// FigureDomain reproduces Figure 2: sample complexity as the domain size n
// varies at ε = 1 (n up to 1024 at paper scale, 64 reduced).
func FigureDomain(cfg Config) ([]Sweep, error) {
	cfg = cfg.withDefaults()
	domains := []float64{8, 16, 32, 64}
	if cfg.Full {
		domains = []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	return sweepGrid(cfg, tagDomain, domains,
		func(p float64) int { return int(p) },
		func(float64) float64 { return 1.0 })
}

// DatasetRow is one bar group of Figure 3a: a dataset with the sample
// complexity of each mechanism on it.
type DatasetRow struct {
	Dataset string
	// Values[mechanism name] is the data-dependent sample complexity
	// (Section 6.4: L_worst replaced with the Theorem 3.4 expression).
	Values map[string]float64
}

// FigureDatasets reproduces Figure 3a: data-dependent sample complexity on
// the three benchmark datasets (synthetic stand-ins; DESIGN.md §4) plus the
// worst case, for the Prefix workload at ε = 1.
func FigureDatasets(cfg Config) ([]DatasetRow, error) {
	cfg = cfg.withDefaults()
	n := 64
	if cfg.Full {
		n = 512
	}
	const eps = 1.0
	w := workload.NewPrefix(n)
	ms, err := mechanismsFor(w, eps, cfg)
	if err != nil {
		return nil, err
	}
	// One variance profile per mechanism, computed once (the seed recomputed
	// it per dataset) and in parallel.
	profiles := make([]*strategy.VarianceProfile, len(ms))
	if err := forEachCell(len(ms), cfg.Workers, func(i int) error {
		vp, err := ms[i].Profile(w)
		if err != nil {
			return nil // inapplicable mechanism: leave profile nil → +Inf below
		}
		profiles[i] = vp
		return nil
	}); err != nil {
		return nil, err
	}
	total := 100000
	var rows []DatasetRow
	for _, ds := range dataset.Names {
		x, err := dataset.ByName(ds, n, total, cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		row := DatasetRow{Dataset: ds, Values: map[string]float64{}}
		for i, m := range ms {
			if profiles[i] == nil {
				row.Values[m.Name()] = math.Inf(1)
				continue
			}
			row.Values[m.Name()] = profiles[i].SampleComplexityOnData(x, cfg.Alpha)
		}
		rows = append(rows, row)
	}
	worst := DatasetRow{Dataset: "Worst-case", Values: map[string]float64{}}
	for i, m := range ms {
		if profiles[i] == nil {
			worst.Values[m.Name()] = math.Inf(1)
			continue
		}
		worst.Values[m.Name()] = profiles[i].SampleComplexity(cfg.Alpha)
	}
	rows = append(rows, worst)
	return rows, nil
}

// InitPoint is one (workload, m) cell of Figure 3b.
type InitPoint struct {
	Workload string
	// MFactor is m/n.
	MFactor int
	// Min, Median, Max are worst-case-variance ratios to the best strategy
	// found across all trials and m values for this workload.
	Min, Median, Max float64
}

// FigureInit reproduces Figure 3b: robustness of the optimization to the
// random initialization and to the choice of m, reported as worst-case
// variance ratios to the best found (n = 64 and 10 restarts at paper scale;
// n = 16 and 5 restarts reduced).
func FigureInit(cfg Config) ([]InitPoint, error) {
	cfg = cfg.withDefaults()
	n, trials := 16, 5
	factors := []int{1, 2, 4, 8}
	if cfg.Full {
		n, trials = 64, 10
		factors = []int{1, 4, 8, 12, 16}
	}
	const eps = 1.0
	names := workload.PaperWorkloads
	// One cell per (workload, m-factor, trial) restart; each runs its own
	// optimization at a coordinate-derived seed.
	vars := make([]float64, len(names)*len(factors)*trials)
	err := forEachCell(len(vars), cfg.Workers, func(i int) error {
		wi := i / (len(factors) * trials)
		fi := i / trials % len(factors)
		trial := i % trials
		w, err := workload.ByName(names[wi], n)
		if err != nil {
			return err
		}
		// The seed keeps the seed repo's formula — already derived from the
		// cell coordinates (m-factor, trial), not iteration order.
		res, err := core.Optimize(w, eps, core.Options{
			Iters:        cfg.Iters,
			Seed:         cfg.Seed + int64(1000*factors[fi]+trial),
			OutputFactor: factors[fi],
		})
		if err != nil {
			return err
		}
		vp, err := res.Strategy.Variances(w.Gram(), w.Queries())
		if err != nil {
			return err
		}
		vars[i] = vp.Worst(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []InitPoint
	for wi, name := range names {
		block := vars[wi*len(factors)*trials : (wi+1)*len(factors)*trials]
		best := math.Inf(1)
		for _, v := range block {
			if v < best {
				best = v
			}
		}
		for fi, f := range factors {
			vs := block[fi*trials : (fi+1)*trials]
			mn, md, mx := minMedianMax(vs)
			out = append(out, InitPoint{
				Workload: name, MFactor: f,
				Min: mn / best, Median: md / best, Max: mx / best,
			})
		}
	}
	return out, nil
}

// ScalePoint is one domain size of Figure 3c.
type ScalePoint struct {
	Domain int
	// PerIteration is the measured wall-clock time of one optimization
	// iteration (objective + gradient + projection) at m = 4n.
	PerIteration time.Duration
}

// FigureScalability reproduces Figure 3c: per-iteration optimization time
// versus domain size, with W = I (the per-iteration cost depends on WᵀW only
// through its size; Section 6.6). It deliberately stays serial — it is a
// timing measurement, and concurrent cells would contend for cores and skew
// the readings (the optimizer itself still uses the parallel kernels, which
// is exactly what the figure should measure).
func FigureScalability(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	domains := []int{16, 32, 64, 128}
	if cfg.Full {
		domains = []int{16, 32, 64, 128, 256, 512, 1024}
	}
	var out []ScalePoint
	for _, n := range domains {
		d, err := MeasureIteration(n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{Domain: n, PerIteration: d})
	}
	return out, nil
}

// MeasureIteration times one projected-gradient iteration at m = 4n with
// W = I, averaging over enough repetitions for a stable reading.
func MeasureIteration(n int, seed int64) (time.Duration, error) {
	w := workload.NewHistogram(n)
	iters := 0
	var res *core.Result
	start := time.Now()
	reps := 3
	if n <= 64 {
		reps = 15
	}
	res, err := core.Optimize(w, 1.0, core.Options{
		Iters:    reps,
		Seed:     seed,
		StepSize: 1e-9, // tiny fixed step: we are timing, not optimizing
	})
	if err != nil {
		return 0, err
	}
	iters = res.Iters
	elapsed := time.Since(start)
	if iters == 0 {
		iters = 1
	}
	return elapsed / time.Duration(iters), nil
}

// WNNLSRow is one workload group of Figure 4.
type WNNLSRow struct {
	Workload string
	// Default and WNNLS are Monte-Carlo normalized variances (Definition 5.2)
	// of the optimized mechanism without and with consistency post-processing.
	Default, WNNLS float64
	// Improvement = Default / WNNLS.
	Improvement float64
}

// FigureWNNLS reproduces Figure 4: normalized variance of the optimized
// mechanism with and without the WNNLS extension on HEPTH-like data with
// N = 1000 users at ε = 1 (100 simulations at paper scale, 20 reduced).
func FigureWNNLS(cfg Config) ([]WNNLSRow, error) {
	cfg = cfg.withDefaults()
	n, trials := 32, 20
	if cfg.Full {
		n, trials = 512, 100
	}
	const eps = 1.0
	const numUsers = 1000
	x, err := dataset.ByName("HEPTH", n, numUsers, cfg.Seed+29)
	if err != nil {
		return nil, err
	}
	names := workload.PaperWorkloads
	out := make([]WNNLSRow, len(names))
	err = forEachCell(len(names), cfg.Workers, func(wi int) error {
		w, err := workload.ByName(names[wi], n)
		if err != nil {
			return err
		}
		res, err := core.Optimize(w, eps, core.Options{Iters: cfg.Iters, Seed: cellSeed(cfg.Seed, tagWNNLS, wi, 0)})
		if err != nil {
			return err
		}
		p, err := simulate.NewProtocol(res.Strategy, w)
		if err != nil {
			return err
		}
		mcSeed := cellSeed(cfg.Seed, tagWNNLS, wi, 1)
		raw, err := p.MonteCarlo(x, trials, false, mcSeed)
		if err != nil {
			return err
		}
		cons, err := p.MonteCarlo(x, trials, true, mcSeed)
		if err != nil {
			return err
		}
		out[wi] = WNNLSRow{
			Workload:    names[wi],
			Default:     raw.Normalized,
			WNNLS:       cons.Normalized,
			Improvement: raw.Normalized / cons.Normalized,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table1Row summarizes one of the classical mechanisms encoded as a strategy
// matrix (Table 1): its output-range size and a validation check.
type Table1Row struct {
	Mechanism string
	Inputs    int
	Outputs   int
	// LDPValid reports whether the strategy passes the Proposition 2.6 check
	// at the declared ε.
	LDPValid bool
}

// Table1 reproduces Table 1 as an executable artifact: each mechanism is
// built as a strategy matrix and validated against the LDP constraints.
func Table1(n int, eps float64) ([]Table1Row, error) {
	var rows []Table1Row
	add := func(name string, s *strategy.Strategy) {
		rows = append(rows, Table1Row{
			Mechanism: name,
			Inputs:    s.Domain(),
			Outputs:   s.Outputs(),
			LDPValid:  s.Validate(1e-9) == nil,
		})
	}
	add("Randomized Response", baselines.RandomizedResponse(n, eps).Strategy())
	add("Hadamard", baselines.HadamardResponse(n, eps).Strategy())
	rp, err := baselines.RAPPOR(n, eps)
	if err != nil {
		return nil, err
	}
	add("RAPPOR", rp.Strategy())
	ss, err := baselines.SubsetSelection(n, eps, 0)
	if err != nil {
		return nil, err
	}
	add("Subset Selection", ss.Strategy())
	return rows, nil
}

// ImprovementSummary computes the paper's headline metric from Figure 1
// sweeps: for each (workload, ε) point, the ratio of the best competitor's
// sample complexity to the optimized mechanism's. The paper reports ratios
// between 1.0 and 14.6.
type ImprovementSummary struct {
	MinRatio, MaxRatio float64
	// Losses counts configurations where Optimized was worse than the best
	// competitor by more than 5% (the paper reports zero).
	Losses int
}

// Improvements summarizes Figure 1 sweeps.
func Improvements(sweeps []Sweep) ImprovementSummary {
	sum := ImprovementSummary{MinRatio: math.Inf(1), MaxRatio: 0}
	for _, sw := range sweeps {
		var opt []float64
		best := make([]float64, len(sw.Points))
		for i := range best {
			best[i] = math.Inf(1)
		}
		for _, se := range sw.Series {
			if se.Mechanism == "Optimized" {
				opt = se.Values
				continue
			}
			for i, v := range se.Values {
				if v < best[i] {
					best[i] = v
				}
			}
		}
		for i := range sw.Points {
			if opt == nil || math.IsInf(opt[i], 1) || math.IsInf(best[i], 1) {
				continue
			}
			r := best[i] / opt[i]
			if r < sum.MinRatio {
				sum.MinRatio = r
			}
			if r > sum.MaxRatio {
				sum.MaxRatio = r
			}
			if r < 1/1.05 {
				sum.Losses++
			}
		}
	}
	return sum
}

// --- text rendering -------------------------------------------------------

// WriteSweeps renders Figure 1/2 sweeps as aligned text tables.
func WriteSweeps(w io.Writer, sweeps []Sweep, xLabel string) {
	for _, sw := range sweeps {
		fmt.Fprintf(w, "\nWorkload=%s (samples to reach normalized variance α)\n", sw.Workload)
		fmt.Fprintf(w, "%-24s", xLabel)
		for _, p := range sw.Points {
			fmt.Fprintf(w, "%12g", p)
		}
		fmt.Fprintln(w)
		for _, se := range sw.Series {
			fmt.Fprintf(w, "%-24s", se.Mechanism)
			for _, v := range se.Values {
				if math.IsInf(v, 1) {
					fmt.Fprintf(w, "%12s", "—")
				} else {
					fmt.Fprintf(w, "%12.3g", v)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteDatasets renders Figure 3a rows.
func WriteDatasets(w io.Writer, rows []DatasetRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-24s", "Mechanism \\ Dataset")
	for _, r := range rows {
		fmt.Fprintf(w, "%14s", r.Dataset)
	}
	fmt.Fprintln(w)
	for _, mn := range MechanismNames {
		fmt.Fprintf(w, "%-24s", mn)
		for _, r := range rows {
			v := r.Values[mn]
			if math.IsInf(v, 1) {
				fmt.Fprintf(w, "%14s", "—")
			} else {
				fmt.Fprintf(w, "%14.3g", v)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteInit renders Figure 3b points.
func WriteInit(w io.Writer, pts []InitPoint) {
	fmt.Fprintf(w, "\n%-18s %8s %10s %10s %10s\n", "Workload", "m/n", "min", "median", "max")
	for _, p := range pts {
		fmt.Fprintf(w, "%-18s %8d %10.3f %10.3f %10.3f\n", p.Workload, p.MFactor, p.Min, p.Median, p.Max)
	}
}

// WriteScalability renders Figure 3c points.
func WriteScalability(w io.Writer, pts []ScalePoint) {
	fmt.Fprintf(w, "\n%-10s %16s\n", "Domain", "per-iteration")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %16s\n", p.Domain, p.PerIteration)
	}
}

// WriteWNNLS renders Figure 4 rows.
func WriteWNNLS(w io.Writer, rows []WNNLSRow) {
	fmt.Fprintf(w, "\n%-18s %14s %14s %12s\n", "Workload", "Default", "WNNLS", "improvement")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %14.4g %14.4g %11.2fx\n", r.Workload, r.Default, r.WNNLS, r.Improvement)
	}
}

// WriteTable1 renders Table 1 rows.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "\n%-22s %8s %8s %8s\n", "Mechanism", "inputs", "outputs", "ε-LDP")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8d %8d %8v\n", r.Mechanism, r.Inputs, r.Outputs, r.LDPValid)
	}
}

func minMedianMax(vs []float64) (mn, md, mx float64) {
	sorted := linalg.CloneVec(vs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
}
