package simulate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func rrStrategy(n int, eps float64) *strategy.Strategy {
	e := math.Exp(eps)
	q := linalg.New(n, n)
	denom := e + float64(n) - 1
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u {
				q.Set(o, u, e/denom)
			} else {
				q.Set(o, u, 1/denom)
			}
		}
	}
	return strategy.New(q, eps)
}

func TestProtocolRunShapes(t *testing.T) {
	n := 6
	s := rrStrategy(n, 2)
	w := workload.NewPrefix(n)
	p, err := NewProtocol(s, w)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 5, 0, 3, 2, 0}
	out, err := p.Run(x, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Y) != n || len(out.XEstimate) != n || len(out.Estimates) != w.Queries() {
		t.Fatal("outcome shapes wrong")
	}
	if linalg.Sum(out.Y) != 20 {
		t.Fatalf("response vector total %v, want 20", linalg.Sum(out.Y))
	}
}

func TestProtocolDomainMismatch(t *testing.T) {
	if _, err := NewProtocol(rrStrategy(4, 1), workload.NewPrefix(5)); err == nil {
		t.Fatal("expected domain mismatch error")
	}
}

// The Monte-Carlo error must match the Theorem 3.4 analytic prediction —
// the end-to-end validation that sampling, aggregation, reconstruction, and
// the variance algebra all agree.
func TestMonteCarloMatchesTheory(t *testing.T) {
	n := 5
	s := rrStrategy(n, 1.5)
	w := workload.NewPrefix(n)
	p, err := NewProtocol(s, w)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{40, 25, 10, 15, 10} // N = 100
	theory, err := p.TheoreticalTotalSquared(x)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.MonteCarlo(x, 600, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo mean of a squared quantity: allow 15% slack at 600 trials.
	if math.Abs(stats.MeanTotalSquared-theory) > 0.15*theory {
		t.Fatalf("Monte-Carlo %v vs theory %v", stats.MeanTotalSquared, theory)
	}
	// Normalization consistency.
	wantNorm := stats.MeanTotalSquared / (float64(w.Queries()) * 100 * 100)
	if math.Abs(stats.Normalized-wantNorm) > 1e-12 {
		t.Fatalf("normalized = %v, want %v", stats.Normalized, wantNorm)
	}
}

// WNNLS must reduce (or at least not increase) the empirical error in the
// low-data regime — the Figure 4 effect.
func TestConsistentReducesError(t *testing.T) {
	n := 16
	s := rrStrategy(n, 1.0)
	w := workload.NewPrefix(n)
	p, err := NewProtocol(s, w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	x[2], x[5], x[9] = 20, 30, 10 // sparse data, N = 60: plenty of negativity
	raw, err := p.MonteCarlo(x, 40, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := p.MonteCarlo(x, 40, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cons.MeanTotalSquared >= raw.MeanTotalSquared {
		t.Fatalf("WNNLS error %v not below raw %v", cons.MeanTotalSquared, raw.MeanTotalSquared)
	}
}

func TestRunConsistentOutputsFeasible(t *testing.T) {
	n := 8
	s := rrStrategy(n, 1.0)
	w := workload.NewHistogram(n)
	p, err := NewProtocol(s, w)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{5, 0, 0, 0, 0, 0, 0, 5}
	_, pp, err := p.RunConsistent(x, rand.New(rand.NewSource(2)), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pp.X {
		if v < 0 {
			t.Fatalf("x̂[%d] = %v < 0", i, v)
		}
	}
	if math.Abs(linalg.Sum(pp.X)-10) > 1e-6 {
		t.Fatalf("Σx̂ = %v, want 10", linalg.Sum(pp.X))
	}
}

func TestMonteCarloBadTrials(t *testing.T) {
	p, err := NewProtocol(rrStrategy(3, 1), workload.NewHistogram(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MonteCarlo([]float64{1, 1, 1}, 0, false, 1); err == nil {
		t.Fatal("expected error for zero trials")
	}
}
