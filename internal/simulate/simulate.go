// Package simulate executes the full LDP protocol end-to-end for any
// mechanism speaking the streaming protocol contract (internal/protocol):
// every user randomizes their type through the mechanism's Randomizer, the
// server absorbs the reports into the Aggregator's accumulator, and the
// analyst reconstructs workload answers — unbiased (W·x̂) or consistent
// (WNNLS post-processing). It also provides Monte-Carlo estimation of the
// mechanism's empirical error, used by the Figure 4 reproduction where no
// closed-form variance exists for WNNLS.
//
// For strategy-matrix mechanisms the reconstruction never materializes V:
// V·y = W·(B·y) with B = (QᵀD⁻¹Q)⁺QᵀD⁻¹ (Theorem 3.10), so only the n-vector
// B·y is formed and the workload's fast MatVec does the rest. Frequency
// oracles estimate the histogram x̂ directly and the same W·x̂ serves any
// workload over it.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/postprocess"
	"repro/internal/protocol"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Protocol bundles a mechanism's two protocol halves with a workload and
// precomputes everything the per-run simulation needs.
type Protocol struct {
	rnd  protocol.Randomizer
	agg  protocol.Aggregator
	work workload.Workload

	// strat is set for strategy-matrix mechanisms only; it powers the
	// closed-form variance cross-check (TheoreticalTotalSquared).
	strat *strategy.Strategy
	recon *linalg.Matrix // B (n×m), strategy mechanisms only
}

// New prepares a protocol simulation for any mechanism given as its
// randomizer/aggregator pair.
func New(r protocol.Randomizer, a protocol.Aggregator, w workload.Workload) (*Protocol, error) {
	if r.Domain() != a.Domain() {
		return nil, fmt.Errorf("simulate: randomizer domain %d != aggregator domain %d", r.Domain(), a.Domain())
	}
	if a.Domain() != w.Domain() {
		return nil, fmt.Errorf("simulate: mechanism domain %d != workload domain %d", a.Domain(), w.Domain())
	}
	return &Protocol{rnd: r, agg: a, work: w}, nil
}

// NewProtocol prepares a protocol simulation for a strategy-matrix mechanism.
// Unlike New, it retains the strategy so the Theorem 3.4 closed-form variance
// remains available for cross-checking.
func NewProtocol(s *strategy.Strategy, w workload.Workload) (*Protocol, error) {
	if s.Domain() != w.Domain() {
		return nil, fmt.Errorf("simulate: strategy domain %d != workload domain %d", s.Domain(), w.Domain())
	}
	r, err := strategy.NewRandomizer(s)
	if err != nil {
		return nil, err
	}
	a, err := strategy.NewAggregator(s)
	if err != nil {
		return nil, err
	}
	p, err := New(r, a, w)
	if err != nil {
		return nil, err
	}
	p.strat = s
	b, err := s.ReconFactor()
	if err != nil {
		return nil, err
	}
	p.recon = b
	return p, nil
}

// Outcome is the result of one protocol execution.
type Outcome struct {
	// Y is the aggregated accumulator state (for strategy mechanisms, the
	// response histogram with one randomized response per user).
	Y []float64
	// XEstimate is the unbiased estimate of the data vector (B·y for
	// strategy mechanisms, the channel-inverted histogram for oracles).
	XEstimate []float64
	// Estimates is W·XEstimate, the unbiased workload answers.
	Estimates []float64
}

// Run simulates one execution on integer data vector x.
func (p *Protocol) Run(x []float64, rng *rand.Rand) (*Outcome, error) {
	if len(x) != p.agg.Domain() {
		return nil, fmt.Errorf("simulate: data vector length %d, want %d", len(x), p.agg.Domain())
	}
	acc := make([]float64, p.agg.StateLen())
	count := 0.0
	for u, cnt := range x {
		c := int(cnt)
		if float64(c) != cnt || c < 0 {
			return nil, fmt.Errorf("simulate: data vector entry %d = %g is not a non-negative integer", u, cnt)
		}
		for j := 0; j < c; j++ {
			rep, err := p.rnd.Randomize(u, rng)
			if err != nil {
				return nil, err
			}
			if err := p.agg.Absorb(acc, rep); err != nil {
				return nil, err
			}
			count++
		}
	}
	xh := p.agg.EstimateCounts(acc, count)
	return &Outcome{Y: acc, XEstimate: xh, Estimates: p.work.MatVec(xh)}, nil
}

// RunConsistent simulates one execution and applies WNNLS post-processing
// (Appendix A), returning consistent workload answers. totalCount > 0 also
// projects onto the known respondent total.
func (p *Protocol) RunConsistent(x []float64, rng *rand.Rand, totalCount float64) (*Outcome, *postprocess.Result, error) {
	out, err := p.Run(x, rng)
	if err != nil {
		return nil, nil, err
	}
	pp, err := postprocess.Run(p.work, out.Estimates, postprocess.Options{TotalCount: totalCount})
	if err != nil {
		return nil, nil, err
	}
	return out, pp, nil
}

// ErrorStats summarizes Monte-Carlo error measurements.
type ErrorStats struct {
	// MeanTotalSquared is the Monte-Carlo mean of ‖Wx − estimate‖²₂ (the
	// quantity whose expectation Theorem 3.4 predicts).
	MeanTotalSquared float64
	// Normalized is the Definition 5.2 normalized error:
	// MeanTotalSquared / (p·N²).
	Normalized float64
	// Trials is the number of Monte-Carlo executions.
	Trials int
}

// MonteCarlo measures the empirical error of the protocol over the given
// number of trials. When consistent is true, WNNLS post-processing (with the
// known total) is applied to each trial — the Figure 4 configuration.
func (p *Protocol) MonteCarlo(x []float64, trials int, consistent bool, seed int64) (*ErrorStats, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("simulate: trials must be positive, got %d", trials)
	}
	truth := p.work.MatVec(x)
	numUsers := linalg.Sum(x)
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for t := 0; t < trials; t++ {
		var est []float64
		if consistent {
			_, pp, err := p.RunConsistent(x, rng, numUsers)
			if err != nil {
				return nil, err
			}
			est = pp.Answers
		} else {
			out, err := p.Run(x, rng)
			if err != nil {
				return nil, err
			}
			est = out.Estimates
		}
		sum += squaredDistance(truth, est)
	}
	mean := sum / float64(trials)
	p64 := float64(p.work.Queries())
	return &ErrorStats{
		MeanTotalSquared: mean,
		Normalized:       mean / (p64 * numUsers * numUsers),
		Trials:           trials,
	}, nil
}

// TheoreticalTotalSquared returns the Theorem 3.4 prediction of the expected
// total squared error on data vector x, for cross-checking MonteCarlo. It is
// only available for strategy-matrix mechanisms (built with NewProtocol).
func (p *Protocol) TheoreticalTotalSquared(x []float64) (float64, error) {
	if p.strat == nil {
		return 0, fmt.Errorf("simulate: closed-form variance requires a strategy-matrix mechanism")
	}
	vp, err := p.strat.VariancesWithRecon(p.work.Gram(), p.work.Queries(), p.recon)
	if err != nil {
		return 0, err
	}
	return vp.OnData(x), nil
}

func squaredDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
