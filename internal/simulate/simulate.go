// Package simulate executes the full LDP protocol end-to-end: every user
// randomizes their type through the strategy matrix, the server aggregates
// the response vector y, and the analyst reconstructs workload answers —
// unbiased (V·y) or consistent (WNNLS post-processing). It also provides
// Monte-Carlo estimation of the mechanism's empirical error, used by the
// Figure 4 reproduction where no closed-form variance exists for WNNLS.
//
// The reconstruction never materializes V: V·y = W·(B·y) with
// B = (QᵀD⁻¹Q)⁺QᵀD⁻¹ (Theorem 3.10), so only the n-vector B·y is formed and
// the workload's fast MatVec does the rest.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/postprocess"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Protocol bundles a strategy with a workload and precomputes everything the
// per-run simulation needs (alias samplers, reconstruction factor).
type Protocol struct {
	strategy *strategy.Strategy
	work     workload.Workload
	sampler  *strategy.Sampler
	recon    *linalg.Matrix // B (n×m)
}

// NewProtocol prepares a protocol for the given strategy and workload.
func NewProtocol(s *strategy.Strategy, w workload.Workload) (*Protocol, error) {
	if s.Domain() != w.Domain() {
		return nil, fmt.Errorf("simulate: strategy domain %d != workload domain %d", s.Domain(), w.Domain())
	}
	sp, err := strategy.NewSampler(s)
	if err != nil {
		return nil, err
	}
	b, err := s.ReconFactor()
	if err != nil {
		return nil, err
	}
	return &Protocol{strategy: s, work: w, sampler: sp, recon: b}, nil
}

// Outcome is the result of one protocol execution.
type Outcome struct {
	// Y is the aggregated response vector (one randomized response per user).
	Y []float64
	// XEstimate is B·y, the unbiased estimate of the data vector in the
	// workload's row space.
	XEstimate []float64
	// Estimates is V·y = W·XEstimate, the unbiased workload answers.
	Estimates []float64
}

// Run simulates one execution on integer data vector x.
func (p *Protocol) Run(x []float64, rng *rand.Rand) (*Outcome, error) {
	y, err := p.sampler.ResponseVector(x, rng)
	if err != nil {
		return nil, err
	}
	xh := p.recon.MulVec(y)
	return &Outcome{Y: y, XEstimate: xh, Estimates: p.work.MatVec(xh)}, nil
}

// RunConsistent simulates one execution and applies WNNLS post-processing
// (Appendix A), returning consistent workload answers. totalCount > 0 also
// projects onto the known respondent total.
func (p *Protocol) RunConsistent(x []float64, rng *rand.Rand, totalCount float64) (*Outcome, *postprocess.Result, error) {
	out, err := p.Run(x, rng)
	if err != nil {
		return nil, nil, err
	}
	pp, err := postprocess.Run(p.work, out.Estimates, postprocess.Options{TotalCount: totalCount})
	if err != nil {
		return nil, nil, err
	}
	return out, pp, nil
}

// ErrorStats summarizes Monte-Carlo error measurements.
type ErrorStats struct {
	// MeanTotalSquared is the Monte-Carlo mean of ‖Wx − estimate‖²₂ (the
	// quantity whose expectation Theorem 3.4 predicts).
	MeanTotalSquared float64
	// Normalized is the Definition 5.2 normalized error:
	// MeanTotalSquared / (p·N²).
	Normalized float64
	// Trials is the number of Monte-Carlo executions.
	Trials int
}

// MonteCarlo measures the empirical error of the protocol over the given
// number of trials. When consistent is true, WNNLS post-processing (with the
// known total) is applied to each trial — the Figure 4 configuration.
func (p *Protocol) MonteCarlo(x []float64, trials int, consistent bool, seed int64) (*ErrorStats, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("simulate: trials must be positive, got %d", trials)
	}
	truth := p.work.MatVec(x)
	numUsers := linalg.Sum(x)
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for t := 0; t < trials; t++ {
		var est []float64
		if consistent {
			_, pp, err := p.RunConsistent(x, rng, numUsers)
			if err != nil {
				return nil, err
			}
			est = pp.Answers
		} else {
			out, err := p.Run(x, rng)
			if err != nil {
				return nil, err
			}
			est = out.Estimates
		}
		sum += squaredDistance(truth, est)
	}
	mean := sum / float64(trials)
	p64 := float64(p.work.Queries())
	return &ErrorStats{
		MeanTotalSquared: mean,
		Normalized:       mean / (p64 * numUsers * numUsers),
		Trials:           trials,
	}, nil
}

// TheoreticalTotalSquared returns the Theorem 3.4 prediction of the expected
// total squared error on data vector x, for cross-checking MonteCarlo.
func (p *Protocol) TheoreticalTotalSquared(x []float64) (float64, error) {
	vp, err := p.strategy.VariancesWithRecon(p.work.Gram(), p.work.Queries(), p.recon)
	if err != nil {
		return 0, err
	}
	return vp.OnData(x), nil
}

func squaredDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
