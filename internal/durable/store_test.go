package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// replayLog collects what a recovery fed back.
type replayLog struct {
	snap    *transport.Snapshot
	records []Record
}

func (l *replayLog) options(digest string, fsync bool) Options {
	return Options{
		Digest: digest,
		Fsync:  fsync,
		Restore: func(s transport.Snapshot) error {
			l.snap = &s
			return nil
		},
		Replay: func(r Record) error {
			l.records = append(l.records, r)
			return nil
		},
	}
}

func batch(idx ...int) []protocol.Report {
	out := make([]protocol.Report, len(idx))
	for i, v := range idx {
		out[i] = protocol.Report{Index: v}
	}
	return out
}

func TestStoreRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, Options{Digest: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasCheckpoint || rec.ReplayedRecords != 0 {
		t.Fatalf("fresh dir recovered something: %+v", rec)
	}
	if err := s.Append(batch(1, 2), "keyA"); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(3), ""); err != nil {
		t.Fatal(err)
	}
	if s.RecordLag() != 2 {
		t.Fatalf("record lag %d, want 2", s.RecordLag())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var log replayLog
	s2, rec2, err := Open(dir, log.options("d1", false))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if log.snap != nil {
		t.Fatal("Restore called without a checkpoint")
	}
	if rec2.ReplayedRecords != 2 || rec2.ReplayedReports != 3 || rec2.DroppedTailBytes != 0 {
		t.Fatalf("recovery %+v", rec2)
	}
	if log.records[0].Key != "keyA" || len(log.records[0].Reports) != 2 || log.records[1].Key != "" {
		t.Fatalf("replayed records %+v", log.records)
	}
	if s2.RecordLag() != 2 {
		t.Fatalf("lag after recovery %d, want 2 (no checkpoint covers them)", s2.RecordLag())
	}
}

func TestStoreCheckpointRotateReplayTail(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), "k1"); err != nil {
		t.Fatal(err)
	}
	// Checkpoint flow: rotate, then pin the pre-rotation state.
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	snap := transport.Snapshot{State: []float64{1, 0, 0}, Count: 1, Epoch: 3, Info: transport.Info{Mechanism: "test", Domain: 3}}
	if err := s.WriteCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	if s.RecordLag() != 0 || s.CheckpointSeq() != 1 || s.Seq() != 1 {
		t.Fatalf("post-checkpoint store state: lag=%d ckpt=%d seq=%d", s.RecordLag(), s.CheckpointSeq(), s.Seq())
	}
	if err := s.Append(batch(2, 3), "k2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var log replayLog
	s2, rec, err := Open(dir, log.options("", false))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if log.snap == nil || log.snap.Count != 1 || log.snap.Epoch != 3 || log.snap.Info.Mechanism != "test" {
		t.Fatalf("restored snapshot %+v", log.snap)
	}
	if !rec.HasCheckpoint || rec.CheckpointSeq != 1 || rec.ReplayedRecords != 1 {
		t.Fatalf("recovery %+v", rec)
	}
	if log.records[0].Key != "k2" || len(log.records[0].Reports) != 2 {
		t.Fatalf("tail record %+v", log.records[0])
	}
}

// A crash between Rotate and WriteCheckpoint leaves two segments and a stale
// (or no) checkpoint; recovery must replay both segments in order.
func TestStoreCrashBetweenRotateAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Crash here: no WriteCheckpoint. More records land in the new segment.
	if err := s.Append(batch(2), "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var log replayLog
	s2, rec, err := Open(dir, log.options("", false))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.HasCheckpoint || rec.ReplayedRecords != 2 {
		t.Fatalf("recovery %+v", rec)
	}
	if log.records[0].Key != "a" || log.records[1].Key != "b" {
		t.Fatalf("segment order broken: %+v", log.records)
	}
	if log.records[0].Epoch != 0 || log.records[1].Epoch != 1 {
		t.Fatalf("record epochs %d,%d want 0,1", log.records[0].Epoch, log.records[1].Epoch)
	}
}

// A corrupt newest checkpoint must fall back to its retained predecessor and
// replay the larger WAL suffix — that is why two checkpoints are kept.
func TestStoreCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := func(count float64) {
		t.Helper()
		if err := s.Rotate(); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{count}, Count: count}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(batch(1), "a"); err != nil {
		t.Fatal(err)
	}
	checkpoint(1)
	if err := s.Append(batch(2), "b"); err != nil {
		t.Fatal(err)
	}
	checkpoint(2)
	if err := s.Append(batch(3), "c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest checkpoint in place.
	latest := filepath.Join(dir, checkpointName(2))
	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(latest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var log replayLog
	s2, rec, err := Open(dir, log.options("", false))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec.HasCheckpoint || rec.CheckpointSeq != 1 {
		t.Fatalf("expected fallback to checkpoint 1, got %+v", rec)
	}
	if log.snap == nil || log.snap.Count != 1 {
		t.Fatalf("restored snapshot %+v", log.snap)
	}
	// Records b (segment 1) and c (segment 2) replay on top of checkpoint 1.
	if rec.ReplayedRecords != 2 || log.records[0].Key != "b" || log.records[1].Key != "c" {
		t.Fatalf("replayed %+v", log.records)
	}
}

func TestStoreTornTailTruncatedThenAppendable(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1, 2, 3), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(4), "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its last 3 bytes.
	if err := os.Truncate(seg, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}

	var log replayLog
	s2, rec, err := Open(dir, log.options("", false))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ReplayedRecords != 1 || log.records[0].Key != "a" {
		t.Fatalf("recovery kept %+v", log.records)
	}
	if rec.DroppedTailBytes <= 0 {
		t.Fatalf("dropped %d bytes, want > 0", rec.DroppedTailBytes)
	}
	// Appends resume at the truncated boundary and survive another cycle.
	if err := s2.Append(batch(5), "c"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	var log2 replayLog
	s3, rec2, err := Open(dir, log2.options("", false))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec2.ReplayedRecords != 2 || log2.records[1].Key != "c" || rec2.DroppedTailBytes != 0 {
		t.Fatalf("post-repair recovery %+v (%+v)", rec2, log2.records)
	}
}

// A damaged record in the final segment followed by a complete valid record
// is corruption, not a crash tear (sequential appends tear only at the
// physical end) — recovery must refuse rather than truncate the intact
// acknowledged records away.
func TestStoreRefusesCorruptionBeforeValidRecords(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1, 2), "a"); err != nil {
		t.Fatal(err)
	}
	markEnd := s.ByteLag()
	if err := s.Append(batch(3), "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST record; the second stays intact.
	data[markEnd-2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "refusing to truncate") {
		t.Fatalf("corruption before an intact record accepted: %v", err)
	}
	// And nothing was mutated: the intact second record is still on disk.
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(after)) != int64(len(data)) {
		t.Fatalf("recovery mutated the damaged segment (%d → %d bytes)", len(data), len(after))
	}
}

// Damage before the final segment means acknowledged history is gone —
// recovery must refuse rather than silently undercount.
func TestStoreRefusesDamagedNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(2), "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg0 := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg0, int64(len(data)-1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "final segment") {
		t.Fatalf("damaged non-final segment accepted: %v", err)
	}
}

func TestStoreRejectsDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Digest: "aaaa"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Digest: "bbbb"}); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest mismatch accepted: %v", err)
	}
	// An undeclared digest on either side skips the check (oracles declare none).
	s2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("undeclared digest rejected: %v", err)
	}
	s2.Close()
}

// The per-key totals must survive a checkpoint cut: a keyed request whose
// records straddle the checkpoint recovers its FULL absorbed count (the
// checkpoint's key table plus the replayed tail), not just the tail's share —
// otherwise a post-restart retry would trim too little and double-absorb.
func TestStoreKeyTotalsStraddleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1, 2, 3), "K"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{3}, Count: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(4, 5), "K"); err != nil { // same key, post-checkpoint
		t.Fatal(err)
	}
	if err := s.Append(batch(6), "L"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, k := range rec.Keys {
		got[k.Key] = k.Reports
	}
	if got["K"] != 5 || got["L"] != 1 {
		t.Fatalf("recovered key totals %v, want K=5 (3 checkpointed + 2 replayed) and L=1", got)
	}
}

// Checkpoint files that exist but all fail to validate mean the pruned WAL
// they covered is unrecoverable — Open must refuse, not silently restart
// from an empty base.
func TestStoreRefusesWhenNoCheckpointValidates(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{1}, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, checkpointName(1))
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "none validates") {
		t.Fatalf("sole corrupt checkpoint accepted: %v", err)
	}
}

// A gap in the segment sequence means acknowledged history was deleted —
// refuse rather than replay around it.
func TestStoreRefusesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(2), "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(0))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing segment accepted: %v", err)
	}
}

// The WAL-lag gauges measure debt against the last DURABLE checkpoint: a
// rotation alone (the first half of a checkpoint that may still fail) must
// not zero them.
func TestStoreLagSurvivesRotateWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(batch(1, 2), "a"); err != nil {
		t.Fatal(err)
	}
	bytesBefore := s.ByteLag()
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if s.RecordLag() != 1 || s.ByteLag() != bytesBefore {
		t.Fatalf("rotation zeroed the lag: records=%d bytes=%d (want 1, %d)", s.RecordLag(), s.ByteLag(), bytesBefore)
	}
	if err := s.Append(batch(3), "b"); err != nil {
		t.Fatal(err)
	}
	if s.RecordLag() != 2 {
		t.Fatalf("record lag %d, want 2", s.RecordLag())
	}
	// Only a durable checkpoint drops the debt it covers.
	if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{2}, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if s.RecordLag() != 1 {
		t.Fatalf("record lag after checkpoint %d, want 1 (the post-rotation record)", s.RecordLag())
	}
}

// Pruning follows the retention ladder: the newest checkpoints stay at full
// resolution, older ones are coarsened geometrically, and WAL segments older
// than the predecessor of the newest retained checkpoint are deleted.
func TestStorePruneFollowsRetentionLadder(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{HistoryKeep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if err := s.Append(batch(i), ""); err != nil {
			t.Fatal(err)
		}
		if err := s.Rotate(); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{float64(i)}, Count: float64(i), Epoch: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// FullRes 2, newest 8: ages 0–1 full, the next band keeps multiples of 2,
	// the one after multiples of 4.
	want := []uint64{4, 6, 7, 8}
	if len(ckpts) != len(want) {
		t.Fatalf("checkpoints on disk: %v, want %v", ckpts, want)
	}
	for i := range want {
		if ckpts[i] != want[i] {
			t.Fatalf("checkpoints on disk: %v, want %v", ckpts, want)
		}
	}
	// Recovery needs segments only from the predecessor of the newest
	// retained checkpoint forward.
	for _, g := range segs {
		if g < 7 {
			t.Fatalf("segment %d survived pruning (segments: %v)", g, segs)
		}
	}
}
