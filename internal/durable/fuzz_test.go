package durable

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/protocol"
)

// FuzzDecodeWALRecord feeds arbitrary bytes to the WAL record decoder — the
// parser recovery trusts with whatever a crash left on disk. The decoder must
// return an error or a record, never panic, and never allocate proportionally
// to a hostile length prefix; anything it accepts must re-encode (under the
// same epoch/key/digest) and re-decode to the identical record, because
// recovery's correctness rests on the format being unambiguous.
func FuzzDecodeWALRecord(f *testing.F) {
	seed := func(rec Record) {
		data, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(Record{})
	seed(sampleRecord())
	seed(Record{Epoch: 1 << 40, Key: "k", Reports: []protocol.Report{{Index: -1}}})
	seed(Record{Digest: "d", Reports: []protocol.Report{{Bits: []bool{true}}, {Seed: 9, Index: 2}}})
	// Two records back to back, so mutations explore the record boundary.
	a, err := EncodeRecord(Record{Reports: []protocol.Report{{Index: 1}}})
	if err != nil {
		f.Fatal(err)
	}
	b, err := EncodeRecord(Record{Key: "x", Reports: []protocol.Report{{Index: 2}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte(nil), a...), b...))
	f.Add([]byte("LDPW"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			rec, err := DecodeRecord(r)
			if err != nil {
				return // EOF, torn, invalid, or corrupt — all fine, no panic is the point
			}
			reenc, err := EncodeRecord(rec)
			if err != nil {
				t.Fatalf("decoded record failed to re-encode: %v", err)
			}
			back, err := DecodeRecord(bytes.NewReader(reenc))
			if err != nil {
				t.Fatalf("re-encoded record failed to decode: %v", err)
			}
			if back.Epoch != rec.Epoch || back.Key != rec.Key || back.Digest != rec.Digest || len(back.Reports) != len(rec.Reports) {
				t.Fatalf("record changed across re-encode: %+v != %+v", back, rec)
			}
			for i := range rec.Reports {
				if !reflect.DeepEqual(back.Reports[i], rec.Reports[i]) {
					t.Fatalf("report %d changed across re-encode: %+v != %+v", i, back.Reports[i], rec.Reports[i])
				}
			}
		}
	})
}
