package durable

import (
	"repro/internal/obs"
)

// storeMetrics is the pre-resolved handle set the durable hot paths bump.
// It is armed once by SetMetrics and read through atomic pointers, so an
// unarmed store pays one nil check per append and nothing else.
type storeMetrics struct {
	appendDur   *obs.Histogram // ldp_wal_append_duration_seconds
	flushDur    *obs.Histogram // ldp_wal_flush_duration_seconds
	commitBytes *obs.Histogram // ldp_wal_commit_bytes
	ckptDur     *obs.Histogram // ldp_checkpoint_duration_seconds
}

// SetMetrics registers the store's durability families on reg and starts
// feeding them: append and group-commit flush latency histograms, commit
// batch sizes, checkpoint durations, live WAL/checkpoint lag gauges (read at
// scrape time from the store's own atomics), and the recovery facts from rec
// pinned as gauges so the last restart's cost stays visible. Call once, after
// Open, before serving traffic.
func (s *Store) SetMetrics(reg *obs.Registry, rec Recovery) {
	m := &storeMetrics{
		appendDur: reg.Histogram("ldp_wal_append_duration_seconds",
			"WAL append wall time in seconds, including the group-commit wait.", obs.LatencyBounds()),
		flushDur: reg.Histogram("ldp_wal_flush_duration_seconds",
			"WAL group-commit flush time in seconds (the write plus fsync syscall pair).", obs.LatencyBounds()),
		commitBytes: reg.Histogram("ldp_wal_commit_bytes",
			"Bytes written per WAL group commit.", obs.SizeBounds(26)),
		ckptDur: reg.Histogram("ldp_checkpoint_duration_seconds",
			"Checkpoint write duration in seconds, including retention pruning.", obs.LatencyBounds()),
	}
	reg.GaugeFunc("ldp_wal_record_lag",
		"WAL records no durable checkpoint covers yet — what a restart now replays.",
		func() float64 { return float64(s.RecordLag()) })
	reg.GaugeFunc("ldp_wal_byte_lag",
		"WAL bytes no durable checkpoint covers yet.",
		func() float64 { return float64(s.ByteLag()) })
	reg.GaugeFunc("ldp_wal_segment_seq",
		"Active WAL segment sequence number.",
		func() float64 { return float64(s.Seq()) })
	reg.GaugeFunc("ldp_checkpoint_seq",
		"Newest durable checkpoint's sequence number.",
		func() float64 { return float64(s.CheckpointSeq()) })

	recovered := 0.0
	if rec.HasCheckpoint || rec.ReplayedRecords > 0 {
		recovered = 1
	}
	reg.Gauge("ldp_recovery_restored",
		"1 when startup restored prior state (checkpoint and/or WAL records), 0 for a cold start.").Set(recovered)
	reg.Gauge("ldp_recovery_replayed_records",
		"WAL records replayed on top of the checkpoint at the last startup.").Set(float64(rec.ReplayedRecords))
	reg.Gauge("ldp_recovery_replayed_reports",
		"Reports carried by the WAL records replayed at the last startup.").Set(float64(rec.ReplayedReports))
	reg.Gauge("ldp_recovery_dropped_tail_bytes",
		"Torn trailing WAL bytes discarded at the last startup.").Set(float64(rec.DroppedTailBytes))

	s.sm.Store(m)
	s.mu.Lock()
	s.wal.metrics.Store(m)
	s.mu.Unlock()
}
