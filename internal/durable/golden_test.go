package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/transport"
)

// golden regenerates testdata/<name> from got when UPDATE_GOLDEN=1 and
// returns the checked-in bytes. The goldens pin decode compatibility: WAL
// records and checkpoints written by a past version of this library must keep
// loading to the same values — an on-disk log must survive an upgrade.
func golden(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	return want
}

func TestWALRecordGoldenCompatibility(t *testing.T) {
	want := sampleRecord()
	enc, err := EncodeRecord(want)
	if err != nil {
		t.Fatal(err)
	}
	data := golden(t, "wal_record_v1.golden", enc)
	got, err := DecodeRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden WAL record no longer decodes: %v", err)
	}
	if got.Epoch != want.Epoch || got.Key != want.Key || got.Digest != want.Digest || !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Fatalf("golden WAL record decoded to %+v, want %+v", got, want)
	}
}

func TestCheckpointGoldenCompatibility(t *testing.T) {
	wantSeq := uint64(7)
	wantSnap := transport.Snapshot{
		State: []float64{0, 1.5, -2.25, 1e-300},
		Count: 4096,
		Epoch: 19,
		Info:  transport.Info{Mechanism: "strategy", Domain: 4, Epsilon: 1.25, Digest: "00f1e2d3c4b5a697"},
	}
	wantKeys := []KeyCount{
		{Key: "00f1e2d3c4b5a6978877665544332211", Reports: 4090},
		{Key: "fefefefefefefefe0101010101010101", Reports: 6},
	}
	enc, err := encodeCheckpoint(wantSeq, wantSnap, wantKeys)
	if err != nil {
		t.Fatal(err)
	}
	data := golden(t, "checkpoint_v1.golden", enc)
	seq, snap, keys, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("golden checkpoint no longer decodes: %v", err)
	}
	if seq != wantSeq || snap.Count != wantSnap.Count || snap.Epoch != wantSnap.Epoch || snap.Info != wantSnap.Info || !reflect.DeepEqual(snap.State, wantSnap.State) {
		t.Fatalf("golden checkpoint decoded to seq=%d %+v", seq, snap)
	}
	if !reflect.DeepEqual(keys, wantKeys) {
		t.Fatalf("golden checkpoint key table decoded to %+v, want %+v", keys, wantKeys)
	}
}
