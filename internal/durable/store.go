package durable

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Directory layout: numbered WAL segments, the checkpoints that precede
// them, and the manifest indexing the retained epoch history.
//
//	<dir>/wal-00000003.log        records appended since checkpoint 3
//	<dir>/wal-00000002.log.gz     a closed segment, gzipped (Options.Gzip)
//	<dir>/checkpoint-00000003.ckpt state of all segments < 3
//	<dir>/history.manifest        epoch → checkpoint index (history package)
//
// The active segment is the highest-numbered one and is never compressed. A
// checkpoint rotates the WAL to a fresh segment and then pins the
// pre-rotation state. Retention follows the history ladder: the newest
// checkpoints stay at full resolution (the newest two always, so a
// checkpoint that lands corrupt on disk still leaves a recoverable older
// one) and older ones are coarsened geometrically instead of pruned
// outright, so SnapshotAt can serve any retained epoch without replay.
func segmentName(seq uint64) string    { return fmt.Sprintf("wal-%08d.log", seq) }
func gzSegmentName(seq uint64) string  { return segmentName(seq) + ".gz" }
func checkpointName(seq uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", seq) }

// segmentFile resolves a segment sequence to its on-disk file: the raw
// segment wins when both forms exist (an interrupted compression leaves the
// raw file authoritative; the leftover .gz may be torn).
func segmentFile(dir string, seq uint64) (path string, gzipped bool) {
	raw := filepath.Join(dir, segmentName(seq))
	if _, err := os.Stat(raw); err == nil {
		return raw, false
	}
	return filepath.Join(dir, gzSegmentName(seq)), true
}

// Options configures Open.
type Options struct {
	// Digest is the mechanism digest stamped into every appended record and
	// verified against every replayed one (when both sides declare one):
	// a WAL written under one strategy matrix must never replay into another.
	Digest string
	// Fsync makes every group commit fsync before acknowledging. Off, records
	// are written (not buffered in-process) on acknowledgment: a process
	// crash loses nothing, a power failure can lose the OS-cached tail.
	Fsync bool
	// CommitWindow holds each group commit open this long before writing, so
	// concurrent appenders stage behind the flusher and share one syscall
	// pair (and one fsync, in fsync mode). Zero flushes immediately. Every
	// append still blocks until the write covering its bytes completes —
	// the window trades per-append latency for commit batching, never
	// durability.
	CommitWindow time.Duration
	// Restore is called once, before any Replay, with the snapshot of the
	// latest valid checkpoint — the caller seeds its accumulator from it and
	// rejects a mechanism mismatch by returning an error.
	Restore func(snap transport.Snapshot) error
	// Replay is called for every valid WAL record after the checkpoint, in
	// append order. Returning an error aborts recovery.
	Replay func(rec Record) error
	// HistoryKeep is the retention ladder's full-resolution window: that many
	// newest checkpoints are kept intact, older ones are coarsened
	// geometrically (every 2nd, then every 4th, …). Values below 2 mean
	// history.DefaultFullRes.
	HistoryKeep int
	// Gzip compresses checkpoint payloads and closed retained WAL segments —
	// worthwhile for the unary mechanisms, whose accumulators and report
	// batches are long runs of small integers. The active segment is never
	// compressed, and either setting reads directories written by the other.
	Gzip bool
}

// Recovery reports what Open found and restored.
type Recovery struct {
	// HasCheckpoint is true when a valid checkpoint seeded the state.
	HasCheckpoint bool
	// CheckpointSeq is the sequence of that checkpoint (0 without one).
	CheckpointSeq uint64
	// ReplayedRecords and ReplayedReports count the WAL tail fed to Replay.
	ReplayedRecords int64
	ReplayedReports int64
	// DroppedTailBytes counts the torn/invalid bytes truncated from the end
	// of the final segment — the unacknowledged remains of a crash.
	DroppedTailBytes int64
	// Keys are the idempotency-key totals the log proves absorbed, oldest
	// first: the checkpoint's carried-forward table plus the replayed tail.
	// A keyed request whose records straddle a checkpoint therefore reports
	// its full absorbed count.
	Keys []KeyCount
}

// keyTable is the bounded, insertion-ordered per-key report-count table the
// store maintains across its whole life (seeded from the checkpoint, advanced
// on every keyed append, carried into the next checkpoint). Oldest keys
// beyond the cap are evicted — the same horizon as the transport's LRU.
type keyTable struct {
	mu    sync.Mutex
	order []string
	count map[string]int64
}

func newKeyTable() *keyTable {
	return &keyTable{count: make(map[string]int64)}
}

func (t *keyTable) add(key string, reports int64) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.count[key]; !ok {
		t.order = append(t.order, key)
		for len(t.order) > maxTrackedKeys {
			delete(t.count, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.count[key] += reports
}

func (t *keyTable) snapshot() []KeyCount {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]KeyCount, 0, len(t.order))
	for _, k := range t.order {
		out = append(out, KeyCount{Key: k, Reports: t.count[k]})
	}
	return out
}

// Store is the durable half of a collector: an append-only WAL plus rotation
// and checkpointing over a data directory. Append may be called from any
// number of goroutines; Rotate must exclude Append (the caller holds its
// write barrier — the same one that makes the checkpoint snapshot exact), and
// Checkpointing is single-flight by caller contract.
type Store struct {
	dir    string
	digest string
	fsync  bool
	window time.Duration

	// mu orders Append (read side) against Rotate (write side); the WAL file
	// itself serializes concurrent appends internally via group commit.
	mu  sync.RWMutex
	wal *walFile
	seq uint64

	// keys carries per-key absorbed totals across the store's life; the
	// snapshot taken at each rotation rides into the following checkpoint.
	keys *keyTable
	// pendingCut* are the totals (and key table) captured at the last Rotate
	// — what the in-flight checkpoint will cover once durable. Written under
	// mu's write side, read by WriteCheckpoint (the caller serializes the
	// Rotate → WriteCheckpoint flow).
	pendingCutRecords int64
	pendingCutBytes   int64
	pendingKeys       []KeyCount

	// totalRecords/totalBytes count everything appended or replayed since
	// Open; covered* are the totals as of the last DURABLE checkpoint, so
	// lag = total − covered stays honest when a checkpoint write fails.
	totalRecords   atomic.Int64
	totalBytes     atomic.Int64
	coveredRecords atomic.Int64
	coveredBytes   atomic.Int64
	// ckptSeq is the newest durable checkpoint's sequence.
	ckptSeq atomic.Uint64

	// ladder is the checkpoint retention policy; compress selects gzipped
	// checkpoints and closed-segment compression.
	ladder   history.Ladder
	compress bool
	// histMu guards hist, the in-memory mirror of the on-disk manifest:
	// the retained checkpoints, sequence-ascending. SnapshotAt resolves
	// epochs against it.
	histMu sync.Mutex
	hist   []history.Entry

	// sm is the armed metrics handle set (nil until SetMetrics).
	sm atomic.Pointer[storeMetrics]
}

// Open prepares dir (creating it if needed), recovers its contents — latest
// valid checkpoint through opts.Restore, then every complete WAL record after
// it through opts.Replay, truncating a torn tail — and returns the store
// ready for appending.
func Open(dir string, opts Options) (*Store, Recovery, error) {
	var rec Recovery
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("durable: %w", err)
	}
	ckptSeqs, segSeqs, err := scanDir(dir)
	if err != nil {
		return nil, rec, err
	}

	// A raw segment alongside its .gz twin means a compression was
	// interrupted: the raw file is authoritative, the .gz may be torn. Drop
	// the .gz so nothing ever reads it.
	for _, g := range segSeqs {
		raw := filepath.Join(dir, segmentName(g))
		gz := filepath.Join(dir, gzSegmentName(g))
		if _, err := os.Stat(raw); err == nil {
			os.Remove(gz)
		}
	}

	// Latest checkpoint that actually loads wins; a corrupt one falls back
	// to its predecessor (retained exactly for this). If checkpoints exist
	// but NONE validates, recovery must refuse: the segments a checkpoint
	// covered have been pruned, so starting from an empty base would serve a
	// consistent-looking undercount of the whole checkpointed population.
	keys := newKeyTable()
	base := uint64(0)
	for i := len(ckptSeqs) - 1; i >= 0; i-- {
		snap, ckptKeys, err := loadCheckpoint(filepath.Join(dir, checkpointName(ckptSeqs[i])), ckptSeqs[i])
		if err != nil {
			continue
		}
		if opts.Restore != nil {
			if err := opts.Restore(snap); err != nil {
				return nil, rec, fmt.Errorf("durable: restore checkpoint %d: %w", ckptSeqs[i], err)
			}
		}
		for _, k := range ckptKeys {
			keys.add(k.Key, k.Reports)
		}
		rec.HasCheckpoint = true
		rec.CheckpointSeq = ckptSeqs[i]
		base = ckptSeqs[i]
		break
	}
	if !rec.HasCheckpoint && len(ckptSeqs) > 0 {
		return nil, rec, fmt.Errorf("durable: %d checkpoint file(s) present but none validates — the WAL they covered has been pruned, so recovery would silently lose it; restore a checkpoint from backup or remove the data directory to accept the loss", len(ckptSeqs))
	}

	// Replay every segment the checkpoint does not cover, oldest first. The
	// run must be contiguous and start at the checkpoint's segment — a gap
	// means acknowledged history was deleted, which recovery refuses to
	// paper over. Only the final segment may end torn (a crash mid-append);
	// a defect anywhere else is corruption.
	var replay []uint64
	for _, s := range segSeqs {
		if s >= base {
			replay = append(replay, s)
		}
	}
	for i, seq := range replay {
		if want := base + uint64(i); seq != want {
			return nil, rec, fmt.Errorf("durable: WAL segment %s is missing (found %s) — acknowledged history is gone; refusing to recover an undercount", segmentName(want), segmentName(seq))
		}
	}
	var totalBytes int64
	for i, seq := range replay {
		final := i == len(replay)-1
		path, gzipped := segmentFile(dir, seq)
		kept, dropped, err := replaySegment(path, gzipped, seq, final, opts, &rec, keys)
		if err != nil {
			return nil, rec, err
		}
		totalBytes += kept
		rec.DroppedTailBytes += dropped
	}
	rec.Keys = keys.snapshot()

	// The active segment is the newest one (created now if none exists yet).
	active := base
	if len(replay) > 0 {
		active = replay[len(replay)-1]
	}
	wal, err := openWALFile(filepath.Join(dir, segmentName(active)), opts.Fsync, opts.CommitWindow)
	if err != nil {
		return nil, rec, fmt.Errorf("durable: open WAL segment: %w", err)
	}
	s := &Store{
		dir: dir, digest: opts.Digest, fsync: opts.Fsync, window: opts.CommitWindow,
		wal: wal, seq: active, keys: keys,
		ladder:   history.Ladder{FullRes: opts.HistoryKeep},
		compress: opts.Gzip,
	}
	s.totalRecords.Store(rec.ReplayedRecords)
	s.totalBytes.Store(totalBytes)
	s.ckptSeq.Store(rec.CheckpointSeq)
	s.hist = reconcileManifest(dir, ckptSeqs, rec.CheckpointSeq, rec.HasCheckpoint)
	return s, rec, nil
}

// reconcileManifest builds the in-memory epoch index at Open: the manifest is
// consulted first (it is an index, not ground truth), every on-disk
// checkpoint it does not cover is read to rebuild its entry, entries without
// files are dropped, and checkpoints newer than the one that validated during
// restore are excluded — the restore loop already proved them corrupt. When
// the result differs from what was on disk, the manifest is rewritten
// best-effort.
func reconcileManifest(dir string, ckptSeqs []uint64, base uint64, hasCkpt bool) []history.Entry {
	if !hasCkpt {
		// No valid checkpoint ⇒ no retained history; clear a stale manifest.
		if m, err := history.LoadManifest(dir); err == nil && m != nil {
			history.WriteManifest(dir, nil)
		}
		return nil
	}
	manifest, err := history.LoadManifest(dir) // damaged ⇒ rebuild from files
	bySeq := make(map[uint64]history.Entry, len(manifest))
	for _, e := range manifest {
		bySeq[e.Seq] = e
	}
	dirty := err != nil || len(manifest) != len(ckptSeqs)
	var hist []history.Entry
	for _, c := range ckptSeqs {
		if c > base {
			dirty = true // proved corrupt during restore
			continue
		}
		if e, ok := bySeq[c]; ok {
			hist = append(hist, e)
			continue
		}
		snap, _, compressed, err := history.ReadCheckpointFile(filepath.Join(dir, checkpointName(c)), c)
		if err != nil {
			dirty = true // unservable; leave the file for the operator
			continue
		}
		hist = append(hist, history.Entry{Seq: c, Epoch: snap.Epoch, Count: snap.Count, Compressed: compressed})
		dirty = true
	}
	if dirty {
		history.WriteManifest(dir, hist) // best-effort; files stay ground truth
	}
	return hist
}

// scanDir lists checkpoint and segment sequences, ascending, ignoring
// anything else (temp files from interrupted checkpoint writes included). A
// segment present both raw and gzipped is listed once.
func scanDir(dir string) (ckpts, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	seen := make(map[uint64]bool)
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, seq)
		} else if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			if !seen[seq] {
				seen[seq] = true
				segs = append(segs, seq)
			}
		} else if seq, ok := parseSeq(e.Name(), "wal-", ".log.gz"); ok {
			if !seen[seq] {
				seen[seq] = true
				segs = append(segs, seq)
			}
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) < 8 { // zero-padded to width 8, wider once seq outgrows it
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// replaySegment feeds every complete record of one segment to opts.Replay
// and returns (kept, dropped) byte counts of logical (decompressed) WAL
// bytes. In a raw final segment a torn or invalid tail is truncated away and
// counted as dropped; elsewhere it is an error. A gzipped segment was
// compressed whole from an already-closed segment, so any damage in one is
// corruption, never a crash tear — it is refused, not truncated.
func replaySegment(path string, gzipped bool, seq uint64, final bool, opts Options, rec *Recovery, keys *keyTable) (int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("durable: %w", err)
	}
	var src io.Reader = bufio.NewReaderSize(f, 1<<16)
	if gzipped {
		gz, err := gzip.NewReader(src)
		if err != nil {
			return 0, 0, fmt.Errorf("durable: WAL segment %s: gzip: %w", filepath.Base(path), err)
		}
		defer gz.Close()
		src = gz
	}
	cr := &countingReader{r: src}
	var lastGood int64
	for {
		r, err := DecodeRecord(cr)
		if err == io.EOF {
			return lastGood, 0, nil // clean end at a record boundary
		}
		if err != nil {
			if errors.Is(err, errCorruptRecord) {
				// CRC-valid garbage: the writer produced it, never drop it
				// silently.
				return 0, 0, fmt.Errorf("durable: WAL segment %s corrupt at offset %d: %w", filepath.Base(path), lastGood, err)
			}
			if !errors.Is(err, ErrTornRecord) && !errors.Is(err, errInvalidRecord) {
				// A real I/O failure, not evidence about the bytes: abort
				// without mutating anything — a retry after the fault must
				// still see every record.
				return 0, 0, fmt.Errorf("durable: read WAL segment %s: %w", filepath.Base(path), err)
			}
			if !final || gzipped {
				return 0, 0, fmt.Errorf("durable: WAL segment %s damaged at offset %d (only the raw final segment may end torn): %w", filepath.Base(path), lastGood, err)
			}
			// Sequential O_APPEND writes tear only at the physical end of the
			// file, so a decodable record anywhere past the damage proves
			// this is corruption (bit rot, out-of-order writeback), not a
			// crash tear — refuse loudly instead of truncating acknowledged
			// records away.
			if off, found := scanForRecord(f, lastGood+1, st.Size(), seq); found {
				return 0, 0, fmt.Errorf("durable: WAL segment %s damaged at offset %d but an intact record follows at offset %d — corruption, not a crash tear; refusing to truncate", filepath.Base(path), lastGood, off)
			}
			// The crash signature: drop the torn tail so appends resume at
			// the last record boundary.
			if err := os.Truncate(path, lastGood); err != nil {
				return 0, 0, fmt.Errorf("durable: truncate torn WAL tail: %w", err)
			}
			return lastGood, st.Size() - lastGood, nil
		}
		if r.Epoch != seq {
			return 0, 0, fmt.Errorf("durable: WAL segment %s record at offset %d carries epoch %d, segment is %d", filepath.Base(path), lastGood, r.Epoch, seq)
		}
		if r.Digest != "" && opts.Digest != "" && r.Digest != opts.Digest {
			return 0, 0, fmt.Errorf("durable: WAL record was written under mechanism digest %s, collector aggregates under %s", r.Digest, opts.Digest)
		}
		if opts.Replay != nil {
			if err := opts.Replay(r); err != nil {
				return 0, 0, fmt.Errorf("durable: replay WAL record: %w", err)
			}
		}
		keys.add(r.Key, int64(len(r.Reports)))
		rec.ReplayedRecords++
		rec.ReplayedReports += int64(len(r.Reports))
		lastGood = cr.n
	}
}

// scanForRecord looks for a complete, CRC-valid record of the expected epoch
// anywhere in f's byte range [from, end): the existence of one past a damaged
// record distinguishes corruption (refuse) from a genuine torn tail
// (truncate). Only runs on the error path; cost is proportional to the
// damaged tail.
func scanForRecord(f *os.File, from, end int64, epoch uint64) (int64, bool) {
	if from >= end {
		return 0, false
	}
	tail := make([]byte, end-from)
	if _, err := f.ReadAt(tail, from); err != nil {
		return 0, false // unreadable tail: treat as torn, nothing provable follows
	}
	for i := 0; i+recordHeaderLen <= len(tail); i++ {
		if string(tail[i:i+4]) != recordMagic {
			continue
		}
		if rec, err := DecodeRecord(bytes.NewReader(tail[i:])); err == nil && rec.Epoch == epoch {
			return from + int64(i), true
		}
	}
	return 0, false
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// recBufPool recycles record-encoding buffers: the WAL copies a record into
// its group-commit buffer synchronously, so the encode buffer is reusable the
// moment append returns — Append then costs no steady-state allocation.
var recBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Append durably logs one batch under the given idempotency key (may be
// empty) before the caller absorbs it. Safe for concurrent use; concurrent
// appends group-commit into shared writes.
func (s *Store) Append(reports []protocol.Report, key string) error {
	if m := s.sm.Load(); m != nil {
		start := time.Now()
		err := s.append(reports, key)
		m.appendDur.ObserveDuration(time.Since(start))
		return err
	}
	return s.append(reports, key)
}

func (s *Store) append(reports []protocol.Report, key string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bp := recBufPool.Get().(*[]byte)
	data, err := AppendRecord((*bp)[:0], Record{Epoch: s.seq, Key: key, Digest: s.digest, Reports: reports})
	if err != nil {
		recBufPool.Put(bp)
		return err
	}
	n := int64(len(data))
	err = s.wal.append(data)
	*bp = data[:0]
	recBufPool.Put(bp)
	if err != nil {
		return fmt.Errorf("durable: append WAL record: %w", err)
	}
	s.keys.add(key, int64(len(reports)))
	s.totalRecords.Add(1)
	s.totalBytes.Add(n)
	return nil
}

// Rotate closes the active segment and starts the next one. The caller must
// exclude Append for the duration and snapshot its accumulator in the same
// exclusion window — that pairing is what makes the subsequent WriteCheckpoint
// exact. Cheap: one file create and one close.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.seq + 1
	nf, err := openWALFile(filepath.Join(s.dir, segmentName(next)), s.fsync, s.window)
	if err != nil {
		return fmt.Errorf("durable: rotate WAL: %w", err)
	}
	old := s.wal
	s.wal = nf
	s.seq = next
	nf.metrics.Store(s.sm.Load()) // the new segment keeps feeding flush metrics
	// Capture what the coming checkpoint will cover. The lag gauges keep
	// counting against the last DURABLE checkpoint — they drop only when
	// WriteCheckpoint succeeds, so a failing checkpoint leaves the replay
	// debt visible instead of zeroing it.
	s.pendingCutRecords = s.totalRecords.Load()
	s.pendingCutBytes = s.totalBytes.Load()
	s.pendingKeys = s.keys.snapshot()
	if err := old.close(); err != nil {
		return fmt.Errorf("durable: close rotated WAL segment: %w", err)
	}
	return nil
}

// WriteCheckpoint pins snap as the state of every segment before the active
// one (the caller took snap in the exclusion window of the latest Rotate),
// then applies the retention ladder: non-retained checkpoints and the WAL
// segments no retained checkpoint needs are deleted, closed retained raw
// segments are gzipped when compression is on, and the manifest is rewritten
// to index what remains. The checkpoint is fsynced before anything is pruned,
// in every fsync mode — losing a checkpoint is harmless only while the WAL it
// replaces still exists.
func (s *Store) WriteCheckpoint(snap transport.Snapshot) error {
	if m := s.sm.Load(); m != nil {
		start := time.Now()
		err := s.writeCheckpoint(snap)
		m.ckptDur.ObserveDuration(time.Since(start))
		return err
	}
	return s.writeCheckpoint(snap)
}

func (s *Store) writeCheckpoint(snap transport.Snapshot) error {
	s.mu.RLock()
	seq := s.seq
	keys := s.pendingKeys
	cutRecords, cutBytes := s.pendingCutRecords, s.pendingCutBytes
	s.mu.RUnlock()
	if _, err := writeCheckpointFile(s.dir, seq, snap, keys, s.compress); err != nil {
		return fmt.Errorf("durable: write checkpoint: %w", err)
	}
	s.ckptSeq.Store(seq)
	s.coveredRecords.Store(cutRecords)
	s.coveredBytes.Store(cutBytes)
	return s.updateHistory(seq, snap)
}

// updateHistory admits the just-written checkpoint into the epoch index,
// prunes by the retention ladder, compresses what the ladder retains, and
// rewrites the manifest. File removal and segment compression are
// best-effort (a leftover is retried at the next checkpoint); a manifest
// write failure is returned — without it a restart would reindex, which is
// correct but defeats the point of the index.
func (s *Store) updateHistory(seq uint64, snap transport.Snapshot) error {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	hist := s.hist
	if n := len(hist); n > 0 && hist[n-1].Seq == seq {
		hist = hist[:n-1] // re-checkpoint of the same segment (no new epoch)
	}
	hist = append(hist, history.Entry{Seq: seq, Epoch: snap.Epoch, Count: snap.Count, Compressed: s.compress})

	seqs := make([]uint64, len(hist))
	for i, e := range hist {
		seqs[i] = e.Seq
	}
	retained := s.ladder.Retain(seqs)
	keep := make(map[uint64]bool, len(retained))
	for _, r := range retained {
		keep[r] = true
	}
	kept := hist[:0]
	for _, e := range hist {
		if keep[e.Seq] {
			kept = append(kept, e)
		} else {
			os.Remove(filepath.Join(s.dir, checkpointName(e.Seq)))
		}
	}
	s.hist = kept

	// Segments: recovery needs the run from the PREDECESSOR retained
	// checkpoint forward (the newest checkpoint may land corrupt on disk;
	// its predecessor plus the segments after it still recover everything).
	// Older checkpoints are self-contained — their segments can go.
	keepFrom := seq
	if len(retained) >= 2 {
		keepFrom = retained[len(retained)-2]
	}
	if _, segs, err := scanDir(s.dir); err == nil {
		for _, g := range segs {
			if g < keepFrom {
				os.Remove(filepath.Join(s.dir, segmentName(g)))
				os.Remove(filepath.Join(s.dir, gzSegmentName(g)))
			} else if s.compress && g < seq {
				// A closed segment recovery may still replay: keep it, smaller.
				s.compressSegment(g)
			}
		}
	}
	if err := history.WriteManifest(s.dir, s.hist); err != nil {
		return fmt.Errorf("durable: write history manifest: %w", err)
	}
	return nil
}

// compressSegment gzips one closed raw segment in place: temp file, fsync,
// rename to the .gz name, directory fsync, then remove the raw original. A
// crash at any point leaves a readable segment — the raw file is
// authoritative until it is removed, and Open deletes a .gz twin whenever the
// raw survives. Best-effort: on any error the raw segment simply stays.
func (s *Store) compressSegment(seq uint64) {
	raw := filepath.Join(s.dir, segmentName(seq))
	src, err := os.Open(raw)
	if err != nil {
		return // already compressed (or gone)
	}
	defer src.Close()
	tmp, err := os.CreateTemp(s.dir, ".segment-*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	gz := gzip.NewWriter(tmp)
	if _, err := io.Copy(gz, bufio.NewReaderSize(src, 1<<16)); err != nil {
		tmp.Close()
		return
	}
	if err := gz.Close(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, gzSegmentName(seq))); err != nil {
		return
	}
	if err := syncDir(s.dir); err != nil {
		return
	}
	os.Remove(raw)
}

// SnapshotAt serves the checkpointed snapshot for one retained epoch without
// any replay. With nearest false the epoch must match a retained checkpoint
// exactly; with nearest true the newest retained epoch ≤ the requested one is
// served. A miss returns *transport.EpochNotRetainedError describing the
// retained range, so callers (and the HTTP layer) can distinguish "coarsened
// away" from failure.
func (s *Store) SnapshotAt(epoch uint64, nearest bool) (transport.Snapshot, error) {
	s.histMu.Lock()
	var pick *history.Entry
	var oldest, newest uint64
	var nearestBelow uint64
	if len(s.hist) > 0 {
		oldest, newest = s.hist[0].Epoch, s.hist[len(s.hist)-1].Epoch
	}
	for i := len(s.hist) - 1; i >= 0; i-- {
		e := s.hist[i]
		if e.Epoch > epoch {
			continue
		}
		nearestBelow = e.Epoch
		if nearest || e.Epoch == epoch {
			pick = &e
		}
		break
	}
	var seq uint64
	if pick != nil {
		seq = pick.Seq
	}
	s.histMu.Unlock()
	if pick == nil {
		return transport.Snapshot{}, &transport.EpochNotRetainedError{
			Requested: epoch, Oldest: oldest, Newest: newest, Nearest: nearestBelow,
		}
	}
	snap, _, _, err := history.ReadCheckpointFile(filepath.Join(s.dir, checkpointName(seq)), seq)
	if err != nil {
		return transport.Snapshot{}, fmt.Errorf("durable: read retained checkpoint %d: %w", seq, err)
	}
	return snap, nil
}

// RetainedEpochs lists the epochs SnapshotAt can serve, ascending.
func (s *Store) RetainedEpochs() []uint64 {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	out := make([]uint64, len(s.hist))
	for i, e := range s.hist {
		out[i] = e.Epoch
	}
	return out
}

// Seq returns the active segment sequence.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// CheckpointSeq returns the newest durable checkpoint's sequence.
func (s *Store) CheckpointSeq() uint64 { return s.ckptSeq.Load() }

// RecordLag returns the number of records no durable checkpoint covers yet —
// what a restart right now would replay. It keeps growing while checkpoint
// writes fail, which is exactly when an operator needs to see it.
func (s *Store) RecordLag() int64 { return s.totalRecords.Load() - s.coveredRecords.Load() }

// ByteLag returns the WAL bytes no durable checkpoint covers yet.
func (s *Store) ByteLag() int64 { return s.totalBytes.Load() - s.coveredBytes.Load() }

// Sync forces staged records to disk regardless of the fsync mode.
func (s *Store) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal.sync()
}

// Close flushes and closes the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.close()
}
