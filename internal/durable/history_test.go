package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/history"
	"repro/internal/transport"
)

// The streamed checkpoint writer replaced the buffered encoder on the write
// path; its uncompressed output must stay byte-identical — the buffered
// encoder remains as the reference codec precisely to pin this.
func TestStreamedCheckpointMatchesBufferedEncoder(t *testing.T) {
	snap := transport.Snapshot{
		State: []float64{0, 1.5, -2.25, 1e-300},
		Count: 4096,
		Epoch: 19,
		Info:  transport.Info{Mechanism: "strategy", Domain: 4, Epsilon: 1.25, Digest: "00f1e2d3c4b5a697"},
	}
	keys := []KeyCount{
		{Key: "00f1e2d3c4b5a6978877665544332211", Reports: 4090},
		{Key: "fefefefefefefefe0101010101010101", Reports: 6},
	}
	want, err := encodeCheckpoint(7, snap, keys)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := writeCheckpointFile(dir, 7, snap, keys, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed checkpoint differs from the buffered encoder:\n got %x\nwant %x", got, want)
	}
	// And the buffered decoder reads the streamed file.
	seq, dsnap, dkeys, err := DecodeCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || dsnap.Count != snap.Count || !reflect.DeepEqual(dkeys, keys) {
		t.Fatalf("buffered decode of the streamed file: seq=%d %+v %+v", seq, dsnap, dkeys)
	}
}

// historyStore builds a store with an aggressive ladder and cuts n
// checkpoints at epochs 1..n, count and state tracking the epoch.
func historyStore(t *testing.T, dir string, opts Options, n int) *Store {
	t.Helper()
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := s.Append(batch(i), ""); err != nil {
			t.Fatal(err)
		}
		if err := s.Rotate(); err != nil {
			t.Fatal(err)
		}
		snap := transport.Snapshot{State: []float64{float64(i)}, Count: float64(i), Epoch: uint64(i)}
		if err := s.WriteCheckpoint(snap); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestStoreSnapshotAtServesEveryRetainedEpoch(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		s := historyStore(t, dir, Options{HistoryKeep: 2, Gzip: gz}, 8)
		retained := s.RetainedEpochs()
		if want := []uint64{4, 6, 7, 8}; !reflect.DeepEqual(retained, want) {
			t.Fatalf("gzip=%v: retained %v, want %v", gz, retained, want)
		}
		for _, e := range retained {
			snap, err := s.SnapshotAt(e, false)
			if err != nil {
				t.Fatalf("gzip=%v: SnapshotAt(%d): %v", gz, e, err)
			}
			if snap.Epoch != e || snap.Count != float64(e) || snap.State[0] != float64(e) {
				t.Fatalf("gzip=%v: SnapshotAt(%d) served %+v", gz, e, snap)
			}
		}
		// An exact read of a coarsened-away epoch is a definitive miss carrying
		// the retained range and the floor epoch.
		_, err := s.SnapshotAt(5, false)
		var enr *transport.EpochNotRetainedError
		if !errors.As(err, &enr) {
			t.Fatalf("gzip=%v: SnapshotAt(5) = %v, want EpochNotRetainedError", gz, err)
		}
		if enr.Requested != 5 || enr.Oldest != 4 || enr.Newest != 8 || enr.Nearest != 4 {
			t.Fatalf("gzip=%v: miss detail %+v", gz, enr)
		}
		// The nearest (floor) read serves epoch 4 instead.
		snap, err := s.SnapshotAt(5, true)
		if err != nil || snap.Epoch != 4 {
			t.Fatalf("gzip=%v: nearest SnapshotAt(5) = %+v, %v", gz, snap, err)
		}
		// Below the oldest retained epoch even nearest has nothing.
		if _, err := s.SnapshotAt(3, true); !errors.As(err, &enr) {
			t.Fatalf("gzip=%v: SnapshotAt(3, nearest) = %v, want EpochNotRetainedError", gz, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// A reopened store serves the identical history: the manifest (or the
		// rebuild) carries the retained set across the restart.
		s2, _, err := Open(dir, Options{HistoryKeep: 2, Gzip: gz})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if got := s2.RetainedEpochs(); !reflect.DeepEqual(got, retained) {
			t.Fatalf("gzip=%v: reopened retained %v, want %v", gz, got, retained)
		}
		for _, e := range retained {
			snap, err := s2.SnapshotAt(e, false)
			if err != nil || snap.Epoch != e || snap.Count != float64(e) {
				t.Fatalf("gzip=%v: reopened SnapshotAt(%d) = %+v, %v", gz, e, snap, err)
			}
		}
	}
}

// Gzip mode compresses closed retained segments; recovery must replay them
// transparently alongside the raw final segment.
func TestStoreGzipSegmentsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Gzip: true, HistoryKeep: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(1), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{1}, Count: 1, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(2), "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(transport.Snapshot{State: []float64{2}, Count: 2, Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(batch(3), "c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Segment 0 is behind the predecessor checkpoint — pruned. Segment 1 is
	// closed but still needed by the corrupt-newest fallback → compressed.
	// Segment 2 is the live tail and stays raw.
	if _, err := os.Stat(filepath.Join(dir, gzSegmentName(1))); err != nil {
		t.Fatalf("closed segment 1 was not compressed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("raw segment 1 should be gone after compression: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatalf("live tail segment 2 missing: %v", err)
	}

	// Corrupt-newest-checkpoint fallback now replays the GZIPPED segment 1.
	latest := filepath.Join(dir, checkpointName(2))
	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(latest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var log replayLog
	s2, rec, err := Open(dir, log.options("", false))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec.HasCheckpoint || rec.CheckpointSeq != 1 {
		t.Fatalf("fallback recovery %+v", rec)
	}
	if rec.ReplayedRecords != 2 || log.records[0].Key != "b" || log.records[1].Key != "c" {
		t.Fatalf("replayed %+v", log.records)
	}
}

// The satellite's crash-consistency sweep at the store level: whatever byte
// the manifest is truncated at — including deleted entirely — a reopened
// store must still retain and serve every epoch the checkpoint files hold.
// The manifest is an index, never ground truth.
func TestStoreManifestCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	s := historyStore(t, dir, Options{HistoryKeep: 2}, 8)
	wantEpochs := s.RetainedEpochs()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, history.ManifestName)
	intact, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string) {
		t.Helper()
		s2, _, err := Open(dir, Options{HistoryKeep: 2})
		if err != nil {
			t.Fatalf("%s: open: %v", label, err)
		}
		defer s2.Close()
		if got := s2.RetainedEpochs(); !reflect.DeepEqual(got, wantEpochs) {
			t.Fatalf("%s: retained %v, want %v — a damaged manifest silently lost epochs", label, got, wantEpochs)
		}
		for _, e := range wantEpochs {
			snap, err := s2.SnapshotAt(e, false)
			if err != nil || snap.Epoch != e || snap.Count != float64(e) {
				t.Fatalf("%s: SnapshotAt(%d) = %+v, %v", label, e, snap, err)
			}
		}
	}

	for cut := 0; cut <= len(intact); cut++ {
		if err := os.WriteFile(manifestPath, intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		check("truncated manifest")
	}
	if err := os.Remove(manifestPath); err != nil {
		t.Fatal(err)
	}
	check("missing manifest")
	// The rebuild also rewrites the manifest, so the NEXT restart is indexed
	// again without reading every checkpoint.
	rebuilt, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest was not rewritten after a rebuild: %v", err)
	}
	if !reflect.DeepEqual(rebuilt, intact) {
		t.Fatalf("rebuilt manifest differs from the original:\n got %x\nwant %x", rebuilt, intact)
	}
}
